//! Service soak: the multi-tenant serving gate CI runs on every PR.
//!
//! Each iteration is one seeded lifetime of a multi-tenant
//! [`ArchiveService`] under concurrent traffic **and** fault injection:
//!
//! 1. build a mixed-scheme tenant roster (AE, Reed-Solomon, replication)
//!    over one shared fault-injectable backend,
//! 2. drive a deterministic seeded workload's warm phase (writes) through
//!    the sharded worker pool,
//! 3. blackhole a seeded slice of every tenant's blocks (the hardware
//!    under the shared store dies),
//! 4. drive the serving phase — reads, writes, scrubs — *while* the
//!    faults are live, then sweep every tenant with a scrub,
//! 5. verify every tenant end to end, and
//! 6. **replay the identical seed serially** against a second, never
//!    faulted service and require the two backends to agree block for
//!    block — concurrency plus disaster plus repair must be invisible in
//!    the final state.
//!
//! ```sh
//! cargo run --release --example service_soak            # default 6 iterations
//! AE_SOAK_ITERS=20 cargo run --release --example service_soak
//! ```
//!
//! The workload, the victim choice and every payload byte derive from the
//! iteration seed, so any failure reproduces exactly.

use aecodes::baselines::{ReedSolomon, Replication};
use aecodes::blocks::BlockId;
use aecodes::core::Code;
use aecodes::lattice::Config;
use aecodes::service::{
    ArchiveService, OpKind, OpMix, Phase, ServiceConfig, SharedBackend, SplitMix64, Workload,
    WorkloadConfig,
};
use aecodes::store::{FaultyStore, MemStore};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

const BLOCK: usize = 64;
const TENANTS: u16 = 6;

fn roster(backend: SharedBackend, config: ServiceConfig) -> ArchiveService {
    let mut svc = ArchiveService::new(backend, config);
    for t in 0..TENANTS {
        match t % 3 {
            0 => svc.add_tenant(
                Arc::new(Code::new(Config::new(3, 2, 5).unwrap(), BLOCK)),
                BLOCK,
            ),
            1 => svc.add_tenant(Arc::new(ReedSolomon::new(4, 2).unwrap()), BLOCK),
            _ => svc.add_tenant(Arc::new(Replication::new(3)), BLOCK),
        };
    }
    svc
}

fn workload_phases(seed: u64) -> Vec<Workload> {
    Workload::generate_phased(
        seed,
        WorkloadConfig {
            tenants: TENANTS,
            phases: vec![
                // Warm: populate every tenant.
                Phase {
                    ops: 60,
                    mix: OpMix::write_only(),
                    interarrival: Duration::ZERO,
                },
                // Serve: reads over writes with scrubs mixed in, while
                // the fault injection below is live.
                Phase {
                    ops: 180,
                    mix: OpMix {
                        put: 15,
                        get: 75,
                        scrub: 10,
                    },
                    interarrival: Duration::ZERO,
                },
            ],
            tenant_skew: Some(0.9),
            file_skew: Some(1.1),
            payload: (32, 6 * BLOCK),
            scrub_tenant: None,
            seal_tail: false,
        },
    )
}

/// Full backend contents: every id and its bytes' CRC.
fn snapshot(mem: &MemStore) -> BTreeMap<BlockId, u32> {
    mem.ids()
        .into_iter()
        .map(|id| (id, mem.get(id).unwrap().crc()))
        .collect()
}

/// One seeded lifetime. Returns (ops served, faults injected, repaired).
fn soak(seed: u64) -> (u64, usize, u64) {
    let phases = workload_phases(seed);

    // The service under test: sharded pool over a faulty shared backend.
    let faulty = Arc::new(FaultyStore::new(Arc::new(MemStore::new())));
    let mut svc = roster(
        Arc::clone(&faulty) as SharedBackend,
        ServiceConfig::default(),
    );

    // Warm phase: all writes must land.
    let (warm, _) = svc.run(|client| phases[0].drive(client));
    assert!(warm.clean(), "seed {seed}: warm phase {:?}", warm.failures);

    // Disaster: a seeded *stride* of every tenant's physical blocks goes
    // dark. Striding (rather than i.i.d. coin flips) keeps losses inside
    // every roster scheme's repair tolerance — at most one hit per few
    // consecutive writes — so the scrub sweep below must heal everything.
    let mut rng = SplitMix64::new(seed ^ 0xFA17);
    let mut injected = 0usize;
    for t in svc.tenant_ids().collect::<Vec<_>>() {
        let stride = 4 + rng.below(3); // 4..=6
        let offset = rng.below(stride);
        let view = Arc::clone(svc.archive(t).store());
        let victims: Vec<BlockId> = svc
            .archive(t)
            .stored_ids()
            .iter()
            .enumerate()
            .filter(|(k, _)| (*k as u64) % stride == offset)
            .map(|(_, id)| view.global(*id))
            .collect();
        injected += victims.len();
        faulty.fail_all(victims);
    }

    // Serve through the live faults: degraded reads may repair on the
    // fly or fail — both acceptable; determinism of the *final state* is
    // what the parity check below pins.
    let (serve, report) = svc.run(|client| phases[1].drive(client));
    let _ = serve;

    // Scrub sweep: every tenant repairs its remaining losses.
    let ids: Vec<_> = svc.tenant_ids().collect();
    let (repaired, _) = svc.run(|client| {
        let tickets: Vec<_> = ids
            .iter()
            .map(|&t| client.scrub(t).expect("submit scrub"))
            .collect();
        tickets.into_iter().map(|t| t.wait().unwrap()).sum::<u64>()
    });
    assert_eq!(
        faulty.failed_len(),
        0,
        "seed {seed}: scrubs heal all faults"
    );
    if let Some((t, bad)) = svc.verify_all().into_iter().next() {
        panic!("seed {seed}: tenant {t} failed verification: {bad:?}");
    }

    // Serial replay of the same seed, never faulted, in-line execution:
    // the reference every sharded + faulted run must match.
    let ref_mem = Arc::new(MemStore::new());
    let mut reference = roster(
        Arc::clone(&ref_mem) as SharedBackend,
        ServiceConfig::serial(),
    );
    for phase in &phases {
        phase
            .replay(&mut reference)
            .expect("fault-free serial replay is clean");
    }
    assert_eq!(
        snapshot(faulty.inner()),
        snapshot(&ref_mem),
        "seed {seed}: final backend state diverged from serial replay"
    );

    (report.completed(), injected, repaired)
}

fn main() {
    let iterations: u64 = std::env::var("AE_SOAK_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    let base: u64 = std::env::var("AE_SOAK_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xAE5E);
    println!(
        "service soak: {iterations} iteration(s), {TENANTS} tenants (AE/RS/replication) per run"
    );

    let mut ops = 0;
    let mut faults = 0;
    let mut repaired = 0;
    for i in 0..iterations {
        let seed = base.wrapping_add(i);
        let (o, f, r) = soak(seed);
        ops += o;
        faults += f as u64;
        repaired += r;
        println!(
            "  seed {seed:#06x}: {o} ops served, {f} blocks blackholed, {r} scrub-repaired, parity OK"
        );
    }
    println!(
        "OK: {ops} ops across {iterations} seeded lifetimes; {faults} injected faults, \
         {repaired} scrub repairs; every final state byte-identical to its serial replay"
    );
    // Exercise the latency surface once so the report plumbing stays
    // honest under the soak build too.
    let mut svc = roster(
        Arc::new(MemStore::new()) as SharedBackend,
        ServiceConfig::default(),
    );
    let w = Workload::generate(base, WorkloadConfig::default());
    let (outcome, report) = svc.run(|client| w.drive(client));
    assert!(outcome.clean());
    for kind in OpKind::ALL {
        let h = report.latency(kind);
        if h.count() > 0 {
            println!(
                "  {kind}: n={} p50={:?} p99={:?} max={:?}",
                h.count(),
                h.quantile(0.5).unwrap(),
                h.quantile(0.99).unwrap(),
                h.max()
            );
        }
    }
    println!("service report: {}", report.summary());
}
