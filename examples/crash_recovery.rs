//! Crash-recovery soak: the durability gate CI runs on every PR.
//!
//! Each iteration is one simulated lifetime of a crash-recoverable
//! archive, driven by a seeded RNG so failures reproduce exactly:
//!
//! 1. pick a roster scheme and a backend (in-memory / tiered / faulty),
//! 2. write N files of random sizes,
//! 3. **crash** at a randomized-but-seeded cut point (drop the archive
//!    and its scheme — every in-memory structure dies),
//! 4. `Archive::open` — replay the on-backend metadata journal and
//!    restore the encoder frontier,
//! 5. verify every pre-crash file byte-for-byte, resume the remaining
//!    puts, seal,
//! 6. inject a scattered disaster, scrub (repair), and verify everything
//!    again end to end.
//!
//! ```sh
//! cargo run --release --example crash_recovery        # default 12 iterations
//! AE_SOAK_ITERS=100 cargo run --release --example crash_recovery
//! ```

use aecodes::api::{BlockRepo, BlockSink, RedundancyScheme};
use aecodes::blocks::BlockId;
use aecodes::sim::Scheme;
use aecodes::store::archive::Archive;
use aecodes::store::{FaultyStore, MemStore, TieredStore};
use std::sync::Arc;

const BLOCK: usize = 64;
const FILES: usize = 8;

/// SplitMix64: the workspace's seeded stream of choice.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn file_contents(rng: &mut Rng) -> Vec<u8> {
    let len = rng.below(4 * BLOCK as u64 * 8) as usize; // 0..=2 KiB
    (0..len).map(|_| rng.next() as u8).collect()
}

/// One seeded lifetime over one backend. Returns (files, repaired).
fn soak<B: BlockRepo + ?Sized>(scheme: &Scheme, store: Arc<B>, seed: u64) -> (usize, u64) {
    let mut rng = Rng(seed);
    let files: Vec<(String, Vec<u8>)> = (0..FILES)
        .map(|k| (format!("file-{k}.bin"), file_contents(&mut rng)))
        .collect();
    let cut = rng.below(files.len() as u64 + 1) as usize;

    // Write, then crash mid-stream.
    {
        let scheme: Arc<dyn RedundancyScheme> = Arc::from(scheme.build(BLOCK));
        let mut ar = Archive::with_scheme(scheme, BLOCK, Arc::clone(&store));
        for (name, contents) in files.iter().take(cut) {
            ar.put(name, contents).expect("fresh name");
        }
    } // <- the crash: archive and encoder state dropped

    // Reopen from the backend alone and resume.
    let scheme: Arc<dyn RedundancyScheme> = Arc::from(scheme.build(BLOCK));
    let mut ar = Archive::open(scheme, Arc::clone(&store)).expect("journal replays");
    assert_eq!(ar.torn_tail(), None, "clean crash leaves no torn record");
    for (name, contents) in files.iter().take(cut) {
        assert_eq!(&ar.get(name).expect(name), contents, "pre-crash content");
    }
    for (name, contents) in files.iter().skip(cut) {
        ar.put(name, contents).expect("resumed put");
    }
    ar.seal().expect("flush buffered redundancy");

    // Disaster + repair: scatter erasures over everything stored.
    let victims: Vec<BlockId> = ar
        .stored_ids()
        .iter()
        .copied()
        .filter(|_| rng.below(100) < 4)
        .collect();
    for v in &victims {
        store.remove(*v);
    }
    let repaired = ar.scrub();
    assert_eq!(
        repaired as usize,
        victims.len(),
        "scrub restores all victims"
    );
    for (name, contents) in &files {
        assert_eq!(&ar.get(name).expect(name), contents, "post-repair content");
    }
    assert!(ar.verify_all().is_empty(), "end-to-end verification");
    (files.len(), repaired)
}

fn main() {
    let iterations: u64 = std::env::var("AE_SOAK_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    let roster = Scheme::extended_lineup();
    println!(
        "crash-recovery soak: {iterations} iteration(s), {} roster schemes",
        roster.len()
    );

    let mut total_files = 0;
    let mut total_repaired = 0;
    for seed in 0..iterations {
        let scheme = &roster[(seed % roster.len() as u64) as usize];
        let (backend, (files, repaired)) = match seed % 3 {
            0 => ("mem", soak(scheme, Arc::new(MemStore::new()), seed)),
            1 => (
                "tiered",
                soak(
                    scheme,
                    Arc::new(TieredStore::new(Arc::new(MemStore::new()))),
                    seed,
                ),
            ),
            _ => (
                "faulty",
                soak(
                    scheme,
                    Arc::new(FaultyStore::new(Arc::new(MemStore::new()))),
                    seed,
                ),
            ),
        };
        total_files += files;
        total_repaired += repaired;
        println!(
            "  seed {seed:>3}  {:<22} over {backend:<6}: {files} files crash-recovered, {repaired} blocks repaired",
            scheme.name(),
        );
    }
    println!(
        "OK: {total_files} files survived crash + reopen + disaster ({total_repaired} blocks repaired)"
    );
}
