//! Crash-recovery soak: the durability gate CI runs on every PR.
//!
//! Each iteration is one simulated lifetime of a crash-recoverable
//! archive, driven by a seeded RNG so failures reproduce exactly:
//!
//! 1. pick a roster scheme, a backend (in-memory / tiered / faulty) and
//!    a metadata policy (2–3 copies per record, aggressive checkpoint
//!    cadence),
//! 2. write N files of random sizes,
//! 3. **crash** at a randomized-but-seeded cut point (drop the archive
//!    and its scheme — every in-memory structure dies),
//! 4. `Archive::open` — replay checkpoint + journal suffix and restore
//!    the encoder frontier,
//! 5. verify every pre-crash file byte-for-byte, resume the remaining
//!    puts, seal,
//! 6. inject a scattered disaster over data **and metadata**: erase
//!    scheme blocks, and corrupt or delete `Meta` journal / checkpoint /
//!    pointer copies (always leaving at least one copy per record),
//! 7. scrub (repair + heal every metadata copy), verify everything end
//!    to end, and require **block-for-block parity** with an
//!    uninterrupted run of the same lifetime — same stored blocks, same
//!    live metadata plane, byte for byte.
//!
//! ```sh
//! cargo run --release --example crash_recovery        # default 12 iterations
//! AE_SOAK_ITERS=100 cargo run --release --example crash_recovery
//! ```

use aecodes::api::{BlockRepo, BlockSink, BlockSource, RedundancyScheme};
use aecodes::blocks::{Block, BlockId};
use aecodes::sim::Scheme;
use aecodes::store::archive::Archive;
use aecodes::store::meta::MetaConfig;
use aecodes::store::{FaultyStore, MemStore, TieredStore};
use std::collections::HashMap;
use std::sync::Arc;

const BLOCK: usize = 64;
const FILES: usize = 8;

/// SplitMix64: the workspace's seeded stream of choice.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn file_contents(rng: &mut Rng) -> Vec<u8> {
    let len = rng.below(4 * BLOCK as u64 * 8) as usize; // 0..=2 KiB
    (0..len).map(|_| rng.next() as u8).collect()
}

/// A randomized-but-seeded metadata policy: 2–3 copies per record, a
/// checkpoint every 1–4 records, occasionally multi-part checkpoints.
fn meta_policy(rng: &mut Rng) -> MetaConfig {
    MetaConfig {
        copies: 2 + rng.below(2) as u16,
        checkpoint_every: Some(1 + rng.below(4)),
        segment_bytes: if rng.below(2) == 0 { 128 } else { 64 * 1024 },
    }
}

/// The uninterrupted reference lifetime: same files, same policy, no
/// crash, no disaster — the bytes the soaked run must converge back to.
fn reference(
    scheme: &Scheme,
    meta: MetaConfig,
    files: &[(String, Vec<u8>)],
) -> (Archive<MemStore>, Arc<MemStore>) {
    let store = Arc::new(MemStore::new());
    let s: Arc<dyn RedundancyScheme> = Arc::from(scheme.build(BLOCK));
    let mut ar = Archive::with_scheme_meta(s, BLOCK, Arc::clone(&store), meta);
    for (name, contents) in files {
        ar.put(name, contents).expect("fresh name");
    }
    ar.seal().expect("reference seal");
    (ar, store)
}

/// Corrupts or deletes live `Meta` copies at random, never harming every
/// copy of one record. Returns how many ids were harmed.
fn meta_disaster<B: BlockRepo + ?Sized>(rng: &mut Rng, ar: &Archive<B>, store: &Arc<B>) -> usize {
    // Group the live metadata plane by record so the drill can cap the
    // harm below the record's copy count.
    let mut by_record: HashMap<u64, Vec<BlockId>> = HashMap::new();
    for id in ar.live_meta_ids() {
        let BlockId::Meta(m) = id else { continue };
        let key = m.seq() * 2 + m.is_pointer() as u64;
        by_record.entry(key).or_default().push(id);
    }
    let mut harmed = 0;
    for (_, copies) in by_record {
        let budget = rng.below(copies.len() as u64) as usize; // < copies: one always survives
        for id in copies.into_iter().take(budget) {
            if rng.below(2) == 0 {
                store.remove(id);
            } else {
                let garbage: Vec<u8> = (0..48).map(|_| rng.next() as u8).collect();
                store.store(id, Block::from_vec(garbage));
            }
            harmed += 1;
        }
    }
    harmed
}

/// One seeded lifetime over one backend. Returns (files, repaired).
fn soak<B: BlockRepo + ?Sized>(scheme: &Scheme, store: Arc<B>, seed: u64) -> (usize, u64) {
    let mut rng = Rng(seed);
    let files: Vec<(String, Vec<u8>)> = (0..FILES)
        .map(|k| (format!("file-{k}.bin"), file_contents(&mut rng)))
        .collect();
    let cut = rng.below(files.len() as u64 + 1) as usize;
    let meta = meta_policy(&mut rng);
    let (ref_ar, ref_store) = reference(scheme, meta.clone(), &files);

    // Write, then crash mid-stream.
    {
        let s: Arc<dyn RedundancyScheme> = Arc::from(scheme.build(BLOCK));
        let mut ar = Archive::with_scheme_meta(s, BLOCK, Arc::clone(&store), meta.clone());
        for (name, contents) in files.iter().take(cut) {
            ar.put(name, contents).expect("fresh name");
        }
    } // <- the crash: archive and encoder state dropped

    // Reopen from the backend alone and resume.
    let s: Arc<dyn RedundancyScheme> = Arc::from(scheme.build(BLOCK));
    let mut ar =
        Archive::open_with_meta(s, Arc::clone(&store), meta.clone()).expect("journal replays");
    assert_eq!(ar.torn_tail(), None, "clean crash leaves no torn record");
    assert!(ar.meta_damage().is_empty(), "clean crash leaves no damage");
    for (name, contents) in files.iter().take(cut) {
        assert_eq!(&ar.get(name).expect(name), contents, "pre-crash content");
    }
    for (name, contents) in files.iter().skip(cut) {
        ar.put(name, contents).expect("resumed put");
    }
    ar.seal().expect("flush buffered redundancy");

    // Disaster + repair: strided erasures over everything stored (a
    // random phase, but never two losses close enough to exceed any
    // roster scheme's tolerance), plus corrupted/deleted metadata
    // copies. Dedup: the write-order log can list an id more than once
    // (updated parities re-store under their id); a victim dies once.
    let stride = 17 + rng.below(8) as usize;
    let offset = rng.below(stride as u64) as usize;
    let victims: std::collections::BTreeSet<BlockId> = ar
        .stored_ids()
        .iter()
        .copied()
        .skip(offset)
        .step_by(stride)
        .collect();
    for v in &victims {
        store.remove(*v);
    }
    let meta_harmed = meta_disaster(&mut rng, &ar, &store);
    let repaired = ar.scrub();
    assert_eq!(
        repaired as usize,
        victims.len() + meta_harmed,
        "scrub restores every victim ({}) and heals every harmed meta copy ({meta_harmed})",
        victims.len()
    );
    for (name, contents) in &files {
        assert_eq!(&ar.get(name).expect(name), contents, "post-repair content");
    }
    assert!(ar.verify_all().is_empty(), "end-to-end verification");

    // Reopen once more: a healed metadata plane reads clean.
    drop(ar);
    let s: Arc<dyn RedundancyScheme> = Arc::from(scheme.build(BLOCK));
    let ar = Archive::open_with_meta(s, Arc::clone(&store), meta).expect("healed journal replays");
    assert!(ar.meta_damage().is_empty(), "scrub healed every meta copy");

    // Block-for-block parity with the uninterrupted run: same manifest,
    // same stored blocks, same live metadata plane — byte for byte.
    assert_eq!(
        ar.names().collect::<Vec<_>>(),
        ref_ar.names().collect::<Vec<_>>(),
        "manifest parity"
    );
    assert_eq!(ar.stored_ids(), ref_ar.stored_ids(), "write-order id log");
    for id in ref_ar.stored_ids() {
        assert_eq!(
            store.fetch(*id).as_ref(),
            ref_store.fetch(*id).as_ref(),
            "stored block {id}"
        );
    }
    for id in ref_ar.live_meta_ids() {
        assert_eq!(
            store.fetch(id).as_ref(),
            ref_store.fetch(id).as_ref(),
            "meta block {id}"
        );
    }
    (files.len(), repaired)
}

fn main() {
    let iterations: u64 = std::env::var("AE_SOAK_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    let roster = Scheme::extended_lineup();
    println!(
        "crash-recovery soak: {iterations} iteration(s), {} roster schemes",
        roster.len()
    );

    let mut total_files = 0;
    let mut total_repaired = 0;
    for seed in 0..iterations {
        let scheme = &roster[(seed % roster.len() as u64) as usize];
        let (backend, (files, repaired)) = match seed % 3 {
            0 => ("mem", soak(scheme, Arc::new(MemStore::new()), seed)),
            1 => (
                "tiered",
                soak(
                    scheme,
                    Arc::new(TieredStore::new(Arc::new(MemStore::new()))),
                    seed,
                ),
            ),
            _ => (
                "faulty",
                soak(
                    scheme,
                    Arc::new(FaultyStore::new(Arc::new(MemStore::new()))),
                    seed,
                ),
            ),
        };
        total_files += files;
        total_repaired += repaired;
        println!(
            "  seed {seed:>3}  {:<22} over {backend:<6}: {files} files crash-recovered, {repaired} blocks repaired",
            scheme.name(),
        );
    }
    println!(
        "OK: {total_files} files survived crash + reopen + disaster ({total_repaired} blocks repaired)"
    );
}
