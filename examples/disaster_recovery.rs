//! A scaled-down run of the paper's disaster-recovery evaluation
//! (§V.C, Figs 11–13): 100k data blocks over 100 locations, disasters
//! failing 10–50% of them, all ten redundancy schemes.
//!
//! For the paper's full 1M-block environment run the dedicated binaries:
//!
//! ```sh
//! cargo run --release -p ae-sim --bin fig11_data_loss
//! ```
//!
//! ```sh
//! cargo run --release --example disaster_recovery
//! ```

use aecodes::sim::experiments::{self, Env};

fn main() {
    let env = Env::paper().with_blocks(100_000);
    println!(
        "environment: {} data blocks, {} locations, disasters 10-50%\n",
        env.data_blocks, env.locations
    );

    let fig11 = experiments::fig11_data_loss(&env);
    print!("{}", fig11.to_table());

    println!();
    print!("{}", experiments::fig12_vulnerable(&env).to_table());

    println!();
    print!("{}", experiments::fig13_single_failures(&env).to_table());

    println!();
    print!("{}", experiments::table6_rounds(&env).to_table());

    // The paper's headline: same 300% storage, radically different loss.
    let loss_of = |label: &str| {
        fig11
            .series
            .iter()
            .find(|s| s.label == label)
            .and_then(|s| s.points.last())
            .and_then(|(_, y)| *y)
            .expect("series present")
    };
    let ae = loss_of("AE(3,2,5)");
    let rs = loss_of("RS(4,12)");
    let repl = loss_of("4-way replic.");
    println!(
        "\nat a 50% disaster and equal 300% overhead: AE(3,2,5) lost {ae} blocks, \
         RS(4,12) lost {rs}, 4-way replication lost {repl}"
    );
    assert!(ae <= rs && rs <= repl);
}
