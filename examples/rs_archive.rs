//! The same archive code, different scheme and backend: Reed-Solomon over
//! a two-tier store, with a fault-injection disaster drill.
//!
//! `Archive` is generic over `Arc<dyn RedundancyScheme>` and over the
//! backend — this example swaps `archive.rs`'s AE(3,2,5)-over-distributed
//! pair for RS(10,4) over a `TieredStore` (fast data tier over a shared
//! remote tier) wrapped in a `FaultyStore`, and nothing else changes:
//! the same `put`/`get`/`scrub`/`verify_all` calls drive the stripe
//! decoder instead of the lattice decoder.
//!
//! ```sh
//! cargo run --example rs_archive
//! ```

use aecodes::api::RedundancyScheme;
use aecodes::baselines::{ReedSolomon, Replication};
use aecodes::store::archive::Archive;
use aecodes::store::{FaultyStore, MemStore, TieredStore};
use std::sync::Arc;

fn sample(len: usize, mul: u32) -> Vec<u8> {
    (0..len as u32)
        .map(|i| (i.wrapping_mul(mul) >> 5) as u8)
        .collect()
}

fn main() {
    // RS(10,4) over a tiered backend: data blocks on the fast tier,
    // parity shards on the shared remote tier — all behind a fault
    // injector so we can drill disasters block by block.
    let tiered = Arc::new(TieredStore::new(Arc::new(MemStore::new())));
    let faulty = Arc::new(FaultyStore::new(Arc::clone(&tiered)));
    let scheme: Arc<dyn RedundancyScheme> = Arc::new(ReedSolomon::new(10, 4).expect("valid"));
    let mut ar = Archive::with_scheme(scheme, 128, Arc::clone(&faulty));

    let paper = sample(10_000, 2654435761);
    let notes = sample(3_000, 40503);
    ar.put("paper.tex", &paper).expect("fresh name");
    ar.put("notes.md", &notes).expect("fresh name");
    // RS buffers its trailing partial stripe; sealing flushes it (padded
    // with virtual zero blocks) and freezes the archive.
    let flushed = ar.seal().expect("flush final stripe");
    println!(
        "archived 2 files with {} over a tiered backend ({} data blocks, {} shards flushed at seal)",
        ar.scheme().scheme_name(),
        ar.blocks_written(),
        flushed.len()
    );
    println!(
        "  fast tier holds {} data blocks; remote tier {} parity shards",
        tiered.fast().len(),
        tiered.shared().len()
    );

    // Disaster drill: blackhole every 7th data block of the fast tier.
    let victims: Vec<_> = tiered
        .fast()
        .ids()
        .into_iter()
        .filter(|id| matches!(id, aecodes::blocks::BlockId::Data(n) if n.0 % 7 == 0))
        .collect();
    faulty.fail_all(victims.iter().copied());
    println!(
        "\nblackholed {} data blocks ({} faults injected)",
        victims.len(),
        faulty.failed_len()
    );

    // Degraded reads decode the damaged stripes on the fly.
    assert_eq!(ar.get("paper.tex").expect("degraded read"), paper);
    assert_eq!(ar.get("notes.md").expect("degraded read"), notes);
    println!("degraded reads verified byte-identical through stripe decodes");

    // Scrub writes the reconstructions back, healing the faults
    // (a write to a failed id models replaced hardware).
    let restored = ar.scrub();
    assert_eq!(restored as usize, victims.len());
    assert_eq!(faulty.failed_len(), 0, "scrub healed every fault");
    assert!(ar.verify_all().is_empty());
    println!("scrub restored {restored} blocks; all faults healed");

    // The identical flow over replication, for contrast: same archive
    // code, one line changed.
    let scheme: Arc<dyn RedundancyScheme> = Arc::new(Replication::new(3));
    let mut repl = Archive::with_scheme(scheme, 128, Arc::new(MemStore::new()));
    repl.put("paper.tex", &paper).expect("fresh name");
    let entry = repl.entry("paper.tex").expect("archived").clone();
    for k in (entry.first_block..entry.first_block + entry.block_count).step_by(5) {
        repl.store()
            .remove(aecodes::blocks::BlockId::Data(aecodes::blocks::NodeId(
                k + 1,
            )));
    }
    assert_eq!(repl.get("paper.tex").expect("copy fetch"), paper);
    println!(
        "\nsame archive over {}: degraded reads fetch surviving copies",
        repl.scheme().scheme_name()
    );
}
