//! The user-facing archive layer: file-in, file-out archival over an
//! entangled, distributed block store — with degraded reads, scrubbing,
//! and end-to-end verification.
//!
//! The archive is generic over both the redundancy scheme
//! (`Arc<dyn RedundancyScheme>`) and the backend (any `BlockRepo`); this
//! example runs the classic alpha-entanglement configuration over a
//! 30-location distributed store. See `rs_archive.rs` for the *same*
//! archive code over Reed-Solomon and a two-tier backend.
//!
//! ```sh
//! cargo run --example archive
//! ```

use aecodes::lattice::Config;
use aecodes::store::archive::Archive;
use aecodes::store::cluster::LocationId;
use aecodes::store::{DistributedStore, Placement};
use std::sync::Arc;

fn main() {
    // An archive over 30 storage locations, AE(3,2,5), 256-byte blocks.
    let store = Arc::new(DistributedStore::new(30, Placement::Random { seed: 77 }));
    let mut ar = Archive::new(
        Config::new(3, 2, 5).expect("valid parameters"),
        256,
        Arc::clone(&store),
    );

    // Archive a few "files".
    let report: Vec<u8> = (0..20_000u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 7) as u8)
        .collect();
    let logs: Vec<u8> = (0..5_000u32)
        .map(|i| (i.wrapping_mul(40503) >> 3) as u8)
        .collect();
    ar.put("report.pdf", &report).expect("fresh name");
    ar.put("server.log", &logs).expect("fresh name");
    ar.put("empty.flag", b"").expect("fresh name");
    println!(
        "archived {} files with {} ({} data blocks total)",
        ar.names().count(),
        ar.scheme().scheme_name(),
        ar.blocks_written()
    );
    for name in ["report.pdf", "server.log", "empty.flag"] {
        let e = ar.entry(name).expect("archived");
        println!(
            "  {name}: blocks [{}, {}), {} bytes, crc {:#010x}",
            e.first_block,
            e.first_block + e.block_count,
            e.byte_len,
            e.crc
        );
    }

    // A fifth of the locations go dark.
    store.with_cluster(|c| {
        for l in [2, 7, 13, 19, 25, 28] {
            c.fail(LocationId(l));
        }
    });
    println!("\n6 of 30 locations are down");

    // Reads still succeed: missing blocks are rebuilt on the fly from
    // surviving pp-tuples (degraded reads), and checksums are verified.
    assert_eq!(ar.get("report.pdf").expect("degraded read"), report);
    assert_eq!(ar.get("server.log").expect("degraded read"), logs);
    println!("degraded reads verified byte-identical (manifest CRC checked)");
    assert!(ar.verify_all().is_empty(), "every file still readable");

    // Locations come back empty (replaced hardware): scrub re-materializes
    // every missing block.
    let dead_blocks: Vec<_> = [2u32, 7, 13, 19, 25, 28]
        .iter()
        .flat_map(|&l| store.blocks_at(LocationId(l)))
        .collect();
    for id in &dead_blocks {
        store.remove(*id);
    }
    store.with_cluster(|c| c.restore_all());
    println!(
        "\nreplaced the 6 locations empty ({} blocks to rebuild)",
        dead_blocks.len()
    );
    let restored = ar.scrub();
    println!(
        "scrub restored {restored} blocks; verify_all: {:?}",
        ar.verify_all()
    );
    assert_eq!(restored as usize, dead_blocks.len());
    assert!(ar.verify_all().is_empty());
}
