//! Quickstart: entangle data through the scheme-agnostic API, lose
//! blocks, repair them with single XORs — and see exactly what a failed
//! repair was missing.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use aecodes::blocks::{Block, BlockId, NodeId};
use aecodes::core::{tamper, BlockMap, Code, RedundancyScheme};
use aecodes::lattice::Config;

fn main() {
    // AE(3,2,5): triple entanglement over 2 horizontal and 2×5 helical
    // strands — the paper's equivalent of its earlier 5-HEC code.
    let cfg = Config::new(3, 2, 5).expect("valid code parameters");
    let code = Code::new(cfg, 64);
    println!("code: {cfg}");
    println!("  rate                : {:.3}", cfg.code_rate());
    println!(
        "  storage overhead    : {}%",
        code.repair_cost().additional_storage_pct
    );
    println!("  strands             : {}", cfg.strand_count());
    println!(
        "  single-failure reads: {}",
        code.repair_cost().single_failure_reads
    );

    // Entangle one hundred 64-byte data blocks in one batch — the hot
    // path: data and parities stream straight into any BlockSink.
    let originals: Vec<Block> = (0..100u8)
        .map(|k| Block::from_vec((0..64).map(|b| k.wrapping_mul(7) ^ b).collect()))
        .collect();
    let store = BlockMap::new();
    let report = code
        .encode_batch(&originals, &store)
        .expect("uniform sizes");
    println!(
        "\nentangled {} data blocks -> {} stored blocks (batch, one call)",
        report.data_written(),
        store.len(),
    );

    // Lose three data blocks; each repairs with ONE XOR of two parities.
    for lost in [10u64, 42, 99] {
        let id = BlockId::Data(NodeId(lost));
        let original = store.remove(&id).expect("block was stored");
        let repaired = code
            .repair_block(&store, id, code.written())
            .expect("a pp-tuple survives");
        assert_eq!(repaired, original);
        println!("repaired d{lost} from one pp-tuple (2 reads, 1 XOR)");
        store.insert(id, repaired);
    }

    // Failed repairs are errors that name the missing tuple members.
    let err = code
        .repair_block(&BlockMap::new(), BlockId::Data(NodeId(42)), 100)
        .unwrap_err();
    println!("\nempty store: {err}");

    // The anti-tampering property: rewriting one old block undetectably
    // means recomputing every later parity on all three of its strands.
    let report = tamper::tamper_cost(&cfg, 10, code.written());
    println!(
        "\ntampering with d10 would require rewriting {} blocks:",
        report.total_blocks()
    );
    for (class, n) in &report.per_strand {
        println!("  {n:>3} parities on the {class} strand");
    }
}
