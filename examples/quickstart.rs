//! Quickstart: entangle data, lose blocks, repair them with single XORs.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use aecodes::blocks::{Block, BlockId, NodeId};
use aecodes::core::{tamper, BlockMap, Code};
use aecodes::lattice::Config;

fn main() {
    // AE(3,2,5): triple entanglement over 2 horizontal and 2×5 helical
    // strands — the paper's equivalent of its earlier 5-HEC code.
    let cfg = Config::new(3, 2, 5).expect("valid code parameters");
    let code = Code::new(cfg, 64);
    println!("code: {cfg}");
    println!("  rate                : {:.3}", cfg.code_rate());
    println!("  storage overhead    : {}%", cfg.storage_overhead_pct());
    println!("  strands             : {}", cfg.strand_count());
    println!("  single-failure reads: {}", Config::SINGLE_FAILURE_READS);

    // Entangle one hundred 64-byte data blocks.
    let mut store = BlockMap::new();
    let mut enc = code.entangler();
    let originals: Vec<Block> = (0..100u8)
        .map(|k| Block::from_vec((0..64).map(|b| k.wrapping_mul(7) ^ b).collect()))
        .collect();
    for blk in &originals {
        enc.entangle(blk.clone())
            .expect("block size matches")
            .insert_into(&mut store);
    }
    println!(
        "\nentangled {} data blocks -> {} stored blocks (frontier: {} parities in memory)",
        enc.written(),
        store.len(),
        enc.memory_footprint()
    );

    // Lose three data blocks; each repairs with ONE XOR of two parities.
    for lost in [10u64, 42, 99] {
        let id = BlockId::Data(NodeId(lost));
        let original = store.remove(&id).expect("block was stored");
        let repaired = code
            .repair_block(&store, id, enc.written())
            .expect("a pp-tuple survives");
        assert_eq!(repaired, original);
        println!("repaired d{lost} from one pp-tuple (2 reads, 1 XOR)");
        store.insert(id, repaired);
    }

    // The anti-tampering property: rewriting one old block undetectably
    // means recomputing every later parity on all three of its strands.
    let report = tamper::tamper_cost(&cfg, 10, enc.written());
    println!(
        "\ntampering with d10 would require rewriting {} blocks:",
        report.total_blocks()
    );
    for (class, n) in &report.per_strand {
        println!("  {n:>3} parities on the {class} strand");
    }
}
