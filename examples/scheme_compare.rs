//! One harness, three codes: drive alpha entanglement, Reed-Solomon and
//! replication through the same `RedundancyScheme` trait — byte plane and
//! availability plane — and reproduce the paper's core comparison.
//!
//! ```sh
//! cargo run --release --example scheme_compare
//! ```

use aecodes::baselines::{ReedSolomon, Replication};
use aecodes::blocks::Block;
use aecodes::core::{BlockMap, Code, RedundancyScheme};
use aecodes::lattice::Config;
use aecodes::sim::{SchemePlane, SimPlacement};

/// The 300%-overhead contenders of Table IV, all as one trait object type.
fn contenders() -> Vec<Box<dyn RedundancyScheme>> {
    vec![
        Box::new(Code::new(Config::new(3, 2, 5).unwrap(), 64)),
        Box::new(ReedSolomon::new(4, 12).unwrap()),
        Box::new(Replication::new(4)),
    ]
}

fn main() {
    // --- Byte plane: encode, erase, repair — same code for every scheme.
    println!("byte plane: encode 200 blocks, erase 5, round-based repair\n");
    for scheme in contenders() {
        let blocks: Vec<Block> = (0..200u8).map(|k| Block::from_vec(vec![k; 64])).collect();
        let store = BlockMap::new();
        scheme.encode_batch(&blocks, &store).expect("uniform sizes");
        scheme.seal(&store).expect("flush buffered redundancy");

        let victims: Vec<_> = [3u64, 57, 111, 160, 199]
            .iter()
            .map(|&i| aecodes::blocks::BlockId::Data(aecodes::blocks::NodeId(i)))
            .collect();
        let originals: Vec<Block> = victims.iter().map(|v| store.remove(v).unwrap()).collect();
        let summary = scheme.repair_missing(&store, &victims, 200);
        assert!(summary.fully_recovered());
        for (v, o) in victims.iter().zip(&originals) {
            assert_eq!(store.get(v).as_ref(), Some(o), "byte-identical repair");
        }
        println!(
            "  {:14} repaired {} blocks in {} round(s), {} blocks read",
            scheme.scheme_name(),
            summary.total_repaired(),
            summary.round_count(),
            summary.blocks_read,
        );
    }

    // --- Availability plane: the Fig 11 disaster sweep at reduced scale.
    println!("\navailability plane: 100k blocks, 100 locations, 10-50% disasters");
    println!(
        "{:14} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "data lost", "10%", "20%", "30%", "40%", "50%"
    );
    for scheme in contenders() {
        let name = scheme.scheme_name();
        let mut plane = SchemePlane::new(
            scheme,
            100_000,
            100,
            SimPlacement::Random { seed: 20180625 },
        );
        let mut row = format!("{name:14}");
        for pct in [1, 2, 3, 4, 5] {
            plane.heal_all();
            plane.inject_disaster(pct as f64 / 10.0, 42);
            row.push_str(&format!(" {:>8}", plane.repair_full().data_lost));
        }
        println!("{row}");
    }
    println!("\nAE(3,2,5), RS(4,12) and 4-way replication all pay 300% storage;");
    println!("AE repairs any single failure with 2 reads, RS needs 4, replication 1.");
}
