//! Compares the parallel worklist repair planner against the reference
//! sequential planner on byte-plane multi-failure disasters.
//!
//! For each code and disaster fraction the two planners run the identical
//! repair; the example asserts the outcomes match bit for bit and prints
//! wall-clock, round count, and loss, so the planner trade-off is visible
//! on whatever machine this runs on:
//!
//! ```text
//! cargo run --release --example repair_planner_compare
//! ```

use aecodes::api::RedundancyScheme;
use aecodes::blocks::{Block, BlockId};
use aecodes::core::{BlockMap, Code};
use aecodes::lattice::Config;
use std::time::Instant;

fn payload(n: u64, len: usize) -> Vec<Block> {
    (0..n)
        .map(|i| {
            Block::from_vec(
                (0..len)
                    .map(|k| ((i * 31 + k as u64 * 7) % 251) as u8)
                    .collect(),
            )
        })
        .collect()
}

/// Deterministic pseudo-random ~`pct`% sample of the universe.
fn scattered(universe: &[BlockId], pct: u64) -> Vec<BlockId> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    universe
        .iter()
        .copied()
        .filter(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % 100 < pct
        })
        .collect()
}

/// A correlated disaster: a contiguous `span_pct`% of the write order (a
/// lost site holding a sequential range) plus `scatter_pct`% scattered.
fn clustered(universe: &[BlockId], span_pct: u64, scatter_pct: u64) -> Vec<BlockId> {
    let span = universe.len() as u64 * span_pct / 100;
    let start = universe.len() as u64 / 4;
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    universe
        .iter()
        .copied()
        .enumerate()
        .filter(|&(k, _)| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((k as u64) >= start && (k as u64) < start + span) || (state >> 33) % 100 < scatter_pct
        })
        .map(|(_, id)| id)
        .collect()
}

fn main() {
    let n = 20_000u64;
    println!("byte-plane repair, {n} data blocks, 64 B each");
    println!(
        "{:<12} {:<18} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "code", "disaster", "serial ms", "parallel", "speedup", "rounds", "dead"
    );
    for (cfg, pattern, pct) in [
        (Config::single(), "scattered", 30u64),
        (Config::new(2, 2, 5).unwrap(), "scattered", 30),
        (Config::new(2, 2, 5).unwrap(), "scattered", 45),
        (Config::new(3, 2, 5).unwrap(), "scattered", 45),
        (Config::new(2, 2, 5).unwrap(), "clustered", 40),
        (Config::new(3, 2, 5).unwrap(), "clustered", 40),
    ] {
        let code = Code::new(cfg, 64);
        let full = BlockMap::new();
        code.encode_batch(&payload(n, 64), &full).expect("encode");
        let ids = code.block_ids(n);
        let victims = match pattern {
            "clustered" => clustered(&ids, pct, 10),
            _ => scattered(&ids, pct),
        };
        let damaged = full.clone();
        for v in &victims {
            damaged.remove(v);
        }

        let serial_store = damaged.clone();
        let t = Instant::now();
        let serial = code.repair_missing_serial(&serial_store, &victims, n);
        let serial_ms = t.elapsed().as_secs_f64() * 1e3;

        let parallel_store = damaged.clone();
        let t = Instant::now();
        let parallel = code.repair_missing(&parallel_store, &victims, n);
        let parallel_ms = t.elapsed().as_secs_f64() * 1e3;

        assert_eq!(parallel, serial, "planners must agree");
        println!(
            "{:<12} {:<14} {:>3}% {:>10.1} {:>10.1} {:>7.2}x {:>8} {:>8}",
            cfg.name(),
            pattern,
            pct,
            serial_ms,
            parallel_ms,
            serial_ms / parallel_ms,
            serial.round_count(),
            serial.unrecovered.len(),
        );
    }
}
