//! Reliability-frontier sweep: the scheme roster × failure-model grid,
//! one CSV row per cell plus a per-scheme frontier report.
//!
//! ```sh
//! cargo run --release --example frontier_sweep -- --smoke   # CI smoke grid, seconds
//! cargo run --release --example frontier_sweep              # full frontier grid
//! cargo run --release --example frontier_sweep -- --out target/sweep --seed 7
//! ```
//!
//! `--smoke` runs the pinned 13-scheme × 5-model × 1-seed grid CI diffs
//! against `tests/golden/frontier_smoke.csv`; the default full grid adds
//! intensities and a second seed and also writes the `BENCH_sweep.json`
//! frontier summary. `--seed N` replaces the seed axis with `[N]`
//! (exploration only — golden comparisons need the preset seeds).
//!
//! Outputs land in `--out` (default `target/sweep`): `frontier.csv`,
//! `frontier_report.txt`, and in full mode `BENCH_sweep.json`.

use aecodes::sweep::{bench_json, frontier_report, run_sweep, SweepConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out_dir = PathBuf::from("target/sweep");
    let mut seed_override = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => return usage("--out needs a directory"),
            },
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(seed) => seed_override = Some(seed),
                None => return usage("--seed needs an integer"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let mut config = if smoke {
        SweepConfig::smoke()
    } else {
        SweepConfig::full()
    };
    if let Some(seed) = seed_override {
        config.seeds = vec![seed];
    }

    eprintln!(
        "running {} grid: {} cells...",
        if smoke { "smoke" } else { "full" },
        config.cell_count()
    );
    let result = match run_sweep(&config) {
        Ok(result) => result,
        Err(err) => {
            eprintln!("invalid sweep config: {err}");
            return ExitCode::FAILURE;
        }
    };

    let report = frontier_report(&result);
    print!("{report}");

    if let Err(err) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {err}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let csv_path = out_dir.join("frontier.csv");
    let report_path = out_dir.join("frontier_report.txt");
    let mut written = vec![
        csv_path.display().to_string(),
        report_path.display().to_string(),
    ];
    let write = |path: &PathBuf, data: &str| std::fs::write(path, data);
    if let Err(err) = write(&csv_path, &result.to_csv()).and_then(|()| write(&report_path, &report))
    {
        eprintln!("cannot write outputs to {}: {err}", out_dir.display());
        return ExitCode::FAILURE;
    }
    if !smoke {
        let bench_path = out_dir.join("BENCH_sweep.json");
        if let Err(err) = write(&bench_path, &bench_json(&result)) {
            eprintln!("cannot write {}: {err}", bench_path.display());
            return ExitCode::FAILURE;
        }
        written.push(bench_path.display().to_string());
    }
    eprintln!("wrote {}", written.join(", "));
    ExitCode::SUCCESS
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("{problem}");
    eprintln!("usage: frontier_sweep [--smoke] [--out DIR] [--seed N]");
    ExitCode::FAILURE
}
