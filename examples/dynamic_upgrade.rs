//! Dynamic fault tolerance and puncturing (§I, §III):
//!
//! 1. Start cheap with AE(2,1,2), later raise to AE(3,1,2) *without
//!    re-encoding* — only the new strand class's parities are computed and
//!    stored; every existing block stays byte-identical.
//! 2. Puncture a fraction of parities to reclaim storage, and show single
//!    failures still repair.
//!
//! ```sh
//! cargo run --example dynamic_upgrade
//! ```

use aecodes::blocks::{Block, BlockId, NodeId, StrandClass};
use aecodes::core::puncture::PuncturePlan;
use aecodes::core::{upgrade, BlockMap, Code, Entangler};
use aecodes::lattice::Config;

fn main() {
    let old_cfg = Config::new(2, 1, 2).expect("valid");
    let new_cfg = Config::new(3, 1, 2).expect("valid");
    let block_size = 128;

    // Year one: double entanglement, 200% overhead.
    let data: Vec<Block> = (0..200u8)
        .map(|k| Block::from_vec(vec![k.wrapping_mul(13); block_size]))
        .collect();
    let store = BlockMap::new();
    let mut enc = Entangler::new(old_cfg, block_size);
    for d in &data {
        enc.entangle(d.clone()).unwrap().insert_into(&store);
    }
    println!(
        "year 1: {old_cfg} holds {} blocks ({}% overhead)",
        store.len(),
        old_cfg.storage_overhead_pct()
    );

    // Year five: reliability requirements grew. Add the left-handed class.
    let added = upgrade::upgrade_parities(&old_cfg, &new_cfg, block_size, data.clone())
        .expect("valid upgrade path");
    let added_count = added.len();
    for (e, p) in added {
        store.insert(BlockId::Parity(e), p);
    }
    println!(
        "year 5: upgraded to {new_cfg} by adding {added_count} LH parities; \
         no existing block was touched"
    );

    // The upgraded lattice survives losing a block plus BOTH its old-class
    // parities — fatal under AE(2), routine under AE(3).
    let code = Code::new(new_cfg, block_size);
    let victim = BlockId::Data(NodeId(100));
    let original = store.remove(&victim).unwrap();
    use aecodes::blocks::EdgeId;
    store.remove(&BlockId::Parity(EdgeId::new(
        StrandClass::Horizontal,
        NodeId(100),
    )));
    store.remove(&BlockId::Parity(EdgeId::new(
        StrandClass::RightHanded,
        NodeId(100),
    )));
    let repaired = code
        .repair_block(&store, victim, 200)
        .expect("the new LH strand saves it");
    assert_eq!(repaired, original);
    println!("survived d100 + H parity + RH parity loss via the new LH strand");

    // Puncturing: drop half the LH parities again to reclaim space.
    let plan = PuncturePlan::every_in_class(StrandClass::LeftHanded, 2);
    let before = store.len();
    store.retain(|id, _| match id {
        BlockId::Parity(e) => plan.is_stored(*e),
        _ => true,
    });
    println!(
        "\npunctured {} parities; effective overhead {:.0}% (plain AE(3) is 300%)",
        before - store.len(),
        plan.effective_overhead_pct(&new_cfg)
    );

    // Single failures still repair: surviving strands carry the load.
    let victim = BlockId::Data(NodeId(150));
    let original = store.remove(&victim).unwrap();
    let repaired = code
        .repair_block(&store, victim, 200)
        .expect("still repairable");
    assert_eq!(repaired, original);
    println!("single-failure repair still works on the punctured lattice");
}
