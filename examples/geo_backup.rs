//! Use case A (§IV.A): a geo-replicated cooperative backup.
//!
//! A user keeps files on their own machine and uploads only parities to a
//! community of storage nodes. When the local disk dies AND part of the
//! community is offline, the broker reconstructs everything from the
//! surviving parities — each data block from one pp-tuple.
//!
//! ```sh
//! cargo run --example geo_backup
//! ```

use aecodes::lattice::Config;
use aecodes::store::cluster::LocationId;
use aecodes::store::geo::GeoBackup;

fn main() {
    let cfg = Config::new(3, 2, 5).expect("valid code parameters");
    let geo = GeoBackup::new(cfg, 256, 40, 2024);
    println!("broker: {cfg}, 40 storage nodes, 256-byte blocks");

    // Back up two "files".
    let photos: Vec<u8> = (0..10_000u32)
        .map(|i| (i.wrapping_mul(2654435761) % 251) as u8)
        .collect();
    let mail: Vec<u8> = (0..4_000u32)
        .map(|i| (i.wrapping_mul(40503) % 241) as u8)
        .collect();
    let h_photos = geo.backup(&photos);
    let h_mail = geo.backup(&mail);
    println!(
        "backed up photos ({} blocks) and mail ({} blocks); parities live remotely",
        h_photos.block_count, h_mail.block_count
    );

    // Catastrophe: the laptop dies (all local blocks gone) while five
    // storage nodes are offline.
    for k in 0..h_photos.block_count {
        geo.lose_local(h_photos.first_node + k);
    }
    for k in 0..h_mail.block_count {
        geo.lose_local(h_mail.first_node + k);
    }
    geo.remote().with_cluster(|c| {
        for l in [3, 11, 19, 27, 35] {
            c.fail(LocationId(l));
        }
    });
    println!("\ndisaster: laptop lost, 5/40 storage nodes offline");

    // Round-based recovery, exactly the paper's Table III flow per block:
    // tuple ids -> choose p-block -> locate -> fetch -> XOR.
    for round in 1..=5 {
        let (r1, miss1) = geo.repair_local(h_photos);
        let (r2, miss2) = geo.repair_local(h_mail);
        println!(
            "round {round}: repaired {} data blocks ({} still missing)",
            r1 + r2,
            miss1.len() + miss2.len()
        );
        if miss1.is_empty() && miss2.is_empty() {
            break;
        }
        let regenerated = geo.repair_remote();
        println!("         regenerated {regenerated} parities onto live nodes");
    }

    assert_eq!(geo.read(h_photos).expect("photos recovered"), photos);
    assert_eq!(geo.read(h_mail).expect("mail recovered"), mail);
    println!("\nall files recovered byte-identical");

    // Maintenance: re-home the dead nodes' parities while they are down.
    let regenerated = geo.repair_remote();
    println!("regenerated {regenerated} remaining remote parities for future failures");
}
