//! Drive-failure and geo-node-failure scenarios through the one generic
//! availability plane.
//!
//! Since the §IV use-case stores became first-class schemes
//! (`EntangledChain`, `GeoLattice`), "any scenario = a scheme + a
//! placement": the same `SchemePlane` that drives the paper's §V.C
//! evaluation runs an entangled mirror array losing drives and a
//! cooperative backup losing storage nodes — zero per-block id state,
//! pure arithmetic, identical repair machinery.
//!
//! ```sh
//! cargo run --release --example drive_failure
//! ```

use aecodes::blocks::{Block, BlockId, NodeId};
use aecodes::lattice::Config;
use aecodes::sim::{Scheme, SchemePlane, SimPlacement};
use aecodes::store::array::{DriveId, EntangledArray, Layout};
use aecodes::store::{ChainMode, GeoBackup};

fn main() {
    // --- 1. Drive failures on the availability plane -------------------
    // An entangled mirror deployment: 100k blocks over 16 failure domains
    // (8 data drives + 8 parity drives worth), round-robin so chain
    // neighbours sit on distinct drives. A quarter of the drives die.
    println!("== entangled mirror chains through the generic plane ==");
    for mode in [ChainMode::Open, ChainMode::Closed] {
        let scheme = Scheme::Chain { mode };
        let mut plane = SchemePlane::new(scheme.build(0), 100_000, 16, SimPlacement::RoundRobin);
        assert!(plane.uses_dense_index());
        assert_eq!(
            plane.materialized_bytes(),
            0,
            "the plane holds no per-block id state"
        );
        let (md, mp) = plane.inject_disaster(0.25, 7);
        let out = plane.repair_full();
        println!(
            "{:<14} lost 4/16 drives: {md} data + {mp} parity missing -> \
             {} rounds, {} data lost, extremity-exposed blocks: {}",
            scheme.name(),
            out.round_count(),
            out.data_lost,
            scheme.build(0).repair_cost().extremity_exposed,
        );
    }

    // --- 2. The same failure with real bytes ---------------------------
    // The byte-plane array wraps the identical chain scheme: fail one
    // data drive and one parity drive, rebuild through the scheme's
    // generic round-based planner, verify byte for byte.
    let mut arr = EntangledArray::new(4, Layout::Striping, ChainMode::Closed, 512);
    let data: Vec<Block> = (0..200u32)
        .map(|k| {
            Block::from_vec(
                (0..512)
                    .map(|b| ((k as usize * 31 + b) % 256) as u8)
                    .collect(),
            )
        })
        .collect();
    for d in &data {
        arr.write(d.clone());
    }
    arr.seal();
    arr.fail_drive(DriveId(2));
    arr.fail_drive(DriveId(5));
    let unrecovered = arr.rebuild();
    assert!(unrecovered.is_empty(), "closed chain rebuilds two drives");
    for (k, d) in data.iter().enumerate() {
        assert_eq!(&arr.get(BlockId::Data(NodeId(k as u64 + 1))).unwrap(), d);
    }
    println!("\nbyte plane: lost drives d2+d5, rebuilt all 200 blocks byte-identically");

    // An open chain announces its weakness instead of failing silently.
    let mut open = EntangledArray::new(2, Layout::Striping, ChainMode::Open, 64);
    for d in data.iter().take(20) {
        open.write(Block::from_vec(d.as_slice()[..64].to_vec()));
    }
    open.seal();
    let warning = open.extremity_warning().expect("open chains warn");
    println!("open-chain warning: {warning}");

    // --- 3. Geo node failures ------------------------------------------
    // A user's namespaced lattice on the plane: storage nodes are the
    // failure domains, a third of them die.
    println!("\n== geo cooperative backup through the generic plane ==");
    let geo_scheme = Scheme::Geo {
        cfg: Config::new(3, 2, 5).expect("paper setting"),
        user: 3,
    };
    let mut plane = SchemePlane::new(
        geo_scheme.build(0),
        100_000,
        100,
        SimPlacement::Random { seed: 42 },
    );
    assert_eq!(plane.materialized_bytes(), 0);
    plane.inject_disaster(0.3, 11);
    let out = plane.repair_full();
    println!(
        "{} after a 30% node disaster: {} rounds, {} data lost",
        geo_scheme.name(),
        out.round_count(),
        out.data_lost
    );

    // And with real bytes: a broker loses storage nodes AND local data,
    // then repairs everything through the scheme.
    let geo = GeoBackup::new(Config::new(3, 2, 5).expect("paper setting"), 64, 20, 3);
    let file: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
    let handle = geo.backup(&file);
    geo.remote().with_cluster(|c| {
        for l in [2, 8, 14] {
            c.fail(aecodes::store::LocationId(l));
        }
    });
    for k in 0..handle.block_count {
        geo.lose_local(handle.first_node + k);
    }
    for _ in 0..10 {
        let (_, unrecovered) = geo.repair_local(handle);
        if unrecovered.is_empty() {
            break;
        }
        geo.repair_remote();
    }
    assert_eq!(geo.read(handle).unwrap(), file);
    println!("byte plane: 3/20 storage nodes + all local data lost, file restored intact");
}
