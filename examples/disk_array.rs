//! Use case B (§IV.B): entangled mirror disk arrays.
//!
//! An array with equal numbers of data and parity drives — mirroring's
//! space overhead — where parity drives hold an α = 1 entanglement chain
//! instead of copies. Demonstrates both layouts, a double drive failure
//! rebuild, and why closed chains beat open chains at the extremities.
//!
//! ```sh
//! cargo run --example disk_array
//! ```

use aecodes::blocks::{Block, BlockId, EdgeId, NodeId, StrandClass};
use aecodes::store::array::{ChainMode, DriveId, EntangledArray, Layout};

fn fill(mode: ChainMode, layout: Layout) -> (EntangledArray, Vec<Block>) {
    let mut arr = EntangledArray::new(4, layout, mode, 512);
    let data: Vec<Block> = (0..80u32)
        .map(|k| {
            Block::from_vec(
                (0..512)
                    .map(|b| ((k as usize * 31 + b) % 256) as u8)
                    .collect(),
            )
        })
        .collect();
    for d in &data {
        arr.write(d.clone());
    }
    arr.seal();
    (arr, data)
}

/// Removes the tail data block and its parity, then counts what a rebuild
/// cannot bring back.
fn tail_loss(mode: ChainMode) -> usize {
    let (mut arr, _) = fill(mode, Layout::Striping);
    let n = arr.written();
    arr.remove_block(BlockId::Data(NodeId(n)));
    arr.remove_block(BlockId::Parity(EdgeId::new(
        StrandClass::Horizontal,
        NodeId(n),
    )));
    arr.rebuild().len()
}

fn main() {
    // Striped, closed-chain array: 4 data drives + 4 parity drives.
    let (mut arr, data) = fill(ChainMode::Closed, Layout::Striping);
    println!(
        "entangled mirror: {} data drives + {} parity drives, 80 blocks, closed chain",
        arr.drives(),
        arr.drives()
    );

    // Lose one data drive AND one parity drive at once.
    arr.fail_drive(DriveId(2));
    arr.fail_drive(DriveId(5));
    println!("failed drives d2 (data) and d5 (parity)");
    let unrecovered = arr.rebuild();
    assert!(unrecovered.is_empty(), "rebuild must fully recover");
    for (k, d) in data.iter().enumerate() {
        assert_eq!(&arr.get(BlockId::Data(NodeId(k as u64 + 1))).unwrap(), d);
    }
    println!("rebuild complete: all 80 blocks verified byte-identical\n");

    // MAID-style full partition: sequential fills keep most drives idle.
    let (mut maid, _) = fill(
        ChainMode::Closed,
        Layout::FullPartition {
            blocks_per_drive: 20,
        },
    );
    println!(
        "full-partition (MAID) layout: block 1 on drive {:?}, block 21 on drive {:?}",
        maid.data_drive_of(1),
        maid.data_drive_of(21)
    );
    maid.fail_drive(DriveId(0));
    assert!(maid.rebuild().is_empty());
    println!("lost the first data drive entirely; chain rebuilt it\n");

    // Open vs closed chains at the extremity (the paper's motivation for
    // closed chains): losing the tail block plus its only parity is fatal
    // for an open chain, harmless for a closed one.
    let open_lost = tail_loss(ChainMode::Open);
    let closed_lost = tail_loss(ChainMode::Closed);
    println!(
        "tail loss (d80 + its parity): open chain loses {open_lost} blocks, closed chain loses {closed_lost}"
    );
    assert!(open_lost > 0 && closed_lost == 0);
    println!("closed chains remove the extremity weakness, as §IV.B.1 argues");
}
