//! Integration suite for the multi-tenant archive service.
//!
//! Three properties are pinned here:
//!
//! 1. **Parity** — one seeded workload, executed serially (direct replay
//!    and the in-line client) and through sharded worker pools of several
//!    widths, leaves byte-identical state in the shared backend.
//! 2. **Backpressure** — a full shard queue answers a typed
//!    [`ServiceError::Saturated`] immediately instead of blocking, and
//!    every accepted operation still completes.
//! 3. **Fairness** — a slow tenant (a wedged backend write, or
//!    fault-induced repair work during a scrub) cannot starve tenants on
//!    other shards.

#[cfg(not(feature = "serial-service"))]
use aecodes::api::{BlockSink, BlockSource, StoreError};
use aecodes::baselines::{ReedSolomon, Replication};
#[cfg(not(feature = "serial-service"))]
use aecodes::blocks::Block;
use aecodes::blocks::BlockId;
use aecodes::core::Code;
use aecodes::lattice::Config;
use aecodes::service::{
    ArchiveService, MetaConfig, OpMix, Phase, ServiceConfig, ServiceError, SharedBackend, TenantId,
    Workload, WorkloadConfig,
};
use aecodes::store::{FaultyStore, MemStore};
use std::collections::BTreeMap;
#[cfg(not(feature = "serial-service"))]
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
#[cfg(not(feature = "serial-service"))]
use std::sync::{Condvar, Mutex};
use std::time::Duration;
#[cfg(not(feature = "serial-service"))]
use std::time::Instant;

/// A mixed-scheme tenant roster over `backend`.
fn roster(backend: SharedBackend, config: ServiceConfig, tenants: u16) -> ArchiveService {
    let mut svc = ArchiveService::new(backend, config);
    for t in 0..tenants {
        match t % 3 {
            0 => svc.add_tenant(Arc::new(Code::new(Config::new(3, 2, 5).unwrap(), 64)), 64),
            1 => svc.add_tenant(Arc::new(ReedSolomon::new(4, 2).unwrap()), 64),
            _ => svc.add_tenant(Arc::new(Replication::new(3)), 64),
        };
    }
    svc
}

fn parity_workload() -> Workload {
    Workload::generate(
        0xD518,
        WorkloadConfig {
            tenants: 6,
            phases: vec![
                Phase {
                    ops: 48,
                    mix: OpMix::write_only(),
                    interarrival: Duration::ZERO,
                },
                Phase {
                    ops: 160,
                    mix: OpMix::read_heavy(),
                    interarrival: Duration::ZERO,
                },
            ],
            tenant_skew: Some(0.9),
            file_skew: Some(1.1),
            payload: (32, 700),
            scrub_tenant: None,
            seal_tail: true,
        },
    )
}

/// Full backend contents, bytes and all.
fn snapshot(mem: &MemStore) -> BTreeMap<BlockId, Vec<u8>> {
    let mut out = BTreeMap::new();
    for id in mem.ids() {
        out.insert(id, mem.get(id).unwrap().as_slice().to_vec());
    }
    out
}

/// Per-tenant manifest summary: (tenant, name, byte_len, crc) rows.
fn manifests(svc: &ArchiveService) -> Vec<(u16, String, usize, u32)> {
    svc.tenant_ids()
        .flat_map(|t| {
            svc.archive(t)
                .manifest()
                .map(move |(name, e)| (t.0, name.to_string(), e.byte_len, e.crc))
                .collect::<Vec<_>>()
        })
        .collect()
}

#[test]
fn sharded_runs_leave_byte_identical_state_to_serial_replay() {
    let w = parity_workload();

    // Reference: direct serial replay, no service threading at all.
    let ref_mem = Arc::new(MemStore::new());
    let mut reference = roster(
        Arc::clone(&ref_mem) as SharedBackend,
        ServiceConfig::serial(),
        6,
    );
    w.replay(&mut reference).expect("serial replay is clean");
    let want = snapshot(&ref_mem);
    let want_manifests = manifests(&reference);
    assert!(!want.is_empty());

    // The in-line client path and several pool widths must all converge
    // to the same bytes.
    let mut configs = vec![ServiceConfig::serial()];
    for shards in [1, 2, 4] {
        configs.push(ServiceConfig::with_shards(shards));
    }
    for config in configs {
        let mem = Arc::new(MemStore::new());
        let mut svc = roster(Arc::clone(&mem) as SharedBackend, config.clone(), 6);
        let (outcome, report) = svc.run(|client| w.drive(client));
        assert!(outcome.clean(), "{config:?}: {:?}", outcome.failures);
        assert_eq!(report.completed() as usize, w.ops.len());
        assert_eq!(
            snapshot(&mem),
            want,
            "backend diverged from serial replay under {config:?}"
        );
        assert_eq!(manifests(&svc), want_manifests);
        assert!(svc.verify_all().is_empty());
    }
}

#[test]
fn workload_generation_is_identical_under_any_build() {
    // The parity above compares executions; this pins the generated
    // schedule itself so serial-service builds drive the same ops.
    let a = parity_workload();
    let b = parity_workload();
    assert_eq!(a.ops.len(), b.ops.len());
    for (x, y) in a.ops.iter().zip(&b.ops) {
        assert_eq!(x.tenant, y.tenant);
        assert_eq!(x.op, y.op);
    }
}

/// A backend whose writes to a chosen tenant's namespace block until the
/// gate opens — a deterministic way to wedge exactly one shard's worker.
/// Only the sharded tests use it: a serial-service build runs ops in-line
/// on the driver thread, so wedging a write would deadlock the test.
#[cfg(not(feature = "serial-service"))]
struct GateStore {
    inner: MemStore,
    /// Tenant tag (high 16 bits) whose writes are gated.
    gated_tenant: u64,
    closed: Mutex<bool>,
    cv: Condvar,
    waiting: AtomicUsize,
}

#[cfg(not(feature = "serial-service"))]
fn tenant_bits(id: BlockId) -> u64 {
    use aecodes::blocks::{EdgeId, MetaId, NodeId, ReplicaId, ShardId};
    let raw = match id {
        BlockId::Data(NodeId(i)) => i,
        BlockId::Parity(EdgeId { left, .. }) => left.0,
        BlockId::Shard(ShardId { stripe, .. }) => stripe,
        BlockId::Replica(ReplicaId { node, .. }) => node.0,
        BlockId::Meta(MetaId(seq)) => seq,
    };
    raw >> 48
}

#[cfg(not(feature = "serial-service"))]
impl GateStore {
    /// Starts **open** so tenant-creation journal writes pass; tests
    /// close it once the roster is built.
    fn new(gated_tenant: u64) -> Self {
        GateStore {
            inner: MemStore::new(),
            gated_tenant,
            closed: Mutex::new(false),
            cv: Condvar::new(),
            waiting: AtomicUsize::new(0),
        }
    }

    fn close(&self) {
        *self.closed.lock().unwrap() = true;
    }

    fn open(&self) {
        *self.closed.lock().unwrap() = false;
        self.cv.notify_all();
    }

    /// Worker threads parked on the gate right now.
    fn waiting(&self) -> usize {
        self.waiting.load(Ordering::SeqCst)
    }

    fn wait_open(&self) {
        let mut closed = self.closed.lock().unwrap();
        while *closed {
            self.waiting.fetch_add(1, Ordering::SeqCst);
            closed = self.cv.wait(closed).unwrap();
            self.waiting.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

#[cfg(not(feature = "serial-service"))]
impl BlockSource for GateStore {
    fn fetch(&self, id: BlockId) -> Option<Block> {
        self.inner.fetch(id)
    }
    fn has(&self, id: BlockId) -> bool {
        self.inner.has(id)
    }
    fn read(&self, id: BlockId) -> Result<Block, StoreError> {
        self.inner.read(id)
    }
}

#[cfg(not(feature = "serial-service"))]
impl BlockSink for GateStore {
    fn store(&self, id: BlockId, block: Block) {
        if tenant_bits(id) == self.gated_tenant {
            self.wait_open();
        }
        self.inner.store(id, block);
    }
    fn remove(&self, id: BlockId) -> bool {
        BlockSink::remove(&self.inner, id)
    }
}

#[cfg(not(feature = "serial-service"))]
#[test]
fn full_queue_answers_saturated_without_blocking() {
    let gate = Arc::new(GateStore::new(0)); // wedge tenant 0's writes
    let mut svc = ArchiveService::new(
        Arc::clone(&gate) as SharedBackend,
        ServiceConfig {
            shards: Some(1),
            queue_depth: 2,
            inline: false,
            meta: MetaConfig::default(),
        },
    );
    let t0 = svc.add_tenant(Arc::new(Replication::new(2)), 64);
    gate.close();

    let ((), report) = svc.run(|client| {
        // The worker dequeues this put and wedges inside the backend
        // write; wait until it is provably parked on the gate.
        let wedged = client.put(t0, "wedge", &[1u8; 64]).unwrap();
        while gate.waiting() == 0 {
            std::thread::yield_now();
        }
        // Fill the whole queue behind it.
        let mut queued = Vec::new();
        for i in 0..2 {
            queued.push(client.put(t0, &format!("q{i}"), &[2u8; 64]).unwrap());
        }
        // The next submission must bounce, typed and immediate.
        let start = Instant::now();
        let err = client.put(t0, "overflow", &[3u8; 64]).unwrap_err();
        assert_eq!(
            err,
            ServiceError::Saturated {
                shard: 0,
                capacity: 2
            }
        );
        assert!(
            start.elapsed() < Duration::from_millis(100),
            "saturation must not block"
        );
        // Release the worker; everything accepted completes.
        gate.open();
        wedged.wait().unwrap();
        for t in queued {
            t.wait().unwrap();
        }
    });
    assert_eq!(report.saturated, 1);
    assert_eq!(report.completed(), 3);
    assert!(report.queue_highwater[0] >= 2);
    assert!(svc.verify_all().is_empty());
}

#[cfg(not(feature = "serial-service"))]
#[test]
fn wedged_shard_does_not_starve_other_shards() {
    let gate = Arc::new(GateStore::new(0)); // only tenant 0 wedges
    let mut svc = ArchiveService::new(
        Arc::clone(&gate) as SharedBackend,
        ServiceConfig {
            shards: Some(2),
            queue_depth: 8,
            inline: false,
            meta: MetaConfig::default(),
        },
    );
    let t0 = svc.add_tenant(Arc::new(Replication::new(2)), 64); // shard 0
    let t1 = svc.add_tenant(Arc::new(Replication::new(2)), 64); // shard 1
    gate.close();

    svc.run(|client| {
        let wedged = client.put(t0, "wedge", &[1u8; 64]).unwrap();
        while gate.waiting() == 0 {
            std::thread::yield_now();
        }
        // Shard 1 keeps serving while shard 0 is stuck mid-write.
        for i in 0..10 {
            let name = format!("f{i}");
            let put = client.put(t1, &name, &[i as u8; 100]).unwrap();
            match put.wait_timeout(Duration::from_secs(10)) {
                Ok(res) => {
                    res.unwrap();
                }
                Err(_) => panic!("shard 1 starved by shard 0's wedge"),
            }
            let bytes = client
                .get(t1, &name)
                .unwrap()
                .wait_timeout(Duration::from_secs(10))
                .unwrap_or_else(|_| panic!("shard 1 read starved"))
                .unwrap();
            assert_eq!(bytes, vec![i as u8; 100]);
        }
        assert_eq!(gate.waiting(), 1, "shard 0 is still wedged");
        gate.open();
        wedged.wait().unwrap();
    });
    assert!(svc.verify_all().is_empty());
}

#[cfg(not(feature = "serial-service"))]
#[test]
fn repair_heavy_tenant_does_not_starve_other_shards() {
    // The "slow tenant" here is realistic service work, not a test gate:
    // tenant 0 scrubs an archive with many fault-injected losses (each a
    // real repair) while tenant 1's traffic must keep flowing on its own
    // shard.
    let faulty = Arc::new(FaultyStore::new(Arc::new(MemStore::new())));
    let mut svc = ArchiveService::new(
        Arc::clone(&faulty) as SharedBackend,
        ServiceConfig {
            shards: Some(2),
            queue_depth: 64,
            inline: false,
            meta: MetaConfig::default(),
        },
    );
    let t0 = svc.add_tenant(Arc::new(Code::new(Config::new(3, 2, 5).unwrap(), 64)), 64);
    let t1 = svc.add_tenant(Arc::new(Code::new(Config::new(3, 2, 5).unwrap(), 64)), 64);

    // Build tenant 0 a sizeable archive, then blow away a third of it.
    svc.run(|client| {
        let mut tickets = Vec::new();
        for i in 0..40 {
            tickets.push(client.put(t0, &format!("big{i}"), &[i as u8; 640]).unwrap());
        }
        for t in tickets {
            t.wait().unwrap();
        }
    });
    let view = Arc::clone(svc.archive(t0).store());
    let victims: Vec<BlockId> = svc
        .archive(t0)
        .stored_ids()
        .iter()
        .enumerate()
        .filter(|(k, _)| k % 3 == 0)
        .map(|(_, id)| view.global(*id))
        .collect();
    assert!(victims.len() > 100);
    faulty.fail_all(victims);

    svc.run(|client| {
        let scrub = client.scrub(t0).unwrap();
        // While the scrub repairs a hundred-plus blocks, tenant 1's ops
        // complete on their own shard.
        for i in 0..10 {
            let name = format!("f{i}");
            client
                .put(t1, &name, &[7u8; 128])
                .unwrap()
                .wait_timeout(Duration::from_secs(10))
                .unwrap_or_else(|_| panic!("shard 1 starved by tenant 0's scrub"))
                .unwrap();
        }
        let repaired = scrub.wait().unwrap();
        assert!(repaired > 100, "the scrub really was repair-heavy");
    });
    assert_eq!(faulty.failed_len(), 0, "scrub healed every fault");
    assert!(svc.verify_all().is_empty());
}

#[test]
fn saturated_error_is_typed_and_printable() {
    let e = ServiceError::Saturated {
        shard: 1,
        capacity: 64,
    };
    assert!(e.to_string().contains("full"));
    assert!(matches!(e, ServiceError::Saturated { capacity: 64, .. }));
}

#[test]
fn faults_during_traffic_are_healed_and_state_matches_serial() {
    // Phased drive with fault injection between phases, then parity
    // against a fault-free serial replay: scrub repair re-creates the
    // exact bytes, so the final inner stores agree block for block.
    let cfg = WorkloadConfig {
        tenants: 4,
        phases: vec![
            Phase {
                ops: 40,
                mix: OpMix::write_only(),
                interarrival: Duration::ZERO,
            },
            Phase {
                ops: 80,
                mix: OpMix {
                    put: 20,
                    get: 70,
                    scrub: 10,
                },
                interarrival: Duration::ZERO,
            },
        ],
        tenant_skew: None,
        file_skew: Some(0.8),
        payload: (64, 400),
        scrub_tenant: None,
        seal_tail: false,
    };
    let phases = Workload::generate_phased(0xFA17, cfg.clone());

    let faulty = Arc::new(FaultyStore::new(Arc::new(MemStore::new())));
    let mut svc = roster(
        Arc::clone(&faulty) as SharedBackend,
        ServiceConfig::with_shards(2),
        4,
    );
    let (o1, _) = svc.run(|client| phases[0].drive(client));
    assert!(o1.clean(), "{:?}", o1.failures);

    // Lose every fourth block of every tenant, then run serving traffic;
    // degraded gets may fail or succeed depending on timing, but scrubs
    // repair, and the inner store (which never lost the bytes' ground
    // truth... it did: FaultyStore blackholes reads, writes go through)
    // converges back to full health after a final scrub sweep.
    for t in svc.tenant_ids().collect::<Vec<_>>() {
        let view = Arc::clone(svc.archive(t).store());
        let victims: Vec<BlockId> = svc
            .archive(t)
            .stored_ids()
            .iter()
            .enumerate()
            .filter(|(k, _)| k % 4 == 0)
            .map(|(_, id)| view.global(*id))
            .collect();
        faulty.fail_all(victims);
    }
    let before = faulty.failed_len();
    assert!(before > 0);
    let (o2, _) = svc.run(|client| phases[1].drive(client));
    // Serving traffic may or may not hit the faulted blocks; whatever it
    // did, a full scrub sweep afterwards must heal everything.
    let (scrubbed, _) = svc.run(|client| {
        let tickets: Vec<_> = (0..4).map(|t| client.scrub(TenantId(t)).unwrap()).collect();
        tickets.into_iter().map(|t| t.wait().unwrap()).sum::<u64>()
    });
    let _ = o2; // degraded-phase outcome is timing-dependent by design
    let _ = scrubbed; // ditto: in-phase scrubs may have healed everything already
    assert_eq!(faulty.failed_len(), 0, "scrubs healed all {before} faults");
    assert!(svc.verify_all().is_empty());

    // Parity with a never-faulted serial execution of the same seed.
    let ref_mem = Arc::new(MemStore::new());
    let mut reference = roster(
        Arc::clone(&ref_mem) as SharedBackend,
        ServiceConfig::serial(),
        4,
    );
    for phase in &phases {
        phase.replay(&mut reference).expect("clean replay");
    }
    assert_eq!(snapshot(faulty.inner()), snapshot(&ref_mem));
}
