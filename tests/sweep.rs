//! The sweep harness's CI contract: byte-stable CSV, typed rejection of
//! invalid grids, the conservation law, and the checked-in golden file.

use aecodes::lattice::Config;
use aecodes::sweep::{run_sweep, FailureSpec, Scheme, SweepConfig, SweepError, CSV_HEADER};
use proptest::prelude::*;

/// A small deterministic grid used by the non-golden tests: two schemes,
/// three failure-model families, one seed — fast even in debug builds.
fn small() -> SweepConfig {
    SweepConfig {
        data_blocks: 800,
        locations: 40,
        placement_seed: 3,
        schemes: vec![
            Scheme::Ae(Config::new(3, 2, 5).unwrap()),
            Scheme::Rs { k: 8, m: 2 },
        ],
        failures: vec![
            FailureSpec::Iid { fraction: 0.2 },
            FailureSpec::BitRot { fraction: 0.03 },
            FailureSpec::ChurnCapped {
                epochs: 2,
                fraction: 0.1,
                bandwidth_cap: 200,
            },
        ],
        seeds: vec![11],
    }
}

/// The same `(seed, config)` produces the same CSV bytes, run to run in
/// the same process — the in-process half of the cross-leg golden
/// comparison CI performs.
#[test]
fn same_seed_and_config_means_identical_csv_bytes() {
    let cfg = small();
    let a = run_sweep(&cfg).unwrap().to_csv();
    let b = run_sweep(&cfg).unwrap().to_csv();
    assert_eq!(a, b);
    assert!(a.starts_with(CSV_HEADER));
    assert_eq!(a.lines().count(), cfg.cell_count() + 1);
}

/// Invalid grids are refused with typed errors before any simulation.
#[test]
fn invalid_grids_rejected_with_typed_errors() {
    let mut cfg = small();
    cfg.failures.clear();
    assert_eq!(
        run_sweep(&cfg),
        Err(SweepError::EmptyAxis { axis: "failures" })
    );

    let mut cfg = small();
    cfg.schemes.clear();
    assert_eq!(
        run_sweep(&cfg),
        Err(SweepError::EmptyAxis { axis: "schemes" })
    );

    let mut cfg = small();
    cfg.failures.push(FailureSpec::ChurnCapped {
        epochs: 1,
        fraction: 0.1,
        bandwidth_cap: 0,
    });
    match run_sweep(&cfg) {
        Err(SweepError::ZeroBandwidthCap { failure }) => {
            assert_eq!(failure, "churn(1,0.10,cap0)")
        }
        other => panic!("expected ZeroBandwidthCap, got {other:?}"),
    }
}

/// The pinned smoke grid reproduces the checked-in golden CSV byte for
/// byte (the same comparison the CI `sweeps` job makes against the
/// example's file output, on both the parallel and serial-repair
/// planners).
#[test]
fn smoke_grid_matches_the_golden_csv() {
    let golden = include_str!("golden/frontier_smoke.csv");
    let csv = run_sweep(&SweepConfig::smoke()).unwrap().to_csv();
    assert!(
        csv == golden,
        "smoke sweep diverged from tests/golden/frontier_smoke.csv — if the \
         change is intentional, regenerate with `cargo run --release \
         --example frontier_sweep -- --smoke` and copy frontier.csv over"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation law over random small grids: every cell's failed
    /// blocks are exactly repaired + still lost, with the lost split
    /// summing to the irrecoverable count.
    #[test]
    fn conservation_law_holds_over_random_grids(
        data_blocks in (1u64..=20).prop_map(|n| n * 40),
        locations in 10u32..=50,
        placement_seed: u64,
        seed: u64,
        scheme_pick in 0usize..4,
        fraction_pct in 0u32..=40,
        epochs in 1u32..=3,
        cap in 1u64..=500,
    ) {
        let scheme = [
            Scheme::Ae(Config::new(3, 2, 5).unwrap()),
            Scheme::Rs { k: 10, m: 4 },
            Scheme::Replication { n: 3 },
            Scheme::Ae(Config::new(2, 2, 5).unwrap()),
        ][scheme_pick];
        let fraction = fraction_pct as f64 / 100.0;
        let cfg = SweepConfig {
            data_blocks,
            locations,
            placement_seed,
            schemes: vec![scheme],
            failures: vec![
                FailureSpec::Iid { fraction },
                FailureSpec::CorrelatedGroups { groups: locations / 2, fraction },
                FailureSpec::RollingUpgrade { waves: 4.min(locations) },
                FailureSpec::BitRot { fraction },
                FailureSpec::ChurnCapped { epochs, fraction, bandwidth_cap: cap },
            ],
            seeds: vec![seed],
        };
        for cell in &run_sweep(&cfg).unwrap().cells {
            prop_assert_eq!(
                cell.failed_data + cell.failed_redundancy,
                cell.repaired + cell.lost_data + cell.lost_redundancy,
                "{} under {}", cell.scheme, cell.failure
            );
            prop_assert_eq!(cell.irrecoverable, cell.lost_data + cell.lost_redundancy);
            prop_assert_eq!(cell.repaired, cell.blocks_written);
            // Reading is never cheaper than one block per repair.
            prop_assert!(cell.blocks_read >= cell.repaired);
            prop_assert!(cell.read_cost_p99 >= cell.read_cost_p50);
        }
    }
}
