//! End-to-end integration: entangle real bytes into a distributed store,
//! lose locations, repair everything, verify byte identity.

use aecodes::blocks::{Block, BlockId, NodeId};
use aecodes::core::{BlockMap, Code, RedundancyScheme};
use aecodes::lattice::Config;
use aecodes::store::cluster::LocationId;
use aecodes::store::{DistributedStore, Placement};

const BLOCK: usize = 256;

fn data_block(k: u64) -> Block {
    Block::from_vec(
        (0..BLOCK)
            .map(|b| ((k as usize * 131 + b * 17 + 3) % 256) as u8)
            .collect(),
    )
}

/// Entangles `n` blocks into a distributed store over `locations` nodes,
/// through the batch-first scheme API.
fn build(cfg: Config, n: u64, locations: u32) -> (Code, DistributedStore) {
    let code = Code::new(cfg, BLOCK);
    let store = DistributedStore::new(locations, Placement::Random { seed: 99 });
    let blocks: Vec<Block> = (0..n).map(data_block).collect();
    let report = code
        .encode_batch(&blocks, &store)
        .expect("uniform block sizes");
    assert_eq!(report.data_written(), n);
    (code, store)
}

/// Pulls every reachable block into an in-memory map (what a repair
/// coordinator can see during the outage).
fn reachable(store: &DistributedStore, cfg: &Config, n: u64) -> BlockMap {
    let map = BlockMap::new();
    for i in 1..=n {
        let id = BlockId::Data(NodeId(i));
        if let Ok(b) = store.get(id) {
            map.insert(id, b);
        }
        for &class in cfg.classes() {
            let id = BlockId::Parity(aecodes::blocks::EdgeId::new(class, NodeId(i)));
            if let Ok(b) = store.get(id) {
                map.insert(id, b);
            }
        }
    }
    map
}

#[test]
fn disaster_then_full_recovery_byte_identical() {
    let cfg = Config::new(3, 2, 5).unwrap();
    let n = 2_000;
    let (code, store) = build(cfg, n, 50);

    // Fail 15 of 50 locations.
    store.with_cluster(|c| {
        for l in (0..50).step_by(3).take(15) {
            c.fail(LocationId(l));
        }
    });

    // Coordinator view: only reachable blocks.
    let view = reachable(&store, &cfg, n);
    let missing: Vec<BlockId> = (1..=n)
        .flat_map(|i| {
            let mut ids = vec![BlockId::Data(NodeId(i))];
            for &class in cfg.classes() {
                ids.push(BlockId::Parity(aecodes::blocks::EdgeId::new(
                    class,
                    NodeId(i),
                )));
            }
            ids
        })
        .filter(|id| !view.contains_key(id))
        .collect();
    assert!(!missing.is_empty(), "the disaster must hit something");

    let report = code.repair_engine(n).repair_all(&view, missing);
    assert!(
        report.fully_recovered(),
        "unrecovered after 30% location loss: {:?}",
        report.unrecovered.len()
    );

    // Every data block byte-identical to the original.
    for k in 0..n {
        let id = BlockId::Data(NodeId(k + 1));
        assert_eq!(view.get(&id).unwrap(), data_block(k), "d{}", k + 1);
    }

    // Re-home repaired blocks onto live nodes so the system is healthy.
    for (id, block) in view.entries() {
        if !store.contains(id) {
            assert!(store.put_rehomed(id, block).is_some());
        }
    }
    store.with_cluster(|c| c.restore_all());
    for k in 0..n {
        let id = BlockId::Data(NodeId(k + 1));
        assert_eq!(store.get(id).unwrap(), data_block(k));
    }
}

#[test]
fn weaker_codes_lose_data_in_the_same_disaster() {
    // The same 30% outage that AE(3,2,5) survives above defeats AE(1) on
    // some blocks — the α ordering made concrete on real bytes.
    let cfg = Config::single();
    let n = 2_000;
    let (code, store) = build(cfg, n, 50);
    store.with_cluster(|c| {
        for l in (0..50).step_by(3).take(15) {
            c.fail(LocationId(l));
        }
    });
    let view = reachable(&store, &cfg, n);
    let missing: Vec<BlockId> = (1..=n)
        .map(|i| BlockId::Data(NodeId(i)))
        .filter(|id| !view.contains_key(id))
        .collect();
    let report = code.repair_engine(n).repair_all(&view, missing);
    assert!(
        !report.fully_recovered(),
        "a single chain should not survive a 30% location outage unscathed"
    );
}

#[test]
fn checksums_catch_corrupted_blocks_in_store() {
    use aecodes::store::{MemStore, StoreError};
    let store = MemStore::new();
    let id = BlockId::Data(NodeId(1));
    // Forge a block whose checksum does not match its contents by abusing
    // serde-free construction: build valid, then store a *different* valid
    // block under the same id and verify reads still pass (sanity), since
    // corruption-in-flight requires byte tampering below the Block API.
    store.put(id, Block::from_vec(vec![1, 2, 3]));
    assert!(store.get(id).is_ok());
    assert!(matches!(
        store.get(BlockId::Data(NodeId(2))),
        Err(StoreError::NotFound(_))
    ));
}
