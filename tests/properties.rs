//! Property-based tests on the core invariants.

use aecodes::baselines::ReedSolomon;
use aecodes::blocks::{Block, BlockId, EdgeId, NodeId};
use aecodes::core::{BlockMap, Code};
use aecodes::gf::Gf256;
use aecodes::lattice::{me, Config, LatticeBlock, MeSearch};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// The paper's code settings used across the random tests.
fn any_config() -> impl Strategy<Value = Config> {
    prop_oneof![
        Just(Config::single()),
        Just(Config::new(2, 1, 2).unwrap()),
        Just(Config::new(2, 2, 5).unwrap()),
        Just(Config::new(3, 2, 5).unwrap()),
        Just(Config::new(3, 3, 3).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GF(2^8) field axioms on random triples.
    #[test]
    fn gf256_field_axioms(a: u8, b: u8, c: u8) {
        let (x, y, z) = (Gf256(a), Gf256(b), Gf256(c));
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!(x * y, y * x);
        prop_assert_eq!((x + y) + z, x + (y + z));
        prop_assert_eq!((x * y) * z, x * (y * z));
        prop_assert_eq!(x * (y + z), x * y + x * z);
        prop_assert_eq!(x + x, Gf256::ZERO);
        if !y.is_zero() {
            prop_assert_eq!((x * y) / y, x);
            prop_assert_eq!(y * y.inv(), Gf256::ONE);
        }
    }

    /// XOR entanglement identity: every parity equals its data block XOR
    /// the previous parity on the strand, for random data.
    #[test]
    fn encoder_identity_holds(cfg in any_config(), seed: u64) {
        let n = 120u64;
        let code = Code::new(cfg, 32);
        let store = BlockMap::new();
        let mut enc = code.entangler();
        let mut state = seed;
        for _ in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let bytes: Vec<u8> = (0..32).map(|k| (state >> (k % 8)) as u8).collect();
            enc.entangle(Block::from_vec(bytes)).unwrap().insert_into(&store);
        }
        for i in 1..=n {
            let d = store.get(&BlockId::Data(NodeId(i))).unwrap();
            for &class in cfg.classes() {
                let out = store.get(&BlockId::Parity(EdgeId::new(class, NodeId(i)))).unwrap();
                let h = aecodes::lattice::rules::input_source(&cfg, class, i as i64);
                let expected = if h >= 1 {
                    let input = store
                        .get(&BlockId::Parity(EdgeId::new(class, NodeId(h as u64))))
                        .unwrap();
                    d.xor(&input).unwrap()
                } else {
                    d.clone()
                };
                prop_assert_eq!(out, expected);
            }
        }
    }

    /// Any erasure strictly smaller than |ME(2)| is fully recoverable —
    /// the defining guarantee of the minimal-erasure analysis.
    #[test]
    fn erasures_below_me2_always_recover(
        cfg in prop_oneof![
            Just(Config::new(2, 1, 1).unwrap()),
            Just(Config::new(2, 2, 2).unwrap()),
            Just(Config::new(3, 1, 1).unwrap()),
            Just(Config::new(3, 2, 2).unwrap()),
        ],
        picks in proptest::collection::vec((0u8..4, 0i64..60), 1..8),
    ) {
        let me2 = match (cfg.alpha(), cfg.s()) {
            (2, 1) => 4usize, // Fig 7 A
            (2, 2) => 6,      // Fig 8 at p = s = 2
            (3, 1) => 5,      // Fig 7 B
            (3, 2) => 8,      // Fig 8 at p = s = 2
            _ => unreachable!("strategy covers exactly four configs"),
        };
        let base = 10_000i64;
        let mut erased = BTreeSet::new();
        for (kind, off) in picks {
            let b = match kind % (1 + cfg.alpha()) {
                0 => LatticeBlock::Node(base + off),
                k => LatticeBlock::Edge(cfg.classes()[(k - 1) as usize], base + off),
            };
            erased.insert(b);
            if erased.len() == me2 - 1 {
                break;
            }
        }
        let rest = me::decode_fixpoint(&cfg, &erased);
        prop_assert!(
            rest.is_empty(),
            "{} erasure of {} blocks stuck: {:?}",
            cfg, erased.len(), rest
        );
    }

    /// Reed-Solomon tolerates any erasure pattern of at most m shards and
    /// reconstructs byte-identically.
    #[test]
    fn rs_tolerates_any_m_erasures(
        k in 2usize..9,
        m in 1usize..5,
        seed: u64,
        erase_seed: u64,
    ) {
        let rs = ReedSolomon::new(k, m).unwrap();
        let mut state = seed;
        let data: Vec<Vec<u8>> = (0..k).map(|_| {
            (0..40).map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            }).collect()
        }).collect();
        let parity = rs.encode(&data).unwrap();
        let full: Vec<Vec<u8>> = data.iter().chain(&parity).cloned().collect();
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        // Erase exactly m pseudo-random positions.
        let mut state = erase_seed;
        let mut erased = std::collections::HashSet::new();
        while erased.len() < m {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            erased.insert((state >> 33) as usize % (k + m));
        }
        for &e in &erased {
            shards[e] = None;
        }
        rs.reconstruct(&mut shards).unwrap();
        for (i, s) in shards.iter().enumerate() {
            prop_assert_eq!(s.as_ref().unwrap(), &full[i]);
        }
    }

    /// Byte-plane repair and lattice-plane fixpoint agree on what is
    /// recoverable, for random interior erasures.
    #[test]
    fn byte_plane_matches_lattice_plane(
        cfg in prop_oneof![
            Just(Config::new(2, 1, 1).unwrap()),
            Just(Config::new(2, 2, 3).unwrap()),
            Just(Config::new(3, 2, 5).unwrap()),
        ],
        picks in proptest::collection::vec((0u8..4, 0i64..40), 1..14),
    ) {
        let n = 400u64;
        let base = 150i64; // interior: far from both head and tail
        let code = Code::new(cfg, 16);
        let store = BlockMap::new();
        let mut enc = code.entangler();
        for k in 0..n {
            enc.entangle(Block::from_vec(vec![(k % 255) as u8; 16])).unwrap()
                .insert_into(&store);
        }
        // Build the erasure on both planes.
        let mut lattice_erased = BTreeSet::new();
        let mut ids = Vec::new();
        for (kind, off) in picks {
            let pos = base + off;
            let (lb, id) = match kind % (1 + cfg.alpha()) {
                0 => (LatticeBlock::Node(pos), BlockId::Data(NodeId(pos as u64))),
                k => {
                    let class = cfg.classes()[(k - 1) as usize];
                    (
                        LatticeBlock::Edge(class, pos),
                        BlockId::Parity(EdgeId::new(class, NodeId(pos as u64))),
                    )
                }
            };
            if lattice_erased.insert(lb) {
                ids.push(id);
                store.remove(&id);
            }
        }
        let report = code.repair_engine(n).repair_all(&store, ids);
        let lattice_rest = me::decode_fixpoint(&cfg, &lattice_erased);
        let byte_rest: BTreeSet<LatticeBlock> = report
            .unrecovered
            .iter()
            .map(|&id| aecodes::core::to_lattice(id))
            .collect();
        prop_assert_eq!(byte_rest, lattice_rest);
    }
}

/// The ME search finds patterns that the decoder indeed cannot repair and
/// that are irreducible (non-random sanity anchor for the suite above).
#[test]
fn me_patterns_are_sharp() {
    for cfg in [
        Config::new(2, 1, 1).unwrap(),
        Config::new(2, 2, 2).unwrap(),
        Config::new(3, 1, 2).unwrap(),
    ] {
        let pat = MeSearch::new(cfg).min_erasure(2).expect("pattern exists");
        assert!(me::is_dead(&cfg, &pat.blocks), "{cfg}");
        assert!(me::is_irreducible(&cfg, &pat.blocks), "{cfg}");
        // One block fewer is always recoverable.
        for b in &pat.blocks {
            let mut smaller = pat.blocks.clone();
            smaller.remove(b);
            assert!(
                me::decode_fixpoint(&cfg, &smaller).len() < smaller.len(),
                "{cfg}: removing {b:?} must unlock something"
            );
        }
    }
}
