//! Crash-recovery matrix: every roster scheme from
//! `sim::Scheme::extended_lineup()` drives the archive through
//! **crash → `Archive::open` → repair → `get`** over the in-memory,
//! tiered and fault-injecting backends, at every possible cut point —
//! and the result must be **block-for-block identical** to an
//! uninterrupted run: same manifest, same stored-id log, same backend
//! bytes. Proptests pin the journal's failure modes: a torn final record
//! is truncated and reported (never stale data), a damaged mid-journal
//! record is a typed error naming the record (never a panic).

use aecodes::api::{BlockRepo, BlockSink, BlockSource, RedundancyScheme};
use aecodes::blocks::{Block, BlockId};
use aecodes::sim::Scheme;
use aecodes::store::archive::{Archive, ArchiveError, RecoveryError};
use aecodes::store::meta::meta_id;
use aecodes::store::{FaultyStore, MemStore, TieredStore};
use proptest::prelude::*;
use std::sync::Arc;

const BLOCK: usize = 32;

/// A few files of awkward sizes (empty, sub-block, exact multiple, large).
fn files() -> Vec<(&'static str, Vec<u8>)> {
    let content = |len: usize, seed: u64| -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect()
    };
    vec![
        ("empty.flag", Vec::new()),
        ("tiny.txt", content(11, 3)),
        ("exact.bin", content(BLOCK * 4, 5)),
        ("report.pdf", content(2_000, 7)),
        ("trace.log", content(700, 9)),
    ]
}

fn build(s: &Scheme) -> Arc<dyn RedundancyScheme> {
    Arc::from(s.build(BLOCK))
}

/// The uninterrupted reference: every file put through one process, then
/// sealed.
fn uninterrupted(s: &Scheme) -> (Archive<MemStore>, Arc<MemStore>) {
    let store = Arc::new(MemStore::new());
    let mut ar = Archive::with_scheme(build(s), BLOCK, Arc::clone(&store));
    for (name, contents) in files() {
        ar.put(name, &contents).unwrap();
    }
    ar.seal().unwrap();
    (ar, store)
}

/// Simulated crash: put the first `cut` files, drop the archive *and* its
/// scheme (all in-memory state dies), reopen from the backend alone, put
/// the rest, seal.
fn crash_and_resume<B: BlockRepo + ?Sized>(s: &Scheme, store: &Arc<B>, cut: usize) -> Archive<B> {
    {
        let mut ar = Archive::with_scheme(build(s), BLOCK, Arc::clone(store));
        for (name, contents) in files().iter().take(cut) {
            ar.put(name, contents).unwrap();
        }
    } // crash
    let mut ar = Archive::open(build(s), Arc::clone(store)).expect("journal replays");
    assert_eq!(ar.torn_tail(), None, "{s}: clean crash has no torn record");
    for (name, contents) in files().iter().skip(cut) {
        ar.put(name, contents).unwrap();
    }
    ar.seal().unwrap();
    ar
}

/// Asserts the crashed-and-resumed archive is indistinguishable from the
/// uninterrupted one: manifest, stored-id log, and every stored block.
fn assert_block_identical<B: BlockRepo + ?Sized>(
    s: &Scheme,
    resumed: &Archive<B>,
    store: &Arc<B>,
    reference: &Archive<MemStore>,
    ref_store: &Arc<MemStore>,
) {
    let name = s.name();
    assert_eq!(
        resumed.names().collect::<Vec<_>>(),
        reference.names().collect::<Vec<_>>(),
        "{name}: manifest names"
    );
    for file in reference.names() {
        assert_eq!(resumed.entry(file), reference.entry(file), "{name}: {file}");
    }
    assert_eq!(
        resumed.stored_ids(),
        reference.stored_ids(),
        "{name}: write-order id log"
    );
    for id in reference.stored_ids() {
        assert_eq!(
            store.fetch(*id).as_ref(),
            ref_store.fetch(*id).as_ref(),
            "{name}: {id}"
        );
    }
}

/// Crash at every cut point over a plain in-memory backend, then a
/// disaster and a scrub: the resumed archive must repair and read
/// everything, block-for-block equal to the uninterrupted run.
#[test]
fn every_roster_scheme_recovers_from_a_crash_over_mem() {
    for s in Scheme::extended_lineup() {
        let (reference, ref_store) = uninterrupted(&s);
        for cut in 0..=files().len() {
            let store = Arc::new(MemStore::new());
            let ar = crash_and_resume(&s, &store, cut);
            assert_block_identical(&s, &ar, &store, &reference, &ref_store);

            // Disaster after recovery: scattered erasures, then repair.
            let victims: Vec<BlockId> = ar.stored_ids().iter().copied().step_by(20).collect();
            for v in &victims {
                assert!(store.remove(*v), "{s}: victim {v} was stored");
            }
            assert_eq!(ar.scrub() as usize, victims.len(), "{s} cut {cut}");
            for (file, contents) in files() {
                assert_eq!(ar.get(file).expect(file), contents, "{s}: {file}");
            }
            assert!(ar.verify_all().is_empty(), "{s} cut {cut}");
        }
    }
}

/// The same crash matrix over a tiered backend: metadata and redundancy
/// live on the shared tier, data on the fast tier; after recovery the
/// fast tier takes the damage.
#[test]
fn every_roster_scheme_recovers_from_a_crash_over_tiered() {
    for s in Scheme::extended_lineup() {
        let (reference, ref_store) = uninterrupted(&s);
        let tiered = Arc::new(TieredStore::new(Arc::new(MemStore::new())));
        let ar = crash_and_resume(&s, &tiered, 2);
        assert_block_identical(&s, &ar, &tiered, &reference, &ref_store);

        let victims: Vec<BlockId> = ar.data_ids().iter().copied().step_by(20).collect();
        for v in &victims {
            assert!(tiered.fast().remove(*v), "{s}: {v} was on the fast tier");
        }
        assert_eq!(ar.scrub() as usize, victims.len(), "{s}");
        for (file, contents) in files() {
            assert_eq!(ar.get(file).expect(file), contents, "{s}: {file}");
        }
        assert!(ar.verify_all().is_empty(), "{s}");
    }
}

/// The same crash matrix over the fault-injecting backend: reopen, then
/// blackhole scattered blocks — degraded reads survive and scrubbing
/// (writes = replaced hardware) heals every fault.
#[test]
fn every_roster_scheme_recovers_from_a_crash_over_faulty() {
    for s in Scheme::extended_lineup() {
        let (reference, ref_store) = uninterrupted(&s);
        let faulty = Arc::new(FaultyStore::new(Arc::new(MemStore::new())));
        let ar = crash_and_resume(&s, &faulty, 3);
        assert_block_identical(&s, &ar, &faulty, &reference, &ref_store);

        let victims: Vec<BlockId> = ar.stored_ids().iter().copied().step_by(20).collect();
        faulty.fail_all(victims.iter().copied());
        for (file, contents) in files() {
            assert_eq!(ar.get(file).expect(file), contents, "{s}: {file}");
        }
        assert_eq!(
            faulty.failed_len(),
            victims.len(),
            "{s}: degraded reads must not heal"
        );
        assert_eq!(ar.scrub() as usize, victims.len(), "{s}");
        assert_eq!(faulty.failed_len(), 0, "{s}: scrub heals every fault");
        assert!(ar.verify_all().is_empty(), "{s}");
    }
}

/// A crash *between* the scheme's flush and the seal record must not
/// double-flush on the resumed seal: reopening and sealing again yields
/// the identical backend (same ids, same bytes) as the uninterrupted run.
#[test]
fn reopened_archives_seal_idempotently_for_every_scheme() {
    for s in Scheme::extended_lineup() {
        let (reference, ref_store) = uninterrupted(&s);
        let store = Arc::new(MemStore::new());
        {
            let mut ar = Archive::with_scheme(build(&s), BLOCK, Arc::clone(&store));
            for (name, contents) in files() {
                ar.put(name, &contents).unwrap();
            }
            ar.seal().unwrap();
        } // crash after a completed seal
        let mut ar = Archive::open(build(&s), Arc::clone(&store)).unwrap();
        assert!(ar.is_sealed(), "{s}: sealed state replays");
        assert_eq!(ar.seal().unwrap(), Vec::new(), "{s}: re-seal is a no-op");
        assert!(matches!(
            ar.put("late", b"no"),
            Err(ArchiveError::Sealed(_))
        ));
        assert_block_identical(&s, &ar, &store, &reference, &ref_store);
    }
}

/// Strategy over the roster (compact form: proptest drives the damage).
fn any_roster_index() -> impl Strategy<Value = usize> {
    0..Scheme::extended_lineup().len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A torn final journal record — the crash cut the write short at any
    /// byte — is detected, truncated and reported: the archive reopens at
    /// the last durable state, the un-acknowledged file reads as unknown
    /// (never stale bytes), and the stream resumes cleanly.
    #[test]
    fn torn_final_record_truncates_never_serves_stale_data(
        pick in any_roster_index(),
        cut_pct in 0u64..100,
    ) {
        let s = &Scheme::extended_lineup()[pick];
        let store = Arc::new(MemStore::new());
        let torn_seq = {
            let mut ar = Archive::with_scheme(build(s), BLOCK, Arc::clone(&store));
            for (name, contents) in files() {
                ar.put(name, &contents).unwrap();
            }
            ar.meta_len() - 1 // the final put's record
        };
        let full = store.fetch(meta_id(torn_seq)).unwrap();
        let cut = (full.len() as u64 * cut_pct / 100) as usize;
        store.store(meta_id(torn_seq), Block::copy_from_slice(&full.as_slice()[..cut]));

        let mut ar = Archive::open(build(s), Arc::clone(&store)).expect("torn tail is not fatal");
        prop_assert_eq!(ar.torn_tail(), Some(torn_seq), "{}: truncation reported", s);
        let (torn_name, torn_contents) = files().pop().unwrap();
        prop_assert!(
            matches!(ar.get(torn_name), Err(ArchiveError::UnknownFile(_))),
            "{}: un-acknowledged put must be gone, not stale", s
        );
        // Every durable file is intact…
        for (file, contents) in files().iter().take(files().len() - 1) {
            prop_assert_eq!(&ar.get(file).expect(file), contents, "{}: {}", s, file);
        }
        // …and the stream resumes: re-put the lost file, seal, verify.
        ar.put(torn_name, &torn_contents).unwrap();
        ar.seal().unwrap();
        prop_assert_eq!(ar.get(torn_name).unwrap(), torn_contents);
        prop_assert!(ar.verify_all().is_empty(), "{}", s);
    }

    /// A damaged manifest/journal record with records after it — scrambled
    /// bytes or a missing block — is a typed error naming the record:
    /// never a panic, never a silently rewound archive.
    #[test]
    fn corrupt_mid_journal_record_is_a_typed_error(
        pick in any_roster_index(),
        victim_offset in 0usize..5,
        scramble: bool,
        noise: u64,
    ) {
        let s = &Scheme::extended_lineup()[pick];
        let store = Arc::new(MemStore::new());
        let records = {
            let mut ar = Archive::with_scheme(build(s), BLOCK, Arc::clone(&store));
            for (name, contents) in files() {
                ar.put(name, &contents).unwrap();
            }
            ar.seal().unwrap();
            ar.meta_len()
        };
        // Any record but the last (a successor must exist to make the
        // damage mid-journal); 0 is the genesis record.
        let seq = victim_offset as u64 % (records - 1);
        if scramble {
            let garbage: Vec<u8> = (0..40u64).map(|i| (noise.wrapping_mul(i + 1) >> 24) as u8).collect();
            store.store(meta_id(seq), Block::from_vec(garbage));
        } else {
            store.remove(meta_id(seq));
        }

        match Archive::open(build(s), Arc::clone(&store)) {
            Err(RecoveryError::CorruptRecord { seq: reported, .. }) => {
                prop_assert_eq!(reported, seq, "{}: error names the damaged record", s)
            }
            Err(RecoveryError::NoArchive) => {
                // Removing the genesis record looks like no archive at
                // all — equally typed, equally loud.
                prop_assert!(!scramble && seq == 0, "{}", s)
            }
            Err(other) => prop_assert!(false, "{}: expected CorruptRecord, got {}", s, other),
            Ok(_) => prop_assert!(false, "{}: damaged journal must not open", s),
        }
    }
}
