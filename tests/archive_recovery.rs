//! Crash-recovery matrix: every roster scheme from
//! `sim::Scheme::extended_lineup()` drives the archive through
//! **crash → `Archive::open` → repair → `get`** over the in-memory,
//! tiered and fault-injecting backends, at every possible cut point —
//! and the result must be **block-for-block identical** to an
//! uninterrupted run: same manifest, same stored-id log, same backend
//! bytes. The checkpoint era adds two sweeps: a [`PowerCut`] store tears
//! the archive's write stream at every position — mid-checkpoint,
//! between parts and pointer, mid-GC — and the reopened archive must
//! always serve exactly what it acknowledged; and a metadata copy-loss
//! matrix deletes or corrupts one/two of the three `Meta` copies of
//! every live record, which must degrade (typed report) but never
//! escalate. Proptests pin the journal's failure modes: a torn final
//! record is truncated and reported (never stale data), a record with
//! **all** copies damaged mid-journal is a typed error naming the record
//! (never a panic), single-copy damage anywhere is survivable.

use aecodes::api::{BlockRepo, BlockSink, BlockSource, RedundancyScheme, StoreError};
use aecodes::blocks::{Block, BlockId};
use aecodes::sim::Scheme;
use aecodes::store::archive::{Archive, ArchiveError, RecoveryError};
use aecodes::store::meta::{meta_copy_id, meta_id, MetaConfig};
use aecodes::store::{FaultyStore, MemStore, TieredStore};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const BLOCK: usize = 32;

/// A few files of awkward sizes (empty, sub-block, exact multiple, large).
fn files() -> Vec<(&'static str, Vec<u8>)> {
    let content = |len: usize, seed: u64| -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect()
    };
    vec![
        ("empty.flag", Vec::new()),
        ("tiny.txt", content(11, 3)),
        ("exact.bin", content(BLOCK * 4, 5)),
        ("report.pdf", content(2_000, 7)),
        ("trace.log", content(700, 9)),
    ]
}

fn build(s: &Scheme) -> Arc<dyn RedundancyScheme> {
    Arc::from(s.build(BLOCK))
}

/// The uninterrupted reference: every file put through one process, then
/// sealed.
fn uninterrupted(s: &Scheme) -> (Archive<MemStore>, Arc<MemStore>) {
    let store = Arc::new(MemStore::new());
    let mut ar = Archive::with_scheme(build(s), BLOCK, Arc::clone(&store));
    for (name, contents) in files() {
        ar.put(name, &contents).unwrap();
    }
    ar.seal().unwrap();
    (ar, store)
}

/// Simulated crash: put the first `cut` files, drop the archive *and* its
/// scheme (all in-memory state dies), reopen from the backend alone, put
/// the rest, seal.
fn crash_and_resume<B: BlockRepo + ?Sized>(s: &Scheme, store: &Arc<B>, cut: usize) -> Archive<B> {
    {
        let mut ar = Archive::with_scheme(build(s), BLOCK, Arc::clone(store));
        for (name, contents) in files().iter().take(cut) {
            ar.put(name, contents).unwrap();
        }
    } // crash
    let mut ar = Archive::open(build(s), Arc::clone(store)).expect("journal replays");
    assert_eq!(ar.torn_tail(), None, "{s}: clean crash has no torn record");
    for (name, contents) in files().iter().skip(cut) {
        ar.put(name, contents).unwrap();
    }
    ar.seal().unwrap();
    ar
}

/// Asserts the crashed-and-resumed archive is indistinguishable from the
/// uninterrupted one: manifest, stored-id log, and every stored block.
fn assert_block_identical<B: BlockRepo + ?Sized>(
    s: &Scheme,
    resumed: &Archive<B>,
    store: &Arc<B>,
    reference: &Archive<MemStore>,
    ref_store: &Arc<MemStore>,
) {
    let name = s.name();
    assert_eq!(
        resumed.names().collect::<Vec<_>>(),
        reference.names().collect::<Vec<_>>(),
        "{name}: manifest names"
    );
    for file in reference.names() {
        assert_eq!(resumed.entry(file), reference.entry(file), "{name}: {file}");
    }
    assert_eq!(
        resumed.stored_ids(),
        reference.stored_ids(),
        "{name}: write-order id log"
    );
    for id in reference.stored_ids() {
        assert_eq!(
            store.fetch(*id).as_ref(),
            ref_store.fetch(*id).as_ref(),
            "{name}: {id}"
        );
    }
}

/// Crash at every cut point over a plain in-memory backend, then a
/// disaster and a scrub: the resumed archive must repair and read
/// everything, block-for-block equal to the uninterrupted run.
#[test]
fn every_roster_scheme_recovers_from_a_crash_over_mem() {
    for s in Scheme::extended_lineup() {
        let (reference, ref_store) = uninterrupted(&s);
        for cut in 0..=files().len() {
            let store = Arc::new(MemStore::new());
            let mut ar = crash_and_resume(&s, &store, cut);
            assert_block_identical(&s, &ar, &store, &reference, &ref_store);

            // Disaster after recovery: scattered erasures, then repair.
            let victims: Vec<BlockId> = ar.stored_ids().iter().copied().step_by(20).collect();
            for v in &victims {
                assert!(store.remove(*v), "{s}: victim {v} was stored");
            }
            assert_eq!(ar.scrub() as usize, victims.len(), "{s} cut {cut}");
            for (file, contents) in files() {
                assert_eq!(ar.get(file).expect(file), contents, "{s}: {file}");
            }
            assert!(ar.verify_all().is_empty(), "{s} cut {cut}");
        }
    }
}

/// The same crash matrix over a tiered backend: metadata and redundancy
/// live on the shared tier, data on the fast tier; after recovery the
/// fast tier takes the damage.
#[test]
fn every_roster_scheme_recovers_from_a_crash_over_tiered() {
    for s in Scheme::extended_lineup() {
        let (reference, ref_store) = uninterrupted(&s);
        let tiered = Arc::new(TieredStore::new(Arc::new(MemStore::new())));
        let mut ar = crash_and_resume(&s, &tiered, 2);
        assert_block_identical(&s, &ar, &tiered, &reference, &ref_store);

        let victims: Vec<BlockId> = ar.data_ids().iter().copied().step_by(20).collect();
        for v in &victims {
            assert!(tiered.fast().remove(*v), "{s}: {v} was on the fast tier");
        }
        assert_eq!(ar.scrub() as usize, victims.len(), "{s}");
        for (file, contents) in files() {
            assert_eq!(ar.get(file).expect(file), contents, "{s}: {file}");
        }
        assert!(ar.verify_all().is_empty(), "{s}");
    }
}

/// The same crash matrix over the fault-injecting backend: reopen, then
/// blackhole scattered blocks — degraded reads survive and scrubbing
/// (writes = replaced hardware) heals every fault.
#[test]
fn every_roster_scheme_recovers_from_a_crash_over_faulty() {
    for s in Scheme::extended_lineup() {
        let (reference, ref_store) = uninterrupted(&s);
        let faulty = Arc::new(FaultyStore::new(Arc::new(MemStore::new())));
        let mut ar = crash_and_resume(&s, &faulty, 3);
        assert_block_identical(&s, &ar, &faulty, &reference, &ref_store);

        let victims: Vec<BlockId> = ar.stored_ids().iter().copied().step_by(20).collect();
        faulty.fail_all(victims.iter().copied());
        for (file, contents) in files() {
            assert_eq!(ar.get(file).expect(file), contents, "{s}: {file}");
        }
        assert_eq!(
            faulty.failed_len(),
            victims.len(),
            "{s}: degraded reads must not heal"
        );
        assert_eq!(ar.scrub() as usize, victims.len(), "{s}");
        assert_eq!(faulty.failed_len(), 0, "{s}: scrub heals every fault");
        assert!(ar.verify_all().is_empty(), "{s}");
    }
}

/// A crash *between* the scheme's flush and the seal record must not
/// double-flush on the resumed seal: reopening and sealing again yields
/// the identical backend (same ids, same bytes) as the uninterrupted run.
#[test]
fn reopened_archives_seal_idempotently_for_every_scheme() {
    for s in Scheme::extended_lineup() {
        let (reference, ref_store) = uninterrupted(&s);
        let store = Arc::new(MemStore::new());
        {
            let mut ar = Archive::with_scheme(build(&s), BLOCK, Arc::clone(&store));
            for (name, contents) in files() {
                ar.put(name, &contents).unwrap();
            }
            ar.seal().unwrap();
        } // crash after a completed seal
        let mut ar = Archive::open(build(&s), Arc::clone(&store)).unwrap();
        assert!(ar.is_sealed(), "{s}: sealed state replays");
        assert_eq!(ar.seal().unwrap(), Vec::new(), "{s}: re-seal is a no-op");
        assert!(matches!(
            ar.put("late", b"no"),
            Err(ArchiveError::Sealed(_))
        ));
        assert_block_identical(&s, &ar, &store, &reference, &ref_store);
    }
}

/// Strategy over the roster (compact form: proptest drives the damage).
fn any_roster_index() -> impl Strategy<Value = usize> {
    0..Scheme::extended_lineup().len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A torn final journal record — the crash cut the write short at any
    /// byte — is detected, truncated and reported: the archive reopens at
    /// the last durable state, the un-acknowledged file reads as unknown
    /// (never stale bytes), and the stream resumes cleanly.
    #[test]
    fn torn_final_record_truncates_never_serves_stale_data(
        pick in any_roster_index(),
        cut_pct in 0u64..100,
    ) {
        let s = &Scheme::extended_lineup()[pick];
        let store = Arc::new(MemStore::new());
        let torn_seq = {
            let mut ar = Archive::with_scheme(build(s), BLOCK, Arc::clone(&store));
            for (name, contents) in files() {
                ar.put(name, &contents).unwrap();
            }
            ar.meta_len() - 1 // the final put's record
        };
        // The crash must beat every copy of the record: tear them all at
        // the same byte (one copy surviving would make the put durable).
        let full = store.fetch(meta_id(torn_seq)).unwrap();
        let cut = (full.len() as u64 * cut_pct / 100) as usize;
        for copy in 0..MetaConfig::default().copies {
            store.store(
                meta_copy_id(torn_seq, copy),
                Block::copy_from_slice(&full.as_slice()[..cut]),
            );
        }

        let mut ar = Archive::open(build(s), Arc::clone(&store)).expect("torn tail is not fatal");
        prop_assert_eq!(ar.torn_tail(), Some(torn_seq), "{}: truncation reported", s);
        let (torn_name, torn_contents) = files().pop().unwrap();
        prop_assert!(
            matches!(ar.get(torn_name), Err(ArchiveError::UnknownFile(_))),
            "{}: un-acknowledged put must be gone, not stale", s
        );
        // Every durable file is intact…
        for (file, contents) in files().iter().take(files().len() - 1) {
            prop_assert_eq!(&ar.get(file).expect(file), contents, "{}: {}", s, file);
        }
        // …and the stream resumes: re-put the lost file, seal, verify.
        ar.put(torn_name, &torn_contents).unwrap();
        ar.seal().unwrap();
        prop_assert_eq!(ar.get(torn_name).unwrap(), torn_contents);
        prop_assert!(ar.verify_all().is_empty(), "{}", s);
    }

    /// A mid-journal record with **every** copy damaged — scrambled bytes
    /// or missing blocks — is a typed error naming the record: never a
    /// panic, never a silently rewound archive. (Checkpointing is off so
    /// the whole history stays live and any record can be the victim.)
    #[test]
    fn corrupt_mid_journal_record_is_a_typed_error(
        pick in any_roster_index(),
        victim_offset in 0usize..5,
        scramble: bool,
        noise: u64,
    ) {
        let s = &Scheme::extended_lineup()[pick];
        let store = Arc::new(MemStore::new());
        let cfg = MetaConfig { checkpoint_every: None, ..MetaConfig::default() };
        let records = {
            let mut ar = Archive::with_scheme_meta(build(s), BLOCK, Arc::clone(&store), cfg);
            for (name, contents) in files() {
                ar.put(name, &contents).unwrap();
            }
            ar.seal().unwrap();
            ar.meta_len()
        };
        // Any record but the last (a successor must exist to make the
        // damage mid-journal); 0 is the genesis record.
        let seq = victim_offset as u64 % (records - 1);
        for copy in 0..MetaConfig::default().copies {
            if scramble {
                let garbage: Vec<u8> = (0..40u64).map(|i| (noise.wrapping_mul(i + 1) >> 24) as u8).collect();
                store.store(meta_copy_id(seq, copy), Block::from_vec(garbage));
            } else {
                store.remove(meta_copy_id(seq, copy));
            }
        }

        match Archive::open(build(s), Arc::clone(&store)) {
            Err(RecoveryError::CorruptRecord { seq: reported, .. }) => {
                prop_assert_eq!(reported, seq, "{}: error names the damaged record", s)
            }
            Err(RecoveryError::NoArchive) => {
                // Removing every genesis copy looks like no archive at
                // all — equally typed, equally loud.
                prop_assert!(!scramble && seq == 0, "{}", s)
            }
            Err(other) => prop_assert!(false, "{}: expected CorruptRecord, got {}", s, other),
            Ok(_) => prop_assert!(false, "{}: damaged journal must not open", s),
        }
    }

    /// The same damage against a **single** copy of any record is always
    /// survivable: the read falls through to a surviving copy, the damage
    /// is reported (typed, per copy), every file verifies, and scrub
    /// restores the full copy set.
    #[test]
    fn single_copy_damage_anywhere_is_survivable(
        pick in any_roster_index(),
        victim_offset in 0usize..6,
        copy in 0u16..3,
        scramble: bool,
        noise: u64,
    ) {
        let s = &Scheme::extended_lineup()[pick];
        let store = Arc::new(MemStore::new());
        let cfg = MetaConfig { checkpoint_every: None, ..MetaConfig::default() };
        let records = {
            let mut ar = Archive::with_scheme_meta(build(s), BLOCK, Arc::clone(&store), cfg);
            for (name, contents) in files() {
                ar.put(name, &contents).unwrap();
            }
            ar.seal().unwrap();
            ar.meta_len()
        };
        let seq = victim_offset as u64 % records;
        let id = meta_copy_id(seq, copy);
        if scramble {
            let garbage: Vec<u8> = (0..40u64).map(|i| (noise.wrapping_mul(i + 3) >> 24) as u8).collect();
            store.store(id, Block::from_vec(garbage));
        } else {
            store.remove(id);
        }

        let mut ar = Archive::open(build(s), Arc::clone(&store))
            .expect("single-copy damage must never escalate");
        prop_assert!(
            ar.meta_damage().iter().any(|d| d.seq == seq && d.copy == copy),
            "{}: damage to copy {} of record {} reported: {:?}",
            s, copy, seq, ar.meta_damage()
        );
        prop_assert!(ar.verify_all().is_empty(), "{}", s);
        prop_assert!(ar.scrub() >= 1, "{}: scrub restores the copy", s);
        drop(ar);
        let ar = Archive::open(build(s), Arc::clone(&store)).unwrap();
        prop_assert!(ar.meta_damage().is_empty(), "{}: healed copy set", s);
    }
}

// ---------------------------------------------------------------------------
// Checkpoint-era recovery: power-cut sweeps and metadata copy loss.
// ---------------------------------------------------------------------------

/// A store whose write stream dies mid-flight: the first `fuse - 1`
/// writes succeed, write number `fuse` is **torn** (a prefix of the block
/// is persisted — the sector the crash caught mid-write), and everything
/// after is lost. Removes count against the fuse too (a GC delete the
/// crash never issued stays un-deleted). Reads are untouched — recovery
/// reopens from the inner store.
struct PowerCut<B: BlockRepo + Send + ?Sized> {
    fuse: AtomicU64,
    attempted: AtomicU64,
    inner: Arc<B>,
}

impl<B: BlockRepo + Send + ?Sized> PowerCut<B> {
    fn new(inner: Arc<B>, fuse: u64) -> Self {
        PowerCut {
            fuse: AtomicU64::new(fuse),
            attempted: AtomicU64::new(0),
            inner,
        }
    }

    /// Total writes + removes the archive attempted (fuse or no fuse).
    fn attempted(&self) -> u64 {
        self.attempted.load(Ordering::Relaxed)
    }

    /// Burns one unit of fuse; answers 2 = full write, 1 = torn, 0 = lost.
    fn burn(&self) -> u64 {
        self.attempted.fetch_add(1, Ordering::Relaxed);
        let left = self.fuse.load(Ordering::Relaxed);
        if left == 0 {
            return 0;
        }
        self.fuse.store(left - 1, Ordering::Relaxed);
        if left == 1 {
            1
        } else {
            2
        }
    }
}

impl<B: BlockRepo + Send + ?Sized> BlockSource for PowerCut<B> {
    fn fetch(&self, id: BlockId) -> Option<Block> {
        self.inner.fetch(id)
    }

    fn has(&self, id: BlockId) -> bool {
        self.inner.has(id)
    }

    fn read(&self, id: BlockId) -> Result<Block, StoreError> {
        self.inner.read(id)
    }
}

impl<B: BlockRepo + Send + ?Sized> BlockSink for PowerCut<B> {
    fn store(&self, id: BlockId, block: Block) {
        match self.burn() {
            2 => self.inner.store(id, block),
            1 => {
                let torn = &block.as_slice()[..block.len() / 2];
                self.inner.store(id, Block::copy_from_slice(torn));
            }
            _ => {}
        }
    }

    fn remove(&self, id: BlockId) -> bool {
        if self.burn() == 2 {
            self.inner.remove(id)
        } else {
            false
        }
    }
}

/// Aggressive checkpointing so a short lifetime crosses several
/// checkpoint commits and multi-part groups: every cut position lands
/// somewhere interesting.
fn sweep_cfg() -> MetaConfig {
    MetaConfig {
        copies: 3,
        checkpoint_every: Some(2),
        segment_bytes: 64,
    }
}

/// One archive lifetime over `store`: every file put, then sealed.
fn run_lifetime<B: BlockRepo + Send + ?Sized>(s: &Scheme, store: &Arc<B>) {
    let mut ar = Archive::with_scheme_meta(build(s), BLOCK, Arc::clone(store), sweep_cfg());
    for (name, contents) in files() {
        ar.put(name, &contents).unwrap();
    }
    ar.seal().unwrap();
}

/// Cuts the write stream at every swept position, reopens from what
/// actually hit the backend, and requires: open succeeds (except inside
/// the genesis write itself), every manifested file reads back, scrub
/// heals, and the healed archive reopens clean.
fn power_cut_sweep<B: BlockRepo + Send + ?Sized>(s: &Scheme, make: impl Fn() -> Arc<B>) {
    // Measure the lifetime's write count with an unlimited fuse.
    let probe = Arc::new(PowerCut::new(make(), u64::MAX));
    run_lifetime(s, &probe);
    let total = probe.attempted();
    let stride = (total / 10).max(1);

    let mut cut = 0;
    while cut <= total + 1 {
        let inner = make();
        let pc = Arc::new(PowerCut::new(Arc::clone(&inner), cut));
        run_lifetime(s, &pc);
        drop(pc);
        match Archive::open_with_meta(build(s), Arc::clone(&inner), sweep_cfg()) {
            Ok(mut ar) => {
                assert!(
                    ar.verify_all().is_empty(),
                    "{s} cut {cut}/{total}: every acknowledged file must read"
                );
                ar.scrub();
                drop(ar);
                let ar = Archive::open_with_meta(build(s), Arc::clone(&inner), sweep_cfg())
                    .unwrap_or_else(|e| panic!("{s} cut {cut}: reopen after scrub: {e}"));
                assert!(
                    ar.meta_damage().is_empty(),
                    "{s} cut {cut}: healed, got {:?}",
                    ar.meta_damage()
                );
                assert!(ar.verify_all().is_empty(), "{s} cut {cut}");
            }
            // The only cuts allowed to fail are inside the very creation
            // of the archive: nothing was ever acknowledged.
            Err(RecoveryError::NoArchive) => {
                assert_eq!(cut, 0, "{s}: NoArchive only before any write")
            }
            Err(RecoveryError::CorruptRecord { seq: 0, .. }) => {
                assert!(
                    cut <= 1,
                    "{s} cut {cut}: genesis corruption beyond its own write"
                )
            }
            Err(other) => panic!("{s} cut {cut}/{total}: unexpected {other}"),
        }
        cut += stride;
    }
}

#[test]
fn power_cut_at_every_position_recovers_over_mem() {
    for s in Scheme::extended_lineup() {
        power_cut_sweep(&s, || Arc::new(MemStore::new()));
    }
}

#[test]
fn power_cut_at_every_position_recovers_over_tiered() {
    for s in Scheme::extended_lineup() {
        power_cut_sweep(&s, || Arc::new(TieredStore::new(Arc::new(MemStore::new()))));
    }
}

#[test]
fn power_cut_at_every_position_recovers_over_faulty() {
    for s in Scheme::extended_lineup() {
        power_cut_sweep(&s, || Arc::new(FaultyStore::new(Arc::new(MemStore::new()))));
    }
}

/// How metadata victims die in the copy-loss matrix.
#[derive(Clone, Copy, Debug)]
enum MetaHarm {
    Delete,
    Corrupt,
}

/// Builds a checkpointed archive over `store`, then deletes or corrupts
/// `loss` of the 3 copies of **every** live metadata record and pointer
/// cell at once. The reopened archive must degrade — typed damage
/// report, all files intact — and scrub must restore the full copy sets.
fn copy_loss_round<B: BlockRepo + Send + ?Sized>(
    s: &Scheme,
    store: &Arc<B>,
    harm: MetaHarm,
    loss: u16,
) {
    run_lifetime(s, store);
    let live = {
        let ar = Archive::open_with_meta(build(s), Arc::clone(store), sweep_cfg())
            .expect("pristine reopen");
        assert!(ar.checkpoint_seq().is_some(), "{s}: lifetime checkpointed");
        ar.live_meta_ids()
    };
    let mut harmed = 0;
    for &id in &live {
        let BlockId::Meta(m) = id else { unreachable!() };
        if m.copy() >= loss {
            continue;
        }
        harmed += 1;
        match harm {
            MetaHarm::Delete => {
                store.remove(id);
            }
            MetaHarm::Corrupt => store.store(id, Block::from_vec(vec![0xA7; 21])),
        }
    }
    assert!(harmed > 0, "{s}: matrix must actually harm something");

    let mut ar = Archive::open_with_meta(build(s), Arc::clone(store), sweep_cfg())
        .unwrap_or_else(|e| panic!("{s} {harm:?} loss {loss}: must degrade, not escalate: {e}"));
    assert!(
        !ar.meta_damage().is_empty(),
        "{s} {harm:?} loss {loss}: degraded reads are reported"
    );
    assert!(ar.verify_all().is_empty(), "{s} {harm:?} loss {loss}");
    assert!(
        ar.scrub() >= harmed,
        "{s}: scrub restores every harmed copy"
    );
    drop(ar);
    let ar = Archive::open_with_meta(build(s), Arc::clone(store), sweep_cfg()).unwrap();
    assert!(ar.meta_damage().is_empty(), "{s}: healed copy sets");
    assert!(ar.verify_all().is_empty(), "{s}");
}

#[test]
fn meta_copy_loss_matrix_over_mem() {
    for s in Scheme::extended_lineup() {
        for harm in [MetaHarm::Delete, MetaHarm::Corrupt] {
            for loss in [1u16, 2] {
                copy_loss_round(&s, &Arc::new(MemStore::new()), harm, loss);
            }
        }
    }
}

#[test]
fn meta_copy_loss_matrix_over_tiered() {
    for s in Scheme::extended_lineup() {
        for harm in [MetaHarm::Delete, MetaHarm::Corrupt] {
            for loss in [1u16, 2] {
                let store = Arc::new(TieredStore::new(Arc::new(MemStore::new())));
                copy_loss_round(&s, &store, harm, loss);
            }
        }
    }
}

/// Over the fault injector the harm is injected (blackhole / CRC-failing
/// tamper) rather than applied to the bytes, exercising the
/// `StoreError::Corrupted` path end to end; scrub's rewrites clear the
/// injected faults (replaced hardware).
#[test]
fn meta_copy_loss_matrix_over_faulty() {
    for s in Scheme::extended_lineup() {
        for loss in [1u16, 2] {
            let faulty = Arc::new(FaultyStore::new(Arc::new(MemStore::new())));
            run_lifetime(&s, &faulty);
            let live = {
                let ar =
                    Archive::open_with_meta(build(&s), Arc::clone(&faulty), sweep_cfg()).unwrap();
                ar.live_meta_ids()
            };
            let mut blackholed = 0;
            let mut tampered = 0;
            for &id in &live {
                let BlockId::Meta(m) = id else { unreachable!() };
                if m.copy() >= loss {
                    continue;
                }
                // Alternate the two fault kinds across the victims.
                if (m.seq() + m.copy() as u64).is_multiple_of(2) {
                    faulty.fail(id);
                    blackholed += 1;
                } else {
                    faulty.corrupt(id);
                    tampered += 1;
                }
            }
            let mut ar = Archive::open_with_meta(build(&s), Arc::clone(&faulty), sweep_cfg())
                .unwrap_or_else(|e| panic!("{s} loss {loss}: must degrade, not escalate: {e}"));
            assert!(!ar.meta_damage().is_empty(), "{s} loss {loss}");
            assert!(ar.verify_all().is_empty(), "{s} loss {loss}");
            assert!(
                ar.scrub() >= blackholed + tampered,
                "{s}: scrub heals every injected meta fault"
            );
            assert_eq!(faulty.failed_len(), 0, "{s}: blackholes healed");
            assert_eq!(faulty.corrupted_len(), 0, "{s}: tampered copies healed");
            drop(ar);
            let ar = Archive::open_with_meta(build(&s), Arc::clone(&faulty), sweep_cfg()).unwrap();
            assert!(ar.meta_damage().is_empty(), "{s}: healed");
        }
    }
}

/// Losing **all** copies of a committed checkpoint record is the one
/// thing redundancy cannot forgive — and it must be a typed error, never
/// a silent rewind past garbage-collected history.
#[test]
fn losing_every_copy_of_a_checkpoint_record_is_typed() {
    for s in Scheme::extended_lineup() {
        let store = Arc::new(MemStore::new());
        run_lifetime(&s, &store);
        let cseq = {
            let ar = Archive::open_with_meta(build(&s), Arc::clone(&store), sweep_cfg()).unwrap();
            ar.checkpoint_seq().expect("lifetime checkpointed")
        };
        for copy in 0..sweep_cfg().copies {
            assert!(store.remove(meta_copy_id(cseq, copy)), "{s}: part 0 live");
        }
        assert!(
            matches!(
                Archive::open_with_meta(build(&s), Arc::clone(&store), sweep_cfg()),
                Err(RecoveryError::CorruptRecord { .. })
            ),
            "{s}: all-copy checkpoint loss must escalate typed"
        );
    }
}

/// The O(checkpoint) open guarantee: as the journal's history grows 10x
/// past the checkpoint threshold, the records `open` replays (and the
/// live journal the backend holds) stay bounded by the cadence, not the
/// history.
#[test]
fn open_replays_o_checkpoint_not_o_history() {
    let store = Arc::new(MemStore::new());
    let cfg = MetaConfig {
        copies: 3,
        checkpoint_every: Some(4),
        ..MetaConfig::default()
    };
    let s = &Scheme::extended_lineup()[0];
    {
        let mut ar = Archive::with_scheme_meta(build(s), BLOCK, Arc::clone(&store), cfg.clone());
        for i in 0..40u32 {
            ar.put(&format!("f{i}"), &i.to_le_bytes().repeat(9))
                .unwrap();
        }
    }
    let ar = Archive::open_with_meta(build(s), Arc::clone(&store), cfg).unwrap();
    assert!(ar.meta_len() > 40, "history grew with every put");
    assert!(
        ar.replayed_records() <= 8,
        "open replayed {} records of a {}-record history",
        ar.replayed_records(),
        ar.meta_len()
    );
    assert!(
        ar.live_meta_records() <= 16,
        "{} live records should be bounded by the cadence",
        ar.live_meta_records()
    );
    assert_eq!(ar.names().count(), 40, "nothing lost to GC");
}
