//! Index-path and planner parity.
//!
//! The dense arithmetic index and the parallel round planners are pure
//! performance work: they must never change a single outcome. Two
//! properties pin that down:
//!
//! * the same seeded disaster driven through both `SchemePlane` index
//!   paths (dense vs `HashMap`) produces identical `FullRepairOutcome`s
//!   and `MinimalRepairOutcome`s for AE, RS and replication;
//! * the byte-plane `repair_missing` worklist planner produces summaries
//!   bit-identical to the reference sequential planner.

use aecodes::api::RedundancyScheme;
use aecodes::baselines::{ReedSolomon, Replication};
use aecodes::blocks::{Block, BlockId};
use aecodes::core::{BlockMap, Code};
use aecodes::lattice::Config;
use aecodes::sim::{IndexMode, SchemePlane, SimPlacement};
use aecodes::store::{ChainMode, EntangledChain, GeoLattice};
use proptest::prelude::*;

const BLOCK: usize = 32;

fn scheme_for(pick: u8) -> Box<dyn RedundancyScheme> {
    match pick % 10 {
        0 => Box::new(Code::new(Config::single(), BLOCK)),
        1 => Box::new(Code::new(Config::new(2, 2, 5).unwrap(), BLOCK)),
        2 => Box::new(Code::new(Config::new(3, 2, 5).unwrap(), BLOCK)),
        3 => Box::new(ReedSolomon::new(4, 2).unwrap()),
        4 => Box::new(ReedSolomon::new(10, 4).unwrap()),
        5 => Box::new(Replication::new(2)),
        6 => Box::new(Replication::new(3)),
        7 => Box::new(EntangledChain::new(ChainMode::Open, BLOCK)),
        8 => Box::new(EntangledChain::new(ChainMode::Closed, BLOCK)),
        _ => Box::new(GeoLattice::new(
            Code::new(Config::new(2, 2, 5).unwrap(), BLOCK),
            7,
        )),
    }
}

fn payload(n: u64, seed: u64) -> Vec<Block> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            Block::from_vec((0..BLOCK).map(|k| (state >> (k % 56)) as u8).collect())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dense-index and HashMap-index planes agree on every metric of a
    /// full disaster-repair cycle, and on minimal maintenance after a
    /// second disaster.
    #[test]
    fn dense_and_map_index_paths_agree(
        pick in 0u8..10,
        placement_seed: u64,
        disaster_seed: u64,
        fraction_pct in 5u32..50,
    ) {
        let fraction = fraction_pct as f64 / 100.0;
        let run = |mode: IndexMode| {
            let mut plane = SchemePlane::with_index_mode(
                scheme_for(pick),
                5_000,
                50,
                SimPlacement::Random { seed: placement_seed },
                |_| false,
                mode,
            );
            let injected = plane.inject_disaster(fraction, disaster_seed);
            let full = plane.repair_full();
            plane.heal_all();
            plane.inject_disaster(fraction, disaster_seed.wrapping_add(1));
            let minimal = plane.repair_minimal();
            (injected, full, minimal)
        };
        let dense = run(IndexMode::Auto);
        let map = run(IndexMode::Map);
        prop_assert_eq!(dense, map);
    }

    /// The parallel worklist planner and the reference sequential planner
    /// produce identical repair summaries and identical stores on random
    /// multi-failure erasure patterns.
    #[test]
    fn parallel_and_serial_repair_missing_agree(
        pick in 0u8..10,
        seed: u64,
        down in proptest::collection::btree_set(0usize..800, 1..120),
    ) {
        let n = 200u64;
        let build = || {
            let scheme = scheme_for(pick);
            let store = BlockMap::new();
            scheme
                .encode_batch(&payload(n, seed), &store)
                .expect("uniform sizes");
            scheme.seal(&store).expect("flush");
            let universe = scheme.block_ids(n);
            let mut victims: Vec<BlockId> = down
                .iter()
                .map(|&k| universe[k % universe.len()])
                .collect();
            // Wrapped picks can collide; schemes count duplicate targets
            // differently, and erasing one twice is meaningless anyway.
            let mut seen = std::collections::HashSet::new();
            victims.retain(|&id| seen.insert(id));
            for v in &victims {
                store.remove(v);
            }
            (scheme, store, victims)
        };
        let (scheme_a, store_a, victims) = build();
        let (scheme_b, store_b, _) = build();
        let parallel = scheme_a.repair_missing(&store_a, &victims, n);
        let serial = scheme_b.repair_missing_serial(&store_b, &victims, n);
        prop_assert_eq!(
            &parallel,
            &serial,
            "{}: planners disagree",
            scheme_a.scheme_name()
        );
        prop_assert_eq!(store_a.len(), store_b.len());
        for (id, block) in store_a.entries() {
            prop_assert_eq!(
                store_b.get(&id),
                Some(block),
                "{}",
                scheme_a.scheme_name()
            );
        }
    }
}
