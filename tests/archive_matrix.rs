//! Archive parity + disaster matrix: every roster scheme from
//! `sim::Scheme::extended_lineup()` drives the one generic `Archive`
//! through put → corrupt → degraded get → scrub → get round-trips, over
//! the in-memory, tiered and fault-injecting backends. A legacy parity
//! pin proves the AE convenience constructor still behaves exactly like
//! driving `ae_core::Code` by hand, and proptests pin that degraded-read
//! failures name the same missing tuple members as the scheme's own
//! error-typed `repair_block`.

use aecodes::api::{BlockRepo, BlockSink, RedundancyScheme};
use aecodes::blocks::BlockId;
use aecodes::lattice::Config;
use aecodes::sim::Scheme;
use aecodes::store::archive::{Archive, ArchiveError};
use aecodes::store::{FaultyStore, MemStore, TieredStore};
use proptest::prelude::*;
use std::sync::Arc;

const BLOCK: usize = 32;

/// A few files of awkward sizes (empty, sub-block, exact multiple, large).
fn files() -> Vec<(&'static str, Vec<u8>)> {
    let content = |len: usize, seed: u64| -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect()
    };
    vec![
        ("empty.flag", Vec::new()),
        ("tiny.txt", content(11, 3)),
        ("exact.bin", content(BLOCK * 4, 5)),
        ("report.pdf", content(2_000, 7)),
        ("trace.log", content(700, 9)),
    ]
}

/// Builds an archive for a roster scheme over the given backend and puts
/// every file, sealing at the end (the archival end state).
fn filled_archive<B: BlockRepo + ?Sized>(scheme: &Scheme, store: Arc<B>) -> Archive<B> {
    let scheme: Arc<dyn RedundancyScheme> = Arc::from(scheme.build(BLOCK));
    let mut ar = Archive::with_scheme(scheme, BLOCK, store);
    for (name, contents) in files() {
        ar.put(name, &contents).expect("fresh name");
    }
    ar.seal().expect("flush buffered redundancy");
    ar
}

/// Scattered victims: every `stride`-th stored block — far enough apart
/// that no scheme in the roster is over-erased.
fn scattered_victims(ar: &Archive<impl BlockRepo + ?Sized>, stride: usize) -> Vec<BlockId> {
    ar.stored_ids().iter().copied().step_by(stride).collect()
}

/// The core matrix: put / corrupt / degraded get / scrub / get for every
/// roster scheme over a plain in-memory backend.
#[test]
fn every_roster_scheme_round_trips_through_the_archive() {
    for s in Scheme::extended_lineup() {
        let store = Arc::new(MemStore::new());
        let mut ar = filled_archive(&s, Arc::clone(&store));
        let name = ar.scheme().scheme_name();
        assert_eq!(name, s.name(), "roster and scheme agree");

        // Fresh archive: everything reads back.
        for (file, contents) in files() {
            assert_eq!(ar.get(file).expect(file), contents, "{name}: {file}");
        }

        // Disaster: scattered erasures behind the archive's back.
        let victims = scattered_victims(&ar, 20);
        assert!(!victims.is_empty());
        for v in &victims {
            assert!(store.remove(*v), "{name}: victim {v} was stored");
        }

        // Degraded reads survive without mutating the backend…
        for (file, contents) in files() {
            assert_eq!(ar.get(file).expect(file), contents, "{name}: {file}");
        }
        assert!(!store.contains(victims[0]), "{name}: reads stay read-only");

        // …and scrub restores every victim byte-for-byte reachable.
        let restored = ar.scrub();
        assert_eq!(restored as usize, victims.len(), "{name}");
        for v in &victims {
            assert!(store.contains(*v), "{name}: {v} restored");
        }
        assert_eq!(ar.scrub(), 0, "{name}: scrub is idempotent");
        assert!(ar.verify_all().is_empty(), "{name}");

        // Sealed archives reject further puts, whatever the scheme.
        assert!(matches!(
            ar.put("late.txt", b"no"),
            Err(ArchiveError::Sealed(_))
        ));
    }
}

/// The same matrix over a tiered backend (data on the fast tier,
/// redundancy on the shared tier) with the fast tier taking the damage.
#[test]
fn every_roster_scheme_survives_fast_tier_damage_when_tiered() {
    for s in Scheme::extended_lineup() {
        let tiered = Arc::new(TieredStore::new(Arc::new(MemStore::new())));
        let mut ar = filled_archive(&s, Arc::clone(&tiered));
        let name = ar.scheme().scheme_name();

        // Lose every 20th *data* block off the fast tier.
        let victims: Vec<BlockId> = ar.data_ids().iter().copied().step_by(20).collect();
        for v in &victims {
            assert!(tiered.fast().remove(*v), "{name}: {v} was on the fast tier");
        }

        for (file, contents) in files() {
            assert_eq!(ar.get(file).expect(file), contents, "{name}: {file}");
        }
        let restored = ar.scrub();
        assert_eq!(restored as usize, victims.len(), "{name}");
        assert!(ar.verify_all().is_empty(), "{name}");
    }
}

/// The same matrix with injected faults instead of hard removal: the
/// fault-injecting backend blackholes blocks, degraded reads survive, and
/// scrubbing (writes = replaced hardware) heals every fault.
#[test]
fn every_roster_scheme_heals_injected_faults() {
    for s in Scheme::extended_lineup() {
        let faulty = Arc::new(FaultyStore::new(Arc::new(MemStore::new())));
        let mut ar = filled_archive(&s, Arc::clone(&faulty));
        let name = ar.scheme().scheme_name();

        let victims = scattered_victims(&ar, 20);
        faulty.fail_all(victims.iter().copied());
        assert_eq!(faulty.failed_len(), victims.len(), "{name}");

        for (file, contents) in files() {
            assert_eq!(ar.get(file).expect(file), contents, "{name}: {file}");
        }
        assert_eq!(
            faulty.failed_len(),
            victims.len(),
            "{name}: degraded reads must not heal"
        );

        let restored = ar.scrub();
        assert_eq!(restored as usize, victims.len(), "{name}");
        assert_eq!(faulty.failed_len(), 0, "{name}: scrub heals every fault");
        assert!(ar.verify_all().is_empty(), "{name}");
    }
}

/// Legacy parity pin: the thin AE convenience constructor
/// (`Archive::new(Config, …)`) must behave exactly like driving
/// `ae_core::Code` by hand the way the pre-generic archive did — the same
/// backend contents block for block, the same manifest extents
/// (`first_block + 1` is the first lattice node, as `first_node` was),
/// and the same degraded reads.
#[test]
fn legacy_ae_constructor_matches_hand_driven_code() {
    use aecodes::blocks::{Block, NodeId};
    use aecodes::core::Code;

    let cfg = Config::new(3, 2, 5).unwrap();
    let archive_store = Arc::new(MemStore::new());
    let mut ar = Archive::new(cfg, BLOCK, Arc::clone(&archive_store));

    // The reference: the exact encode pipeline the legacy archive ran.
    let legacy_store = MemStore::new();
    let legacy_code = Code::new(cfg, BLOCK);

    for (name, contents) in files() {
        let entry = ar.put(name, &contents).unwrap();
        let blocks: Vec<Block> = if contents.is_empty() {
            vec![Block::zero(BLOCK)]
        } else {
            contents
                .chunks(BLOCK)
                .map(|c| {
                    let mut bytes = c.to_vec();
                    bytes.resize(BLOCK, 0);
                    Block::from_vec(bytes)
                })
                .collect()
        };
        let report = legacy_code.encode_batch(&blocks, &legacy_store).unwrap();
        // The legacy manifest carried 1-based lattice nodes; the dense
        // extent is the same number shifted to 0-based.
        assert_eq!(entry.first_block + 1, report.first_node, "{name}");
    }

    // Block-for-block identical backends — modulo the archive's metadata
    // journal, which the hand-driven pipeline never writes (the reserved
    // meta namespace is what makes the archive crash-recoverable).
    let mut ids_a: Vec<BlockId> = archive_store
        .ids()
        .into_iter()
        .filter(|id| !id.is_meta())
        .collect();
    let mut ids_b = legacy_store.ids();
    ids_a.sort();
    ids_b.sort();
    assert_eq!(ids_a, ids_b);
    for id in &ids_a {
        assert_eq!(
            archive_store.get(*id).unwrap(),
            legacy_store.get(*id).unwrap(),
            "{id}"
        );
    }

    // Degraded reads equal the legacy direct-decoder result.
    let victim = BlockId::Data(NodeId(3));
    let original = archive_store.get(victim).unwrap();
    archive_store.remove(victim);
    legacy_store.remove(victim);
    let via_archive = ar.get("exact.bin").unwrap();
    let direct = legacy_code
        .repair_block(&legacy_store, victim, legacy_code.written())
        .unwrap();
    assert_eq!(direct, original);
    assert_eq!(via_archive, files()[2].1);
}

/// Strategy over the archive roster (compact: proptest drives damage).
fn any_roster_index() -> impl Strategy<Value = usize> {
    0..Scheme::extended_lineup().len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under random damage, a degraded read either reproduces the original
    /// bytes or fails with `BlockUnavailable` naming **exactly** the
    /// missing tuple members the scheme's own `repair_block` reports for
    /// that block — the archive adds no error translation layer.
    #[test]
    fn degraded_reads_name_the_same_missing_members_as_the_scheme(
        pick in any_roster_index(),
        damage_seed: u64,
        damage_pct in 5u64..45,
    ) {
        let roster = Scheme::extended_lineup();
        let store = Arc::new(MemStore::new());
        let mut ar = filled_archive(&roster[pick], Arc::clone(&store));
        let name = ar.scheme().scheme_name();

        // Pseudo-random damage over everything the archive wrote.
        let mut state = damage_seed | 1;
        for id in ar.stored_ids() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (state >> 33) % 100 < damage_pct {
                store.remove(*id);
            }
        }

        for (file, contents) in files() {
            match ar.get(file) {
                Ok(bytes) => prop_assert_eq!(bytes, contents, "{}: {}", name, file),
                Err(ArchiveError::BlockUnavailable { id, source }) => {
                    // The failing block is genuinely gone…
                    prop_assert!(!store.contains(id), "{}: {}", name, id);
                    // …and the named members are the scheme's own verdict.
                    let direct = ar
                        .scheme()
                        .repair_block(&store, id, ar.scheme().data_written())
                        .expect_err("archive said unrepairable");
                    prop_assert_eq!(
                        source.missing_blocks(),
                        direct.missing_blocks(),
                        "{}: {}",
                        name,
                        id
                    );
                }
                Err(other) => prop_assert!(false, "{}: unexpected error {:?}", name, other),
            }
        }

        // Scrub + verify never report differently: a file is verifiable
        // iff its degraded read succeeded above or scrub restored it.
        ar.scrub();
        for name in ar.verify_all() {
            prop_assert!(ar.get(&name).is_err());
        }
    }
}
