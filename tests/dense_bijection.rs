//! The id ⇄ position bijection and the zero-materialization plane.
//!
//! Every scheme with `supports_dense_index()` promises that `dense_index`
//! and `block_at` form an authoritative O(1) bijection over the whole
//! universe. `SchemePlane` builds on that promise to hold *no* per-block
//! id state at all, so these properties are what keeps the
//! zero-materialization fast path honest:
//!
//! * `block_at(k) == block_ids(n)[k]` and `dense_index(block_ids(n)[k])
//!   == k` for every position — both directions against the enumeration
//!   oracle, over every scheme in the extended roster (the store-backed
//!   chain and geo schemes included) and over RS deployments with partial
//!   final stripes;
//! * round-trips `block_at(dense_index(id)) == id` and
//!   `dense_index(block_at(k)) == k`;
//! * a hook-driven (nothing materialized) plane and a fully materialized
//!   plane produce identical disaster outcomes.

use aecodes::blocks::{BlockId, NodeId, ShardId};
use aecodes::sim::{IndexMode, Scheme, SchemePlane, SimPlacement};
use proptest::prelude::*;

/// Every scheme in the roster, by index (proptest picks the index).
fn roster() -> Vec<Scheme> {
    Scheme::extended_lineup()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Both directions of the bijection agree with the enumeration oracle
    /// over the full universe, for every roster scheme and for extents
    /// that leave RS final stripes partial.
    #[test]
    fn bijection_matches_enumeration(
        pick in 0usize..13,
        n in 1u64..200,
    ) {
        let scheme = roster()[pick].build(0);
        let name = scheme.scheme_name();
        prop_assert!(scheme.supports_dense_index(), "{name}");
        let ids = scheme.block_ids(n);
        prop_assert_eq!(scheme.universe_len(n), ids.len() as u64, "{}", &name);
        for (k, id) in ids.iter().enumerate() {
            prop_assert_eq!(scheme.block_at(k as u32, n), Some(*id), "{} at {}", &name, k);
            prop_assert_eq!(scheme.dense_index(id, n), Some(k as u32), "{} {}", &name, id);
        }
        // One past the end, and far out.
        prop_assert_eq!(scheme.block_at(ids.len() as u32, n), None, "{}", &name);
        prop_assert_eq!(scheme.block_at(u32::MAX, n), None, "{}", &name);
    }

    /// Round-trips: position → id → position and id → position → id.
    #[test]
    fn bijection_round_trips(
        pick in 0usize..13,
        n in 1u64..150,
    ) {
        let scheme = roster()[pick].build(0);
        let name = scheme.scheme_name();
        let len = scheme.universe_len(n);
        for k in 0..len as u32 {
            let id = scheme.block_at(k, n).expect("within universe");
            prop_assert_eq!(scheme.dense_index(&id, n), Some(k), "{} at {}", &name, k);
        }
        for id in scheme.block_ids(n) {
            let k = scheme.dense_index(&id, n).expect("universe member");
            prop_assert_eq!(scheme.block_at(k, n), Some(id), "{} {}", &name, id);
        }
        // Foreign ids have no position in any roster scheme's universe.
        for foreign in [
            BlockId::Data(NodeId(0)),
            BlockId::Data(NodeId((1 << 60) + 1)),
            BlockId::Shard(ShardId { stripe: 1 << 40, index: 0 }),
        ] {
            prop_assert_eq!(scheme.dense_index(&foreign, n), None, "{} {}", &name, foreign);
        }
    }
}

/// RS partial final stripes, pinned explicitly: every `k`, `m` and extent
/// combination where the last stripe stores fewer than `k` data blocks.
#[test]
fn rs_partial_final_stripes_invert_exactly() {
    for (k, m) in [(4u32, 2u32), (10, 4), (5, 5)] {
        for rem in 1..k {
            let n = u64::from(3 * k + rem); // 3 full stripes + a partial one
            let scheme = Scheme::Rs { k, m }.build(0);
            let ids = scheme.block_ids(n);
            assert_eq!(scheme.universe_len(n), ids.len() as u64);
            for (pos, id) in ids.iter().enumerate() {
                assert_eq!(
                    scheme.block_at(pos as u32, n),
                    Some(*id),
                    "RS({k},{m}) n={n} at {pos}"
                );
                assert_eq!(scheme.dense_index(id, n), Some(pos as u32));
            }
            assert_eq!(scheme.block_at(ids.len() as u32, n), None);
        }
    }
}

/// A plane that never materializes the universe and a fully materialized
/// plane must produce identical disaster outcomes for every roster scheme
/// — full repair and minimal maintenance both.
#[test]
fn hook_driven_and_materialized_planes_agree() {
    for s in roster() {
        let name = s.name();
        let run = |mode: IndexMode| {
            let mut plane = SchemePlane::with_index_mode(
                s.build(0),
                4_000,
                50,
                SimPlacement::Random { seed: 17 },
                |_| false,
                mode,
            );
            let injected = plane.inject_disaster(0.3, 23);
            let full = plane.repair_full();
            plane.heal_all();
            plane.inject_disaster(0.3, 24);
            let minimal = plane.repair_minimal();
            (injected, full, minimal)
        };
        let hook = run(IndexMode::Auto);
        let materialized = run(IndexMode::Map);
        assert_eq!(hook, materialized, "{name}");

        // The hook path really holds no id state; the baseline really does.
        let plane = SchemePlane::with_index_mode(
            s.build(0),
            4_000,
            50,
            SimPlacement::Random { seed: 17 },
            |_| false,
            IndexMode::Auto,
        );
        assert!(plane.uses_dense_index(), "{name}");
        assert_eq!(plane.materialized_bytes(), 0, "{name}");
        let baseline = SchemePlane::with_index_mode(
            s.build(0),
            4_000,
            50,
            SimPlacement::Random { seed: 17 },
            |_| false,
            IndexMode::Map,
        );
        assert!(baseline.materialized_bytes() > 0, "{name}");
    }
}
