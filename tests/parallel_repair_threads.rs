//! Drives the byte-plane repair planner through its *threaded* branch.
//!
//! The other parity suites use small target sets, which plan inline
//! (below `PARALLEL_PLAN_MIN`); this test forces a multi-thread planner
//! via `AE_REPAIR_THREADS` and a target set large enough to fan out, so
//! the scoped-thread chunk merge and blocker filing from threaded
//! results are exercised by `cargo test`, not just by benches.
//!
//! This lives in its own integration-test binary: the planner thread
//! count is memoized per process, so the env override must be set before
//! anything else calls into repair.

use aecodes::api::RedundancyScheme;
use aecodes::blocks::{Block, BlockId};
use aecodes::core::{BlockMap, Code};
use aecodes::lattice::Config;

#[test]
fn threaded_planner_matches_serial_on_a_large_disaster() {
    // Read before any repair call in this process memoizes the default.
    std::env::set_var("AE_REPAIR_THREADS", "4");
    #[cfg(not(feature = "serial-repair"))]
    assert_eq!(aecodes::api::repair_threads(), 4);

    let n = 400u64;
    let build = || {
        let code = Code::new(Config::new(2, 2, 5).unwrap(), 32);
        let store = BlockMap::new();
        let blocks: Vec<Block> = (0..n)
            .map(|i| Block::from_vec((0..32).map(|k| ((i * 37 + k * 11) % 251) as u8).collect()))
            .collect();
        code.encode_batch(&blocks, &store).expect("encode");
        // A clustered disaster well above PARALLEL_PLAN_MIN (256)
        // targets: a contiguous dead span plus deterministic scatter.
        let universe = code.block_ids(n);
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let victims: Vec<BlockId> = universe
            .iter()
            .copied()
            .enumerate()
            .filter(|&(k, _)| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (300..700).contains(&k) || (state >> 33) % 100 < 20
            })
            .map(|(_, id)| id)
            .collect();
        assert!(victims.len() > 256, "must cross the fan-out threshold");
        for v in &victims {
            store.remove(v);
        }
        (code, store, victims)
    };

    let (code_a, store_a, victims) = build();
    let (code_b, store_b, _) = build();
    let parallel = code_a.repair_missing(&store_a, &victims, n);
    let serial = code_b.repair_missing_serial(&store_b, &victims, n);
    assert_eq!(parallel, serial, "threaded planner diverged from serial");
    assert!(parallel.total_repaired() > 0);
    assert_eq!(store_a.len(), store_b.len());
    assert_eq!(store_a, store_b);
}
