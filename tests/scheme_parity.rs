//! Scheme parity: AE, Reed-Solomon and replication all round-trip
//! `encode_batch` → random erasures → `repair_missing` through one
//! `RedundancyScheme`-generic harness. No code in this file knows which
//! scheme it is exercising.

use aecodes::baselines::{ReedSolomon, Replication};
use aecodes::blocks::{Block, BlockId};
use aecodes::core::{BlockMap, Code, RedundancyScheme};
use aecodes::lattice::Config;
use aecodes::store::{ChainMode, EntangledChain, GeoLattice};
use proptest::prelude::*;
use std::collections::BTreeSet;

const BLOCK: usize = 32;

/// Any scheme in the lineup — the Table IV codes plus the store-backed
/// §IV use-case schemes — boxed behind the one trait.
fn any_scheme() -> impl Strategy<Value = Box<dyn RedundancyScheme>> {
    (0u8..10).prop_map(|pick| -> Box<dyn RedundancyScheme> {
        match pick {
            0 => Box::new(Code::new(Config::single(), BLOCK)),
            1 => Box::new(Code::new(Config::new(2, 2, 5).unwrap(), BLOCK)),
            2 => Box::new(Code::new(Config::new(3, 2, 5).unwrap(), BLOCK)),
            3 => Box::new(ReedSolomon::new(4, 2).unwrap()),
            4 => Box::new(ReedSolomon::new(10, 4).unwrap()),
            5 => Box::new(Replication::new(2)),
            6 => Box::new(Replication::new(3)),
            7 => Box::new(EntangledChain::new(ChainMode::Open, BLOCK)),
            8 => Box::new(EntangledChain::new(ChainMode::Closed, BLOCK)),
            _ => Box::new(GeoLattice::new(
                Code::new(Config::new(2, 2, 5).unwrap(), BLOCK),
                7,
            )),
        }
    })
}

fn payload(n: u64, seed: u64) -> Vec<Block> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            Block::from_vec((0..BLOCK).map(|k| (state >> (k % 56)) as u8).collect())
        })
        .collect()
}

/// Encodes `blocks` through the trait, returning the filled store.
fn encode_all(scheme: &dyn RedundancyScheme, blocks: &[Block]) -> BlockMap {
    let store = BlockMap::new();
    let report = scheme.encode_batch(blocks, &store).expect("uniform sizes");
    assert_eq!(report.data_written(), blocks.len() as u64);
    scheme.seal(&store).expect("flush buffered redundancy");
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Scattered single data-block erasures, far enough apart that every
    /// scheme in the lineup must recover all of them, byte-identically,
    /// through the same generic code path.
    #[test]
    fn all_schemes_round_trip_scattered_erasures(
        scheme in any_scheme(),
        seed: u64,
        picks in proptest::collection::btree_set(0u64..20, 1..5),
    ) {
        let n = 400u64;
        let blocks = payload(n, seed);
        let store = encode_all(scheme.as_ref(), &blocks);

        // One victim per 20-wide stride: strictly more than any stripe
        // width or repair-tuple span apart, so no scheme can be over-erased.
        // Victims come from the scheme's own universe (the geo lattice
        // namespaces its ids), in write order, data blocks only.
        let data_ids: Vec<BlockId> = scheme
            .block_ids(n)
            .into_iter()
            .filter(|id| id.is_data())
            .collect();
        let victims: Vec<BlockId> = picks.iter().map(|&p| data_ids[(p * 20) as usize]).collect();
        let originals: Vec<Block> = victims
            .iter()
            .map(|v| store.remove(v).expect("victim was stored"))
            .collect();

        let summary = scheme.repair_missing(&store, &victims, n);
        prop_assert!(
            summary.fully_recovered(),
            "{} left {:?}",
            scheme.scheme_name(),
            summary.unrecovered
        );
        prop_assert!(summary.blocks_read > 0);
        for (v, original) in victims.iter().zip(&originals) {
            let repaired = store.get(v);
            prop_assert_eq!(
                repaired.as_ref(),
                Some(original),
                "{}: {}",
                scheme.scheme_name(),
                v
            );
        }
    }

    /// Single-block repair agrees with the round engine and reports
    /// missing tuple members on an empty store.
    #[test]
    fn repair_block_matches_and_errors_are_rich(
        scheme in any_scheme(),
        seed: u64,
        victim in 1u64..200,
    ) {
        let n = 200u64;
        let blocks = payload(n, seed);
        let store = encode_all(scheme.as_ref(), &blocks);
        // The victim's id in the scheme's own (possibly namespaced) space.
        let id = scheme
            .block_ids(n)
            .into_iter()
            .filter(|q| q.is_data())
            .nth(victim as usize - 1)
            .expect("victim within extent");
        let original = store.remove(&id).expect("victim was stored");
        let repaired = scheme.repair_block(&store, id, n);
        prop_assert_eq!(
            repaired.as_ref().ok(),
            Some(&original),
            "{}",
            scheme.scheme_name()
        );

        // With nothing available the repair fails and says what it needed.
        let err = scheme.repair_block(&BlockMap::new(), id, n).unwrap_err();
        prop_assert!(
            !err.missing_blocks().is_empty(),
            "{} error must name missing members",
            scheme.scheme_name()
        );
    }

    /// The availability hooks agree with the byte plane: a block the
    /// structural oracle calls repairable under a random availability
    /// pattern is indeed repairable with bytes, and vice versa.
    #[test]
    fn availability_oracle_matches_byte_plane(
        scheme in any_scheme(),
        seed: u64,
        down in proptest::collection::btree_set(0usize..600, 1..40),
    ) {
        let n = 120u64;
        let blocks = payload(n, seed);
        let full = encode_all(scheme.as_ref(), &blocks);
        let universe = scheme.block_ids(n);

        // Knock out a random subset of the universe.
        let downed: BTreeSet<BlockId> = down
            .iter()
            .filter_map(|&k| universe.get(k % universe.len()).copied())
            .collect();
        let store = full.clone();
        for id in &downed {
            store.remove(id);
        }

        for &target in downed.iter().take(10) {
            let avail = |q: BlockId| q != target && !downed.contains(&q) && full.contains_key(&q);
            let oracle = scheme.is_repairable(target, n, &avail);
            let bytes = scheme.repair_block(&store, target, n).is_ok();
            prop_assert_eq!(
                oracle,
                bytes,
                "{}: {} oracle vs bytes",
                scheme.scheme_name(),
                target
            );
        }
    }
}
