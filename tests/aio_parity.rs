//! Async/sync parity: every roster scheme from `Scheme::extended_lineup()`
//! drives the generic `Archive` twice — once over a plain in-memory
//! backend (the serial reference) and once over the same backend wrapped
//! in `ae_aio`'s latency model (`BlockOn<LatencyStore<MemStore>>`, virtual
//! clock, seeded jitter), where degraded reads and scrubs take the
//! pipelined bounded-in-flight path. Every file read, every error, every
//! scrub count and the final backend state must be **byte-identical**:
//! pipelining changes wall-clock, never outcomes. Dead-remote tests pin
//! the typed timeout semantics (`StoreError::TimedOut`, never a hang —
//! the virtual-clock executor panics on a hung future, so mere completion
//! is the no-hang proof), and a `FaultyStore` composition proves the
//! latency wrapper stacks cleanly on fault injection.

use aecodes::aio::{BlockOn, Clock, LatencyStore, LinkSpec, RetryPolicy, Runtime, Tier};
use aecodes::api::{BlockRepo, BlockSink, BlockSource, RedundancyScheme, StoreError};
use aecodes::blocks::BlockId;
use aecodes::sim::Scheme;
use aecodes::store::archive::{Archive, ArchiveError};
use aecodes::store::{FaultyStore, MemStore};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const BLOCK: usize = 32;

/// A few files of awkward sizes (empty, sub-block, exact multiple, large)
/// — the same roster `archive_matrix.rs` uses.
fn files() -> Vec<(&'static str, Vec<u8>)> {
    let content = |len: usize, seed: u64| -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect()
    };
    vec![
        ("empty.flag", Vec::new()),
        ("tiny.txt", content(11, 3)),
        ("exact.bin", content(BLOCK * 4, 5)),
        ("report.pdf", content(2_000, 7)),
        ("trace.log", content(700, 9)),
    ]
}

fn filled_archive<B: BlockRepo + ?Sized>(scheme: &Scheme, store: Arc<B>) -> Archive<B> {
    let scheme: Arc<dyn RedundancyScheme> = Arc::from(scheme.build(BLOCK));
    let mut ar = Archive::with_scheme(scheme, BLOCK, store);
    for (name, contents) in files() {
        ar.put(name, &contents).expect("fresh name");
    }
    ar.seal().expect("flush buffered redundancy");
    ar
}

type NetStore<S> = BlockOn<LatencyStore<S>>;

/// A latency-wrapped backend on a fresh virtual-clock runtime: 1 ms RTT
/// with seeded jitter, so pipelined and serial schedules genuinely differ
/// while outcomes must not.
fn wrap<S: BlockRepo + Send + Sync + 'static>(inner: Arc<S>, seed: u64) -> Arc<NetStore<S>> {
    let rt = Runtime::new(Clock::virtual_time());
    let spec = LinkSpec {
        rtt: Duration::from_millis(1),
        jitter: Duration::from_micros(50),
        bytes_per_sec: None,
    };
    Arc::new(LatencyStore::uniform(inner, rt, spec, seed).into_sync())
}

/// Byte-for-byte backend equality.
fn assert_same_state(reference: &MemStore, network: &MemStore, ctx: &str) {
    let mut a = reference.ids();
    let mut b = network.ids();
    a.sort();
    b.sort();
    assert_eq!(a, b, "{ctx}: backends hold different id sets");
    for id in &a {
        assert_eq!(reference.get(*id), network.get(*id), "{ctx}: {id}");
    }
}

/// The core matrix: erasure damage, degraded reads, scrub — every roster
/// scheme, serial vs pipelined, byte-identical throughout.
#[test]
fn every_roster_scheme_reads_and_scrubs_identically_over_the_network() {
    for s in Scheme::extended_lineup() {
        let plain = Arc::new(MemStore::new());
        let mut reference = filled_archive(&s, Arc::clone(&plain));
        let inner = Arc::new(MemStore::new());
        let net = wrap(Arc::clone(&inner), 0xA1CE);
        let mut piped = filled_archive(&s, Arc::clone(&net));
        let name = reference.scheme().scheme_name();

        assert_eq!(reference.stored_ids(), piped.stored_ids(), "{name}");
        assert_same_state(&plain, &inner, &format!("{name}: after seal"));

        // Scattered erasures behind both archives' backs.
        let victims: Vec<BlockId> = reference.stored_ids().iter().copied().step_by(20).collect();
        assert!(!victims.is_empty());
        for v in &victims {
            assert!(plain.remove(*v), "{name}: {v}");
            assert!(inner.remove(*v), "{name}: {v}");
        }

        // Degraded reads: identical bytes, and the pipelined path stays
        // read-only on the backend just like the serial one.
        for (file, contents) in files() {
            assert_eq!(reference.get(file).expect(file), contents, "{name}");
            assert_eq!(piped.get(file).expect(file), contents, "{name}");
        }
        assert!(
            !inner.contains(victims[0]),
            "{name}: pipelined get wrote back"
        );

        // Scrub: same restoration count, byte-identical final state.
        let restored_ref = reference.scrub();
        let restored_net = piped.scrub();
        assert_eq!(restored_ref, restored_net, "{name}: scrub counts diverge");
        assert_eq!(restored_ref as usize, victims.len(), "{name}");
        assert_same_state(&plain, &inner, &format!("{name}: after scrub"));
        assert_eq!(piped.scrub(), 0, "{name}: pipelined scrub is idempotent");
        assert!(piped.verify_all().is_empty(), "{name}");
    }
}

/// The latency wrapper composes with fault injection: corruption (the
/// case where `fetch` and `read` answers disagree, which the replay
/// machinery must not conflate) heals identically through the network.
#[test]
fn corruption_heals_identically_through_the_latency_wrapper() {
    for s in Scheme::extended_lineup() {
        let plain_faulty = Arc::new(FaultyStore::new(Arc::new(MemStore::new())));
        let mut reference = filled_archive(&s, Arc::clone(&plain_faulty));
        let net_faulty = Arc::new(FaultyStore::new(Arc::new(MemStore::new())));
        let net = wrap(Arc::clone(&net_faulty), 0xFA17);
        let mut piped = filled_archive(&s, Arc::clone(&net));
        let name = reference.scheme().scheme_name();

        let victims: Vec<BlockId> = reference.stored_ids().iter().copied().step_by(20).collect();
        plain_faulty.corrupt_all(victims.iter().copied());
        net_faulty.corrupt_all(victims.iter().copied());

        for (file, contents) in files() {
            assert_eq!(reference.get(file).expect(file), contents, "{name}");
            assert_eq!(piped.get(file).expect(file), contents, "{name}");
        }
        assert_eq!(
            net_faulty.corrupted_len(),
            victims.len(),
            "{name}: degraded reads must not heal"
        );

        let restored_ref = reference.scrub();
        let restored_net = piped.scrub();
        assert_eq!(restored_ref, restored_net, "{name}");
        assert_eq!(
            net_faulty.corrupted_len(),
            0,
            "{name}: scrub heals corruption"
        );
        assert_same_state(
            plain_faulty.inner(),
            net_faulty.inner(),
            &format!("{name}: after scrub"),
        );
        assert!(piped.verify_all().is_empty(), "{name}");
    }
}

/// A dead remote degrades to typed errors — `StoreError::TimedOut` on the
/// store surface, `BlockUnavailable` on the archive surface — and never
/// hangs: the virtual-clock executor panics on a deadlocked future, so
/// completion of every call below *is* the no-hang proof. Reviving the
/// link restores full service.
#[test]
fn dead_remote_degrades_to_typed_errors_and_revival_restores_service() {
    let inner = Arc::new(MemStore::new());
    let rt = Runtime::new(Clock::virtual_time());
    let net = Arc::new(
        LatencyStore::uniform(
            Arc::clone(&inner),
            rt,
            LinkSpec::rtt(Duration::from_millis(1)),
            7,
        )
        .with_retry(RetryPolicy {
            attempts: 2,
            timeout: Duration::from_millis(5),
            backoff: Duration::from_millis(2),
            multiplier: 2,
        })
        .into_sync(),
    );
    let lineup = Scheme::extended_lineup();
    let ar = filled_archive(&lineup[0], Arc::clone(&net));

    net.inner().set_dead(Tier::Local, true);
    // Store surface: typed, exhaustive, no hang.
    let probe = *ar.stored_ids().first().expect("archive wrote blocks");
    assert_eq!(net.read(probe), Err(StoreError::TimedOut(probe)));
    assert_eq!(net.fetch(probe), None);
    assert!(!net.has(probe));
    // Archive surface: the pipelined degraded read completes with the
    // typed unavailability error, never a hang.
    match ar.get("exact.bin") {
        Err(ArchiveError::BlockUnavailable { .. }) => {}
        other => panic!("expected BlockUnavailable from a dead remote, got {other:?}"),
    }

    net.inner().set_dead(Tier::Local, false);
    for (file, contents) in files() {
        assert_eq!(ar.get(file).expect(file), contents, "revived remote serves");
    }
}

fn any_roster_index() -> impl Strategy<Value = usize> {
    0..Scheme::extended_lineup().len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under arbitrary random damage — including damage heavy enough that
    /// reads fail — the pipelined path returns **exactly** the serial
    /// path's result for every file: same bytes on success, same typed
    /// error (same missing tuple members) on failure, same scrub count,
    /// same final backend bytes.
    #[test]
    fn pipelined_and_serial_paths_agree_under_random_damage(
        pick in any_roster_index(),
        damage_seed: u64,
        damage_pct in 5u64..45,
    ) {
        let roster = Scheme::extended_lineup();
        let plain = Arc::new(MemStore::new());
        let mut reference = filled_archive(&roster[pick], Arc::clone(&plain));
        let inner = Arc::new(MemStore::new());
        let net = wrap(Arc::clone(&inner), damage_seed ^ 0xA1CE);
        let mut piped = filled_archive(&roster[pick], Arc::clone(&net));
        let name = reference.scheme().scheme_name();

        // Identical pseudo-random damage on both backends.
        let mut state = damage_seed | 1;
        for id in reference.stored_ids() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (state >> 33) % 100 < damage_pct {
                plain.remove(*id);
                inner.remove(*id);
            }
        }

        for (file, contents) in files() {
            let serial = reference.get(file);
            let pipelined = piped.get(file);
            prop_assert_eq!(&serial, &pipelined, "{}: {}", name, file);
            if let Ok(bytes) = serial {
                prop_assert_eq!(bytes, contents, "{}: {}", name, file);
            }
        }

        prop_assert_eq!(reference.scrub(), piped.scrub(), "{}", name);
        let mut a = plain.ids();
        let mut b = inner.ids();
        a.sort();
        b.sort();
        prop_assert_eq!(&a, &b, "{}: id sets", name);
        for id in &a {
            prop_assert_eq!(plain.get(*id), inner.get(*id), "{}: {}", name, id);
        }
        prop_assert_eq!(reference.verify_all(), piped.verify_all(), "{}", name);
    }
}
