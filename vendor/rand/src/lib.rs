//! Offline stand-in for `rand` 0.9.
//!
//! Implements the subset of the rand API used by this workspace — seeded
//! [`rngs::StdRng`], [`Rng::random_range`], [`Rng::random_bool`],
//! [`Rng::fill`] and [`seq::SliceRandom::shuffle`] — on top of the
//! SplitMix64 generator. All simulations in this repository only require a
//! deterministic, well-distributed generator, not cryptographic quality, so
//! SplitMix64 (the seeding generator of the xoshiro family) suffices.

/// A random number generator.
pub trait Rng {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from an integer range (`lo..hi` or `lo..=hi`).
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0,1], got {p}"
        );
        // 53 uniform bits in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;

            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;

            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic seeded generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension trait adding in-place shuffling to slices.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0u32..10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
        for _ in 0..100 {
            let v = rng.random_range(5i64..=7);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }

    #[test]
    fn fill_fills() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = vec![0u8; 37];
        rng.fill(buf.as_mut_slice());
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, orig);
    }
}
