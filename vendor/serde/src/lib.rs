//! Offline stand-in for `serde`.
//!
//! The workspace annotates types with `Serialize`/`Deserialize` so they are
//! ready for a real serializer, but nothing serializes today and the build
//! environment has no network access. This crate supplies marker traits and
//! re-exports the no-op derives so the annotations compile unchanged.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
