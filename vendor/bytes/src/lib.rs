//! Offline stand-in for the `bytes` crate.
//!
//! The workspace builds without network access, so this vendored crate
//! provides the small slice of the real `bytes` API the workspace uses:
//! [`Bytes`], a cheaply clonable, immutable, reference-counted byte buffer.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable byte buffer (reference counted).
///
/// Backed by `Arc<Vec<u8>>` so that [`From<Vec<u8>>`] is zero-copy — the
/// vector's allocation is adopted, never duplicated — matching the real
/// `bytes` crate's `Bytes::from(Vec<u8>)` semantics.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::new(Vec::new()),
        }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::new(data.to_vec()),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_adopts_the_allocation() {
        let v = vec![1u8, 2, 3];
        let p = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ref().as_ptr(), p, "From<Vec<u8>> must not copy");
    }

    #[test]
    fn clones_share_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
        assert_eq!(a.len(), 3);
    }
}
