//! No-op `Serialize`/`Deserialize` derives for the offline serde stand-in.
//!
//! The workspace only uses serde derives as forward-looking annotations (no
//! serializer is wired up anywhere), so deriving nothing is sufficient.

use proc_macro::TokenStream;

/// Derives a no-op `Serialize` marker impl (nothing is emitted).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives a no-op `Deserialize` marker impl (nothing is emitted).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
