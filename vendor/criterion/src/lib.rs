//! Offline stand-in for `criterion`.
//!
//! Provides the criterion API surface this workspace's benches use —
//! benchmark groups, [`BenchmarkId`], [`Throughput`], `Bencher::iter` and
//! the `criterion_group!`/`criterion_main!` macros — over a simple
//! wall-clock harness: a short warm-up followed by a timed measurement
//! window, reporting mean time per iteration (and derived throughput).
//!
//! Set `CRITERION_QUICK=1` to shrink the measurement windows (used by CI
//! smoke runs), and `CRITERION_JSON=<path>` to append one JSON line per
//! benchmark for machine-readable results.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Elements per iteration.
    Elements(u64),
}

/// A group of related benchmarks sharing a name and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the sample count (accepted for API compatibility; the harness
    /// sizes its measurement window by time, not samples).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let per_iter = if bencher.iters > 0 {
            bencher.total / bencher.iters as u32
        } else {
            Duration::ZERO
        };
        let full = format!("{}/{}", self.name, id.id);
        let mut line = format!(
            "bench {full:<48} {:>12.3} us/iter",
            per_iter.as_secs_f64() * 1e6
        );
        let ns = per_iter.as_secs_f64() * 1e9;
        if let (Some(Throughput::Bytes(b)), true) = (self.throughput, ns > 0.0) {
            let gib_s = b as f64 / per_iter.as_secs_f64() / (1 << 30) as f64;
            line.push_str(&format!("  {gib_s:>8.3} GiB/s"));
        }
        println!("{line}");
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let bytes = match self.throughput {
                    Some(Throughput::Bytes(b)) => b,
                    _ => 0,
                };
                let _ = writeln!(
                    file,
                    "{{\"bench\":\"{full}\",\"ns_per_iter\":{ns:.1},\"iters\":{},\"throughput_bytes\":{bytes}}}",
                    bencher.iters
                );
            }
        }
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn windows() -> (Duration, Duration) {
        if std::env::var("CRITERION_QUICK").is_ok() {
            (Duration::from_millis(5), Duration::from_millis(20))
        } else {
            (Duration::from_millis(100), Duration::from_millis(400))
        }
    }

    /// Times `f`: warm-up, then a measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let (warmup, measure) = Self::windows();
        // Warm-up: also estimates per-iteration cost.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
            if warm_iters > 1_000_000_000 {
                break;
            }
        }
        // Measurement.
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < measure || iters == 0 {
            std::hint::black_box(f());
            iters += 1;
        }
        self.total = start.elapsed();
        self.iters = iters;
    }

    /// Times `routine` over inputs produced by `setup`, excluding setup
    /// time from the measurement — for routines that consume or mutate
    /// their input (a fresh archive to damage, a buffer to drain).
    ///
    /// The vendored harness runs setup before every routine call
    /// regardless of `size` (batching only changes amortization in real
    /// criterion; correctness-wise per-iteration setup is the strictest
    /// interpretation), timing only the routine body.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let (warmup, measure) = Self::windows();
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup || warm_iters == 0 {
            let input = setup();
            std::hint::black_box(routine(input));
            warm_iters += 1;
            if warm_iters > 1_000_000_000 {
                break;
            }
        }
        let mut timed = Duration::ZERO;
        let mut iters = 0u64;
        let window = Instant::now();
        while window.elapsed() < measure || iters == 0 {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            timed += start.elapsed();
            iters += 1;
        }
        self.total = timed;
        self.iters = iters;
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; the vendored harness always sets up per iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: batch many per setup in real criterion.
    SmallInput,
    /// Large inputs: one per setup.
    LargeInput,
    /// Inputs of each batch fit in memory exactly once.
    PerIteration,
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export for code written against `criterion::black_box`.
pub use std::hint::black_box;
