//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait over integer ranges, tuples, [`Just`]
//! and unions; [`collection::vec`] / [`collection::btree_set`]; `any::<T>()`
//! for primitive types; and the [`proptest!`], [`prop_oneof!`],
//! [`prop_assert!`] and [`prop_assert_eq!`] macros.
//!
//! Unlike real proptest there is no shrinking: a failing case reports its
//! generated inputs (via `Debug`) and the case number. Generation is fully
//! deterministic per test (seeded by the test body's location), so failures
//! reproduce exactly.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0xA076_1D64_78BD_642F,
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value-generation strategy.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Filters and maps generated values, retrying until `f` returns
    /// `Some` (up to an attempt cap).
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            f,
            whence,
        }
    }

    /// Maps generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map {:?} rejected 10000 candidates",
            self.whence
        );
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-typed strategies (built by [`prop_oneof!`]).
#[derive(Debug, Clone)]
pub struct Union<S> {
    options: Vec<S>,
}

impl<S> Union<S> {
    /// Builds a union; panics when empty.
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;

            fn arbitrary() -> Self::Strategy {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over a type's full value range (what `any::<T>()` returns).
#[derive(Debug, Clone, Copy)]
pub struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! impl_full_range {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_full_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;

    fn arbitrary() -> Self::Strategy {
        FullRange(std::marker::PhantomData)
    }
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Collection strategies.
pub mod collection {
    use super::{BTreeSet, Strategy, TestRng};
    use std::ops::Range;

    /// Size specification for collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` targeting a size in `size`
    /// (duplicates may yield fewer elements, as in real proptest).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng).max(1);
            let mut out = BTreeSet::new();
            for _ in 0..target * 20 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// The error a failing property returns (message only; no shrinking).
pub type TestCaseError = String;

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Uniform random choice among strategies of one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($strategy),+])
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// immediately) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} at {}:{}",
                format_args!($($fmt)*), file!(), line!()
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: `{:?} == {:?}` at {}:{}",
                l, r, file!(), line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: `{:?} == {:?}`: {} at {}:{}",
                l, r, format_args!($($fmt)*), file!(), line!()
            ));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: `{:?} != {:?}` at {}:{}",
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// Declares property tests. Parameters may be `name in strategy` or
/// `name: Type` (the latter uses `any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @tests($cfg) $($rest)* }
    };
    (@tests($cfg:expr)) => {};
    (@tests($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($params:tt)* ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_params!{ @munch [$cfg, $body] [] $($params)* }
        }
        $crate::proptest!{ @tests($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest!{ @tests($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: normalises the parameter list
/// into `pattern in strategy` pairs, then emits the case loop.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_params {
    // `mut name in strategy` with more parameters following.
    (@munch [$cfg:expr, $body:block] [$([$p:pat, $s:expr])*] mut $x:ident in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_params!{ @munch [$cfg, $body] [$([$p, $s])* [mut $x, $strat]] $($rest)* }
    };
    // `mut name in strategy` as the final parameter.
    (@munch [$cfg:expr, $body:block] [$([$p:pat, $s:expr])*] mut $x:ident in $strat:expr) => {
        $crate::__proptest_params!{ @emit [$cfg, $body] [$([$p, $s])* [mut $x, $strat]] }
    };
    // `name in strategy` with more parameters following.
    (@munch [$cfg:expr, $body:block] [$([$p:pat, $s:expr])*] $x:ident in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_params!{ @munch [$cfg, $body] [$([$p, $s])* [$x, $strat]] $($rest)* }
    };
    // `name in strategy` as the final parameter.
    (@munch [$cfg:expr, $body:block] [$([$p:pat, $s:expr])*] $x:ident in $strat:expr) => {
        $crate::__proptest_params!{ @emit [$cfg, $body] [$([$p, $s])* [$x, $strat]] }
    };
    // `name: Type` with more parameters following.
    (@munch [$cfg:expr, $body:block] [$([$p:pat, $s:expr])*] $x:ident : $t:ty, $($rest:tt)*) => {
        $crate::__proptest_params!{ @munch [$cfg, $body] [$([$p, $s])* [$x, $crate::any::<$t>()]] $($rest)* }
    };
    // `name: Type` as the final parameter.
    (@munch [$cfg:expr, $body:block] [$([$p:pat, $s:expr])*] $x:ident : $t:ty) => {
        $crate::__proptest_params!{ @emit [$cfg, $body] [$([$p, $s])* [$x, $crate::any::<$t>()]] }
    };
    // Trailing comma already consumed; nothing left.
    (@munch [$cfg:expr, $body:block] [$([$p:pat, $s:expr])*]) => {
        $crate::__proptest_params!{ @emit [$cfg, $body] [$([$p, $s])*] }
    };
    (@emit [$cfg:expr, $body:block] [$([$p:pat, $s:expr])*]) => {{
        let config: $crate::ProptestConfig = $cfg;
        // Seed from the source location so every property is deterministic
        // but distinct.
        let seed = {
            let loc = concat!(file!(), ":", line!(), ":", column!());
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in loc.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            h
        };
        let mut rng = $crate::TestRng::new(seed);
        for case in 0..config.cases {
            $(let $p = $crate::Strategy::generate(&$s, &mut rng);)*
            let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                $body
                #[allow(unreachable_code)]
                Ok(())
            })();
            if let Err(msg) = result {
                panic!("property failed at case {case}/{}: {msg}", config.cases);
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..100 {
            let v = (1u8..=3).generate(&mut rng);
            assert!((1..=3).contains(&v));
            let (a, b) = (0u8..4, 0i64..60).generate(&mut rng);
            assert!(a < 4 && (0..60).contains(&b));
        }
    }

    #[test]
    fn oneof_covers_options() {
        let strat = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut rng = crate::TestRng::new(2);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..50 {
            let v = crate::collection::vec(0u8..10, 1..8).generate(&mut rng);
            assert!((1..8).contains(&v.len()));
            let s = crate::collection::btree_set(0u64..1000, 1..6).generate(&mut rng);
            assert!((1..6).contains(&s.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_smoke(x in 0u32..10, y: u8, pair in (0u8..4, 0i64..60)) {
            prop_assert!(x < 10);
            prop_assert_eq!(pair.0 as u32, u32::from(pair.0));
            let _ = y;
            prop_assert!(pair.1 < 60, "pair {:?}", pair);
        }
    }
}
