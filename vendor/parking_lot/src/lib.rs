//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's panic-free lock API
//! (no `Result` on acquisition; poisoning is ignored, matching parking_lot
//! semantics).

use std::sync;

/// A reader-writer lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A mutex with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }
}
