//! Workload generators shared by the Criterion benches.
//!
//! The benches regenerate the paper's tables and figures at benchmark
//! scale; the full-scale series come from the `ae-sim` binaries
//! (`fig11_data_loss` etc.). Mapping:
//!
//! | bench target | paper artefact |
//! |---|---|
//! | `encode` (`benches/encode.rs`) | §V.B write performance, Fig 10 context |
//! | `repair` (`benches/repair.rs`) | Table IV "SF" row: 2-read AE repair vs k-read RS repair |
//! | `me_search` (`benches/me_search.rs`) | Figs 6–9 pattern search cost |
//! | `disaster` (`benches/disaster.rs`) | Figs 11–13, Table VI at reduced scale |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ae_blocks::Block;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic pseudo-random data blocks for encoder workloads.
pub fn data_blocks(count: usize, size: usize, seed: u64) -> Vec<Block> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut v = vec![0u8; size];
            rng.fill(v.as_mut_slice());
            Block::from_vec(v)
        })
        .collect()
}

/// Deterministic pseudo-random shard rows for RS workloads.
pub fn data_shards(k: usize, size: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..k)
        .map(|_| {
            let mut v = vec![0u8; size];
            rng.fill(v.as_mut_slice());
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(data_blocks(3, 64, 9), data_blocks(3, 64, 9));
        assert_eq!(data_shards(4, 32, 9), data_shards(4, 32, 9));
        assert_ne!(data_blocks(1, 64, 1), data_blocks(1, 64, 2));
    }

    #[test]
    fn generators_honor_sizes() {
        let blocks = data_blocks(5, 128, 3);
        assert_eq!(blocks.len(), 5);
        assert!(blocks.iter().all(|b| b.len() == 128));
        let shards = data_shards(6, 16, 3);
        assert_eq!(shards.len(), 6);
        assert!(shards.iter().all(|s| s.len() == 16));
    }
}
