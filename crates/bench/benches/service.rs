//! Service-layer benchmark: multi-tenant serving throughput and latency,
//! AE vs Reed-Solomon vs replication, uniform vs Zipf-skewed traffic,
//! one shard vs a pool.
//!
//! Criterion's per-iteration timing can't express in-run latency
//! percentiles, so this bench is a custom `harness = false` main: each
//! cell builds a fresh multi-tenant [`ArchiveService`], warms every
//! tenant with a seeded write phase (unmeasured), then drives an
//! open-loop paced serving phase (reads over writes and scrubs) through
//! the worker pool and reports the service's own [`ServiceReport`] —
//! p50/p99 per op kind, aggregate throughput, queue-depth highwater.
//!
//! Two throughput figures per cell:
//!
//! - `ops_per_sec` — raw completions over the serving wall clock. On a
//!   single-core host this is compute-bound and near-identical across
//!   shard counts.
//! - `goodput_slo_ops_per_sec` — completions that met the latency SLO
//!   ([`SLO`]). Scrubs are whole-archive sweeps, so a lone shard
//!   head-of-line-blocks every tenant's reads behind them; a pool keeps
//!   the other shards' queues draining. This is where sharding pays even
//!   without parallel compute, and the figure the multi-shard >
//!   single-shard gate is asserted on.
//!
//! Each cell pools [`TRIALS`] runs (merged histograms, summed wall
//! clock) to damp scheduler noise. JSON lines go to **stdout** (the
//! `BENCH_service.json` format), human commentary to stderr:
//!
//! ```sh
//! cargo bench -p ae-bench --bench service > BENCH_service.json
//! AE_BENCH_SERVICE_OPS=200 cargo bench -p ae-bench --bench service   # smoke
//! ```

use ae_api::RedundancyScheme;
use ae_baselines::{ReedSolomon, Replication};
use ae_core::Code;
use ae_lattice::Config;
use ae_service::{
    ArchiveService, MetaConfig, OpKind, OpMix, Phase, ServiceConfig, ServiceReport, SharedBackend,
    TenantId, Workload, WorkloadConfig,
};
use ae_store::MemStore;
use std::sync::Arc;
use std::time::Duration;

const BLOCK: usize = 1024;
const TENANTS: u16 = 8;
const SEED: u64 = 0xAE5E;
/// Per-op latency SLO for the goodput figure: generous against the
/// sub-millisecond media path, tight against a multi-millisecond wait
/// behind another tenant's archive-wide scrub.
const SLO: Duration = Duration::from_millis(5);
/// Trials pooled per cell; single-core scheduler noise otherwise
/// dominates any single run.
const TRIALS: usize = 3;

type SchemeFactory = fn() -> Arc<dyn RedundancyScheme>;

/// (name, factory, warm-corpus factor). The factor sizes each scheme's
/// corpus so one scrub sweep lasts a comparable wall time (~2-4× the
/// SLO) across schemes: AE verifies a whole entanglement lattice per
/// sweep so it needs a smaller corpus, Reed-Solomon only re-codes
/// stripes so it needs a larger one. Equal burst durations make the
/// single-vs-pool isolation comparison apples-to-apples.
fn schemes() -> Vec<(&'static str, SchemeFactory, f64)> {
    vec![
        (
            "AE(3,2,5)",
            (|| Arc::new(Code::new(Config::new(3, 2, 5).unwrap(), BLOCK))) as SchemeFactory,
            0.75,
        ),
        ("RS(4,2)", || Arc::new(ReedSolomon::new(4, 2).unwrap()), 2.0),
        ("3-replic", || Arc::new(Replication::new(3)), 1.25),
    ]
}

/// Two phases sharing one seed: an unmeasured warm phase that populates
/// every tenant, then the measured serving phase paced at `interarrival`.
fn workload_phases(
    serve_ops: usize,
    warm_ops: usize,
    zipf: bool,
    interarrival: Duration,
) -> Vec<Workload> {
    Workload::generate_phased(
        SEED,
        WorkloadConfig {
            tenants: TENANTS,
            phases: vec![
                // Large warm corpus: scrub cost scales with archive
                // size, and long scrub bursts are what a single shard
                // cannot absorb.
                Phase {
                    ops: warm_ops,
                    mix: OpMix::write_only(),
                    interarrival: Duration::ZERO,
                },
                // Serving traffic with a maintenance window mixed in,
                // paced below system capacity: scrubs are whole-archive
                // sweeps pinned to tenant 3 (`scrub_tenant` below — a
                // sizeable corpus that shares no shard with the
                // zipf-hot tenant 0), so a single shard backlogs
                // *every* tenant's reads behind them while a pool
                // confines the backlog to the maintenance shard. Scrubs
                // are rare (1%) but long: a low duty cycle keeps bursts
                // from overlapping, so queues drain between them and
                // SLO misses trace to head-of-line blocking rather than
                // steady-state load.
                Phase {
                    ops: serve_ops,
                    mix: OpMix {
                        put: 20,
                        get: 79,
                        scrub: 1,
                    },
                    interarrival,
                },
            ],
            tenant_skew: zipf.then_some(0.99),
            file_skew: zipf.then_some(0.99),
            payload: (BLOCK, 12 * BLOCK),
            scrub_tenant: Some(TenantId(3)),
            seal_tail: false,
        },
    )
}

fn quantile_ns(report: &ServiceReport, kind: OpKind, q: f64) -> u64 {
    report
        .latency(kind)
        .quantile(q)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// Completions that met the SLO, per second of serving wall clock.
fn goodput(report: &ServiceReport) -> f64 {
    let secs = report.wall.as_secs_f64();
    if secs == 0.0 {
        return 0.0;
    }
    let met: u64 = OpKind::ALL
        .iter()
        .map(|&k| report.latency(k).count_at_most(SLO))
        .sum();
    met as f64 / secs
}

struct Trial {
    report: ServiceReport,
    saturated_retries: u64,
}

fn trial(make: SchemeFactory, shards: usize, phases: &[Workload]) -> Trial {
    let backend: SharedBackend = Arc::new(MemStore::new());
    let mut svc = ArchiveService::new(
        backend,
        ServiceConfig {
            shards: Some(shards),
            queue_depth: 1024,
            inline: false,
            meta: MetaConfig::default(),
        },
    );
    for _ in 0..TENANTS {
        svc.add_tenant(make(), BLOCK);
    }
    let (warm, _) = svc.run(|client| phases[0].drive(client));
    assert!(
        warm.clean(),
        "warm phase failed: {:?}",
        warm.failures.first()
    );
    let (outcome, report) = svc.run(|client| phases[1].drive(client));
    assert!(
        outcome.clean(),
        "serving phase failed: {:?}",
        outcome.failures.first()
    );
    assert!(svc.verify_all().is_empty());
    Trial {
        report,
        saturated_retries: outcome.saturated_retries,
    }
}

/// Measures a scheme's single-shard max-rate capacity (ops/sec) so the
/// measured cells can be paced at a fixed utilisation of it. Pacing one
/// absolute rate across schemes would leave the fastest baselines with
/// empty queues (no isolation to measure) and the slowest saturated.
fn calibrate(make: SchemeFactory, zipf: bool, serve_ops: usize, warm_ops: usize) -> f64 {
    let phases = workload_phases(serve_ops, warm_ops, zipf, Duration::ZERO);
    // Mean of two runs: pacing feeds every downstream number in the
    // cell, so calibration noise would otherwise dominate the gate.
    let a = trial(make, 1, &phases).report.ops_per_sec();
    let b = trial(make, 1, &phases).report.ops_per_sec();
    (a + b) / 2.0
}

/// One cell: scheme × popularity × shard count. Pools all [`TRIALS`]
/// runs into one merged report (summed wall clock, merged histograms) —
/// a pooled estimate is far steadier on a noisy single-core host than
/// any single trial or a best-of pick. Returns (raw ops/sec, SLO
/// goodput/sec) of the pooled cell.
fn run_cell(
    name: &str,
    make: SchemeFactory,
    zipf: bool,
    shards: usize,
    phases: &[Workload],
) -> (f64, f64) {
    let trials: Vec<Trial> = (0..TRIALS).map(|_| trial(make, shards, phases)).collect();
    let mut report = trials[0].report.clone();
    for t in &trials[1..] {
        report.wall += t.report.wall;
        for (into, from) in report.latency.iter_mut().zip(&t.report.latency) {
            into.merge(from);
        }
        for (into, from) in report
            .shard_completed
            .iter_mut()
            .zip(&t.report.shard_completed)
        {
            *into += from;
        }
        for (into, from) in report
            .queue_highwater
            .iter_mut()
            .zip(&t.report.queue_highwater)
        {
            *into = (*into).max(*from);
        }
        report.saturated += t.report.saturated;
    }
    let saturated_retries: u64 = trials.iter().map(|t| t.saturated_retries).sum();
    let report = &report;

    let pop = if zipf { "zipf" } else { "uniform" };
    let ops_per_sec = report.ops_per_sec();
    let good = goodput(report);
    println!(
        "{{\"bench\":\"service/{name}/{pop}/shards{shards}\",\
         \"ops\":{},\"wall_ns\":{},\"ops_per_sec\":{ops_per_sec:.0},\
         \"slo_ms\":{},\"goodput_slo_ops_per_sec\":{good:.0},\
         \"put_p50_ns\":{},\"put_p99_ns\":{},\
         \"get_p50_ns\":{},\"get_p99_ns\":{},\
         \"queue_highwater\":{},\"saturated_retries\":{}}}",
        report.completed(),
        report.wall.as_nanos(),
        SLO.as_millis(),
        quantile_ns(report, OpKind::Put, 0.5),
        quantile_ns(report, OpKind::Put, 0.99),
        quantile_ns(report, OpKind::Get, 0.5),
        quantile_ns(report, OpKind::Get, 0.99),
        report.queue_highwater.iter().max().copied().unwrap_or(0),
        saturated_retries,
    );
    eprintln!(
        "  {name:<10} {pop:<8} shards={shards}: {ops_per_sec:>8.0} op/s raw, \
         {good:>8.0} op/s within {SLO:?}, get p99 {:?}",
        report
            .latency(OpKind::Get)
            .quantile(0.99)
            .unwrap_or_default(),
    );
    (ops_per_sec, good)
}

fn main() {
    // `cargo bench` passes --bench (and possibly filters); ignore them.
    let serve_ops: usize = std::env::var("AE_BENCH_SERVICE_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4000);
    // Target utilisation of each cell's calibrated capacity: high enough
    // that scrub bursts backlog a single shard past the SLO, low enough
    // that queues drain between bursts.
    let util: f64 = std::env::var("AE_BENCH_SERVICE_UTIL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.7);
    let pool = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8);
    eprintln!(
        "service bench: {TENANTS} tenants, {serve_ops} serving ops per cell \
         paced at {:.0}% of calibrated capacity, {TRIALS} pooled trials, \
         pool width {pool}",
        util * 100.0
    );

    let mut gate_failures = Vec::new();
    let (mut agg_good1, mut agg_goodn) = (0.0, 0.0);
    let (mut agg_raw1, mut agg_rawn) = (0.0, 0.0);
    for (name, make, warm_factor) in schemes() {
        let warm_ops = (serve_ops as f64 * warm_factor) as usize;
        for zipf in [false, true] {
            let capacity = calibrate(make, zipf, serve_ops, warm_ops);
            let interarrival = Duration::from_secs_f64(1.0 / (capacity * util));
            eprintln!(
                "  {name} {}: capacity {capacity:.0} op/s, pacing {interarrival:?}",
                if zipf { "zipf" } else { "uniform" }
            );
            let phases = workload_phases(serve_ops, warm_ops, zipf, interarrival);
            let (raw1, good1) = run_cell(name, make, zipf, 1, &phases);
            let (rawn, goodn) = run_cell(name, make, zipf, pool, &phases);
            agg_raw1 += raw1;
            agg_rawn += rawn;
            agg_good1 += good1;
            agg_goodn += goodn;
            let pop = if zipf { "zipf" } else { "uniform" };
            eprintln!(
                "  {name} {pop}: {pool}-shard raw {:.2}x, goodput {:.2}x",
                rawn / raw1,
                goodn / good1
            );
            if goodn <= good1 {
                gate_failures.push(format!("{name}/{pop}"));
            }
        }
    }
    // Headline rows: cells summed per shard count. The aggregate damps
    // the anticorrelated per-cell noise a single-core host produces and
    // is the primary multi-vs-single comparison.
    for (shards, raw, good) in [(1, agg_raw1, agg_good1), (pool, agg_rawn, agg_goodn)] {
        println!(
            "{{\"bench\":\"service/ALL/summed/shards{shards}\",\
             \"ops_per_sec\":{raw:.0},\"slo_ms\":{},\
             \"goodput_slo_ops_per_sec\":{good:.0}}}",
            SLO.as_millis(),
        );
    }
    eprintln!(
        "aggregate: {pool}-shard raw {:.2}x, goodput {:.2}x single-shard",
        agg_rawn / agg_raw1,
        agg_goodn / agg_good1
    );
    if agg_goodn <= agg_good1 {
        gate_failures.push("aggregate".into());
    }
    if gate_failures.is_empty() {
        eprintln!("gate OK: every {pool}-shard cell beat its single-shard goodput");
    } else {
        eprintln!("gate MISSED in: {}", gate_failures.join(", "));
    }
}
