//! Network-latency cost: degraded reads and disaster repair through the
//! async block I/O subsystem (`ae-aio`), AE vs Reed-Solomon vs
//! replication, across injected RTT × in-flight window.
//!
//! Each cell archives one file into a `LatencyStore`-wrapped `MemStore`
//! on a **real-clock** runtime at zero RTT, then raises the link to the
//! target RTT (`set_link`) and measures wall-clock for (a) a degraded
//! `get` against persistent scattered damage and (b) a `scrub` repairing
//! a scattered disaster injected before each iteration (injection runs
//! in `iter_batched` setup, outside the timing). The in-flight window is
//! driven through `AE_AIO_WINDOW`, so the same pipelined code path runs
//! at every width; window=1 is the serial schedule. The headline story:
//! at 10 ms RTT repair collapses from O(blocks × RTT) at window=1 to
//! O(blocks × RTT / window) at window=8.
//!
//! Recorded numbers live in `BENCH_netlat.json`. Smoke knobs:
//! `AE_BENCH_NETLAT_BLOCKS` (data blocks per file, default 16) and
//! `AE_BENCH_NETLAT_VICTIMS` (cap on the victim list) shrink the cells
//! for CI.

use ae_aio::{BlockOn, Clock, LatencyStore, LinkSpec, Runtime, Tier};
use ae_api::RedundancyScheme;
use ae_blocks::BlockId;
use ae_store::{archive::Archive, MemStore};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const BLOCK: usize = 4096;
const RTTS_MS: [u64; 3] = [0, 1, 10];
const WINDOWS: [usize; 3] = [1, 8, 32];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn sample_file(seed: u64) -> Vec<u8> {
    let len = env_usize("AE_BENCH_NETLAT_BLOCKS", 16) * BLOCK;
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

type SchemeFactory = fn() -> Arc<dyn RedundancyScheme>;

fn schemes() -> Vec<SchemeFactory> {
    vec![
        || {
            Arc::new(ae_core::Code::new(
                ae_lattice::Config::new(3, 2, 5).unwrap(),
                BLOCK,
            ))
        },
        || Arc::new(ae_baselines::ReedSolomon::new(10, 4).unwrap()),
        || Arc::new(ae_baselines::Replication::new(3)),
    ]
}

type NetStore = BlockOn<LatencyStore<MemStore>>;

/// One archived file behind a real-clock latency wrapper, built at zero
/// RTT so setup costs nothing; callers raise the link before measuring.
fn net_archive(
    make_scheme: SchemeFactory,
    seed: u64,
) -> (Archive<NetStore>, Arc<NetStore>, Arc<MemStore>) {
    let inner = Arc::new(MemStore::new());
    let rt = Runtime::new(Clock::real());
    let net = Arc::new(
        LatencyStore::uniform(Arc::clone(&inner), rt, LinkSpec::rtt(Duration::ZERO), seed)
            .into_sync(),
    );
    let mut ar = Archive::with_scheme(make_scheme(), BLOCK, Arc::clone(&net));
    ar.put("f", &sample_file(seed)).expect("fresh name");
    ar.seal().expect("flush");
    (ar, net, inner)
}

/// Every 20th stored block — at most one shard per RS stripe, so damage
/// stays repairable for every contender — capped by the smoke knob.
fn scattered_victims(ar: &Archive<NetStore>) -> Vec<BlockId> {
    let cap = env_usize("AE_BENCH_NETLAT_VICTIMS", usize::MAX);
    ar.stored_ids()
        .iter()
        .copied()
        .step_by(20)
        .take(cap)
        .collect()
}

/// Sweeps the RTT × window grid, pointing the link and the in-flight
/// window at each cell before invoking the bench body.
fn for_each_cell(net: &NetStore, scheme_name: &str, mut body: impl FnMut(BenchmarkId)) {
    for rtt_ms in RTTS_MS {
        net.inner()
            .set_link(Tier::Local, LinkSpec::rtt(Duration::from_millis(rtt_ms)));
        for window in WINDOWS {
            std::env::set_var("AE_AIO_WINDOW", window.to_string());
            body(BenchmarkId::from_parameter(format!(
                "{scheme_name}/rtt{rtt_ms}ms/w{window}"
            )));
        }
    }
    std::env::remove_var("AE_AIO_WINDOW");
}

fn bench_degraded_get(c: &mut Criterion) {
    let mut g = c.benchmark_group("netlat/degraded_get");
    for make_scheme in schemes() {
        let (ar, net, inner) = net_archive(make_scheme, 11);
        let name = ar.scheme().scheme_name();
        // Persistent scattered damage: degraded reads repair in-memory
        // (never write back), so every iteration exercises repair.
        for v in scattered_victims(&ar) {
            inner.remove(v);
        }
        for_each_cell(&net, &name, |id| {
            g.bench_function(id, |b| {
                b.iter(|| black_box(ar.get("f").expect("degraded read succeeds")))
            });
        });
    }
    g.finish();
}

fn bench_disaster_scrub(c: &mut Criterion) {
    let mut g = c.benchmark_group("netlat/disaster_scrub");
    for make_scheme in schemes() {
        let (mut ar, net, inner) = net_archive(make_scheme, 13);
        let name = ar.scheme().scheme_name();
        let victims = scattered_victims(&ar);
        for_each_cell(&net, &name, |id| {
            g.bench_function(id, |b| {
                b.iter_batched(
                    || {
                        for v in &victims {
                            inner.remove(*v);
                        }
                    },
                    |()| {
                        let restored = ar.scrub();
                        assert_eq!(restored as usize, victims.len());
                        black_box(restored)
                    },
                    BatchSize::LargeInput,
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_degraded_get, bench_disaster_scrub);
criterion_main!(benches);
