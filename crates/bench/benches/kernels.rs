//! Substrate micro-benchmarks: the XOR kernel that is the entire
//! arithmetic of AE codes (§VII: "essentially based on exclusive-or
//! operations"), versus the GF(2^8) multiply-accumulate RS needs.

use ae_blocks::{crc32, xor, Block};
use ae_gf::{field, Gf256};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_xor(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/xor");
    for size in [256usize, 4096, 65536] {
        let a = vec![0xA5u8; size];
        let b = vec![0x5Au8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(BenchmarkId::from_parameter(size), |bch| {
            let mut dst = a.clone();
            bch.iter(|| {
                xor::xor_into(&mut dst, &b);
                black_box(&dst);
            })
        });
    }
    g.finish();
}

fn bench_gf_mul_slice(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/gf_mul_acc");
    for size in [256usize, 4096, 65536] {
        let data = vec![0x37u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(BenchmarkId::from_parameter(size), |bch| {
            let mut acc = vec![0u8; size];
            bch.iter(|| {
                field::mul_slice_acc(Gf256(0x1D), &data, &mut acc);
                black_box(&acc);
            })
        });
    }
    g.finish();
}

fn bench_crc(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/crc32");
    let data = vec![0xC3u8; 4096];
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("4096", |b| b.iter(|| black_box(crc32(&data))));
    g.finish();
}

/// `Block::verify` is a checksum recomputation over the contents — the
/// per-fetch cost every repair pays before trusting a remote block, and
/// the direct beneficiary of the slice-by-8 CRC tables.
fn bench_block_verify(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/block_verify");
    for size in [512usize, 4096, 65536] {
        let block = Block::from_vec((0..size).map(|i| (i * 31 + 7) as u8).collect());
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(BenchmarkId::from_parameter(size), |b| {
            b.iter(|| black_box(block.verify().is_ok()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_xor,
    bench_gf_mul_slice,
    bench_crc,
    bench_block_verify
);
criterion_main!(benches);
