//! Kernel micro-benchmarks: the scalar reference against every SIMD tier
//! the host supports, for each data-path kernel — XOR (the entire
//! arithmetic of AE codes, §VII), GF(2^8) multiply-accumulate (the RS
//! inner loop) and CRC32 (the per-fetch integrity check) — plus the
//! `Block::verify` path they feed through the default dispatch.
//!
//! Tier labels come from [`ae_kernels::supported_sets`]: `scalar` is
//! always present; `sse2`/`avx2` (x86-64) or `neon` (AArch64) appear when
//! the host supports them, so scalar-vs-dispatched speedups can be read
//! directly out of one recording.

use ae_blocks::Block;
use ae_kernels::supported_sets;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const SIZES: [usize; 3] = [256, 4096, 65536];

fn bench_xor(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/xor");
    for set in supported_sets() {
        for size in SIZES {
            let b = vec![0x5Au8; size];
            g.throughput(Throughput::Bytes(size as u64));
            g.bench_function(BenchmarkId::new(set.name, size), |bch| {
                let mut dst = vec![0xA5u8; size];
                bch.iter(|| {
                    set.xor_into(&mut dst, &b);
                    black_box(&dst);
                })
            });
        }
    }
    g.finish();
}

fn bench_gf_mul_slice(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/gf_mul_acc");
    for set in supported_sets() {
        for size in SIZES {
            let data = vec![0x37u8; size];
            g.throughput(Throughput::Bytes(size as u64));
            g.bench_function(BenchmarkId::new(set.name, size), |bch| {
                let mut acc = vec![0u8; size];
                bch.iter(|| {
                    set.mul_slice_acc(0x1D, &data, &mut acc);
                    black_box(&acc);
                })
            });
        }
    }
    g.finish();
}

fn bench_crc(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/crc32");
    for set in supported_sets() {
        for size in SIZES {
            let data = vec![0xC3u8; size];
            g.throughput(Throughput::Bytes(size as u64));
            g.bench_function(BenchmarkId::new(set.name, size), |b| {
                b.iter(|| black_box(set.crc32_update(0xFFFF_FFFF, &data)))
            });
        }
    }
    g.finish();
}

/// `Block::verify` is a checksum recomputation over the contents — the
/// per-fetch cost every repair pays before trusting a remote block. Runs
/// through the default dispatch (the production configuration).
fn bench_block_verify(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/block_verify");
    for size in [512usize, 4096, 65536] {
        let block = Block::from_vec((0..size).map(|i| (i * 31 + 7) as u8).collect());
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(BenchmarkId::from_parameter(size), |b| {
            b.iter(|| black_box(block.verify().is_ok()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_xor,
    bench_gf_mul_slice,
    bench_crc,
    bench_block_verify
);
criterion_main!(benches);
