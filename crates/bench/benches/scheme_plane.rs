//! The paper-scale (§V.C: one million data blocks) disaster benchmark:
//! the zero-materialization `SchemePlane` fast path (arithmetic
//! `dense_index`/`block_at` bijection, nothing per-block in memory)
//! against the materialized-universe + `HashMap` baseline, and the
//! parallel worklist `repair_missing` planner against the reference
//! sequential planner.
//!
//! Every comparison first asserts that both sides produce identical
//! outcomes — these are performance paths, not behavioural ones — then
//! times them. Alongside the criterion timings, the benchmark records
//! resident-memory deltas for building each plane variant (read from
//! `/proc/self/status`) plus the exact bytes of materialized id state as
//! extra JSON lines in `CRITERION_JSON`.

use ae_api::RedundancyScheme;
use ae_baselines::ReedSolomon;
use ae_blocks::{Block, BlockId};
use ae_core::{BlockMap, Code};
use ae_lattice::Config;
use ae_sim::{IndexMode, SchemePlane, SimPlacement};
use ae_store::{ChainMode, EntangledChain};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// The paper's simulation environment: 1M data blocks, 100 locations,
/// a 30% disaster.
const DATA_BLOCKS: u64 = 1_000_000;
const LOCATIONS: u32 = 100;
const DISASTER: f64 = 0.3;
const PLACEMENT_SEED: u64 = 42;
const DISASTER_SEED: u64 = 7;

fn scheme(name: &str) -> Box<dyn RedundancyScheme> {
    match name {
        "AE(3,2,5)" => Box::new(Code::new(Config::new(3, 2, 5).unwrap(), 0)),
        "RS(10,4)" => Box::new(ReedSolomon::new(10, 4).unwrap()),
        "chain(closed)" => Box::new(EntangledChain::new(ChainMode::Closed, 0)),
        other => panic!("unknown scheme {other}"),
    }
}

fn plane(name: &str, mode: IndexMode) -> SchemePlane {
    SchemePlane::with_index_mode(
        scheme(name),
        DATA_BLOCKS,
        LOCATIONS,
        SimPlacement::Random {
            seed: PLACEMENT_SEED,
        },
        |_| false,
        mode,
    )
}

/// Resident set size in KiB, from `/proc/self/status` (0 where absent).
fn rss_kib() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmRSS:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Appends one free-form JSON line next to the criterion results.
fn record_json(line: String) {
    println!("{line}");
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        use std::io::Write as _;
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(file, "{line}");
        }
    }
}

/// Full 1M-block disaster-recovery cycle (heal, 30% disaster, round-based
/// repair to fixpoint) through both index paths, asserting identical
/// outcomes before timing.
fn bench_full_disaster_1m(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheme_plane/full_disaster_1M");
    g.sample_size(10);
    for name in ["AE(3,2,5)", "RS(10,4)"] {
        // Outcome parity between the paths, once, at full scale.
        let run = |p: &mut SchemePlane| {
            p.heal_all();
            p.inject_disaster(DISASTER, DISASTER_SEED);
            p.repair_full()
        };
        let mut dense = plane(name, IndexMode::Auto);
        let mut map = plane(name, IndexMode::Map);
        assert!(dense.uses_dense_index() && !map.uses_dense_index());
        assert_eq!(run(&mut dense), run(&mut map), "{name}: paths disagree");

        g.bench_function(BenchmarkId::new(name, "dense"), |b| {
            b.iter(|| black_box(run(&mut dense)))
        });
        g.bench_function(BenchmarkId::new(name, "map"), |b| {
            b.iter(|| black_box(run(&mut map)))
        });
    }
    g.finish();
}

/// Plane construction at 1M blocks, with and without universe
/// materialization: the map path pays the `Vec<BlockId>` universe plus
/// the id → position hash table; the dense path holds no per-block id
/// state at all (two bitsets only). Records build time, the
/// resident-memory cost of keeping each variant alive, and the exact
/// bytes of materialized id state.
fn bench_build_1m(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheme_plane/build_1M");
    g.sample_size(10);
    for name in ["AE(3,2,5)", "RS(10,4)", "chain(closed)"] {
        for (label, mode) in [("dense", IndexMode::Auto), ("map", IndexMode::Map)] {
            g.bench_function(BenchmarkId::new(name, label), |b| {
                b.iter(|| black_box(plane(name, mode)))
            });
            let before = rss_kib();
            let built = plane(name, mode);
            let delta = rss_kib().saturating_sub(before);
            record_json(format!(
                "{{\"bench\":\"scheme_plane/resident_memory_1M/{name}/{label}\",\
                 \"rss_delta_kib\":{delta},\"index_bytes\":{},\"materialized_bytes\":{}}}",
                built.index_bytes(),
                built.materialized_bytes()
            ));
            drop(built);
        }
    }
    g.finish();
}

/// Byte-plane round-based repair on a multi-failure disaster: the
/// parallel worklist planner (`repair_missing`) against the reference
/// sequential planner (`repair_missing_serial`), same disaster, outcomes
/// asserted identical.
///
/// The disaster is correlated, the regime the paper's location-failure
/// model produces: a contiguous 40% span of the write order (a lost site
/// holding a sequential range) plus 10% scattered loss. The dead core
/// and the long repair fronts are exactly where the serial planner's
/// re-attempt-everything-every-round behaviour hurts; the worklist files
/// each dead target's blockers once and never revisits it (~3.6× fewer
/// `repair_block` attempts, identical outcome).
fn bench_repair_missing_multi_failure(c: &mut Criterion) {
    let mut g = c.benchmark_group("repair_missing/clustered_disaster_20k");
    g.sample_size(10);
    let n = 20_000u64;
    for cfg in [Config::new(2, 2, 5).unwrap(), Config::new(3, 2, 5).unwrap()] {
        let code = Code::new(cfg, 64);
        let full = BlockMap::new();
        let blocks: Vec<Block> = (0..n)
            .map(|i| Block::from_vec((0..64).map(|k| ((i * 31 + k * 7) % 251) as u8).collect()))
            .collect();
        code.encode_batch(&blocks, &full).expect("encode");

        // 40% contiguous span + seeded ~10% scatter over the universe.
        let universe = code.block_ids(n);
        let span = universe.len() as u64 * 40 / 100;
        let start = universe.len() as u64 / 4;
        let mut state = 0x9E3779B97F4A7C15u64;
        let victims: Vec<BlockId> = universe
            .iter()
            .copied()
            .enumerate()
            .filter(|&(k, _)| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((k as u64) >= start && (k as u64) < start + span) || (state >> 33) % 100 < 10
            })
            .map(|(_, id)| id)
            .collect();
        let damaged = full.clone();
        for v in &victims {
            damaged.remove(v);
        }

        // Outcome parity first.
        let (a, b) = (damaged.clone(), damaged.clone());
        let parallel = code.repair_missing(&a, &victims, n);
        let serial = code.repair_missing_serial(&b, &victims, n);
        assert_eq!(parallel, serial, "planners disagree");
        assert!(parallel.total_repaired() > 0);

        g.bench_function(BenchmarkId::new(cfg.name(), "parallel"), |bch| {
            bch.iter(|| {
                let store = damaged.clone();
                black_box(code.repair_missing(&store, &victims, n))
            })
        });
        g.bench_function(BenchmarkId::new(cfg.name(), "serial"), |bch| {
            bch.iter(|| {
                let store = damaged.clone();
                black_box(code.repair_missing_serial(&store, &victims, n))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_full_disaster_1m,
    bench_build_1m,
    bench_repair_missing_multi_failure
);
criterion_main!(benches);
