//! Single-failure repair cost: the paper's central practical claim
//! (Table IV "SF" row).
//!
//! An entangled store repairs any single missing block by XORing **two**
//! blocks, for every code setting; RS(k, m) must read and combine **k**
//! shards. These benches measure exactly that asymmetry on the byte plane,
//! plus the round-based engine on clustered failures.

use ae_baselines::ReedSolomon;
use ae_bench::{data_blocks, data_shards};
use ae_blocks::{BlockId, NodeId};
use ae_core::{BlockMap, Code};
use ae_lattice::Config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const BLOCK: usize = 4096;

fn build_store(cfg: Config, n: u64) -> (Code, BlockMap) {
    let code = Code::new(cfg, BLOCK);
    let store = BlockMap::new();
    let mut enc = code.entangler();
    for blk in data_blocks(n as usize, BLOCK, 3) {
        enc.entangle(blk).unwrap().insert_into(&store);
    }
    (code, store)
}

/// AE single-failure repair: one XOR of two parities, any setting.
fn bench_ae_single_failure(c: &mut Criterion) {
    let mut g = c.benchmark_group("repair/single_failure/ae");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    for (a, s, p) in [(1u8, 1u16, 0u16), (2, 2, 5), (3, 2, 5)] {
        let cfg = Config::new(a, s, p).unwrap();
        let (code, store) = build_store(cfg, 500);
        let victim = BlockId::Data(NodeId(250));
        store.remove(&victim);
        g.bench_function(BenchmarkId::from_parameter(cfg.name()), |b| {
            b.iter(|| black_box(code.repair_block(&store, victim, 500).unwrap()))
        });
    }
    g.finish();
}

/// RS single-failure repair: k-shard matrix reconstruction.
fn bench_rs_single_failure(c: &mut Criterion) {
    let mut g = c.benchmark_group("repair/single_failure/rs");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    for (k, m) in [(10usize, 4usize), (8, 2), (5, 5), (4, 12)] {
        let rs = ReedSolomon::new(k, m).unwrap();
        let data = data_shards(k, BLOCK, 3);
        let parity = rs.encode(&data).unwrap();
        let full: Vec<Vec<u8>> = data.iter().chain(&parity).cloned().collect();
        g.bench_function(BenchmarkId::from_parameter(format!("RS({k},{m})")), |b| {
            b.iter(|| {
                let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                shards[k / 2] = None;
                rs.reconstruct(&mut shards).unwrap();
                black_box(shards)
            })
        });
    }
    g.finish();
}

/// The batching win: `entangle_batch` (one call, data and parities
/// streamed into the sink, no per-block scaffolding) versus a per-block
/// `entangle` loop with `insert_into`. Feeds `BENCH_batch_entangle.json`.
fn bench_entangle_batch_vs_single(c: &mut Criterion) {
    use ae_core::{BlockMap, Entangler};
    const BATCH: usize = 256;
    for size in [512usize, 4096] {
        let mut g = c.benchmark_group(format!("repair/entangle_batch_vs_single/{size}B"));
        g.throughput(Throughput::Bytes((size * BATCH) as u64));
        for (a, s, p) in [(1u8, 1u16, 0u16), (3, 2, 5)] {
            let cfg = Config::new(a, s, p).unwrap();
            let blocks = data_blocks(BATCH, size, 11);
            g.bench_function(BenchmarkId::new("single", cfg.name()), |b| {
                b.iter(|| {
                    let mut enc = Entangler::new(cfg, size);
                    let store = BlockMap::new();
                    for blk in &blocks {
                        enc.entangle(blk.clone()).unwrap().insert_into(&store);
                    }
                    black_box(store)
                })
            });
            g.bench_function(BenchmarkId::new("batch", cfg.name()), |b| {
                b.iter(|| {
                    let mut enc = Entangler::new(cfg, size);
                    let store = BlockMap::new();
                    enc.entangle_batch(&blocks, &store).unwrap();
                    black_box(store)
                })
            });
        }
        g.finish();
    }
}

/// Round-based repair through the scheme-agnostic trait: the same harness
/// drives every code (`dyn RedundancyScheme`).
fn bench_repair_missing_dyn(c: &mut Criterion) {
    use ae_api::{BlockMap, RedundancyScheme};
    use ae_baselines::Replication;
    let mut g = c.benchmark_group("repair/repair_missing_dyn");
    g.sample_size(10);
    let schemes: Vec<Box<dyn RedundancyScheme>> = vec![
        Box::new(Code::new(Config::new(3, 2, 5).unwrap(), BLOCK)),
        Box::new(ReedSolomon::new(4, 12).unwrap()),
        Box::new(Replication::new(4)),
    ];
    for scheme in schemes {
        let name = scheme.scheme_name();
        let store = BlockMap::new();
        scheme
            .encode_batch(&data_blocks(500, BLOCK, 5), &store)
            .unwrap();
        scheme.seal(&store).unwrap();
        let victims: Vec<BlockId> = (200..240).map(|i| BlockId::Data(NodeId(i))).collect();
        g.bench_function(BenchmarkId::from_parameter(&name), |b| {
            b.iter(|| {
                let damaged = store.clone();
                for v in &victims {
                    damaged.remove(v);
                }
                let summary = scheme.repair_missing(&damaged, &victims, 500);
                assert!(summary.fully_recovered(), "{name}");
                black_box(summary)
            })
        });
    }
    g.finish();
}

/// Round-based engine on a clustered failure (Table VI context).
fn bench_clustered_repair(c: &mut Criterion) {
    let mut g = c.benchmark_group("repair/clustered");
    g.sample_size(10);
    let cfg = Config::new(3, 2, 5).unwrap();
    let (code, store) = build_store(cfg, 1000);
    let victims: Vec<BlockId> = (400..460).map(|i| BlockId::Data(NodeId(i))).collect();
    g.bench_function("AE(3,2,5)/60_nodes", |b| {
        b.iter(|| {
            let damaged = store.clone();
            for v in &victims {
                damaged.remove(v);
            }
            let report = code
                .repair_engine(1000)
                .repair_all(&damaged, victims.clone());
            assert!(report.fully_recovered());
            black_box(report)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ae_single_failure,
    bench_rs_single_failure,
    bench_entangle_batch_vs_single,
    bench_repair_missing_dyn,
    bench_clustered_repair
);
criterion_main!(benches);
