//! Single-failure repair cost: the paper's central practical claim
//! (Table IV "SF" row).
//!
//! An entangled store repairs any single missing block by XORing **two**
//! blocks, for every code setting; RS(k, m) must read and combine **k**
//! shards. These benches measure exactly that asymmetry on the byte plane,
//! plus the round-based engine on clustered failures.

use ae_baselines::ReedSolomon;
use ae_bench::{data_blocks, data_shards};
use ae_core::{BlockMap, Code};
use ae_blocks::{BlockId, NodeId};
use ae_lattice::Config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const BLOCK: usize = 4096;

fn build_store(cfg: Config, n: u64) -> (Code, BlockMap) {
    let code = Code::new(cfg, BLOCK);
    let mut store = BlockMap::new();
    let mut enc = code.entangler();
    for blk in data_blocks(n as usize, BLOCK, 3) {
        enc.entangle(blk).unwrap().insert_into(&mut store);
    }
    (code, store)
}

/// AE single-failure repair: one XOR of two parities, any setting.
fn bench_ae_single_failure(c: &mut Criterion) {
    let mut g = c.benchmark_group("repair/single_failure/ae");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    for (a, s, p) in [(1u8, 1u16, 0u16), (2, 2, 5), (3, 2, 5)] {
        let cfg = Config::new(a, s, p).unwrap();
        let (code, mut store) = build_store(cfg, 500);
        let victim = BlockId::Data(NodeId(250));
        store.remove(&victim);
        g.bench_function(BenchmarkId::from_parameter(cfg.name()), |b| {
            b.iter(|| black_box(code.repair_block(&store, victim, 500).unwrap()))
        });
    }
    g.finish();
}

/// RS single-failure repair: k-shard matrix reconstruction.
fn bench_rs_single_failure(c: &mut Criterion) {
    let mut g = c.benchmark_group("repair/single_failure/rs");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    for (k, m) in [(10usize, 4usize), (8, 2), (5, 5), (4, 12)] {
        let rs = ReedSolomon::new(k, m).unwrap();
        let data = data_shards(k, BLOCK, 3);
        let parity = rs.encode(&data).unwrap();
        let full: Vec<Vec<u8>> = data.iter().chain(&parity).cloned().collect();
        g.bench_function(BenchmarkId::from_parameter(format!("RS({k},{m})")), |b| {
            b.iter(|| {
                let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                shards[k / 2] = None;
                rs.reconstruct(&mut shards).unwrap();
                black_box(shards)
            })
        });
    }
    g.finish();
}

/// Round-based engine on a clustered failure (Table VI context).
fn bench_clustered_repair(c: &mut Criterion) {
    let mut g = c.benchmark_group("repair/clustered");
    g.sample_size(10);
    let cfg = Config::new(3, 2, 5).unwrap();
    let (code, store) = build_store(cfg, 1000);
    let victims: Vec<BlockId> = (400..460).map(|i| BlockId::Data(NodeId(i))).collect();
    g.bench_function("AE(3,2,5)/60_nodes", |b| {
        b.iter(|| {
            let mut damaged = store.clone();
            for v in &victims {
                damaged.remove(v);
            }
            let report = code.repair_engine(1000).repair_all(&mut damaged, victims.clone());
            assert!(report.fully_recovered());
            black_box(report)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ae_single_failure,
    bench_rs_single_failure,
    bench_clustered_repair
);
criterion_main!(benches);
