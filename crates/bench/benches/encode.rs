//! Encoding throughput: alpha entanglement vs Reed-Solomon vs replication.
//!
//! Context for §V.B (write performance): the AE encoder does α XORs per
//! data block regardless of s and p, while RS(k, m) does m GF(2^8)
//! multiply-accumulate rows per k-block stripe. Also measures the Fig 10
//! write-scheduler model itself.

use ae_baselines::{ReedSolomon, Replication};
use ae_bench::{data_blocks, data_shards};
use ae_core::{Entangler, WriteScheduler};
use ae_lattice::Config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const BLOCK: usize = 4096;
const BATCH: usize = 256;

fn bench_ae_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode/ae");
    g.throughput(Throughput::Bytes((BLOCK * BATCH) as u64));
    for (a, s, p) in [(1u8, 1u16, 0u16), (2, 2, 5), (3, 2, 5), (3, 5, 5)] {
        let cfg = Config::new(a, s, p).unwrap();
        let blocks = data_blocks(BATCH, BLOCK, 7);
        g.bench_function(BenchmarkId::from_parameter(cfg.name()), |b| {
            b.iter(|| {
                let mut enc = Entangler::new(cfg, BLOCK);
                for blk in &blocks {
                    black_box(enc.entangle(blk.clone()).unwrap());
                }
            })
        });
    }
    g.finish();
}

fn bench_rs_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode/rs");
    for (k, m) in [(10usize, 4usize), (8, 2), (5, 5), (4, 12)] {
        let rs = ReedSolomon::new(k, m).unwrap();
        let shards = data_shards(k, BLOCK, 7);
        g.throughput(Throughput::Bytes((BLOCK * k) as u64));
        g.bench_function(BenchmarkId::from_parameter(format!("RS({k},{m})")), |b| {
            b.iter(|| black_box(rs.encode(&shards).unwrap()))
        });
    }
    g.finish();
}

fn bench_replication_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode/replication");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    let block = data_blocks(1, BLOCK, 7).pop().unwrap();
    for n in [2usize, 3, 4] {
        let r = Replication::new(n);
        g.bench_function(BenchmarkId::from_parameter(format!("{n}-way")), |b| {
            b.iter(|| black_box(r.encode(&block)))
        });
    }
    g.finish();
}

/// Fig 10: the write-scheduler model for s = p vs p > s.
fn bench_fig10_write_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10/write_scheduler");
    for (a, s, p) in [(3u8, 10u16, 10u16), (3, 5, 10)] {
        let cfg = Config::new(a, s, p).unwrap();
        g.bench_function(BenchmarkId::from_parameter(cfg.name()), |b| {
            let sched = WriteScheduler::new(cfg, 1);
            b.iter(|| black_box(sched.simulate(2 * p as u64, 100)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_ae_encode,
    bench_rs_encode,
    bench_replication_encode,
    bench_fig10_write_scheduler
);
criterion_main!(benches);
