//! Archive-layer cost: put / get / scrub through the scheme-generic
//! `Archive`, AE vs Reed-Solomon vs replication, over the in-memory and
//! the two-tier backends.
//!
//! The archive is the layer a user actually touches; these benches price
//! the full path — chunking, batch encode, manifest bookkeeping, backend
//! routing — rather than a bare kernel. `put` archives a fresh file per
//! iteration into one *growing* archive (its per-iteration mean depends
//! on how many iterations the harness ran, so it is not comparable
//! across recordings); `put_probe` is the fixed-size mode that fixes
//! that caveat — each iteration puts one file into a freshly built
//! archive pre-filled to a constant size, with setup excluded from the
//! timing, so per-put means compare cleanly across recordings. `get`
//! reads a healthy file back (manifest CRC verified), `scrub` repairs a
//! scattered 5% disaster injected before each iteration. Recorded
//! numbers live in `BENCH_archive.json`.

use ae_api::{BlockRepo, RedundancyScheme};
use ae_baselines::{ReedSolomon, Replication};
use ae_core::Code;
use ae_lattice::Config;
use ae_store::{archive::Archive, MemStore, TieredStore};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

const BLOCK: usize = 4096;
const FILE_LEN: usize = 64 * BLOCK; // 256 KiB per archived file

/// Files pre-loaded before the probe put in the fixed-size mode.
const PROBE_PREFILL: usize = 4;

fn sample_file(seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..FILE_LEN)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

/// The 300%-overhead-class contenders priced against each other. Each
/// archive needs a fresh scheme, so this returns factories.
type SchemeFactory = fn() -> Arc<dyn RedundancyScheme>;

fn schemes() -> Vec<SchemeFactory> {
    vec![
        || Arc::new(Code::new(Config::new(3, 2, 5).unwrap(), BLOCK)),
        || Arc::new(ReedSolomon::new(10, 4).unwrap()),
        || Arc::new(Replication::new(3)),
    ]
}

/// Fresh instances of both backends, type-erased so one bench body serves
/// every scheme × backend cell.
fn backends() -> Vec<(&'static str, Arc<dyn BlockRepo>)> {
    vec![
        ("mem", Arc::new(MemStore::new())),
        (
            "tiered",
            Arc::new(TieredStore::new(Arc::new(MemStore::new()))),
        ),
    ]
}

fn bench_put(c: &mut Criterion) {
    let mut g = c.benchmark_group("archive/put");
    g.throughput(Throughput::Bytes(FILE_LEN as u64));
    for make_scheme in schemes() {
        for (backend, store) in backends() {
            let scheme = make_scheme();
            let name = format!("{}/{backend}", scheme.scheme_name());
            // A fresh archive per cell; each iteration appends a new file.
            let mut ar = Archive::with_scheme(scheme, BLOCK, store);
            let file = sample_file(7);
            let mut k = 0u64;
            g.bench_function(BenchmarkId::from_parameter(name), |b| {
                b.iter(|| {
                    k += 1;
                    black_box(ar.put(&format!("f{k}"), &file).expect("fresh name"))
                })
            });
        }
    }
    g.finish();
}

/// A named constructor for a fresh backend instance.
type BackendFactory = (&'static str, fn() -> Arc<dyn BlockRepo>);

/// Fresh-backend factories for benches that rebuild state per iteration.
fn backend_factories() -> Vec<BackendFactory> {
    vec![
        ("mem", || Arc::new(MemStore::new())),
        ("tiered", || {
            Arc::new(TieredStore::new(Arc::new(MemStore::new())))
        }),
    ]
}

/// Fixed-size probe: every iteration puts one file into an archive
/// pre-filled to exactly `PROBE_PREFILL` files, and only the probe put is
/// timed. Unlike `archive/put`, the measured state never grows, so these
/// cells are directly comparable across recordings.
fn bench_put_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("archive/put_probe");
    g.throughput(Throughput::Bytes(FILE_LEN as u64));
    for make_scheme in schemes() {
        for (backend, make_store) in backend_factories() {
            let name = format!("{}/{backend}", make_scheme().scheme_name());
            let file = sample_file(7);
            g.bench_function(BenchmarkId::from_parameter(name), |b| {
                b.iter_batched(
                    || {
                        let mut ar = Archive::with_scheme(make_scheme(), BLOCK, make_store());
                        for i in 0..PROBE_PREFILL {
                            ar.put(&format!("pre{i}"), &file).expect("fresh name");
                        }
                        ar
                    },
                    |mut ar| black_box(ar.put("probe", &file).expect("fresh name")),
                    BatchSize::LargeInput,
                )
            });
        }
    }
    g.finish();
}

fn bench_get(c: &mut Criterion) {
    let mut g = c.benchmark_group("archive/get");
    g.throughput(Throughput::Bytes(FILE_LEN as u64));
    for make_scheme in schemes() {
        for (backend, store) in backends() {
            let scheme = make_scheme();
            let name = format!("{}/{backend}", scheme.scheme_name());
            let mut ar = Archive::with_scheme(scheme, BLOCK, store);
            let file = sample_file(11);
            ar.put("f", &file).expect("fresh name");
            ar.seal().expect("flush");
            g.bench_function(BenchmarkId::from_parameter(name), |b| {
                b.iter(|| black_box(ar.get("f").expect("healthy read")))
            });
        }
    }
    g.finish();
}

fn bench_scrub(c: &mut Criterion) {
    let mut g = c.benchmark_group("archive/scrub_5pct");
    for make_scheme in schemes() {
        for (backend, store) in backends() {
            let scheme = make_scheme();
            let name = format!("{}/{backend}", scheme.scheme_name());
            let mut ar = Archive::with_scheme(scheme, BLOCK, Arc::clone(&store));
            let file = sample_file(13);
            ar.put("f", &file).expect("fresh name");
            ar.seal().expect("flush");
            // Every 20th stored block dies before each scrub.
            let victims: Vec<_> = ar.stored_ids().iter().copied().step_by(20).collect();
            g.bench_function(BenchmarkId::from_parameter(name), |b| {
                b.iter(|| {
                    for v in &victims {
                        store.remove(*v);
                    }
                    let restored = ar.scrub();
                    assert_eq!(restored as usize, victims.len());
                    black_box(restored)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_put, bench_put_probe, bench_get, bench_scrub);
criterion_main!(benches);
