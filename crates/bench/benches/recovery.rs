//! Recovery-path cost: `Archive::open` latency as the journal grows —
//! with checkpointing (O(checkpoint) replay) vs without (O(history)
//! replay) — and the scrub cost of healing lost or garbled metadata
//! copies back to full n-way redundancy.
//!
//! The open benches hold the archive's *content* fixed — the same total
//! bytes under the same scheme — and vary only the journal length: the
//! bytes arrive as 32 ten-block files (33 records) or as 320 one-block
//! files (321 records). A cold `Archive::open` from the backend alone —
//! journal fetch, CRC validation across the copy set, replay, frontier
//! restore — is timed for each. With checkpointing (every 16 records)
//! open latency must stay flat across the 10× journal growth: replay is
//! bounded by the cadence and the snapshot decode is O(live state),
//! which is held constant. Without it, open replays every record and
//! grows linearly with the journal. Recorded numbers live in
//! `BENCH_recovery.json`.

use ae_core::Code;
use ae_lattice::Config;
use ae_store::{archive::Archive, meta::MetaConfig, MemStore};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

const BLOCK: usize = 256;
const FILE_LEN: usize = 2 * BLOCK;

fn scheme() -> Arc<dyn ae_api::RedundancyScheme> {
    Arc::new(Code::new(Config::new(3, 2, 5).unwrap(), BLOCK))
}

fn sample_file(seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..FILE_LEN)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

/// Total archived payload held constant across journal lengths: the
/// journal-length cells differ only in how many records carry it.
const TOTAL_BLOCKS: usize = 320;

/// A sealed archive lifetime carrying [`TOTAL_BLOCKS`] blocks of data in
/// `records` equal puts under `meta`, returning the backend it
/// journaled into.
fn journaled_store(records: usize, meta: MetaConfig) -> Arc<MemStore> {
    let file_len = TOTAL_BLOCKS / records * BLOCK;
    let store = Arc::new(MemStore::new());
    let mut ar = Archive::with_scheme_meta(scheme(), BLOCK, Arc::clone(&store), meta);
    for k in 0..records {
        let contents: Vec<u8> = sample_file(k as u64)
            .into_iter()
            .cycle()
            .take(file_len)
            .collect();
        ar.put(&format!("f{k}"), &contents).expect("fresh name");
    }
    ar.seal().expect("flush");
    store
}

/// Open latency vs journal length at fixed archive content: the same
/// [`TOTAL_BLOCKS`] of data journaled as 32 vs 320 records, checkpointed
/// (every 16) vs plain full replay. The O(checkpoint) open guarantee is
/// the checkpointed cell staying flat across the 10× journal growth
/// while the plain cell grows with it.
fn bench_open(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery/open");
    let policies: [(&str, MetaConfig); 2] = [
        (
            "plain",
            MetaConfig {
                checkpoint_every: None,
                ..MetaConfig::default()
            },
        ),
        (
            "ckpt16",
            MetaConfig {
                checkpoint_every: Some(16),
                ..MetaConfig::default()
            },
        ),
    ];
    for records in [32usize, 320] {
        for (tag, meta) in &policies {
            let store = journaled_store(records, meta.clone());
            let id = format!("j{records}/{tag}");
            g.bench_function(BenchmarkId::from_parameter(id), |b| {
                b.iter(|| {
                    let ar = Archive::open_with_meta(scheme(), Arc::clone(&store), meta.clone())
                        .expect("journal replays");
                    black_box(ar.replayed_records())
                })
            });
        }
    }
    g.finish();
}

/// The suffix-replay cost in isolation: two archives with *identical*
/// content (320 one-block files) and an identical last checkpoint at
/// record 32 — but one journal ends there while the other grew 10×
/// past the checkpoint threshold without re-checkpointing (the state a
/// maintained cadence never lets happen). The latency gap is exactly
/// the per-record replay work a fresh checkpoint folds away; with the
/// cadence maintained, open replays at most `checkpoint_every` records
/// no matter how old the archive grows.
fn bench_open_suffix(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery/open_suffix");
    let ckpt = MetaConfig {
        checkpoint_every: Some(16),
        ..MetaConfig::default()
    };
    let frozen = MetaConfig {
        checkpoint_every: None,
        ..MetaConfig::default()
    };
    for (tag, head, meta) in [("fresh", 320usize, &ckpt), ("stale10x", 32usize, &frozen)] {
        // First `head` puts keep the checkpoint cadence; the rest run
        // with checkpointing frozen, growing the replay suffix.
        let store = Arc::new(MemStore::new());
        let mut ar = Archive::with_scheme_meta(scheme(), BLOCK, Arc::clone(&store), ckpt.clone());
        let file = sample_file(1);
        for k in 0..head {
            ar.put(&format!("f{k}"), &file[..BLOCK])
                .expect("fresh name");
        }
        drop(ar);
        let mut ar = Archive::open_with_meta(scheme(), Arc::clone(&store), meta.clone())
            .expect("journal replays");
        for k in head..320 {
            ar.put(&format!("f{k}"), &file[..BLOCK])
                .expect("fresh name");
        }
        drop(ar);
        g.bench_function(BenchmarkId::from_parameter(tag), |b| {
            b.iter(|| {
                let ar = Archive::open_with_meta(scheme(), Arc::clone(&store), meta.clone())
                    .expect("journal replays");
                black_box(ar.replayed_records())
            })
        });
    }
    g.finish();
}

/// Scrub cost of re-materializing metadata copies: each iteration
/// deletes one copy and garbles another of every live record, then
/// scrubs the archive back to full n-way redundancy.
fn bench_meta_scrub(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery/meta_scrub");
    let meta = MetaConfig {
        checkpoint_every: Some(16),
        ..MetaConfig::default()
    };
    let store = journaled_store(32, meta.clone());
    let mut ar =
        Archive::open_with_meta(scheme(), Arc::clone(&store), meta).expect("journal replays");
    let live = ar.live_meta_ids();
    let lost: Vec<_> = live.iter().copied().step_by(3).collect();
    let garbled: Vec<_> = live.iter().copied().skip(1).step_by(3).collect();
    let harmed = lost.len() + garbled.len();
    // Baseline: a scrub with nothing to heal prices the verification
    // sweep itself; the heal cell's delta over it is the meta-copy
    // re-materialization cost.
    g.bench_function(BenchmarkId::from_parameter("heal0_copies"), |b| {
        b.iter(|| black_box(ar.scrub()))
    });
    g.bench_function(
        BenchmarkId::from_parameter(format!("heal{harmed}_copies")),
        |b| {
            b.iter(|| {
                use ae_api::BlockRepo;
                let repo: &dyn BlockRepo = store.as_ref();
                for id in &lost {
                    repo.remove(*id);
                }
                for id in &garbled {
                    repo.store(*id, ae_blocks::Block::from_vec(vec![0xAA; 40]));
                }
                let restored = ar.scrub();
                assert!(restored as usize >= harmed);
                black_box(restored)
            })
        },
    );
    g.finish();
}

criterion_group!(benches, bench_open, bench_open_suffix, bench_meta_scrub);
criterion_main!(benches);
