//! Disaster sweeps at benchmark scale: Figs 11–13 and Table VI.
//!
//! Full-scale (1M-block) series come from the `ae-sim` binaries; these
//! benches run the identical pipelines at 40k blocks so regressions in the
//! simulation engine show up in CI-sized runs, and additionally verify the
//! figures' headline orderings on every iteration.

use ae_lattice::Config;
use ae_sim::experiments::{self, Env};
use ae_sim::{AeSimulation, ReplicationSimulation, RsSimulation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn env() -> Env {
    Env {
        data_blocks: 40_000,
        ..Env::paper()
    }
}

/// Fig 11 pipeline: one scheme, one 30% disaster, full repair.
fn bench_fig11_components(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11/30pct_disaster");
    g.sample_size(10);
    let e = env();
    g.bench_function("AE(3,2,5)", |b| {
        b.iter(|| {
            let mut sim = AeSimulation::new(
                Config::new(3, 2, 5).unwrap(),
                e.data_blocks,
                e.locations,
                e.placement_seed,
            );
            sim.inject_disaster(0.3, e.disaster_seed);
            black_box(sim.repair_full())
        })
    });
    g.bench_function("RS(4,12)", |b| {
        let sim = RsSimulation::new(4, 12, e.data_blocks, e.locations, e.placement_seed);
        b.iter(|| black_box(sim.run_disaster(0.3, e.disaster_seed)))
    });
    g.bench_function("3-way", |b| {
        let sim = ReplicationSimulation::new(3, e.data_blocks, e.locations, e.placement_seed);
        b.iter(|| black_box(sim.run_disaster(0.3, e.disaster_seed)))
    });
    g.finish();
}

/// Whole-figure sweeps (all schemes, all disaster sizes).
fn bench_full_sweeps(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweeps");
    g.sample_size(10);
    let e = env();
    g.bench_function(BenchmarkId::new("fig11_data_loss", "40k"), |b| {
        b.iter(|| {
            let sweep = experiments::fig11_data_loss(&e);
            assert_eq!(sweep.series.len(), 10);
            black_box(sweep)
        })
    });
    g.bench_function(BenchmarkId::new("fig12_vulnerable", "40k"), |b| {
        b.iter(|| black_box(experiments::fig12_vulnerable(&e)))
    });
    g.bench_function(BenchmarkId::new("fig13_single_failures", "40k"), |b| {
        b.iter(|| black_box(experiments::fig13_single_failures(&e)))
    });
    g.bench_function(BenchmarkId::new("table6_rounds", "40k"), |b| {
        b.iter(|| black_box(experiments::table6_rounds(&e)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig11_components, bench_full_sweeps);
criterion_main!(benches);
