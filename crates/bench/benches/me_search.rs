//! Minimal-erasure search cost (the engine behind Figs 6–9).
//!
//! Pattern sizes themselves are checked by tests and printed by the
//! `fig7_patterns` / `fig8_me2` / `fig9_me4` binaries; these benches track
//! how expensive the branch-and-bound search is as patterns grow.

use ae_lattice::{Config, MeSearch};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Fig 6/7 patterns: |ME(2)| across the paper's settings.
fn bench_me2(c: &mut Criterion) {
    let mut g = c.benchmark_group("me_search/me2");
    g.sample_size(10);
    for (a, s, p, expected) in [
        (1u8, 1u16, 0u16, 3usize),
        (2, 1, 1, 4),
        (3, 1, 1, 5),
        (3, 1, 4, 8),
        (2, 2, 2, 6),
        (3, 2, 2, 8),
        (3, 4, 4, 14),
    ] {
        let cfg = Config::new(a, s, p).unwrap();
        g.bench_function(BenchmarkId::from_parameter(cfg.name()), |b| {
            b.iter(|| {
                let pat = MeSearch::new(cfg).min_erasure(2).unwrap();
                assert_eq!(pat.size(), expected);
                black_box(pat)
            })
        });
    }
    g.finish();
}

/// Fig 9's square: |ME(4)| for α = 2.
fn bench_me4(c: &mut Criterion) {
    let mut g = c.benchmark_group("me_search/me4");
    g.sample_size(10);
    for (s, p) in [(1u16, 1u16), (2, 2)] {
        let cfg = Config::new(2, s, p).unwrap();
        g.bench_function(BenchmarkId::from_parameter(cfg.name()), |b| {
            b.iter(|| {
                let pat = MeSearch::new(cfg).min_erasure(4).unwrap();
                assert_eq!(pat.size(), 8);
                black_box(pat)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_me2, bench_me4);
criterion_main!(benches);
