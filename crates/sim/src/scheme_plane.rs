//! The generic availability-plane simulation, driven by any
//! [`RedundancyScheme`].
//!
//! One engine replaces the three hand-rolled planes the workspace used to
//! carry (`ae_plane`, `rs_plane`, `repl_plane`): the scheme describes its
//! structure through the trait's availability hooks
//! ([`RedundancyScheme::block_ids`], [`RedundancyScheme::is_repairable`],
//! [`RedundancyScheme::is_single_failure`],
//! [`RedundancyScheme::maintenance_targets`]) and the plane does
//! everything else — placement, disaster injection, round-based repair to
//! fixpoint (§V.C.4), minimal maintenance (§V.C.2) and the Fig 11–13 /
//! Table VI metrics. Blocks are availability flags, not bytes, exactly as
//! in the paper's evaluation: every §V.C metric depends only on which
//! blocks are reachable.
//!
//! # The zero-materialization fast path
//!
//! At the paper's scale (1M data blocks, up to 4M stored blocks) the plane
//! state is the hot data structure. When
//! [`RedundancyScheme::supports_dense_index`] marks the scheme's
//! `dense_index` ⇄ `block_at` bijection authoritative, the plane holds
//! **no per-block id state at all**: availability and the punctured-block
//! mask live in flat [`BitSet`]s keyed by dense position, placement is the
//! arithmetic [`SimPlacement::place_dense`] of the position, and ids are
//! recomputed from positions only at the edges (repair planning callbacks,
//! summaries). No `Vec<BlockId>` universe, no `HashMap<BlockId, u32>`, no
//! per-position location table — the availability oracle is pure
//! arithmetic. Schemes without the hook (and callers forcing
//! [`IndexMode::Map`], which benchmarks use as the baseline) fall back to
//! a materialized universe plus a hash index built by enumeration.
//!
//! # Parallel repair rounds
//!
//! Each repair round is planned against the immutable round-start
//! snapshot and committed in one deterministic sweep, so the planning —
//! the `is_repairable` scan over still-missing blocks — fans out across
//! [`ae_api::repair_threads`] scoped threads in contiguous chunks.
//! Chunk-order merging keeps the planned set (and every metric derived
//! from it) bit-identical to a sequential scan; the `serial-repair`
//! feature pins the thread count to 1 as an escape hatch.

use crate::bitset::BitSet;
use ae_api::RedundancyScheme;
use ae_blocks::BlockId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// How blocks are mapped to locations in the availability simulation: the
/// canonical [`ae_api::Placement`] keyed by dense universe position, so
/// neighbouring universe entries (a data block and its redundancy) get
/// distinct keys. Shared with the store layer, which keys the same policy
/// by block id instead.
pub use ae_api::Placement as SimPlacement;

/// How the plane maps block ids to dense positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexMode {
    /// Use the scheme's arithmetic `dense_index`/`block_at` bijection when
    /// it is authoritative, a materialized universe + `HashMap` otherwise.
    Auto,
    /// Always materialize the universe and build the `HashMap` index — the
    /// memory/time baseline the benchmarks compare the dense path against.
    Map,
}

/// The id ⇄ dense-position mapping behind one plane.
enum PlaneIndex {
    /// The scheme's arithmetic bijection is authoritative; no storage at
    /// all — ids are recomputed from positions on demand.
    Dense,
    /// Materialized universe (position → id) plus a hash index (id →
    /// position) built by enumeration.
    Map {
        universe: Vec<BlockId>,
        index: HashMap<BlockId, u32>,
    },
}

/// Statistics of one repair round (availability plane).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// Data blocks repaired this round.
    pub data: u64,
    /// Redundancy blocks repaired this round.
    pub parity: u64,
    /// Blocks read to execute this round's repairs (the scheme's
    /// [`ae_api::RedundancyScheme::repair_traffic`] over the round's
    /// commit set) — per-round traffic, so sweeps can report repair-cost
    /// distributions instead of a bare total.
    pub reads: u64,
}

impl RoundStats {
    /// Blocks written this round (every repair writes its block back).
    pub fn writes(&self) -> u64 {
        self.data + self.parity
    }
}

/// Outcome of a full round-based repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FullRepairOutcome {
    /// Per-round repair counts.
    pub rounds: Vec<RoundStats>,
    /// Data blocks that could not be repaired (the paper's Fig 11 metric).
    pub data_lost: u64,
    /// Redundancy blocks that could not be repaired.
    pub parity_lost: u64,
    /// Blocks read to complete all repairs (scheme-specific accounting:
    /// 2 per AE repair, one k-shard decode per RS stripe, 1 per copy).
    pub traffic: u64,
    /// Repaired data blocks that were single failures in the scheme's
    /// Fig 13 sense, judged against the pre-repair state.
    pub single_failure_data: u64,
}

impl FullRepairOutcome {
    /// Rounds until fixpoint (Table VI).
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }

    /// Total blocks read during the repair.
    pub fn blocks_read(&self) -> u64 {
        self.traffic
    }

    /// Total blocks written during the repair (data + redundancy
    /// repaired — every successful repair writes one block back).
    pub fn blocks_written(&self) -> u64 {
        self.rounds.iter().map(|r| r.writes()).sum()
    }

    /// Total data blocks repaired.
    pub fn data_repaired(&self) -> u64 {
        self.rounds.iter().map(|r| r.data).sum()
    }

    /// Share of repaired data blocks that were single failures (Fig 13).
    /// `None` when nothing needed repair.
    pub fn single_failure_share(&self) -> Option<f64> {
        let total = self.data_repaired();
        (total > 0).then(|| self.single_failure_data as f64 / total as f64)
    }
}

/// Outcome of a minimal-maintenance repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinimalRepairOutcome {
    /// Data blocks repaired.
    pub data_repaired: u64,
    /// Redundancy blocks repaired because a missing data block needed them.
    pub parity_repaired: u64,
    /// Data blocks lost (no repair possible).
    pub data_lost: u64,
    /// Data blocks left without any working redundancy (Fig 12): present,
    /// but unrepairable if they failed now.
    pub vulnerable_data: u64,
}

/// How many candidates a round scan must reach before it fans out across
/// threads — below this, scoped-thread spawn overhead beats the win.
const PARALLEL_ROUND_MIN: usize = 4096;

/// Availability-plane state for one scheme deployment: every block the
/// scheme stores, its (arithmetic) location, and whether it is currently
/// reachable.
pub struct SchemePlane {
    scheme: Box<dyn RedundancyScheme>,
    data_blocks: u64,
    locations: u32,
    placement: SimPlacement,
    /// Number of blocks in the placement universe.
    universe_len: u32,
    /// id ⇄ dense position (arithmetic, or materialized + hashed).
    index: PlaneIndex,
    /// Availability of universe block `k`.
    avail: BitSet,
    /// Blocks that start out missing (punctured parities): they are never
    /// "available" until repaired, even after [`SchemePlane::heal_all`].
    initially_missing: BitSet,
}

impl SchemePlane {
    /// Builds the plane: asks the scheme for its universe size and places
    /// every block on one of `locations` failure domains.
    pub fn new(
        scheme: Box<dyn RedundancyScheme>,
        data_blocks: u64,
        locations: u32,
        placement: SimPlacement,
    ) -> Self {
        Self::with_missing(scheme, data_blocks, locations, placement, |_| false)
    }

    /// Like [`SchemePlane::new`], but `never_stored` marks blocks that are
    /// not stored at all (e.g. punctured parities). The decoder may still
    /// reconstruct them transiently as stepping stones during repairs.
    pub fn with_missing(
        scheme: Box<dyn RedundancyScheme>,
        data_blocks: u64,
        locations: u32,
        placement: SimPlacement,
        never_stored: impl Fn(BlockId) -> bool,
    ) -> Self {
        Self::with_index_mode(
            scheme,
            data_blocks,
            locations,
            placement,
            never_stored,
            IndexMode::Auto,
        )
    }

    /// Full-control constructor: [`SchemePlane::with_missing`] plus an
    /// explicit [`IndexMode`] (benchmarks and parity tests force
    /// [`IndexMode::Map`] to compare against the materialized baseline).
    pub fn with_index_mode(
        scheme: Box<dyn RedundancyScheme>,
        data_blocks: u64,
        locations: u32,
        placement: SimPlacement,
        never_stored: impl Fn(BlockId) -> bool,
        mode: IndexMode,
    ) -> Self {
        assert!(data_blocks > 0 && locations > 0);
        let index = if mode == IndexMode::Auto && scheme.supports_dense_index() {
            // The arithmetic bijection must agree with the enumeration it
            // replaces; verify exhaustively in debug builds (the universe
            // is materialized transiently here, release builds never do).
            #[cfg(debug_assertions)]
            {
                let universe = scheme.block_ids(data_blocks);
                assert_eq!(scheme.universe_len(data_blocks), universe.len() as u64);
                for (k, id) in universe.iter().enumerate() {
                    assert_eq!(
                        scheme.dense_index(id, data_blocks),
                        Some(k as u32),
                        "dense index disagrees with block_ids at {id}"
                    );
                    assert_eq!(
                        scheme.block_at(k as u32, data_blocks),
                        Some(*id),
                        "block_at disagrees with block_ids at {k}"
                    );
                }
            }
            PlaneIndex::Dense
        } else {
            let universe = scheme.block_ids(data_blocks);
            let index = universe
                .iter()
                .enumerate()
                .map(|(k, &id)| (id, k as u32))
                .collect();
            PlaneIndex::Map { universe, index }
        };
        let universe_len = u32::try_from(scheme.universe_len(data_blocks))
            .expect("plane universe exceeds u32 positions");
        if let PlaneIndex::Map { universe, .. } = &index {
            assert_eq!(universe.len() as u32, universe_len);
        }
        let mut plane = SchemePlane {
            scheme,
            data_blocks,
            locations,
            placement,
            universe_len,
            index,
            avail: BitSet::zeros(universe_len as usize),
            initially_missing: BitSet::zeros(universe_len as usize),
        };
        for k in 0..universe_len {
            if never_stored(plane.id_at(k)) {
                plane.initially_missing.set(k as usize, true);
            }
        }
        plane.avail.assign_not(&plane.initially_missing);
        plane
    }

    /// The scheme driving this plane.
    pub fn scheme(&self) -> &dyn RedundancyScheme {
        self.scheme.as_ref()
    }

    /// The id at dense position `k` — arithmetic on the fast path, a table
    /// read on the materialized one.
    #[inline]
    fn id_at(&self, k: u32) -> BlockId {
        match &self.index {
            PlaneIndex::Dense => self
                .scheme
                .block_at(k, self.data_blocks)
                .expect("position within universe"),
            PlaneIndex::Map { universe, .. } => universe[k as usize],
        }
    }

    /// Dense position of `id`, or `None` outside the universe.
    #[inline]
    fn index_of(&self, id: BlockId) -> Option<u32> {
        match &self.index {
            PlaneIndex::Dense => self.scheme.dense_index(&id, self.data_blocks),
            PlaneIndex::Map { index, .. } => index.get(&id).copied(),
        }
    }

    /// The location of dense position `k`: pure placement arithmetic, no
    /// per-block table.
    #[inline]
    fn loc_at(&self, k: u32) -> u32 {
        self.placement.place_dense(u64::from(k), self.locations)
    }

    /// Whether the plane resolves ids arithmetically (no materialized
    /// universe, no hash index).
    pub fn uses_dense_index(&self) -> bool {
        matches!(self.index, PlaneIndex::Dense)
    }

    /// Approximate heap bytes held by the id → position hash index: zero
    /// on the dense path, the hash table's footprint otherwise. The
    /// benchmarks report this next to resident-memory measurements.
    pub fn index_bytes(&self) -> usize {
        match &self.index {
            PlaneIndex::Dense => 0,
            // Key + value per bucket plus hashbrown's one control byte.
            PlaneIndex::Map { index, .. } => {
                index.capacity() * (std::mem::size_of::<(BlockId, u32)>() + 1)
            }
        }
    }

    /// Approximate heap bytes of all per-block id state — the materialized
    /// `Vec<BlockId>` universe plus the hash index. Zero on the dense
    /// path: the bijection is arithmetic, nothing is materialized.
    pub fn materialized_bytes(&self) -> usize {
        match &self.index {
            PlaneIndex::Dense => 0,
            PlaneIndex::Map { universe, .. } => {
                universe.capacity() * std::mem::size_of::<BlockId>() + self.index_bytes()
            }
        }
    }

    /// Whether `id` is currently available (false for blocks outside the
    /// universe).
    pub fn is_available(&self, id: BlockId) -> bool {
        self.index_of(id)
            .is_some_and(|k| self.avail.get(k as usize))
    }

    /// Data blocks in the deployment.
    pub fn data_blocks(&self) -> u64 {
        self.data_blocks
    }

    /// Failure-domain locations blocks are placed on.
    pub fn locations(&self) -> u32 {
        self.locations
    }

    /// Currently missing blocks as `(data, redundancy)` counts — the
    /// irrecoverable remainder after repairs have run to fixpoint. Sweep
    /// harnesses use this to close the conservation law
    /// `failed = repaired + still missing` across multi-event scenarios.
    pub fn missing_counts(&self) -> (u64, u64) {
        let mut data = 0;
        let mut parity = 0;
        for k in self.avail.iter_zeros() {
            if self.id_at(k as u32).is_data() {
                data += 1;
            } else {
                parity += 1;
            }
        }
        (data, parity)
    }

    /// Total stored blocks (the placement universe).
    pub fn total_blocks(&self) -> u64 {
        u64::from(self.universe_len)
    }

    /// The location a block was placed on, or `None` for ids outside the
    /// universe.
    pub fn location_of(&self, id: BlockId) -> Option<u32> {
        self.index_of(id).map(|k| self.loc_at(k))
    }

    /// Resets every stored block to available (punctured blocks stay out).
    pub fn heal_all(&mut self) {
        self.avail.assign_not(&self.initially_missing);
    }

    /// Fails `fraction` of the locations (chosen uniformly by
    /// `disaster_seed`) and marks every block stored there unavailable.
    /// Returns `(missing data, missing redundancy)` counts.
    pub fn inject_disaster(&mut self, fraction: f64, disaster_seed: u64) -> (u64, u64) {
        let failed = failed_locations(self.locations, fraction, disaster_seed);
        self.fail_locations(&failed)
    }

    /// Fails exactly the locations marked in `failed` (one flag per
    /// location), marking every *currently available* block stored there
    /// unavailable — the generic hook behind every location-grained
    /// failure model (i.i.d. disasters, correlated rack/region knockouts,
    /// rolling-upgrade waves). Returns `(newly missing data, newly missing
    /// redundancy)` counts; blocks already missing are not re-counted.
    ///
    /// # Panics
    ///
    /// Panics when `failed.len()` differs from the plane's location count.
    pub fn fail_locations(&mut self, failed: &[bool]) -> (u64, u64) {
        assert_eq!(
            failed.len(),
            self.locations as usize,
            "one failure flag per location"
        );
        let mut missing_data = 0;
        let mut missing_redundancy = 0;
        for k in 0..self.universe_len {
            if self.avail.get(k as usize) && failed[self.loc_at(k) as usize] {
                self.avail.set(k as usize, false);
                if self.id_at(k).is_data() {
                    missing_data += 1;
                } else {
                    missing_redundancy += 1;
                }
            }
        }
        (missing_data, missing_redundancy)
    }

    /// Correlated rack/region knockout: partitions the locations into
    /// `groups` contiguous placement groups and fails `floor(fraction ·
    /// groups)` whole groups, chosen uniformly by `seed` (SplitMix64
    /// shuffle). Every block on a failed group's locations goes missing
    /// together — the correlated failure mode a per-location i.i.d. model
    /// cannot express. Returns `(newly missing data, newly missing
    /// redundancy)`.
    ///
    /// # Panics
    ///
    /// Panics when `groups` is zero, exceeds the location count, or
    /// `fraction` is outside `[0, 1]`.
    pub fn inject_group_disaster(&mut self, groups: u32, fraction: f64, seed: u64) -> (u64, u64) {
        let failed = failed_location_groups(self.locations, groups, fraction, seed);
        self.fail_locations(&failed)
    }

    /// Silent bit rot through the tamper plane: each *currently available*
    /// block independently rots with probability `fraction`, keyed by
    /// `mix64(position, seed)` — per-block corruption that no
    /// location-grained disaster can model (a rotten block's neighbours on
    /// the same drive are fine). A rotten block is unusable for repairs
    /// exactly like a lost one: scrubbing detects the bad checksum and
    /// discards it. Returns `(newly rotten data, newly rotten
    /// redundancy)`.
    ///
    /// # Panics
    ///
    /// Panics when `fraction` is outside `[0, 1]`.
    pub fn inject_bit_rot(&mut self, fraction: f64, seed: u64) -> (u64, u64) {
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
        // P(rot) = fraction via a 64-bit threshold test on the per-position
        // SplitMix64 stream: deterministic, order-independent, O(1) state.
        let threshold = (fraction * u64::MAX as f64) as u64;
        let mut rotten_data = 0;
        let mut rotten_redundancy = 0;
        for k in 0..self.universe_len {
            if self.avail.get(k as usize) && ae_api::mix64(u64::from(k), seed) < threshold {
                self.avail.set(k as usize, false);
                if self.id_at(k).is_data() {
                    rotten_data += 1;
                } else {
                    rotten_redundancy += 1;
                }
            }
        }
        (rotten_data, rotten_redundancy)
    }

    /// Whether `id` is available in the current state (the oracle handed
    /// to the scheme's structural hooks).
    #[inline]
    fn block_available(&self, id: BlockId) -> bool {
        self.index_of(id)
            .is_some_and(|k| self.avail.get(k as usize))
    }

    /// Indices of currently missing blocks, optionally data only.
    fn missing_indices(&self, data_only: bool) -> Vec<u32> {
        self.avail
            .iter_zeros()
            .filter(|&k| !data_only || self.id_at(k as u32).is_data())
            .map(|k| k as u32)
            .collect()
    }

    /// Filters `items` by `pred`, preserving order. Fans out across
    /// [`ae_api::repair_threads`] scoped threads in contiguous chunks
    /// ([`ae_api::par::par_chunks`]); chunk-order merging makes the
    /// result identical to a serial filter.
    fn par_filter<P>(&self, items: &[u32], pred: P) -> Vec<u32>
    where
        P: Fn(u32) -> bool + Send + Sync + Copy,
    {
        ae_api::par::par_chunks(
            items,
            ae_api::repair_threads(),
            PARALLEL_ROUND_MIN,
            move |chunk| chunk.iter().copied().filter(|&k| pred(k)).collect(),
        )
    }

    /// The still-missing blocks of `candidates` that are repairable
    /// against the current snapshot.
    fn plan_repairable(&self, candidates: &[u32]) -> Vec<u32> {
        self.par_filter(candidates, |k| {
            let avail = |id: BlockId| self.block_available(id);
            self.scheme
                .is_repairable(self.id_at(k), self.data_blocks, &avail)
        })
    }

    /// Round-based repair of everything until fixpoint (§V.C.4). Each
    /// round plans against the round-start snapshot — in parallel — so it
    /// models one wave of distributed repairs; commits are sequential and
    /// deterministic. Equivalent to
    /// [`SchemePlane::repair_rounds`]`(None, None)`.
    pub fn repair_full(&mut self) -> FullRepairOutcome {
        self.repair_rounds(None, None)
    }

    /// [`SchemePlane::repair_full`] with operational limits, for churn
    /// and rolling-upgrade models:
    ///
    /// * `bandwidth_cap` — at most this many repairs commit per round
    ///   (cluster repair bandwidth). The planned set is truncated in
    ///   deterministic plan order, so capped runs stay bit-identical
    ///   across thread counts. Must be positive when given.
    /// * `max_rounds` — stop after this many rounds even short of
    ///   fixpoint (the time budget between failure events).
    ///
    /// With both `None` this runs to fixpoint and is exactly
    /// [`SchemePlane::repair_full`].
    ///
    /// # Panics
    ///
    /// Panics when `bandwidth_cap` is `Some(0)` — a zero-bandwidth round
    /// can never make progress.
    pub fn repair_rounds(
        &mut self,
        bandwidth_cap: Option<u64>,
        max_rounds: Option<usize>,
    ) -> FullRepairOutcome {
        if let Some(cap) = bandwidth_cap {
            assert!(cap > 0, "bandwidth cap must be positive");
        }
        let mut missing = self.missing_indices(false);
        // Judge single failures against the disaster state, before any
        // repair lands (Fig 13's denominator is all repaired data blocks).
        let single_candidates = {
            let singles = self.par_filter(&missing, |k| {
                let id = self.id_at(k);
                if !id.is_data() {
                    return false;
                }
                let avail = |id: BlockId| self.block_available(id);
                self.scheme.is_single_failure(id, self.data_blocks, &avail)
            });
            let mut set = BitSet::zeros(self.universe_len as usize);
            for k in singles {
                set.set(k as usize, true);
            }
            set
        };
        let mut rounds = Vec::new();
        let mut traffic = 0;
        let mut repaired_singles = 0;
        while max_rounds.is_none_or(|m| rounds.len() < m) {
            let mut fix = self.plan_repairable(&missing);
            if fix.is_empty() {
                break;
            }
            if let Some(cap) = bandwidth_cap {
                // Deterministic plan order, so the capped prefix is the
                // same regardless of how planning was chunked.
                fix.truncate(cap.min(fix.len() as u64) as usize);
            }
            let fixed_ids: Vec<BlockId> = fix.iter().map(|&k| self.id_at(k)).collect();
            let round_reads = self.scheme.repair_traffic(&fixed_ids);
            traffic += round_reads;
            let data = fixed_ids.iter().filter(|id| id.is_data()).count() as u64;
            if rounds.is_empty() {
                repaired_singles = fix
                    .iter()
                    .filter(|&&k| single_candidates.get(k as usize))
                    .count() as u64;
            }
            for &k in &fix {
                self.avail.set(k as usize, true);
            }
            rounds.push(RoundStats {
                data,
                parity: fixed_ids.len() as u64 - data,
                reads: round_reads,
            });
            missing.retain(|&k| !self.avail.get(k as usize));
        }
        let data_lost = missing.iter().filter(|&&k| self.id_at(k).is_data()).count() as u64;
        FullRepairOutcome {
            data_lost,
            parity_lost: missing.len() as u64 - data_lost,
            rounds,
            traffic,
            single_failure_data: repaired_singles,
        }
    }

    /// Minimal-maintenance repair (§V.C.2): rounds repair missing data
    /// blocks, plus the redundancy blocks the scheme says those repairs
    /// need ([`RedundancyScheme::maintenance_targets`] — tuple parities
    /// for AE, nothing for RS and replication).
    pub fn repair_minimal(&mut self) -> MinimalRepairOutcome {
        let mut data_repaired = 0;
        let mut parity_repaired = 0;
        loop {
            let missing_data = self.missing_indices(true);
            let missing_data_ids: Vec<BlockId> =
                missing_data.iter().map(|&k| self.id_at(k)).collect();
            let wanted: Vec<u32> = self
                .scheme
                .maintenance_targets(&missing_data_ids, self.data_blocks)
                .into_iter()
                .filter_map(|id| self.index_of(id))
                .filter(|&k| !self.avail.get(k as usize))
                .collect();
            let fix_data = self.plan_repairable(&missing_data);
            let fix_extra = self.plan_repairable(&wanted);
            if fix_data.is_empty() && fix_extra.is_empty() {
                break;
            }
            for &k in &fix_data {
                self.avail.set(k as usize, true);
            }
            data_repaired += fix_data.len() as u64;
            for &k in &fix_extra {
                if !self.avail.get(k as usize) {
                    self.avail.set(k as usize, true);
                    parity_repaired += 1;
                }
            }
        }
        let data_lost = self.missing_indices(true).len() as u64;
        // Fig 12: available data blocks with no working redundancy left —
        // if they failed now, they would be unrepairable.
        let vulnerable_data = {
            let candidates: Vec<u32> = (0..self.universe_len)
                .filter(|&k| self.avail.get(k as usize) && self.id_at(k).is_data())
                .collect();
            self.par_filter(&candidates, |k| {
                let avail = |id: BlockId| self.block_available(id);
                !self
                    .scheme
                    .is_repairable(self.id_at(k), self.data_blocks, &avail)
            })
            .len() as u64
        };
        MinimalRepairOutcome {
            data_repaired,
            parity_repaired,
            data_lost,
            vulnerable_data,
        }
    }
}

/// Chooses `floor(fraction · locations)` failed locations deterministically
/// from the seed; shared by all schemes so a disaster hits the same
/// location set everywhere.
pub fn failed_locations(locations: u32, fraction: f64, seed: u64) -> Vec<bool> {
    assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let count = (locations as f64 * fraction).floor() as usize;
    let mut ids: Vec<u32> = (0..locations).collect();
    // Fisher-Yates prefix shuffle.
    for k in 0..count.min(locations as usize) {
        let pick = rng.random_range(k..locations as usize);
        ids.swap(k, pick);
    }
    let mut failed = vec![false; locations as usize];
    for &l in ids.iter().take(count) {
        failed[l as usize] = true;
    }
    failed
}

/// Chooses `floor(fraction · groups)` failed *placement groups*
/// deterministically from the seed: the locations are partitioned into
/// `groups` contiguous ranges (racks / regions), whole groups fail
/// together. Pure SplitMix64 ([`ae_api::mix64`]) partial Fisher–Yates, so
/// the same `(locations, groups, fraction, seed)` names the same mask on
/// every platform. Shared by all schemes so a correlated disaster hits the
/// same groups everywhere.
///
/// # Panics
///
/// Panics when `groups` is zero or exceeds `locations`, or when `fraction`
/// is outside `[0, 1]`.
pub fn failed_location_groups(locations: u32, groups: u32, fraction: f64, seed: u64) -> Vec<bool> {
    assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
    assert!(
        groups > 0 && groups <= locations,
        "need 1..=locations placement groups"
    );
    let count = (groups as f64 * fraction).floor() as usize;
    let mut ids: Vec<u32> = (0..groups).collect();
    // Partial Fisher–Yates over the group ids, one mix64 draw per slot.
    for k in 0..count.min(groups as usize) {
        let span = groups as usize - k;
        let pick = k + (ae_api::mix64(k as u64, seed) % span as u64) as usize;
        ids.swap(k, pick);
    }
    let mut failed = vec![false; locations as usize];
    for &g in ids.iter().take(count) {
        // Contiguous group g covers locations [g·L/G, (g+1)·L/G).
        let lo = (g as u64 * locations as u64 / groups as u64) as usize;
        let hi = ((g as u64 + 1) * locations as u64 / groups as u64) as usize;
        for flag in &mut failed[lo..hi] {
            *flag = true;
        }
    }
    failed
}

/// The location mask for wave `wave` of a rolling upgrade split into
/// `waves` contiguous waves: wave `w` covers locations
/// `[w·L/waves, (w+1)·L/waves)`. The sweep harness reimages one wave at a
/// time (fail the wave's locations, repair, move on), modeling an
/// operator-driven fleet upgrade rather than a random disaster.
///
/// # Panics
///
/// Panics when `waves` is zero or exceeds `locations`, or `wave` is not
/// below `waves`.
pub fn upgrade_wave(locations: u32, waves: u32, wave: u32) -> Vec<bool> {
    assert!(
        waves > 0 && waves <= locations,
        "need 1..=locations upgrade waves"
    );
    assert!(wave < waves, "wave index out of range");
    let lo = (wave as u64 * locations as u64 / waves as u64) as usize;
    let hi = ((wave as u64 + 1) * locations as u64 / waves as u64) as usize;
    let mut failed = vec![false; locations as usize];
    for flag in &mut failed[lo..hi] {
        *flag = true;
    }
    failed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::Scheme;
    use ae_baselines::{ReedSolomon, Replication};
    use ae_core::Code;
    use ae_lattice::Config;

    fn ae(cfg: Config) -> Code {
        Code::new(cfg, 0)
    }

    #[test]
    fn one_plane_drives_all_roster_schemes() {
        for scheme in Scheme::extended_lineup() {
            let name = scheme.name();
            let mut plane = SchemePlane::new(
                scheme.build(0),
                20_000,
                100,
                SimPlacement::Random { seed: 42 },
            );
            assert!(plane.uses_dense_index(), "{name} has the arithmetic hook");
            assert_eq!(plane.index_bytes(), 0, "{name}");
            assert_eq!(plane.materialized_bytes(), 0, "{name}");
            let (md, mp) = plane.inject_disaster(0.1, 7);
            assert!(md > 0 && mp > 0, "{name}");
            let out = plane.repair_full();
            // A 10% disaster costs every roster scheme at most a few
            // percent (the weak settings — RS(8,2), 2-way anything — bleed
            // a little; the strong ones lose nothing, asserted elsewhere).
            assert!(
                out.data_lost < 1_000,
                "{name} at 10%: lost {}",
                out.data_lost
            );
            assert!(out.data_repaired() > 0, "{name}");
            assert!(out.blocks_read() > 0);
        }
    }

    #[test]
    fn repairs_are_deterministic_per_seed() {
        let run = || {
            let code = ae(Config::new(2, 2, 5).unwrap());
            let mut p = SchemePlane::new(
                Box::new(code),
                20_000,
                100,
                SimPlacement::Random { seed: 5 },
            );
            p.inject_disaster(0.3, 9);
            let o = p.repair_full();
            (o.data_lost, o.round_count(), o.data_repaired())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn dense_and_map_paths_agree_end_to_end() {
        // The same seeded disaster through both index paths must produce
        // identical outcomes (the root plane_parity test sweeps this
        // property over random schemes and disasters).
        let run = |mode| {
            let code = ae(Config::new(3, 2, 5).unwrap());
            let mut p = SchemePlane::with_index_mode(
                Box::new(code),
                10_000,
                100,
                SimPlacement::Random { seed: 5 },
                |_| false,
                mode,
            );
            p.inject_disaster(0.35, 9);
            p.repair_full()
        };
        let dense = run(IndexMode::Auto);
        let map = run(IndexMode::Map);
        assert_eq!(dense, map);
    }

    #[test]
    fn map_mode_is_forced_and_accounted() {
        let code = ae(Config::new(2, 2, 5).unwrap());
        let p = SchemePlane::with_index_mode(
            Box::new(code),
            1_000,
            10,
            SimPlacement::RoundRobin,
            |_| false,
            IndexMode::Map,
        );
        assert!(!p.uses_dense_index());
        assert!(p.index_bytes() > 0);
        assert!(p.materialized_bytes() > p.index_bytes(), "universe counted");
    }

    #[test]
    fn heal_all_respects_punctured_blocks() {
        let code = ae(Config::new(3, 2, 5).unwrap());
        let plan = ae_core::puncture::PuncturePlan::every(2);
        let mut plane = SchemePlane::with_missing(
            Box::new(code),
            1_000,
            10,
            SimPlacement::Random { seed: 1 },
            |id| matches!(id, BlockId::Parity(e) if !plan.is_stored(e)),
        );
        let missing_at_start = plane.missing_indices(false).len();
        assert!(missing_at_start > 0, "punctured parities start missing");
        plane.inject_disaster(0.5, 3);
        plane.heal_all();
        assert_eq!(plane.missing_indices(false).len(), missing_at_start);
    }

    #[test]
    fn failed_locations_deterministic_and_sized() {
        let a = failed_locations(100, 0.3, 77);
        let b = failed_locations(100, 0.3, 77);
        assert_eq!(a, b);
        assert_eq!(a.iter().filter(|&&x| x).count(), 30);
        let none = failed_locations(100, 0.0, 1);
        assert!(none.iter().all(|&x| !x));
    }

    #[test]
    fn rs_stripe_rule_via_generic_plane() {
        // RS(4,12) survives heavy disasters; RS(8,2) bleeds — the stripe
        // threshold logic comes from the scheme, the rounds from the plane.
        let strong = ReedSolomon::new(4, 12).unwrap();
        let weak = ReedSolomon::new(8, 2).unwrap();
        let run = |rs: ReedSolomon| {
            let mut p =
                SchemePlane::new(Box::new(rs), 40_000, 100, SimPlacement::Random { seed: 42 });
            p.inject_disaster(0.3, 3);
            p.repair_full().data_lost
        };
        assert!(run(strong) < 20);
        assert!(run(weak) > 1_000);
    }

    #[test]
    fn replication_plane_still_works() {
        let mut p = SchemePlane::new(
            Box::new(Replication::new(3)),
            20_000,
            100,
            SimPlacement::Random { seed: 42 },
        );
        p.inject_disaster(0.1, 7);
        let out = p.repair_full();
        // P(all three copies on failed locations) ≈ 0.1³.
        assert!(out.data_lost < 100, "lost {}", out.data_lost);
    }

    #[test]
    fn chain_extremity_visible_through_the_plane() {
        // Drive-failure scenario through the generic plane: the closed
        // ring never loses more than the open chain under the same
        // disaster, and the open chain's cost model announces the
        // extremity exposure.
        let run = |mode| {
            let mut p = SchemePlane::new(
                Scheme::Chain { mode }.build(0),
                10_000,
                100,
                SimPlacement::Random { seed: 11 },
            );
            p.inject_disaster(0.3, 5);
            p.repair_full().data_lost
        };
        let open = run(ae_store::ChainMode::Open);
        let closed = run(ae_store::ChainMode::Closed);
        assert!(closed <= open, "closed {closed} vs open {open}");
        let open_scheme = Scheme::Chain {
            mode: ae_store::ChainMode::Open,
        }
        .build(0);
        assert_eq!(open_scheme.repair_cost().extremity_exposed, 2);
    }

    #[test]
    fn capped_rounds_converge_to_the_same_fixpoint() {
        let run = |cap| {
            let code = ae(Config::new(3, 2, 5).unwrap());
            let mut p = SchemePlane::new(
                Box::new(code),
                10_000,
                100,
                SimPlacement::Random { seed: 5 },
            );
            p.inject_disaster(0.3, 9);
            p.repair_rounds(cap, None)
        };
        let free = run(None);
        let capped = run(Some(500));
        // Same repairs land, just spread over more, smaller rounds.
        assert_eq!(capped.data_lost, free.data_lost);
        assert_eq!(capped.data_repaired(), free.data_repaired());
        assert_eq!(capped.blocks_written(), free.blocks_written());
        assert!(capped.round_count() > free.round_count());
        assert!(capped.rounds.iter().all(|r| r.writes() <= 500));
        // Uncapped equals the plain entry point exactly.
        assert_eq!(free, {
            let code = ae(Config::new(3, 2, 5).unwrap());
            let mut p = SchemePlane::new(
                Box::new(code),
                10_000,
                100,
                SimPlacement::Random { seed: 5 },
            );
            p.inject_disaster(0.3, 9);
            p.repair_full()
        });
    }

    #[test]
    fn max_rounds_truncates_and_missing_counts_close_the_books() {
        let code = ae(Config::new(3, 2, 5).unwrap());
        let mut p = SchemePlane::new(
            Box::new(code),
            10_000,
            100,
            SimPlacement::Random { seed: 5 },
        );
        let (fd, fp) = p.inject_disaster(0.3, 9);
        let out = p.repair_rounds(Some(200), Some(3));
        assert_eq!(out.round_count(), 3);
        // Conservation: failed = repaired + still missing, even mid-flight.
        let (md, mp) = p.missing_counts();
        let repaired: u64 = out.rounds.iter().map(|r| r.writes()).sum();
        assert_eq!(fd + fp, repaired + md + mp);
        // Per-round reads sum to the outcome's traffic total.
        assert_eq!(out.traffic, out.rounds.iter().map(|r| r.reads).sum::<u64>());
        assert!(out.rounds.iter().all(|r| r.reads >= r.writes()));
    }

    #[test]
    #[should_panic(expected = "bandwidth cap")]
    fn zero_bandwidth_cap_rejected() {
        let code = ae(Config::new(2, 2, 5).unwrap());
        let mut p = SchemePlane::new(Box::new(code), 100, 10, SimPlacement::RoundRobin);
        p.repair_rounds(Some(0), None);
    }

    #[test]
    fn group_disaster_fails_whole_contiguous_groups() {
        let mask = failed_location_groups(100, 10, 0.3, 7);
        assert_eq!(mask.iter().filter(|&&x| x).count(), 30, "3 groups of 10");
        assert_eq!(mask, failed_location_groups(100, 10, 0.3, 7));
        // Each failed group is a contiguous run of 10.
        for g in 0..10 {
            let group = &mask[g * 10..(g + 1) * 10];
            assert!(
                group.iter().all(|&x| x) || group.iter().all(|&x| !x),
                "group {g} split"
            );
        }
        assert_ne!(
            failed_location_groups(100, 10, 0.3, 7),
            failed_location_groups(100, 10, 0.3, 8),
            "seed matters"
        );
        // Correlated knockout through the plane: a group hit fails every
        // block on its locations, and fail_locations only counts each
        // block once across overlapping events.
        let code = ae(Config::new(2, 2, 5).unwrap());
        let mut p = SchemePlane::new(Box::new(code), 5_000, 100, SimPlacement::Random { seed: 1 });
        let (d1, p1) = p.inject_group_disaster(10, 0.3, 7);
        assert!(d1 > 0 && p1 > 0);
        let again = p.inject_group_disaster(10, 0.3, 7);
        assert_eq!(again, (0, 0), "same groups already failed");
    }

    #[test]
    fn upgrade_waves_tile_the_locations_exactly_once() {
        let mut seen = vec![0u32; 103];
        for w in 0..7 {
            for (l, &hit) in upgrade_wave(103, 7, w).iter().enumerate() {
                seen[l] += hit as u32;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "waves partition locations");
    }

    #[test]
    fn bit_rot_is_per_block_and_deterministic() {
        let run = || {
            let code = ae(Config::new(3, 2, 5).unwrap());
            let mut p = SchemePlane::new(
                Box::new(code),
                20_000,
                100,
                SimPlacement::Random { seed: 2 },
            );
            let rotten = p.inject_bit_rot(0.05, 11);
            let out = p.repair_full();
            (rotten, out.data_lost, out.data_repaired())
        };
        let (rotten, lost, repaired) = run();
        assert_eq!(run(), (rotten, lost, repaired));
        let total = rotten.0 + rotten.1;
        // ~5% of 80k stored blocks, binomial-concentrated.
        assert!((3_500..4_500).contains(&total), "rotted {total}");
        // Scattered single-block rot is the easy case: everything repairs.
        assert_eq!(lost, 0);
        assert_eq!(repaired, rotten.0);
    }

    #[test]
    fn geo_plane_matches_untagged_lattice() {
        // A user's namespaced lattice behaves identically to the untagged
        // code on the availability plane — the tag shifts ids, not
        // structure.
        let run = |scheme: Box<dyn RedundancyScheme>| {
            let mut p = SchemePlane::new(scheme, 10_000, 100, SimPlacement::Random { seed: 3 });
            p.inject_disaster(0.35, 9);
            p.repair_full()
        };
        let cfg = Config::new(3, 2, 5).unwrap();
        let plain = run(Box::new(ae(cfg)));
        let tagged = run(Scheme::Geo { cfg, user: 5 }.build(0));
        assert_eq!(plain, tagged);
    }
}
