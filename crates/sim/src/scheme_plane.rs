//! The generic availability-plane simulation, driven by any
//! [`RedundancyScheme`].
//!
//! One engine replaces the three hand-rolled planes the workspace used to
//! carry (`ae_plane`, `rs_plane`, `repl_plane`): the scheme describes its
//! structure through the trait's availability hooks
//! ([`RedundancyScheme::block_ids`], [`RedundancyScheme::is_repairable`],
//! [`RedundancyScheme::is_single_failure`],
//! [`RedundancyScheme::maintenance_targets`]) and the plane does
//! everything else — placement, disaster injection, round-based repair to
//! fixpoint (§V.C.4), minimal maintenance (§V.C.2) and the Fig 11–13 /
//! Table VI metrics. Blocks are availability flags, not bytes, exactly as
//! in the paper's evaluation: every §V.C metric depends only on which
//! blocks are reachable.

use ae_api::RedundancyScheme;
use ae_blocks::BlockId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// How blocks are mapped to locations in the availability simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimPlacement {
    /// Uniform random placement — the paper's default (§V.C).
    Random {
        /// Placement seed.
        seed: u64,
    },
    /// Round-robin in write order: block k of the universe goes to location
    /// `k mod n`, so neighbouring blocks (a data block and its redundancy)
    /// occupy distinct failure domains — the authors' earlier assumption,
    /// kept for the placement ablation ("we think a round robin placement
    /// might be difficult to implement", §V.C).
    RoundRobin,
}

/// Statistics of one repair round (availability plane).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// Data blocks repaired this round.
    pub data: u64,
    /// Redundancy blocks repaired this round.
    pub parity: u64,
}

/// Outcome of a full round-based repair.
#[derive(Debug, Clone)]
pub struct FullRepairOutcome {
    /// Per-round repair counts.
    pub rounds: Vec<RoundStats>,
    /// Data blocks that could not be repaired (the paper's Fig 11 metric).
    pub data_lost: u64,
    /// Redundancy blocks that could not be repaired.
    pub parity_lost: u64,
    /// Blocks read to complete all repairs (scheme-specific accounting:
    /// 2 per AE repair, one k-shard decode per RS stripe, 1 per copy).
    pub traffic: u64,
    /// Repaired data blocks that were single failures in the scheme's
    /// Fig 13 sense, judged against the pre-repair state.
    pub single_failure_data: u64,
}

impl FullRepairOutcome {
    /// Rounds until fixpoint (Table VI).
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }

    /// Total blocks read during the repair.
    pub fn blocks_read(&self) -> u64 {
        self.traffic
    }

    /// Total data blocks repaired.
    pub fn data_repaired(&self) -> u64 {
        self.rounds.iter().map(|r| r.data).sum()
    }

    /// Share of repaired data blocks that were single failures (Fig 13).
    /// `None` when nothing needed repair.
    pub fn single_failure_share(&self) -> Option<f64> {
        let total = self.data_repaired();
        (total > 0).then(|| self.single_failure_data as f64 / total as f64)
    }
}

/// Outcome of a minimal-maintenance repair.
#[derive(Debug, Clone, Copy)]
pub struct MinimalRepairOutcome {
    /// Data blocks repaired.
    pub data_repaired: u64,
    /// Redundancy blocks repaired because a missing data block needed them.
    pub parity_repaired: u64,
    /// Data blocks lost (no repair possible).
    pub data_lost: u64,
    /// Data blocks left without any working redundancy (Fig 12): present,
    /// but unrepairable if they failed now.
    pub vulnerable_data: u64,
}

/// Availability-plane state for one scheme deployment: every block the
/// scheme stores, its location, and whether it is currently reachable.
pub struct SchemePlane {
    scheme: Box<dyn RedundancyScheme>,
    data_blocks: u64,
    locations: u32,
    /// Placement universe in write order.
    universe: Vec<BlockId>,
    /// Dense index of every universe block.
    index: HashMap<BlockId, u32>,
    /// Location of universe block `k`.
    loc: Vec<u32>,
    /// Availability of universe block `k`.
    avail: Vec<bool>,
    /// Blocks that start out missing (punctured parities): they are never
    /// "available" until repaired, even after [`SchemePlane::heal_all`].
    initially_missing: Vec<bool>,
}

impl SchemePlane {
    /// Builds the plane: asks the scheme for its block universe and places
    /// every block on one of `locations` failure domains.
    pub fn new(
        scheme: Box<dyn RedundancyScheme>,
        data_blocks: u64,
        locations: u32,
        placement: SimPlacement,
    ) -> Self {
        Self::with_missing(scheme, data_blocks, locations, placement, |_| false)
    }

    /// Like [`SchemePlane::new`], but `never_stored` marks blocks that are
    /// not stored at all (e.g. punctured parities). The decoder may still
    /// reconstruct them transiently as stepping stones during repairs.
    pub fn with_missing(
        scheme: Box<dyn RedundancyScheme>,
        data_blocks: u64,
        locations: u32,
        placement: SimPlacement,
        never_stored: impl Fn(BlockId) -> bool,
    ) -> Self {
        assert!(data_blocks > 0 && locations > 0);
        let universe = scheme.block_ids(data_blocks);
        let index: HashMap<BlockId, u32> = universe
            .iter()
            .enumerate()
            .map(|(k, &id)| (id, k as u32))
            .collect();
        let loc: Vec<u32> = match placement {
            SimPlacement::Random { seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                (0..universe.len())
                    .map(|_| rng.random_range(0..locations))
                    .collect()
            }
            SimPlacement::RoundRobin => (0..universe.len())
                .map(|k| (k % locations as usize) as u32)
                .collect(),
        };
        let initially_missing: Vec<bool> = universe.iter().map(|&id| never_stored(id)).collect();
        let avail = initially_missing.iter().map(|&m| !m).collect();
        SchemePlane {
            scheme,
            data_blocks,
            locations,
            universe,
            index,
            loc,
            avail,
            initially_missing,
        }
    }

    /// The scheme driving this plane.
    pub fn scheme(&self) -> &dyn RedundancyScheme {
        self.scheme.as_ref()
    }

    /// Whether `id` is currently available (false for blocks outside the
    /// universe).
    pub fn is_available(&self, id: BlockId) -> bool {
        self.index.get(&id).is_some_and(|&k| self.avail[k as usize])
    }

    /// Data blocks in the deployment.
    pub fn data_blocks(&self) -> u64 {
        self.data_blocks
    }

    /// Total stored blocks (the placement universe).
    pub fn total_blocks(&self) -> u64 {
        self.universe.len() as u64
    }

    /// The location a block was placed on, or `None` for ids outside the
    /// universe.
    pub fn location_of(&self, id: BlockId) -> Option<u32> {
        self.index.get(&id).map(|&k| self.loc[k as usize])
    }

    /// Resets every stored block to available (punctured blocks stay out).
    pub fn heal_all(&mut self) {
        for k in 0..self.avail.len() {
            self.avail[k] = !self.initially_missing[k];
        }
    }

    /// Fails `fraction` of the locations (chosen uniformly by
    /// `disaster_seed`) and marks every block stored there unavailable.
    /// Returns `(missing data, missing redundancy)` counts.
    pub fn inject_disaster(&mut self, fraction: f64, disaster_seed: u64) -> (u64, u64) {
        let failed = failed_locations(self.locations, fraction, disaster_seed);
        let mut missing_data = 0;
        let mut missing_redundancy = 0;
        for k in 0..self.universe.len() {
            if self.avail[k] && failed[self.loc[k] as usize] {
                self.avail[k] = false;
                if self.universe[k].is_data() {
                    missing_data += 1;
                } else {
                    missing_redundancy += 1;
                }
            }
        }
        (missing_data, missing_redundancy)
    }

    /// Availability oracle over the current state.
    fn oracle(&self) -> impl Fn(BlockId) -> bool + '_ {
        |id| self.index.get(&id).is_some_and(|&k| self.avail[k as usize])
    }

    /// Indices of currently missing blocks, optionally data only.
    fn missing_indices(&self, data_only: bool) -> Vec<u32> {
        (0..self.universe.len() as u32)
            .filter(|&k| !self.avail[k as usize])
            .filter(|&k| !data_only || self.universe[k as usize].is_data())
            .collect()
    }

    /// Round-based repair of everything until fixpoint (§V.C.4). Each
    /// round plans against the round-start snapshot, so it models one
    /// parallel wave of distributed repairs.
    pub fn repair_full(&mut self) -> FullRepairOutcome {
        let mut missing = self.missing_indices(false);
        // Judge single failures against the disaster state, before any
        // repair lands (Fig 13's denominator is all repaired data blocks).
        let single_candidates: std::collections::HashSet<u32> = {
            let avail = self.oracle();
            missing
                .iter()
                .copied()
                .filter(|&k| self.universe[k as usize].is_data())
                .filter(|&k| {
                    self.scheme.is_single_failure(
                        self.universe[k as usize],
                        self.data_blocks,
                        &avail,
                    )
                })
                .collect()
        };
        let mut rounds = Vec::new();
        let mut traffic = 0;
        let mut repaired_singles = 0;
        loop {
            let fix: Vec<u32> = {
                let avail = self.oracle();
                missing
                    .iter()
                    .copied()
                    .filter(|&k| {
                        self.scheme.is_repairable(
                            self.universe[k as usize],
                            self.data_blocks,
                            &avail,
                        )
                    })
                    .collect()
            };
            if fix.is_empty() {
                break;
            }
            let fixed_ids: Vec<BlockId> = fix.iter().map(|&k| self.universe[k as usize]).collect();
            traffic += self.scheme.repair_traffic(&fixed_ids);
            let data = fixed_ids.iter().filter(|id| id.is_data()).count() as u64;
            if rounds.is_empty() {
                repaired_singles = fix
                    .iter()
                    .filter(|&k| single_candidates.contains(k))
                    .count() as u64;
            }
            for &k in &fix {
                self.avail[k as usize] = true;
            }
            rounds.push(RoundStats {
                data,
                parity: fixed_ids.len() as u64 - data,
            });
            missing.retain(|&k| !self.avail[k as usize]);
        }
        let data_lost = missing
            .iter()
            .filter(|&&k| self.universe[k as usize].is_data())
            .count() as u64;
        FullRepairOutcome {
            data_lost,
            parity_lost: missing.len() as u64 - data_lost,
            rounds,
            traffic,
            single_failure_data: repaired_singles,
        }
    }

    /// Minimal-maintenance repair (§V.C.2): rounds repair missing data
    /// blocks, plus the redundancy blocks the scheme says those repairs
    /// need ([`RedundancyScheme::maintenance_targets`] — tuple parities
    /// for AE, nothing for RS and replication).
    pub fn repair_minimal(&mut self) -> MinimalRepairOutcome {
        let mut data_repaired = 0;
        let mut parity_repaired = 0;
        loop {
            let missing_data_ids: Vec<BlockId> = self
                .missing_indices(true)
                .into_iter()
                .map(|k| self.universe[k as usize])
                .collect();
            let wanted: Vec<u32> = self
                .scheme
                .maintenance_targets(&missing_data_ids, self.data_blocks)
                .into_iter()
                .filter_map(|id| self.index.get(&id).copied())
                .filter(|&k| !self.avail[k as usize])
                .collect();
            let (fix_data, fix_extra): (Vec<u32>, Vec<u32>) = {
                let avail = self.oracle();
                let repairable = |k: &u32| {
                    self.scheme
                        .is_repairable(self.universe[*k as usize], self.data_blocks, &avail)
                };
                (
                    missing_data_ids
                        .iter()
                        .map(|id| self.index[id])
                        .filter(repairable)
                        .collect(),
                    wanted.iter().copied().filter(|k| repairable(k)).collect(),
                )
            };
            if fix_data.is_empty() && fix_extra.is_empty() {
                break;
            }
            for &k in &fix_data {
                self.avail[k as usize] = true;
            }
            data_repaired += fix_data.len() as u64;
            for &k in &fix_extra {
                if !self.avail[k as usize] {
                    self.avail[k as usize] = true;
                    parity_repaired += 1;
                }
            }
        }
        let data_lost = self.missing_indices(true).len() as u64;
        // Fig 12: available data blocks with no working redundancy left —
        // if they failed now, they would be unrepairable.
        let vulnerable_data = {
            let avail = self.oracle();
            (0..self.universe.len() as u32)
                .filter(|&k| self.avail[k as usize] && self.universe[k as usize].is_data())
                .filter(|&k| {
                    !self
                        .scheme
                        .is_repairable(self.universe[k as usize], self.data_blocks, &avail)
                })
                .count() as u64
        };
        MinimalRepairOutcome {
            data_repaired,
            parity_repaired,
            data_lost,
            vulnerable_data,
        }
    }
}

/// Chooses `floor(fraction · locations)` failed locations deterministically
/// from the seed; shared by all schemes so a disaster hits the same
/// location set everywhere.
pub fn failed_locations(locations: u32, fraction: f64, seed: u64) -> Vec<bool> {
    assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let count = (locations as f64 * fraction).floor() as usize;
    let mut ids: Vec<u32> = (0..locations).collect();
    // Fisher-Yates prefix shuffle.
    for k in 0..count.min(locations as usize) {
        let pick = rng.random_range(k..locations as usize);
        ids.swap(k, pick);
    }
    let mut failed = vec![false; locations as usize];
    for &l in ids.iter().take(count) {
        failed[l as usize] = true;
    }
    failed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_baselines::{ReedSolomon, Replication};
    use ae_core::Code;
    use ae_lattice::Config;

    fn ae(cfg: Config) -> Code {
        Code::new(cfg, 0)
    }

    #[test]
    fn one_plane_drives_all_three_schemes() {
        let schemes: Vec<Box<dyn RedundancyScheme>> = vec![
            Box::new(ae(Config::new(3, 2, 5).unwrap())),
            Box::new(ReedSolomon::new(10, 4).unwrap()),
            Box::new(Replication::new(3)),
        ];
        for scheme in schemes {
            let name = scheme.scheme_name();
            let mut plane =
                SchemePlane::new(scheme, 20_000, 100, SimPlacement::Random { seed: 42 });
            let (md, mp) = plane.inject_disaster(0.1, 7);
            assert!(md > 0 && mp > 0, "{name}");
            let out = plane.repair_full();
            // A 10% disaster is nearly harmless for all three schemes
            // (AE(3,2,5) loses nothing; RS(10,4) and 3-way replication
            // lose at most a handful of unlucky blocks).
            assert!(out.data_lost < 100, "{name} at 10%: lost {}", out.data_lost);
            assert!(out.data_repaired() > 0, "{name}");
            assert!(out.blocks_read() > 0);
        }
    }

    #[test]
    fn repairs_are_deterministic_per_seed() {
        let run = || {
            let code = ae(Config::new(2, 2, 5).unwrap());
            let mut p = SchemePlane::new(
                Box::new(code),
                20_000,
                100,
                SimPlacement::Random { seed: 5 },
            );
            p.inject_disaster(0.3, 9);
            let o = p.repair_full();
            (o.data_lost, o.round_count(), o.data_repaired())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn heal_all_respects_punctured_blocks() {
        let code = ae(Config::new(3, 2, 5).unwrap());
        let plan = ae_core::puncture::PuncturePlan::every(2);
        let mut plane = SchemePlane::with_missing(
            Box::new(code),
            1_000,
            10,
            SimPlacement::Random { seed: 1 },
            |id| matches!(id, BlockId::Parity(e) if !plan.is_stored(e)),
        );
        let missing_at_start = plane.missing_indices(false).len();
        assert!(missing_at_start > 0, "punctured parities start missing");
        plane.inject_disaster(0.5, 3);
        plane.heal_all();
        assert_eq!(plane.missing_indices(false).len(), missing_at_start);
    }

    #[test]
    fn failed_locations_deterministic_and_sized() {
        let a = failed_locations(100, 0.3, 77);
        let b = failed_locations(100, 0.3, 77);
        assert_eq!(a, b);
        assert_eq!(a.iter().filter(|&&x| x).count(), 30);
        let none = failed_locations(100, 0.0, 1);
        assert!(none.iter().all(|&x| !x));
    }

    #[test]
    fn rs_stripe_rule_via_generic_plane() {
        // RS(4,12) survives heavy disasters; RS(8,2) bleeds — the stripe
        // threshold logic comes from the scheme, the rounds from the plane.
        let strong = ReedSolomon::new(4, 12).unwrap();
        let weak = ReedSolomon::new(8, 2).unwrap();
        let run = |rs: ReedSolomon| {
            let mut p =
                SchemePlane::new(Box::new(rs), 40_000, 100, SimPlacement::Random { seed: 42 });
            p.inject_disaster(0.3, 3);
            p.repair_full().data_lost
        };
        assert!(run(strong) < 20);
        assert!(run(weak) > 1_000);
    }
}
