//! Plain-text and CSV rendering of experiment results.
//!
//! Each figure binary prints the same series the paper plots, as a table
//! with one row per scheme and one column per disaster size (or per `p`
//! value for the fault-tolerance figures), plus a CSV block for plotting.

use std::fmt::Write as _;

/// One plotted series: a label and (x, y) points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label, e.g. `RS(10,4)`.
    pub label: String,
    /// Points in x order. `y = None` marks "no value" (e.g. pattern not
    /// found within the search cap).
    pub points: Vec<(f64, Option<f64>)>,
}

impl Series {
    /// Builds a series from complete points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points: points.into_iter().map(|(x, y)| (x, Some(y))).collect(),
        }
    }
}

/// A full experiment result: what the paper draws as one figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Figure/table title.
    pub title: String,
    /// Meaning of x (column header prefix).
    pub x_label: String,
    /// Meaning of y.
    pub y_label: String,
    /// All series.
    pub series: Vec<Series>,
}

impl Sweep {
    /// Renders an aligned text table: one column per distinct x value (the
    /// union across series), one row per series; cells a series lacks show
    /// a dash.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "# y = {}", self.y_label);
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        xs.sort_by(|a, b| a.total_cmp(b));
        xs.dedup();
        let label_w = self
            .series
            .iter()
            .map(|s| s.label.len())
            .max()
            .unwrap_or(8)
            .max(self.x_label.len());
        let _ = write!(out, "{:<label_w$}", self.x_label);
        for x in &xs {
            let _ = write!(out, " {:>12}", trim_float(*x));
        }
        out.push('\n');
        for s in &self.series {
            let _ = write!(out, "{:<label_w$}", s.label);
            for x in &xs {
                let cell = s
                    .points
                    .iter()
                    .find(|(px, _)| px == x)
                    .and_then(|(_, y)| *y);
                match cell {
                    Some(v) => {
                        let _ = write!(out, " {:>12}", trim_float(v));
                    }
                    None => {
                        let _ = write!(out, " {:>12}", "-");
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders CSV: `series,x,y` rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,y\n");
        for s in &self.series {
            for (x, y) in &s.points {
                match y {
                    Some(v) => {
                        let _ = writeln!(out, "{},{},{}", s.label, trim_float(*x), trim_float(*v));
                    }
                    None => {
                        let _ = writeln!(out, "{},{},", s.label, trim_float(*x));
                    }
                }
            }
        }
        out
    }
}

/// Formats floats without trailing noise: integers bare, otherwise 4
/// significant decimals.
fn trim_float(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.4}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Sweep {
        Sweep {
            title: "Fig X".into(),
            x_label: "disaster %".into(),
            y_label: "data loss".into(),
            series: vec![
                Series::new("RS(10,4)", vec![(10.0, 120.0), (20.0, 4000.5)]),
                Series {
                    label: "AE(3,2,5)".into(),
                    points: vec![(10.0, Some(0.0)), (20.0, None)],
                },
            ],
        }
    }

    #[test]
    fn table_contains_headers_and_values() {
        let t = sample().to_table();
        assert!(t.contains("# Fig X"));
        assert!(t.contains("RS(10,4)"));
        assert!(t.contains("4000.5"));
        assert!(t.contains('-'), "missing values rendered as dash");
        // Row per series + 3 header-ish lines.
        assert_eq!(t.lines().count(), 5);
    }

    #[test]
    fn csv_shape() {
        let c = sample().to_csv();
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines[0], "series,x,y");
        assert_eq!(lines.len(), 5);
        assert!(lines.contains(&"RS(10,4),10,120"));
        assert!(lines.contains(&"AE(3,2,5),20,"), "{c}");
    }

    #[test]
    fn float_trimming() {
        assert_eq!(trim_float(10.0), "10");
        assert_eq!(trim_float(0.125), "0.125");
        assert_eq!(trim_float(1.0 / 3.0), "0.3333");
    }
}
