//! Availability-plane simulation of n-way replication — a thin adapter
//! over the generic [`crate::scheme_plane`], with
//! `ae_baselines::Replication` as the driving [`ae_api::RedundancyScheme`].
//!
//! Every data block has `n` copies at independently chosen random
//! locations. A block is lost when all copies sit on failed locations;
//! vulnerable when exactly one copy survives ("not protected by any other
//! redundant block").

use crate::scheme_plane::{SchemePlane, SimPlacement};
use ae_baselines::Replication;
use ae_blocks::{BlockId, NodeId, ReplicaId};

/// Result of a replication disaster analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationOutcome {
    /// Blocks with zero surviving copies (Fig 11).
    pub data_lost: u64,
    /// Blocks that lost at least one copy but survived (repaired by copying
    /// a survivor — one read each).
    pub data_repaired: u64,
    /// Blocks with exactly one surviving copy (Fig 12).
    pub vulnerable_data: u64,
    /// Blocks read during repairs: one read per block that lost copies.
    pub blocks_read: u64,
}

/// An n-way replicated deployment.
pub struct ReplicationSimulation {
    n_copies: u32,
    blocks: u64,
    locations: u32,
    placement_seed: u64,
}

impl ReplicationSimulation {
    /// Builds a deployment of `blocks` data blocks with `n_copies` copies
    /// each.
    ///
    /// # Panics
    ///
    /// Panics for fewer than 2 copies.
    pub fn new(n_copies: u32, blocks: u64, locations: u32, placement_seed: u64) -> Self {
        assert!(n_copies >= 2, "replication needs at least 2 copies");
        ReplicationSimulation {
            n_copies,
            blocks,
            locations,
            placement_seed,
        }
    }

    /// Applies a disaster and classifies every block.
    pub fn run_disaster(&self, fraction: f64, disaster_seed: u64) -> ReplicationOutcome {
        let scheme = Replication::new(self.n_copies as usize);
        let mut plane = SchemePlane::new(
            Box::new(scheme),
            self.blocks,
            self.locations,
            SimPlacement::Random {
                seed: self.placement_seed,
            },
        );
        plane.inject_disaster(fraction, disaster_seed);
        let n = self.n_copies as usize;
        let mut out = ReplicationOutcome {
            data_lost: 0,
            data_repaired: 0,
            vulnerable_data: 0,
            blocks_read: 0,
        };
        for i in 1..=self.blocks {
            let node = NodeId(i);
            let alive = std::iter::once(BlockId::Data(node))
                .chain((1..n as u16).map(|copy| BlockId::Replica(ReplicaId { node, copy })))
                .filter(|&id| plane.is_available(id))
                .count();
            if alive == 0 {
                out.data_lost += 1;
            } else {
                if alive < n {
                    out.data_repaired += 1;
                    out.blocks_read += 1;
                }
                if alive == 1 {
                    out.vulnerable_data += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_scales_with_copy_count() {
        let blocks = 200_000;
        let mut losses = Vec::new();
        for n in [2, 3, 4] {
            let s = ReplicationSimulation::new(n, blocks, 100, 5);
            losses.push(s.run_disaster(0.3, 9).data_lost);
        }
        assert!(losses[0] > losses[1] && losses[1] > losses[2], "{losses:?}");
        // 2-way at 30%: expect ≈ 0.3² = 9% of blocks.
        let frac = losses[0] as f64 / blocks as f64;
        assert!((0.07..0.11).contains(&frac), "2-way loss fraction {frac}");
    }

    #[test]
    fn vulnerable_matches_binomial_expectation() {
        let blocks = 200_000u64;
        let s = ReplicationSimulation::new(2, blocks, 100, 7);
        let out = s.run_disaster(0.3, 3);
        // Exactly one of two copies failed: 2·0.3·0.7 = 42%.
        let frac = out.vulnerable_data as f64 / blocks as f64;
        assert!((0.38..0.46).contains(&frac), "vulnerable fraction {frac}");
    }

    #[test]
    fn no_disaster_all_healthy() {
        let s = ReplicationSimulation::new(3, 10_000, 100, 1);
        let out = s.run_disaster(0.0, 1);
        assert_eq!(
            out,
            ReplicationOutcome {
                data_lost: 0,
                data_repaired: 0,
                vulnerable_data: 0,
                blocks_read: 0
            }
        );
    }

    #[test]
    fn deterministic() {
        let s = ReplicationSimulation::new(4, 50_000, 100, 2);
        assert_eq!(s.run_disaster(0.2, 8), s.run_disaster(0.2, 8));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_single_copy() {
        ReplicationSimulation::new(1, 10, 10, 0);
    }
}
