//! Availability-plane simulation of Reed-Solomon stripes.
//!
//! One million data blocks become `1M / k` stripes of `k + m` blocks each;
//! blocks land on uniform random locations; a disaster fails a fraction of
//! the locations. A stripe with more than `m` unavailable blocks is
//! *damaged*: its unavailable data blocks are lost ("other available data
//! blocks that belong to damaged stripes are not counted as lost",
//! §V.C.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of analysing all stripes after a disaster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RsOutcome {
    /// Data blocks on failed locations in damaged stripes (Fig 11).
    pub data_lost: u64,
    /// Data blocks repaired (in recoverable stripes).
    pub data_repaired: u64,
    /// Repaired data blocks that were the *only* missing block of their
    /// stripe — the single failures of Fig 13.
    pub single_failure_repairs: u64,
    /// Data blocks left vulnerable after minimal maintenance (Fig 12): the
    /// stripe could not afford to lose them (fewer than k available other
    /// blocks), counting repaired data but unrepaired parities.
    pub vulnerable_data: u64,
    /// Stripes damaged beyond recovery.
    pub damaged_stripes: u64,
    /// Blocks read during repairs: every stripe decode reads k surviving
    /// shards (Table IV's "SF" cost, aggregated).
    pub blocks_read: u64,
}

/// An RS(k, m) deployment over `stripes` stripes.
pub struct RsSimulation {
    k: u32,
    m: u32,
    stripes: u64,
    /// Location of every block, stripe-major: `loc[stripe * (k+m) + idx]`,
    /// data blocks first.
    loc: Vec<u32>,
    locations: u32,
}

impl RsSimulation {
    /// Builds an RS deployment holding `data_blocks` data blocks.
    ///
    /// # Panics
    ///
    /// Panics unless `data_blocks` is divisible by `k` (the paper's counts
    /// all are).
    pub fn new(k: u32, m: u32, data_blocks: u64, locations: u32, placement_seed: u64) -> Self {
        assert!(k >= 1 && m >= 1);
        assert_eq!(
            data_blocks % k as u64,
            0,
            "data blocks must fill whole stripes"
        );
        let stripes = data_blocks / k as u64;
        let width = (k + m) as u64;
        let mut rng = StdRng::seed_from_u64(placement_seed);
        let loc = (0..stripes * width)
            .map(|_| rng.random_range(0..locations))
            .collect();
        RsSimulation {
            k,
            m,
            stripes,
            loc,
            locations,
        }
    }

    /// Stripes in the deployment.
    pub fn stripes(&self) -> u64 {
        self.stripes
    }

    /// Distribution quality diagnostic: how many stripes have all `k + m`
    /// blocks on distinct locations (the paper reports 38,429 of 100,000
    /// for RS(10,4) at n = 100, §V.C "Block Placements").
    pub fn stripes_fully_spread(&self) -> u64 {
        let width = (self.k + self.m) as usize;
        let mut count = 0;
        let mut seen = vec![false; self.locations as usize];
        for s in 0..self.stripes as usize {
            let blocks = &self.loc[s * width..(s + 1) * width];
            let mut distinct = true;
            for &l in blocks {
                if seen[l as usize] {
                    distinct = false;
                    break;
                }
                seen[l as usize] = true;
            }
            for &l in blocks {
                seen[l as usize] = false;
            }
            if distinct {
                count += 1;
            }
        }
        count
    }

    /// Applies a disaster (shared location set, see
    /// [`crate::ae_plane::failed_locations`]) and analyses every stripe.
    pub fn run_disaster(&self, fraction: f64, disaster_seed: u64) -> RsOutcome {
        let failed = crate::ae_plane::failed_locations(self.locations, fraction, disaster_seed);
        let width = (self.k + self.m) as usize;
        let k = self.k as usize;
        let mut out = RsOutcome {
            data_lost: 0,
            data_repaired: 0,
            single_failure_repairs: 0,
            vulnerable_data: 0,
            damaged_stripes: 0,
            blocks_read: 0,
        };
        for s in 0..self.stripes as usize {
            let blocks = &self.loc[s * width..(s + 1) * width];
            let missing_total = blocks.iter().filter(|&&l| failed[l as usize]).count();
            let missing_data = blocks[..k].iter().filter(|&&l| failed[l as usize]).count();
            let missing_parity = missing_total - missing_data;
            let recoverable = missing_total <= self.m as usize;
            if !recoverable {
                out.damaged_stripes += 1;
                out.data_lost += missing_data as u64;
                // Surviving data blocks of a damaged stripe have no working
                // redundancy at all: vulnerable.
                out.vulnerable_data += (k - missing_data) as u64;
                continue;
            }
            if missing_data > 0 {
                out.data_repaired += missing_data as u64;
                // One decode per stripe, reading k surviving shards.
                out.blocks_read += k as u64;
                if missing_total == 1 {
                    out.single_failure_repairs += 1;
                }
            }
            // Minimal maintenance: data repaired, parities not. A data
            // block is vulnerable when fewer than k *other* blocks are
            // available: with all k data present that means more than m−1
            // parities missing.
            if missing_parity >= self.m as usize {
                out.vulnerable_data += k as u64;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(k: u32, m: u32) -> RsSimulation {
        RsSimulation::new(k, m, 100_000, 100, 42)
    }

    #[test]
    fn no_disaster_no_loss() {
        let out = sim(10, 4).run_disaster(0.0, 1);
        assert_eq!(out.data_lost, 0);
        assert_eq!(out.data_repaired, 0);
        assert_eq!(out.vulnerable_data, 0);
        assert_eq!(out.damaged_stripes, 0);
    }

    #[test]
    fn stripe_counts_match_paper_shapes() {
        assert_eq!(sim(10, 4).stripes(), 10_000);
        assert_eq!(sim(8, 2).stripes(), 12_500);
        assert_eq!(sim(5, 5).stripes(), 20_000);
        assert_eq!(sim(4, 12).stripes(), 25_000);
    }

    #[test]
    fn fully_spread_fraction_is_partial_at_n100() {
        // The paper: at n = 100 only ~38% of RS(10,4) stripes have all 14
        // blocks on distinct locations.
        let s = sim(10, 4);
        let frac = s.stripes_fully_spread() as f64 / s.stripes() as f64;
        assert!((0.3..0.5).contains(&frac), "fraction {frac}");
    }

    /// §V.C: "91,167 stripes had their 14 blocks in different locations
    /// with n = 1,000" — i.e. ~91% (the binomial expectation
    /// Π(1 − i/1000) ≈ 0.913), versus ~38% at n = 100.
    #[test]
    fn spread_fraction_improves_with_more_locations() {
        let s = RsSimulation::new(10, 4, 100_000, 1_000, 42);
        let frac = s.stripes_fully_spread() as f64 / s.stripes() as f64;
        assert!((0.89..0.94).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn bigger_disasters_lose_more() {
        let s = sim(8, 2);
        let small = s.run_disaster(0.1, 7).data_lost;
        let large = s.run_disaster(0.4, 7).data_lost;
        assert!(large > small);
    }

    #[test]
    fn rs_4_12_survives_heavy_disasters() {
        // 12 parities tolerate a lot; RS(4,12) should lose (almost) nothing
        // at 30%.
        // A stripe only dies when 13+ of its 16 blocks are unreachable;
        // with random placement a handful of collision-heavy stripes can
        // still die, but loss stays near zero.
        let out = sim(4, 12).run_disaster(0.3, 3).data_lost;
        assert!(out < 20, "RS(4,12) at 30%: {out}");
        // While RS(8,2) bleeds.
        assert!(sim(8, 2).run_disaster(0.3, 3).data_lost > 1_000);
    }

    #[test]
    fn single_failure_share_drops_with_disaster_size() {
        let s = sim(4, 12);
        let small = s.run_disaster(0.1, 5);
        let large = s.run_disaster(0.5, 5);
        let share = |o: RsOutcome| o.single_failure_repairs as f64 / o.data_repaired.max(1) as f64;
        assert!(
            share(small) > share(large),
            "single-failure share decreases for larger disasters (Fig 13)"
        );
    }

    #[test]
    fn vulnerable_data_grows_with_disaster() {
        let s = sim(10, 4);
        let v10 = s.run_disaster(0.1, 9).vulnerable_data;
        let v40 = s.run_disaster(0.4, 9).vulnerable_data;
        assert!(v40 > v10);
    }

    #[test]
    fn deterministic_per_seed() {
        let s = sim(5, 5);
        assert_eq!(s.run_disaster(0.3, 11), s.run_disaster(0.3, 11));
    }

    #[test]
    #[should_panic(expected = "whole stripes")]
    fn rejects_partial_stripes() {
        RsSimulation::new(7, 2, 100, 10, 1);
    }
}
