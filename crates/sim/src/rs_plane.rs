//! Availability-plane simulation of Reed-Solomon stripes — a thin adapter
//! over the generic [`crate::scheme_plane`], with
//! `ae_baselines::ReedSolomon` as the driving [`ae_api::RedundancyScheme`].
//!
//! One million data blocks become `1M / k` stripes of `k + m` blocks each;
//! blocks land on uniform random locations; a disaster fails a fraction of
//! the locations. A stripe with more than `m` unavailable blocks is
//! *damaged*: its unavailable data blocks are lost ("other available data
//! blocks that belong to damaged stripes are not counted as lost",
//! §V.C.1).

use crate::scheme_plane::{SchemePlane, SimPlacement};
use ae_baselines::ReedSolomon;
use ae_blocks::BlockId;
use std::collections::BTreeSet;
use std::sync::Mutex;

/// Result of analysing all stripes after a disaster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RsOutcome {
    /// Data blocks on failed locations in damaged stripes (Fig 11).
    pub data_lost: u64,
    /// Data blocks repaired (in recoverable stripes).
    pub data_repaired: u64,
    /// Repaired data blocks that were the *only* missing block of their
    /// stripe — the single failures of Fig 13.
    pub single_failure_repairs: u64,
    /// Data blocks left vulnerable after minimal maintenance (Fig 12): the
    /// stripe could not afford to lose them (fewer than k available other
    /// blocks), counting repaired data but unrepaired parities.
    pub vulnerable_data: u64,
    /// Stripes damaged beyond recovery.
    pub damaged_stripes: u64,
    /// Blocks read during repairs: every stripe decode reads k surviving
    /// shards (Table IV's "SF" cost, aggregated).
    pub blocks_read: u64,
}

/// An RS(k, m) deployment over `stripes` stripes.
pub struct RsSimulation {
    k: u32,
    m: u32,
    stripes: u64,
    data_blocks: u64,
    locations: u32,
    /// One plane per deployment: the universe, index and placement are
    /// built once and reset between disasters via `heal_all`.
    plane: Mutex<SchemePlane>,
}

impl RsSimulation {
    /// Builds an RS deployment holding `data_blocks` data blocks.
    ///
    /// # Panics
    ///
    /// Panics unless `data_blocks` is divisible by `k` (the paper's counts
    /// all are) and the parameters form a valid RS code.
    pub fn new(k: u32, m: u32, data_blocks: u64, locations: u32, placement_seed: u64) -> Self {
        assert!(k >= 1 && m >= 1);
        assert_eq!(
            data_blocks % k as u64,
            0,
            "data blocks must fill whole stripes"
        );
        let scheme = ReedSolomon::new(k as usize, m as usize).expect("valid RS parameters");
        let plane = SchemePlane::new(
            Box::new(scheme),
            data_blocks,
            locations,
            SimPlacement::Random {
                seed: placement_seed,
            },
        );
        RsSimulation {
            k,
            m,
            stripes: data_blocks / k as u64,
            data_blocks,
            locations,
            plane: Mutex::new(plane),
        }
    }

    /// Stripes in the deployment.
    pub fn stripes(&self) -> u64 {
        self.stripes
    }

    /// Distribution quality diagnostic: how many stripes have all `k + m`
    /// blocks on distinct locations (the paper reports 38,429 of 100,000
    /// for RS(10,4) at n = 100, §V.C "Block Placements").
    pub fn stripes_fully_spread(&self) -> u64 {
        let plane = self.plane.lock().expect("plane lock");
        let members = plane.scheme().block_ids(self.data_blocks);
        let mut count = 0;
        let mut seen = vec![false; self.locations as usize];
        for t in 0..self.stripes {
            // Members of stripe t occupy a contiguous run of the universe.
            let width = (self.k + self.m) as usize;
            let run = &members[t as usize * width..(t as usize + 1) * width];
            let mut distinct = true;
            for &id in run {
                let l = plane.location_of(id).expect("universe block") as usize;
                if seen[l] {
                    distinct = false;
                    break;
                }
                seen[l] = true;
            }
            for &id in run {
                if let Some(l) = plane.location_of(id) {
                    seen[l as usize] = false;
                }
            }
            if distinct {
                count += 1;
            }
        }
        count
    }

    /// Applies a disaster (shared location set, see
    /// [`crate::scheme_plane::failed_locations`]) and analyses every
    /// stripe through the generic plane.
    pub fn run_disaster(&self, fraction: f64, disaster_seed: u64) -> RsOutcome {
        // Full repair for loss/repair/traffic metrics.
        let mut plane = self.plane.lock().expect("plane lock");
        plane.heal_all();
        plane.inject_disaster(fraction, disaster_seed);
        let full = plane.repair_full();
        // Damaged stripes: the ones that kept unrecovered members.
        let damaged = {
            let mut stripes: BTreeSet<u64> = BTreeSet::new();
            for t in 0..self.stripes {
                let base = t * self.k as u64;
                for i in base + 1..=base + self.k as u64 {
                    if !plane.is_available(BlockId::Data(ae_blocks::NodeId(i))) {
                        stripes.insert(t);
                        break;
                    }
                }
            }
            stripes.len() as u64
        };
        // Minimal maintenance on a re-injected plane for the Fig 12 metric.
        plane.heal_all();
        plane.inject_disaster(fraction, disaster_seed);
        let minimal = plane.repair_minimal();
        RsOutcome {
            data_lost: full.data_lost,
            data_repaired: full.data_repaired(),
            single_failure_repairs: full.single_failure_data,
            vulnerable_data: minimal.vulnerable_data,
            damaged_stripes: damaged,
            blocks_read: full.blocks_read(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(k: u32, m: u32) -> RsSimulation {
        RsSimulation::new(k, m, 100_000, 100, 42)
    }

    #[test]
    fn no_disaster_no_loss() {
        let out = sim(10, 4).run_disaster(0.0, 1);
        assert_eq!(out.data_lost, 0);
        assert_eq!(out.data_repaired, 0);
        assert_eq!(out.vulnerable_data, 0);
        assert_eq!(out.damaged_stripes, 0);
    }

    #[test]
    fn stripe_counts_match_paper_shapes() {
        assert_eq!(sim(10, 4).stripes(), 10_000);
        assert_eq!(sim(8, 2).stripes(), 12_500);
        assert_eq!(sim(5, 5).stripes(), 20_000);
        assert_eq!(sim(4, 12).stripes(), 25_000);
    }

    #[test]
    fn fully_spread_fraction_is_partial_at_n100() {
        // The paper: at n = 100 only ~38% of RS(10,4) stripes have all 14
        // blocks on distinct locations.
        let s = sim(10, 4);
        let frac = s.stripes_fully_spread() as f64 / s.stripes() as f64;
        assert!((0.3..0.5).contains(&frac), "fraction {frac}");
    }

    /// §V.C: "91,167 stripes had their 14 blocks in different locations
    /// with n = 1,000" — i.e. ~91% (the binomial expectation
    /// Π(1 − i/1000) ≈ 0.913), versus ~38% at n = 100.
    #[test]
    fn spread_fraction_improves_with_more_locations() {
        let s = RsSimulation::new(10, 4, 100_000, 1_000, 42);
        let frac = s.stripes_fully_spread() as f64 / s.stripes() as f64;
        assert!((0.89..0.94).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn bigger_disasters_lose_more() {
        let s = sim(8, 2);
        let small = s.run_disaster(0.1, 7).data_lost;
        let large = s.run_disaster(0.4, 7).data_lost;
        assert!(large > small);
    }

    #[test]
    fn rs_4_12_survives_heavy_disasters() {
        // 12 parities tolerate a lot; RS(4,12) should lose (almost) nothing
        // at 30%.
        // A stripe only dies when 13+ of its 16 blocks are unreachable;
        // with random placement a handful of collision-heavy stripes can
        // still die, but loss stays near zero.
        let out = sim(4, 12).run_disaster(0.3, 3).data_lost;
        assert!(out < 20, "RS(4,12) at 30%: {out}");
        // While RS(8,2) bleeds.
        assert!(sim(8, 2).run_disaster(0.3, 3).data_lost > 1_000);
    }

    #[test]
    fn single_failure_share_drops_with_disaster_size() {
        let s = sim(4, 12);
        let small = s.run_disaster(0.1, 5);
        let large = s.run_disaster(0.5, 5);
        let share = |o: RsOutcome| o.single_failure_repairs as f64 / o.data_repaired.max(1) as f64;
        assert!(
            share(small) > share(large),
            "single-failure share decreases for larger disasters (Fig 13)"
        );
    }

    #[test]
    fn vulnerable_data_grows_with_disaster() {
        let s = sim(10, 4);
        let v10 = s.run_disaster(0.1, 9).vulnerable_data;
        let v40 = s.run_disaster(0.4, 9).vulnerable_data;
        assert!(v40 > v10);
    }

    #[test]
    fn deterministic_per_seed() {
        let s = sim(5, 5);
        assert_eq!(s.run_disaster(0.3, 11), s.run_disaster(0.3, 11));
    }

    #[test]
    #[should_panic(expected = "whole stripes")]
    fn rejects_partial_stripes() {
        RsSimulation::new(7, 2, 100, 10, 1);
    }
}
