//! Disaster-recovery simulation framework (§V.C of the paper).
//!
//! Reproduces the paper's evaluation environment: one million data blocks,
//! encoded under each redundancy scheme, spread uniformly at random over
//! `n = 100` locations; a disaster takes out 10–50% of the locations; the
//! decoder then repairs what it can. Simulations run on the *availability
//! plane* — blocks are flags, not bytes — because every §V.C metric depends
//! only on which blocks are reachable (the byte plane is exercised by the
//! `ae-core` and integration tests instead).
//!
//! * [`schemes`] — the scheme roster: Table IV's schemes plus the §IV
//!   use-case schemes (entangled mirror chains, namespaced geo lattices),
//!   each instantiable as `Box<dyn RedundancyScheme>` via
//!   [`schemes::Scheme::build`].
//! * [`scheme_plane`] — the one generic availability-plane engine, driven
//!   by any [`ae_api::RedundancyScheme`]: placement, disasters,
//!   round-based repair to fixpoint and minimal maintenance. With an
//!   authoritative `dense_index`/`block_at` bijection the plane holds no
//!   per-block id state at all (no materialized universe, no hash index,
//!   no location table — pure arithmetic).
//! * [`ae_plane`], [`rs_plane`], [`repl_plane`] — thin per-scheme adapters
//!   over [`scheme_plane`] keeping the familiar per-code entry points
//!   (Fig 11, Fig 12, Fig 13, Table VI metrics).
//! * [`mirror`] — the entangled-mirror reliability Monte Carlo (§IV.B.1:
//!   mirroring vs open/closed chains).
//! * [`experiments`] — the sweep drivers behind each figure and table
//!   binary (`fig11_data_loss`, `table6_rounds`, …) and the ablations
//!   (placement policy, puncturing, repair traffic).
//! * [`report`] — plain-text table and CSV rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ae_plane;
pub mod bitset;
pub mod cli;
pub mod experiments;
pub mod mirror;
pub mod repl_plane;
pub mod report;
pub mod rs_plane;
pub mod scheme_plane;
pub mod schemes;

pub use ae_plane::AeSimulation;
pub use bitset::BitSet;
pub use repl_plane::ReplicationSimulation;
pub use rs_plane::RsSimulation;
pub use scheme_plane::{
    failed_location_groups, failed_locations, upgrade_wave, FullRepairOutcome, IndexMode,
    MinimalRepairOutcome, RoundStats, SchemePlane, SimPlacement,
};
pub use schemes::Scheme;
