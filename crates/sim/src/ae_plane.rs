//! Availability-plane simulation of an entangled storage system.
//!
//! Blocks are availability flags plus a location, exactly the schema of the
//! paper's Table V (block id, type/strand, location, available, repaired).
//! Two repair regimes:
//!
//! * [`AeSimulation::repair_full`] — the round-based global decoder: each
//!   round repairs every data and parity block that has a complete tuple
//!   among the blocks available at the round's start (§V.C.4; Fig 11,
//!   Fig 13, Table VI).
//! * [`AeSimulation::repair_minimal`] — *minimal maintenance* (§V.C.2):
//!   data blocks are repaired, but a missing parity is repaired only when
//!   it belongs to a repair tuple of a currently-missing data block. What
//!   remains is used for the Fig 12 metric: data blocks left without a
//!   single complete pp-tuple.

use ae_core::puncture::PuncturePlan;
use ae_lattice::{rules, Config};
use ae_blocks::{EdgeId, NodeId, StrandClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How blocks are mapped to locations in the availability simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimPlacement {
    /// Uniform random placement — the paper's default (§V.C).
    Random {
        /// Placement seed.
        seed: u64,
    },
    /// Round-robin in write order: block k of the sequence goes to location
    /// `k mod n`, so lattice neighbours occupy distinct failure domains —
    /// the authors' earlier assumption, kept for the placement ablation
    /// ("we think a round robin placement might be difficult to implement",
    /// §V.C).
    RoundRobin,
}

/// Statistics of one repair round (availability plane).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// Data blocks repaired this round.
    pub data: u64,
    /// Parity blocks repaired this round.
    pub parity: u64,
}

/// Outcome of a full round-based repair.
#[derive(Debug, Clone)]
pub struct FullRepairOutcome {
    /// Per-round repair counts.
    pub rounds: Vec<RoundStats>,
    /// Data blocks that could not be repaired (the paper's Fig 11 metric).
    pub data_lost: u64,
    /// Parity blocks that could not be repaired.
    pub parity_lost: u64,
}

impl FullRepairOutcome {
    /// Rounds until fixpoint (Table VI).
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }

    /// Total blocks read during the repair: every single repair XORs two
    /// available blocks (Table IV's fixed "k = 2"), so traffic is exactly
    /// twice the repair count — the maintenance-cost story of §V.C.3.
    pub fn blocks_read(&self) -> u64 {
        2 * self.rounds.iter().map(|r| r.data + r.parity).sum::<u64>()
    }

    /// Total data blocks repaired.
    pub fn data_repaired(&self) -> u64 {
        self.rounds.iter().map(|r| r.data).sum()
    }

    /// Share of repaired data blocks fixed in round 1 — single failures
    /// solved with one XOR (Fig 13). `None` when nothing needed repair.
    pub fn single_failure_share(&self) -> Option<f64> {
        let total = self.data_repaired();
        (total > 0).then(|| self.rounds[0].data as f64 / total as f64)
    }
}

/// Outcome of a minimal-maintenance repair.
#[derive(Debug, Clone, Copy)]
pub struct MinimalRepairOutcome {
    /// Data blocks repaired.
    pub data_repaired: u64,
    /// Parities repaired because a missing data block needed them.
    pub parity_repaired: u64,
    /// Data blocks lost (no repair possible).
    pub data_lost: u64,
    /// Data blocks left without any complete pp-tuple (Fig 12).
    pub vulnerable_data: u64,
}

/// An AE(α, s, p) lattice over `n` data blocks distributed across
/// locations.
pub struct AeSimulation {
    cfg: Config,
    n: u64,
    locations: u32,
    /// Location of data block i (index i−1).
    node_loc: Vec<u32>,
    /// Location of parity (class c, left i) at `[c][i−1]`.
    edge_loc: Vec<Vec<u32>>,
    node_avail: Vec<bool>,
    edge_avail: Vec<Vec<bool>>,
}

impl AeSimulation {
    /// Builds the lattice state: `n` data blocks and `α·n` parities, each
    /// assigned a uniform random location (the paper's random placement).
    pub fn new(cfg: Config, n: u64, locations: u32, placement_seed: u64) -> Self {
        Self::with_options(
            cfg,
            n,
            locations,
            SimPlacement::Random { seed: placement_seed },
            PuncturePlan::none(),
        )
    }

    /// Builds the lattice state with an explicit placement policy and
    /// puncture plan. Punctured parities start out missing (never stored);
    /// the decoder may still reconstruct them transiently as stepping
    /// stones during repairs.
    pub fn with_options(
        cfg: Config,
        n: u64,
        locations: u32,
        placement: SimPlacement,
        puncture: PuncturePlan,
    ) -> Self {
        assert!(n > 0 && locations > 0);
        let classes = cfg.classes().len();
        let stride = 1 + classes as u64;
        let (node_loc, edge_loc): (Vec<u32>, Vec<Vec<u32>>) = match placement {
            SimPlacement::Random { seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                (
                    (0..n).map(|_| rng.random_range(0..locations)).collect(),
                    (0..classes)
                        .map(|_| (0..n).map(|_| rng.random_range(0..locations)).collect())
                        .collect(),
                )
            }
            SimPlacement::RoundRobin => (
                (0..n).map(|i| ((i * stride) % locations as u64) as u32).collect(),
                (0..classes)
                    .map(|c| {
                        (0..n)
                            .map(|i| ((i * stride + 1 + c as u64) % locations as u64) as u32)
                            .collect()
                    })
                    .collect(),
            ),
        };
        let mut edge_avail: Vec<Vec<bool>> = vec![vec![true; n as usize]; classes];
        for (c, avail) in edge_avail.iter_mut().enumerate() {
            let class = cfg.classes()[c];
            for i in 1..=n {
                if !puncture.is_stored(EdgeId::new(class, NodeId(i))) {
                    avail[(i - 1) as usize] = false;
                }
            }
        }
        AeSimulation {
            cfg,
            n,
            locations,
            node_loc,
            edge_loc,
            node_avail: vec![true; n as usize],
            edge_avail,
        }
    }

    /// The code configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Data blocks in the lattice.
    pub fn data_blocks(&self) -> u64 {
        self.n
    }

    /// Resets all blocks to available.
    pub fn heal_all(&mut self) {
        self.node_avail.fill(true);
        for e in &mut self.edge_avail {
            e.fill(true);
        }
    }

    /// Fails `fraction` of the locations (chosen uniformly by
    /// `disaster_seed`) and marks every block stored there unavailable.
    /// Returns `(missing data, missing parity)` counts.
    pub fn inject_disaster(&mut self, fraction: f64, disaster_seed: u64) -> (u64, u64) {
        let failed = failed_locations(self.locations, fraction, disaster_seed);
        let mut missing_data = 0;
        let mut missing_parity = 0;
        for i in 0..self.n as usize {
            if failed[self.node_loc[i] as usize] {
                self.node_avail[i] = false;
                missing_data += 1;
            }
        }
        for (c, locs) in self.edge_loc.iter().enumerate() {
            for i in 0..self.n as usize {
                if failed[locs[i] as usize] {
                    self.edge_avail[c][i] = false;
                    missing_parity += 1;
                }
            }
        }
        (missing_data, missing_parity)
    }

    /// Whether the input parity of node `i` (1-based) on class index `c` is
    /// available (virtual inputs before the lattice are always available).
    fn input_avail(&self, c: usize, i: i64) -> bool {
        let h = rules::input_source(&self.cfg, self.class(c), i);
        h < 1 || self.edge_avail[c][(h - 1) as usize]
    }

    fn class(&self, c: usize) -> StrandClass {
        self.cfg.classes()[c]
    }

    /// Whether data block `i` (1-based) has a complete pp-tuple right now.
    fn node_repairable(&self, i: i64) -> bool {
        (0..self.edge_avail.len())
            .any(|c| self.input_avail(c, i) && self.edge_avail[c][(i - 1) as usize])
    }

    /// Whether parity (class c, left i) has a complete dp-tuple right now.
    fn edge_repairable(&self, c: usize, i: i64) -> bool {
        // Left tuple: d_i and i's input parity on the class.
        if self.node_avail[(i - 1) as usize] && self.input_avail(c, i) {
            return true;
        }
        // Right tuple: d_j and j's output parity on the class.
        let j = rules::output_target(&self.cfg, self.class(c), i);
        j <= self.n as i64
            && self.node_avail[(j - 1) as usize]
            && self.edge_avail[c][(j - 1) as usize]
    }

    /// Round-based repair of everything until fixpoint.
    pub fn repair_full(&mut self) -> FullRepairOutcome {
        let mut missing_nodes: Vec<i64> = (1..=self.n as i64)
            .filter(|&i| !self.node_avail[(i - 1) as usize])
            .collect();
        let mut missing_edges: Vec<(usize, i64)> = Vec::new();
        for c in 0..self.edge_avail.len() {
            for i in 1..=self.n as i64 {
                if !self.edge_avail[c][(i - 1) as usize] {
                    missing_edges.push((c, i));
                }
            }
        }
        let mut rounds = Vec::new();
        loop {
            // Plan against the round-start snapshot.
            let fix_nodes: Vec<i64> = missing_nodes
                .iter()
                .copied()
                .filter(|&i| self.node_repairable(i))
                .collect();
            let fix_edges: Vec<(usize, i64)> = missing_edges
                .iter()
                .copied()
                .filter(|&(c, i)| self.edge_repairable(c, i))
                .collect();
            if fix_nodes.is_empty() && fix_edges.is_empty() {
                break;
            }
            for &i in &fix_nodes {
                self.node_avail[(i - 1) as usize] = true;
            }
            for &(c, i) in &fix_edges {
                self.edge_avail[c][(i - 1) as usize] = true;
            }
            rounds.push(RoundStats {
                data: fix_nodes.len() as u64,
                parity: fix_edges.len() as u64,
            });
            missing_nodes.retain(|&i| !self.node_avail[(i - 1) as usize]);
            missing_edges.retain(|&(c, i)| !self.edge_avail[c][(i - 1) as usize]);
        }
        FullRepairOutcome {
            data_lost: missing_nodes.len() as u64,
            parity_lost: missing_edges.len() as u64,
            rounds,
        }
    }

    /// Minimal-maintenance repair: rounds repair missing data blocks, plus
    /// missing parities that belong to a pp-tuple of a currently-missing
    /// data block ("some parities are repaired if they are part of the same
    /// stripe of an unavailable data block", §V.C.2).
    pub fn repair_minimal(&mut self) -> MinimalRepairOutcome {
        let mut missing_nodes: Vec<i64> = (1..=self.n as i64)
            .filter(|&i| !self.node_avail[(i - 1) as usize])
            .collect();
        let mut data_repaired = 0;
        let mut parity_repaired = 0;
        loop {
            // Parities needed by currently-missing data blocks.
            let mut wanted: Vec<(usize, i64)> = Vec::new();
            for &i in &missing_nodes {
                for c in 0..self.edge_avail.len() {
                    let h = rules::input_source(&self.cfg, self.class(c), i);
                    if h >= 1 && !self.edge_avail[c][(h - 1) as usize] {
                        wanted.push((c, h));
                    }
                    if !self.edge_avail[c][(i - 1) as usize] {
                        wanted.push((c, i));
                    }
                }
            }
            let fix_nodes: Vec<i64> = missing_nodes
                .iter()
                .copied()
                .filter(|&i| self.node_repairable(i))
                .collect();
            let fix_edges: Vec<(usize, i64)> = wanted
                .into_iter()
                .filter(|&(c, i)| self.edge_repairable(c, i))
                .collect();
            if fix_nodes.is_empty() && fix_edges.is_empty() {
                break;
            }
            for &i in &fix_nodes {
                self.node_avail[(i - 1) as usize] = true;
            }
            data_repaired += fix_nodes.len() as u64;
            for &(c, i) in &fix_edges {
                if !self.edge_avail[c][(i - 1) as usize] {
                    self.edge_avail[c][(i - 1) as usize] = true;
                    parity_repaired += 1;
                }
            }
            missing_nodes.retain(|&i| !self.node_avail[(i - 1) as usize]);
        }
        let data_lost = missing_nodes.len() as u64;
        // Fig 12: available data blocks with no complete pp-tuple left.
        let vulnerable_data = (1..=self.n as i64)
            .filter(|&i| self.node_avail[(i - 1) as usize] && !self.node_repairable(i))
            .count() as u64;
        MinimalRepairOutcome {
            data_repaired,
            parity_repaired,
            data_lost,
            vulnerable_data,
        }
    }
}

/// Chooses `floor(fraction · locations)` failed locations deterministically
/// from the seed; shared by all schemes so a disaster hits the same
/// location set everywhere.
pub fn failed_locations(locations: u32, fraction: f64, seed: u64) -> Vec<bool> {
    assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let count = (locations as f64 * fraction).floor() as usize;
    let mut ids: Vec<u32> = (0..locations).collect();
    // Fisher-Yates prefix shuffle.
    for k in 0..count.min(locations as usize) {
        let pick = rng.random_range(k..locations as usize);
        ids.swap(k, pick);
    }
    let mut failed = vec![false; locations as usize];
    for &l in ids.iter().take(count) {
        failed[l as usize] = true;
    }
    failed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(cfg: Config, n: u64) -> AeSimulation {
        AeSimulation::new(cfg, n, 100, 42)
    }

    #[test]
    fn disaster_marks_expected_fraction() {
        let mut s = sim(Config::new(3, 2, 5).unwrap(), 50_000);
        let (md, mp) = s.inject_disaster(0.2, 7);
        // ~20% of 50k data and of 150k parities.
        assert!((8_000..12_000).contains(&md), "missing data {md}");
        assert!((25_000..35_000).contains(&mp), "missing parity {mp}");
    }

    #[test]
    fn no_disaster_nothing_to_repair() {
        let mut s = sim(Config::new(2, 2, 5).unwrap(), 10_000);
        let out = s.repair_full();
        assert_eq!(out.round_count(), 0);
        assert_eq!(out.data_lost, 0);
        assert_eq!(out.single_failure_share(), None);
    }

    #[test]
    fn small_disaster_fully_repairs_triple_entanglement() {
        let mut s = sim(Config::new(3, 2, 5).unwrap(), 50_000);
        s.inject_disaster(0.10, 3);
        let out = s.repair_full();
        assert_eq!(out.data_lost, 0, "AE(3,2,5) shrugs off a 10% disaster");
        assert!(out.round_count() >= 1);
        // Most repairs happen in the first round (Fig 13).
        assert!(out.single_failure_share().unwrap() > 0.8);
    }

    #[test]
    fn fault_tolerance_ordering_alpha() {
        // At a heavy disaster, data loss must decrease with alpha.
        let mut losses = Vec::new();
        for cfg in [
            Config::single(),
            Config::new(2, 2, 5).unwrap(),
            Config::new(3, 2, 5).unwrap(),
        ] {
            let mut s = sim(cfg, 50_000);
            s.inject_disaster(0.4, 11);
            losses.push(s.repair_full().data_lost);
        }
        assert!(losses[0] > losses[1], "AE(1) loses more than AE(2,2,5): {losses:?}");
        assert!(losses[1] >= losses[2], "AE(2,2,5) >= AE(3,2,5): {losses:?}");
        assert!(losses[2] < losses[0] / 10, "AE(3,2,5) far better than AE(1)");
    }

    #[test]
    fn repair_is_deterministic() {
        let run = || {
            let mut s = sim(Config::new(2, 2, 5).unwrap(), 20_000);
            s.inject_disaster(0.3, 5);
            let o = s.repair_full();
            (o.data_lost, o.round_count(), o.data_repaired())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn minimal_maintenance_leaves_vulnerable_data() {
        let mut s = sim(Config::single(), 50_000);
        s.inject_disaster(0.3, 9);
        let out = s.repair_minimal();
        // With α = 1 and a 30% disaster a sizable fraction of data has an
        // incomplete tuple even after data repairs.
        let frac = out.vulnerable_data as f64 / 50_000.0;
        assert!(frac > 0.10, "vulnerable fraction {frac}");
        assert!(out.parity_repaired > 0, "tuple parities do get repaired");
    }

    #[test]
    fn minimal_repairs_fewer_parities_than_full() {
        let (mut a, mut b) = (
            sim(Config::new(3, 2, 5).unwrap(), 30_000),
            sim(Config::new(3, 2, 5).unwrap(), 30_000),
        );
        a.inject_disaster(0.3, 13);
        b.inject_disaster(0.3, 13);
        let full = a.repair_full();
        let minimal = b.repair_minimal();
        let full_parity: u64 = full.rounds.iter().map(|r| r.parity).sum();
        assert!(
            minimal.parity_repaired < full_parity,
            "minimal {} < full {full_parity}",
            minimal.parity_repaired
        );
        // Minimal maintenance may recover slightly less data: parity-repair
        // chains stop at parities no missing data block needs directly.
        assert!(
            minimal.data_lost >= full.data_lost,
            "minimal {} >= full {}",
            minimal.data_lost,
            full.data_lost
        );
    }

    #[test]
    fn higher_alpha_reduces_vulnerability() {
        let mut v = Vec::new();
        for cfg in [Config::single(), Config::new(3, 2, 5).unwrap()] {
            let mut s = sim(cfg, 30_000);
            s.inject_disaster(0.3, 21);
            v.push(s.repair_minimal().vulnerable_data);
        }
        assert!(v[1] < v[0] / 5, "AE(3,2,5) {} vs AE(1) {}", v[1], v[0]);
    }

    #[test]
    fn heal_all_resets() {
        let mut s = sim(Config::new(2, 2, 5).unwrap(), 5_000);
        s.inject_disaster(0.5, 2);
        s.heal_all();
        let out = s.repair_full();
        assert_eq!(out.round_count(), 0);
    }

    #[test]
    fn round_robin_placement_beats_random() {
        // §V.C: round-robin keeps lattice neighbours in distinct failure
        // domains, so recovery can only improve.
        let cfg = Config::new(2, 2, 5).unwrap();
        let run = |placement| {
            let mut s = AeSimulation::with_options(
                cfg,
                40_000,
                100,
                placement,
                ae_core::puncture::PuncturePlan::none(),
            );
            s.inject_disaster(0.4, 3);
            s.repair_full().data_lost
        };
        let random = run(SimPlacement::Random { seed: 42 });
        let rr = run(SimPlacement::RoundRobin);
        assert!(rr <= random, "round-robin {rr} vs random {random}");
    }

    #[test]
    fn punctured_lattice_loses_more() {
        use ae_core::puncture::PuncturePlan;
        let cfg = Config::new(3, 2, 5).unwrap();
        let run = |plan| {
            let mut s =
                AeSimulation::with_options(cfg, 40_000, 100, SimPlacement::Random { seed: 42 }, plan);
            s.inject_disaster(0.4, 3);
            s.repair_full().data_lost
        };
        let full = run(PuncturePlan::none());
        let half = run(PuncturePlan::every(2));
        assert!(half >= full, "puncturing cannot reduce loss: {half} vs {full}");
        assert!(half > 0, "half the parities gone must cost something at 40%");
    }

    #[test]
    fn puncture_marks_parities_missing_without_disaster() {
        use ae_core::puncture::PuncturePlan;
        let cfg = Config::new(2, 2, 2).unwrap();
        let mut s = AeSimulation::with_options(
            cfg,
            1_000,
            10,
            SimPlacement::Random { seed: 1 },
            PuncturePlan::every(2),
        );
        // No disaster: every data block is present; the decoder can rebuild
        // the punctured parities themselves (they are ordinary repairs).
        let out = s.repair_full();
        assert_eq!(out.data_lost, 0);
        assert!(out.rounds[0].parity > 0, "punctured parities get rebuilt");
    }

    #[test]
    fn blocks_read_is_twice_repairs() {
        let mut s = sim(Config::new(3, 2, 5).unwrap(), 30_000);
        s.inject_disaster(0.2, 5);
        let out = s.repair_full();
        let total: u64 = out.rounds.iter().map(|r| r.data + r.parity).sum();
        assert_eq!(out.blocks_read(), 2 * total);
        assert!(out.blocks_read() > 0);
    }

    #[test]
    fn failed_locations_deterministic_and_sized() {
        let a = failed_locations(100, 0.3, 77);
        let b = failed_locations(100, 0.3, 77);
        assert_eq!(a, b);
        assert_eq!(a.iter().filter(|&&x| x).count(), 30);
        let none = failed_locations(100, 0.0, 1);
        assert!(none.iter().all(|&x| !x));
    }
}
