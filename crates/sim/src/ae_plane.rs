//! Availability-plane simulation of an entangled storage system — a thin
//! adapter over the generic [`crate::scheme_plane`], with `ae_core::Code`
//! as the driving [`ae_api::RedundancyScheme`].
//!
//! Blocks are availability flags plus a location, exactly the schema of the
//! paper's Table V (block id, type/strand, location, available, repaired).
//! Two repair regimes:
//!
//! * [`AeSimulation::repair_full`] — the round-based global decoder: each
//!   round repairs every data and parity block that has a complete tuple
//!   among the blocks available at the round's start (§V.C.4; Fig 11,
//!   Fig 13, Table VI).
//! * [`AeSimulation::repair_minimal`] — *minimal maintenance* (§V.C.2):
//!   data blocks are repaired, but a missing parity is repaired only when
//!   it belongs to a repair tuple of a currently-missing data block. What
//!   remains is used for the Fig 12 metric: data blocks left without a
//!   single complete pp-tuple.

use crate::scheme_plane::SchemePlane;
use ae_blocks::BlockId;
use ae_core::puncture::PuncturePlan;
use ae_core::Code;
use ae_lattice::Config;

pub use crate::scheme_plane::{
    failed_locations, FullRepairOutcome, MinimalRepairOutcome, RoundStats, SimPlacement,
};

/// An AE(α, s, p) lattice over `n` data blocks distributed across
/// locations, driven through the scheme-agnostic plane.
pub struct AeSimulation {
    cfg: Config,
    plane: SchemePlane,
}

impl AeSimulation {
    /// Builds the lattice state: `n` data blocks and `α·n` parities, each
    /// assigned a uniform random location (the paper's random placement).
    pub fn new(cfg: Config, n: u64, locations: u32, placement_seed: u64) -> Self {
        Self::with_options(
            cfg,
            n,
            locations,
            SimPlacement::Random {
                seed: placement_seed,
            },
            PuncturePlan::none(),
        )
    }

    /// Builds the lattice state with an explicit placement policy and
    /// puncture plan. Punctured parities start out missing (never stored);
    /// the decoder may still reconstruct them transiently as stepping
    /// stones during repairs.
    pub fn with_options(
        cfg: Config,
        n: u64,
        locations: u32,
        placement: SimPlacement,
        puncture: PuncturePlan,
    ) -> Self {
        // Block size 0: the availability plane never touches bytes.
        let code = Code::new(cfg, 0);
        let plane = SchemePlane::with_missing(
            Box::new(code),
            n,
            locations,
            placement,
            |id| matches!(id, BlockId::Parity(e) if !puncture.is_stored(e)),
        );
        AeSimulation { cfg, plane }
    }

    /// The code configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Data blocks in the lattice.
    pub fn data_blocks(&self) -> u64 {
        self.plane.data_blocks()
    }

    /// Resets all stored blocks to available.
    pub fn heal_all(&mut self) {
        self.plane.heal_all();
    }

    /// Fails `fraction` of the locations (chosen uniformly by
    /// `disaster_seed`) and marks every block stored there unavailable.
    /// Returns `(missing data, missing parity)` counts.
    pub fn inject_disaster(&mut self, fraction: f64, disaster_seed: u64) -> (u64, u64) {
        self.plane.inject_disaster(fraction, disaster_seed)
    }

    /// Round-based repair of everything until fixpoint.
    pub fn repair_full(&mut self) -> FullRepairOutcome {
        self.plane.repair_full()
    }

    /// Minimal-maintenance repair: rounds repair missing data blocks, plus
    /// missing parities that belong to a pp-tuple of a currently-missing
    /// data block ("some parities are repaired if they are part of the same
    /// stripe of an unavailable data block", §V.C.2).
    pub fn repair_minimal(&mut self) -> MinimalRepairOutcome {
        self.plane.repair_minimal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(cfg: Config, n: u64) -> AeSimulation {
        AeSimulation::new(cfg, n, 100, 42)
    }

    #[test]
    fn disaster_marks_expected_fraction() {
        let mut s = sim(Config::new(3, 2, 5).unwrap(), 50_000);
        let (md, mp) = s.inject_disaster(0.2, 7);
        // ~20% of 50k data and of 150k parities.
        assert!((8_000..12_000).contains(&md), "missing data {md}");
        assert!((25_000..35_000).contains(&mp), "missing parity {mp}");
    }

    #[test]
    fn no_disaster_nothing_to_repair() {
        let mut s = sim(Config::new(2, 2, 5).unwrap(), 10_000);
        let out = s.repair_full();
        assert_eq!(out.round_count(), 0);
        assert_eq!(out.data_lost, 0);
        assert_eq!(out.single_failure_share(), None);
    }

    #[test]
    fn small_disaster_fully_repairs_triple_entanglement() {
        let mut s = sim(Config::new(3, 2, 5).unwrap(), 50_000);
        s.inject_disaster(0.10, 3);
        let out = s.repair_full();
        assert_eq!(out.data_lost, 0, "AE(3,2,5) shrugs off a 10% disaster");
        assert!(out.round_count() >= 1);
        // Most repairs happen in the first round (Fig 13).
        assert!(out.single_failure_share().unwrap() > 0.8);
    }

    #[test]
    fn fault_tolerance_ordering_alpha() {
        // At a heavy disaster, data loss must decrease with alpha.
        let mut losses = Vec::new();
        for cfg in [
            Config::single(),
            Config::new(2, 2, 5).unwrap(),
            Config::new(3, 2, 5).unwrap(),
        ] {
            let mut s = sim(cfg, 50_000);
            s.inject_disaster(0.4, 11);
            losses.push(s.repair_full().data_lost);
        }
        assert!(
            losses[0] > losses[1],
            "AE(1) loses more than AE(2,2,5): {losses:?}"
        );
        assert!(losses[1] >= losses[2], "AE(2,2,5) >= AE(3,2,5): {losses:?}");
        assert!(
            losses[2] < losses[0] / 10,
            "AE(3,2,5) far better than AE(1)"
        );
    }

    #[test]
    fn repair_is_deterministic() {
        let run = || {
            let mut s = sim(Config::new(2, 2, 5).unwrap(), 20_000);
            s.inject_disaster(0.3, 5);
            let o = s.repair_full();
            (o.data_lost, o.round_count(), o.data_repaired())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn minimal_maintenance_leaves_vulnerable_data() {
        let mut s = sim(Config::single(), 50_000);
        s.inject_disaster(0.3, 9);
        let out = s.repair_minimal();
        // With α = 1 and a 30% disaster a sizable fraction of data has an
        // incomplete tuple even after data repairs.
        let frac = out.vulnerable_data as f64 / 50_000.0;
        assert!(frac > 0.10, "vulnerable fraction {frac}");
        assert!(out.parity_repaired > 0, "tuple parities do get repaired");
    }

    #[test]
    fn minimal_repairs_fewer_parities_than_full() {
        let (mut a, mut b) = (
            sim(Config::new(3, 2, 5).unwrap(), 30_000),
            sim(Config::new(3, 2, 5).unwrap(), 30_000),
        );
        a.inject_disaster(0.3, 13);
        b.inject_disaster(0.3, 13);
        let full = a.repair_full();
        let minimal = b.repair_minimal();
        let full_parity: u64 = full.rounds.iter().map(|r| r.parity).sum();
        assert!(
            minimal.parity_repaired < full_parity,
            "minimal {} < full {full_parity}",
            minimal.parity_repaired
        );
        // Minimal maintenance may recover slightly less data: parity-repair
        // chains stop at parities no missing data block needs directly.
        assert!(
            minimal.data_lost >= full.data_lost,
            "minimal {} >= full {}",
            minimal.data_lost,
            full.data_lost
        );
    }

    #[test]
    fn higher_alpha_reduces_vulnerability() {
        let mut v = Vec::new();
        for cfg in [Config::single(), Config::new(3, 2, 5).unwrap()] {
            let mut s = sim(cfg, 30_000);
            s.inject_disaster(0.3, 21);
            v.push(s.repair_minimal().vulnerable_data);
        }
        assert!(v[1] < v[0] / 5, "AE(3,2,5) {} vs AE(1) {}", v[1], v[0]);
    }

    #[test]
    fn heal_all_resets() {
        let mut s = sim(Config::new(2, 2, 5).unwrap(), 5_000);
        s.inject_disaster(0.5, 2);
        s.heal_all();
        let out = s.repair_full();
        assert_eq!(out.round_count(), 0);
    }

    #[test]
    fn round_robin_placement_beats_random() {
        // §V.C: round-robin keeps lattice neighbours in distinct failure
        // domains, so recovery can only improve.
        let cfg = Config::new(2, 2, 5).unwrap();
        let run = |placement| {
            let mut s =
                AeSimulation::with_options(cfg, 40_000, 100, placement, PuncturePlan::none());
            s.inject_disaster(0.4, 3);
            s.repair_full().data_lost
        };
        let random = run(SimPlacement::Random { seed: 42 });
        let rr = run(SimPlacement::RoundRobin);
        assert!(rr <= random, "round-robin {rr} vs random {random}");
    }

    #[test]
    fn punctured_lattice_loses_more() {
        let cfg = Config::new(3, 2, 5).unwrap();
        let run = |plan| {
            let mut s = AeSimulation::with_options(
                cfg,
                40_000,
                100,
                SimPlacement::Random { seed: 42 },
                plan,
            );
            s.inject_disaster(0.4, 3);
            s.repair_full().data_lost
        };
        let full = run(PuncturePlan::none());
        let half = run(PuncturePlan::every(2));
        assert!(
            half >= full,
            "puncturing cannot reduce loss: {half} vs {full}"
        );
        assert!(
            half > 0,
            "half the parities gone must cost something at 40%"
        );
    }

    #[test]
    fn puncture_marks_parities_missing_without_disaster() {
        let cfg = Config::new(2, 2, 2).unwrap();
        let mut s = AeSimulation::with_options(
            cfg,
            1_000,
            10,
            SimPlacement::Random { seed: 1 },
            PuncturePlan::every(2),
        );
        // No disaster: every data block is present; the decoder can rebuild
        // the punctured parities themselves (they are ordinary repairs).
        let out = s.repair_full();
        assert_eq!(out.data_lost, 0);
        assert!(out.rounds[0].parity > 0, "punctured parities get rebuilt");
    }

    #[test]
    fn blocks_read_is_twice_repairs() {
        let mut s = sim(Config::new(3, 2, 5).unwrap(), 30_000);
        s.inject_disaster(0.2, 5);
        let out = s.repair_full();
        let total: u64 = out.rounds.iter().map(|r| r.data + r.parity).sum();
        assert_eq!(out.blocks_read(), 2 * total);
        assert!(out.blocks_read() > 0);
    }
}
