//! A flat fixed-length bitset.
//!
//! The availability plane tracks one boolean per stored block; at the
//! paper's scale (§V.C: one million data blocks, up to four million blocks
//! total) a `Vec<bool>` costs 8× the memory of packed words and defeats
//! word-at-a-time scans. This bitset is deliberately minimal: fixed length,
//! no iterators to keep in sync, and a word view for skip-scanning.

/// A fixed-length packed bitset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// A bitset of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set has no bits at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range ({} bits)", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit {i} out of range ({} bits)", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Overwrites `self` with the bitwise NOT of `other` (same length).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn assign_not(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (dst, &src) in self.words.iter_mut().zip(&other.words) {
            *dst = !src;
        }
        self.mask_tail();
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Indices of zero bits, ascending. Skips fully-set words, so scanning
    /// a mostly-available plane touches one word per 64 blocks.
    pub fn iter_zeros(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w != u64::MAX)
            .flat_map(move |(wi, &w)| {
                let base = wi * 64;
                let len = self.len;
                (0..64)
                    .filter(move |b| w & (1u64 << b) == 0)
                    .map(move |b| base + b)
                    .filter(move |&i| i < len)
            })
    }

    /// Heap bytes held by the set.
    pub fn memory_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }

    /// Clears the bits beyond `len` in the final word so word-level
    /// operations (NOT, popcount) cannot invent phantom members.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = BitSet::zeros(130);
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!b.get(i));
            b.set(i, true);
            assert!(b.get(i));
        }
        assert_eq!(b.count_ones(), 8);
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 7);
    }

    #[test]
    fn assign_not_masks_tail() {
        let mut missing = BitSet::zeros(70);
        missing.set(3, true);
        let mut avail = BitSet::zeros(70);
        avail.assign_not(&missing);
        assert_eq!(avail.count_ones(), 69, "tail bits beyond len stay clear");
        assert!(!avail.get(3));
        assert!(avail.get(69));
    }

    #[test]
    fn iter_zeros_skips_full_words() {
        let mut b = BitSet::zeros(200);
        for i in 0..200 {
            b.set(i, true);
        }
        for i in [5usize, 64, 199] {
            b.set(i, false);
        }
        assert_eq!(b.iter_zeros().collect::<Vec<_>>(), vec![5, 64, 199]);
    }

    #[test]
    fn iter_zeros_respects_length_tail() {
        let b = BitSet::zeros(66);
        assert_eq!(b.iter_zeros().count(), 66);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_rejects_out_of_range() {
        BitSet::zeros(10).get(10);
    }
}
