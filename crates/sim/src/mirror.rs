//! Entangled-mirror reliability Monte Carlo (§IV.B.1).
//!
//! The paper (citing the authors' earlier entangled-mirror work) states
//! that full-partition entangled arrays cut the 5-year probability of data
//! loss versus mirroring by ~90% (open chains) and ~98% (closed chains).
//! This module reproduces the comparison's *shape* with a documented model:
//!
//! Drives fail independently; a trial samples the set of drives that are
//! simultaneously dead during a repair window (each drive dead with
//! probability `q`). An array loses data when the dead set is fatal:
//!
//! * **Mirroring** — some data drive and its mirror are both dead.
//! * **Entangled, open chain** — the dead set contains an irrecoverable
//!   pattern of the α = 1 drive chain `d_1 p_1 d_2 p_2 …` (primitive forms
//!   of Fig 6, or the open tail).
//! * **Entangled, closed chain** — same, but the chain is tangled through
//!   `d_1` once more, eliminating the tail weakness.
//!
//! The chain decoder here is drive-granular: node `i` repairs from parities
//! `p_{i−1}, p_i`; parity `i` from `(d_i, p_{i−1})` or `(d_{i+1}, p_{i+1})`,
//! with ring wraparound when closed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Array organisations compared by the Monte Carlo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayKind {
    /// Classic mirroring: data drive i paired with mirror drive i.
    Mirroring,
    /// Full-partition simple entanglement, open chain.
    EntangledOpen,
    /// Full-partition simple entanglement, closed chain.
    EntangledClosed,
}

impl ArrayKind {
    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            ArrayKind::Mirroring => "mirroring",
            ArrayKind::EntangledOpen => "entangled (open)",
            ArrayKind::EntangledClosed => "entangled (closed)",
        }
    }
}

/// Whether a dead-drive pattern loses data for the given organisation.
///
/// `data_dead[i]` / `parity_dead[i]` describe the i-th data and parity
/// drive (0-based) of an array with `n` drives per tier.
pub fn loses_data(kind: ArrayKind, data_dead: &[bool], parity_dead: &[bool]) -> bool {
    let n = data_dead.len();
    assert_eq!(n, parity_dead.len(), "equal tiers");
    match kind {
        ArrayKind::Mirroring => (0..n).any(|i| data_dead[i] && parity_dead[i]),
        ArrayKind::EntangledOpen => !chain_recovers(data_dead, parity_dead, false),
        ArrayKind::EntangledClosed => !chain_recovers(data_dead, parity_dead, true),
    }
}

/// Fixpoint decoder for the drive chain; returns whether every dead drive
/// is eventually repairable.
fn chain_recovers(data_dead: &[bool], parity_dead: &[bool], closed: bool) -> bool {
    let n = data_dead.len();
    let mut d: Vec<bool> = data_dead.to_vec(); // true = still dead
    let mut p: Vec<bool> = parity_dead.to_vec();
    loop {
        let mut progress = false;
        for i in 0..n {
            // d_i = p_{i-1} XOR p_i (p_{-1} is the virtual zero for open
            // chains; the last parity for closed rings).
            if d[i] {
                let prev_ok = if i == 0 {
                    if closed {
                        !p[n - 1]
                    } else {
                        true
                    }
                } else {
                    !p[i - 1]
                };
                if prev_ok && !p[i] {
                    d[i] = false;
                    progress = true;
                }
            }
            // p_i = d_i XOR p_{i-1}, or d_{i+1} XOR p_{i+1}.
            if p[i] {
                let left_prev_ok = if i == 0 {
                    if closed {
                        !p[n - 1]
                    } else {
                        true
                    }
                } else {
                    !p[i - 1]
                };
                let left = !d[i] && left_prev_ok;
                let right = if i + 1 < n {
                    !d[i + 1] && !p[i + 1]
                } else if closed {
                    // Ring: p_{n-1}'s right neighbours are d_0 and p_0.
                    !d[0] && !p[0]
                } else {
                    false // open tail: no right tuple
                };
                if left || right {
                    p[i] = false;
                    progress = true;
                }
            }
        }
        if !progress {
            return d.iter().all(|&x| !x) && p.iter().all(|&x| !x);
        }
    }
}

/// Monte Carlo estimate of the probability of data loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MirrorOutcome {
    /// Organisation simulated.
    pub kind: ArrayKind,
    /// Trials run.
    pub trials: u64,
    /// Trials that lost data.
    pub losses: u64,
}

impl MirrorOutcome {
    /// Estimated loss probability.
    pub fn loss_probability(&self) -> f64 {
        self.losses as f64 / self.trials as f64
    }
}

/// Runs `trials` independent trials of an array with `drives` data drives
/// (and as many parity/mirror drives), each drive dead with probability
/// `q`.
pub fn monte_carlo(
    kind: ArrayKind,
    drives: usize,
    q: f64,
    trials: u64,
    seed: u64,
) -> MirrorOutcome {
    assert!((0.0..=1.0).contains(&q), "death probability in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut losses = 0;
    let mut data_dead = vec![false; drives];
    let mut parity_dead = vec![false; drives];
    for _ in 0..trials {
        for v in data_dead.iter_mut().chain(parity_dead.iter_mut()) {
            *v = rng.random_bool(q);
        }
        if loses_data(kind, &data_dead, &parity_dead) {
            losses += 1;
        }
    }
    MirrorOutcome {
        kind,
        trials,
        losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dead(n: usize, idx: &[usize]) -> Vec<bool> {
        let mut v = vec![false; n];
        for &i in idx {
            v[i] = true;
        }
        v
    }

    #[test]
    fn mirroring_dies_on_matched_pair_only() {
        let n = 8;
        assert!(loses_data(
            ArrayKind::Mirroring,
            &dead(n, &[3]),
            &dead(n, &[3])
        ));
        assert!(!loses_data(
            ArrayKind::Mirroring,
            &dead(n, &[3]),
            &dead(n, &[4])
        ));
        assert!(!loses_data(
            ArrayKind::Mirroring,
            &dead(n, &[0, 1, 2]),
            &dead(n, &[])
        ));
    }

    #[test]
    fn entangled_survives_what_kills_mirroring() {
        // Data drive 3 and parity drive 3 dead: mirroring loses d3; the
        // chain repairs d3 from p2/p3... p3 dead — via rounds: p3 from
        // d4,p4; then d3 from p2,p3.
        let n = 8;
        assert!(!loses_data(
            ArrayKind::EntangledOpen,
            &dead(n, &[3]),
            &dead(n, &[3])
        ));
    }

    #[test]
    fn primitive_form_kills_both_chains() {
        // d3, d4 and the shared parity p3 (0-based: parity 3 sits between
        // them): Fig 6 form I at drive granularity.
        let n = 8;
        for kind in [ArrayKind::EntangledOpen, ArrayKind::EntangledClosed] {
            assert!(
                loses_data(kind, &dead(n, &[3, 4]), &dead(n, &[3])),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn tail_pair_kills_open_but_not_closed() {
        let n = 8;
        // Last data drive + last parity drive: the open chain's extremity.
        assert!(loses_data(
            ArrayKind::EntangledOpen,
            &dead(n, &[7]),
            &dead(n, &[7])
        ));
        assert!(!loses_data(
            ArrayKind::EntangledClosed,
            &dead(n, &[7]),
            &dead(n, &[7])
        ));
    }

    #[test]
    fn monte_carlo_reproduces_the_papers_ordering() {
        // 5-year-style comparison: entangled open ≪ mirroring, closed even
        // lower. Shape target: ≥ ~80% and ~90% reductions.
        let (drives, q, trials, seed) = (16, 0.03, 200_000, 9);
        let mirror = monte_carlo(ArrayKind::Mirroring, drives, q, trials, seed);
        let open = monte_carlo(ArrayKind::EntangledOpen, drives, q, trials, seed);
        let closed = monte_carlo(ArrayKind::EntangledClosed, drives, q, trials, seed);
        let (pm, po, pc) = (
            mirror.loss_probability(),
            open.loss_probability(),
            closed.loss_probability(),
        );
        assert!(pm > 0.0, "mirroring must lose sometimes at q=3%");
        assert!(po < pm * 0.25, "open {po} vs mirroring {pm}");
        assert!(pc < po, "closed {pc} vs open {po}");
        assert!(pc < pm * 0.15, "closed {pc} vs mirroring {pm}");
    }

    #[test]
    fn zero_death_probability_never_loses() {
        let out = monte_carlo(ArrayKind::Mirroring, 8, 0.0, 1000, 1);
        assert_eq!(out.losses, 0);
        assert_eq!(out.loss_probability(), 0.0);
    }
}
