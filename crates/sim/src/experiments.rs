//! Sweep drivers: one function per figure/table of the paper's evaluation.
//!
//! Each driver returns a [`Sweep`] that the corresponding binary prints as
//! a table and CSV. All drivers take an [`Env`] describing the simulation
//! environment; [`Env::paper`] is the paper's (1M data blocks, 100
//! locations), and smaller environments are used by tests and quick runs.

use crate::ae_plane::AeSimulation;
use crate::repl_plane::ReplicationSimulation;
use crate::report::{Series, Sweep};
use crate::rs_plane::RsSimulation;
use crate::schemes::Scheme;
use ae_core::WriteScheduler;
use ae_lattice::{Config, MeSearch};

/// Simulation environment parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Env {
    /// Data blocks (the paper uses one million).
    pub data_blocks: u64,
    /// Storage locations (the paper uses 100).
    pub locations: u32,
    /// Placement seed.
    pub placement_seed: u64,
    /// Disaster seed.
    pub disaster_seed: u64,
    /// Disaster sizes as fractions of failed locations.
    pub disaster_sizes: [f64; 5],
}

impl Env {
    /// The paper's environment: 1M data blocks, 100 locations, disasters of
    /// 10–50%.
    pub fn paper() -> Self {
        Env {
            data_blocks: 1_000_000,
            locations: 100,
            placement_seed: 20180625, // DSN 2018's opening day
            disaster_seed: 42,
            disaster_sizes: [0.1, 0.2, 0.3, 0.4, 0.5],
        }
    }

    /// A scaled-down environment for tests and smoke runs.
    pub fn small() -> Self {
        Env {
            data_blocks: 40_000,
            ..Self::paper()
        }
    }

    /// Overrides the block count, keeping it stripe-aligned for every
    /// RS(k, m) in the paper lineup (multiples of 40 cover k ∈ {4, 5, 8, 10}).
    pub fn with_blocks(mut self, blocks: u64) -> Self {
        self.data_blocks = blocks - blocks % 40;
        self
    }
}

/// Runs one AE scheme over all disaster sizes, returning
/// (data-loss, single-failure-share, rounds, vulnerable) series.
struct AeSweepRow {
    loss: Vec<(f64, Option<f64>)>,
    single_share: Vec<(f64, Option<f64>)>,
    rounds: Vec<(f64, Option<f64>)>,
    vulnerable_pct: Vec<(f64, Option<f64>)>,
}

fn run_ae(cfg: Config, env: &Env) -> AeSweepRow {
    let mut row = AeSweepRow {
        loss: Vec::new(),
        single_share: Vec::new(),
        rounds: Vec::new(),
        vulnerable_pct: Vec::new(),
    };
    for &size in &env.disaster_sizes {
        let x = size * 100.0;
        // Full repair for Fig 11 / Fig 13 / Table VI.
        let mut sim = AeSimulation::new(cfg, env.data_blocks, env.locations, env.placement_seed);
        sim.inject_disaster(size, env.disaster_seed);
        let full = sim.repair_full();
        row.loss.push((x, Some(full.data_lost as f64)));
        row.single_share
            .push((x, full.single_failure_share().map(|s| s * 100.0)));
        row.rounds.push((x, Some(full.round_count() as f64)));
        // Minimal maintenance for Fig 12 (fresh state, same disaster).
        let mut sim = AeSimulation::new(cfg, env.data_blocks, env.locations, env.placement_seed);
        sim.inject_disaster(size, env.disaster_seed);
        let minimal = sim.repair_minimal();
        row.vulnerable_pct.push((
            x,
            Some(minimal.vulnerable_data as f64 / env.data_blocks as f64 * 100.0),
        ));
    }
    row
}

fn ae_configs() -> Vec<Config> {
    vec![
        Config::single(),
        Config::new(2, 2, 5).expect("paper setting"),
        Config::new(3, 2, 5).expect("paper setting"),
    ]
}

fn rs_settings() -> Vec<(u32, u32)> {
    vec![(10, 4), (8, 2), (5, 5), (4, 12)]
}

/// Fig 11: data blocks the decoder failed to repair, per scheme and
/// disaster size.
pub fn fig11_data_loss(env: &Env) -> Sweep {
    let mut series = Vec::new();
    for (k, m) in rs_settings() {
        let sim = RsSimulation::new(k, m, env.data_blocks, env.locations, env.placement_seed);
        let pts = env
            .disaster_sizes
            .iter()
            .map(|&size| {
                let out = sim.run_disaster(size, env.disaster_seed);
                (size * 100.0, out.data_lost as f64)
            })
            .collect();
        series.push(Series::new(format!("RS({k},{m})"), pts));
    }
    for cfg in ae_configs() {
        let row = run_ae(cfg, env);
        series.push(Series {
            label: cfg.name(),
            points: row.loss,
        });
    }
    for n in [2u32, 3, 4] {
        let sim = ReplicationSimulation::new(n, env.data_blocks, env.locations, env.placement_seed);
        let pts = env
            .disaster_sizes
            .iter()
            .map(|&size| {
                let out = sim.run_disaster(size, env.disaster_seed);
                (size * 100.0, out.data_lost as f64)
            })
            .collect();
        series.push(Series::new(format!("{n}-way replic."), pts));
    }
    Sweep {
        title: "Fig 11: data blocks that the decoder failed to repair".into(),
        x_label: "disaster %".into(),
        y_label: "data loss AFTER repairs (# of data blocks)".into(),
        series,
    }
}

/// Fig 12: data blocks left without redundancy under minimal maintenance.
pub fn fig12_vulnerable(env: &Env) -> Sweep {
    let mut series = Vec::new();
    for (k, m) in rs_settings() {
        let sim = RsSimulation::new(k, m, env.data_blocks, env.locations, env.placement_seed);
        let pts = env
            .disaster_sizes
            .iter()
            .map(|&size| {
                let out = sim.run_disaster(size, env.disaster_seed);
                (
                    size * 100.0,
                    out.vulnerable_data as f64 / env.data_blocks as f64 * 100.0,
                )
            })
            .collect();
        series.push(Series::new(format!("RS({k},{m})"), pts));
    }
    for cfg in ae_configs() {
        let row = run_ae(cfg, env);
        series.push(Series {
            label: cfg.name(),
            points: row.vulnerable_pct,
        });
    }
    for n in [2u32, 3, 4] {
        let sim = ReplicationSimulation::new(n, env.data_blocks, env.locations, env.placement_seed);
        let pts = env
            .disaster_sizes
            .iter()
            .map(|&size| {
                let out = sim.run_disaster(size, env.disaster_seed);
                (
                    size * 100.0,
                    out.vulnerable_data as f64 / env.data_blocks as f64 * 100.0,
                )
            })
            .collect();
        series.push(Series::new(format!("{n}-way replic."), pts));
    }
    Sweep {
        title: "Fig 12: data blocks without redundancy (minimal maintenance)".into(),
        x_label: "disaster %".into(),
        y_label: "blocks without redundancy (% of data blocks)".into(),
        series,
    }
}

/// Fig 13: share of repairs that are single failures (one tuple, round 1),
/// for RS(4,12) and the AE schemes.
pub fn fig13_single_failures(env: &Env) -> Sweep {
    let mut series = Vec::new();
    let sim = RsSimulation::new(4, 12, env.data_blocks, env.locations, env.placement_seed);
    let pts = env
        .disaster_sizes
        .iter()
        .map(|&size| {
            let out = sim.run_disaster(size, env.disaster_seed);
            let share = if out.data_repaired > 0 {
                Some(out.single_failure_repairs as f64 / out.data_repaired as f64 * 100.0)
            } else {
                None
            };
            (size * 100.0, share)
        })
        .collect();
    series.push(Series {
        label: "RS(4,12)".into(),
        points: pts,
    });
    for cfg in ae_configs() {
        let row = run_ae(cfg, env);
        series.push(Series {
            label: cfg.name(),
            points: row.single_share,
        });
    }
    Sweep {
        title: "Fig 13: what part of repairs are single-failure repairs?".into(),
        x_label: "disaster %".into(),
        y_label: "single failures (% single/total repaired)".into(),
        series,
    }
}

/// Table VI: repair rounds to fixpoint for the AE schemes.
pub fn table6_rounds(env: &Env) -> Sweep {
    let series = ae_configs()
        .into_iter()
        .map(|cfg| {
            let row = run_ae(cfg, env);
            Series {
                label: cfg.name(),
                points: row.rounds,
            }
        })
        .collect();
    Sweep {
        title: "Table VI: number of repair rounds".into(),
        x_label: "disaster %".into(),
        y_label: "rounds to fixpoint".into(),
        series,
    }
}

/// Table IV: storage and single-failure costs per scheme.
pub fn table4_costs() -> Sweep {
    let schemes = Scheme::paper_lineup();
    let as_pts: Vec<(f64, f64)> = schemes
        .iter()
        .enumerate()
        .map(|(i, s)| (i as f64, s.additional_storage_pct()))
        .collect();
    let sf_pts: Vec<(f64, f64)> = schemes
        .iter()
        .enumerate()
        .map(|(i, s)| (i as f64, s.single_failure_reads() as f64))
        .collect();
    Sweep {
        title: format!(
            "Table IV: redundancy scheme costs ({})",
            schemes
                .iter()
                .map(Scheme::name)
                .collect::<Vec<_>>()
                .join(", ")
        ),
        x_label: "scheme #".into(),
        y_label: "AS: additional storage %; SF: blocks read per single-failure repair".into(),
        series: vec![Series::new("AS %", as_pts), Series::new("SF reads", sf_pts)],
    }
}

/// Fig 8: |ME(2)| as a function of p for α ∈ {2, 3}, s ∈ {2, 3}.
pub fn fig8_me2(p_range: std::ops::RangeInclusive<u16>) -> Sweep {
    me_sweep(2, p_range, "Fig 8: |ME(2)| increases with larger s and p")
}

/// Fig 9: |ME(4)| as a function of p for the same settings.
pub fn fig9_me4(p_range: std::ops::RangeInclusive<u16>) -> Sweep {
    me_sweep(
        4,
        p_range,
        "Fig 9: |ME(4)| remains constant for alpha=2 and increases with s for alpha=3",
    )
}

fn me_sweep(x: usize, p_range: std::ops::RangeInclusive<u16>, title: &str) -> Sweep {
    let mut series = Vec::new();
    for (alpha, s) in [(2u8, 2u16), (2, 3), (3, 2), (3, 3)] {
        let mut pts = Vec::new();
        for p in p_range.clone() {
            if p < s {
                continue; // deformed lattice
            }
            let cfg = Config::new(alpha, s, p).expect("p >= s checked");
            let pat = MeSearch::new(cfg).min_erasure(x);
            pts.push((p as f64, pat.map(|m| m.size() as f64)));
        }
        series.push(Series {
            label: format!("AE({alpha},{s},p)"),
            points: pts,
        });
    }
    Sweep {
        title: title.into(),
        x_label: "p".into(),
        y_label: format!("|ME({x})| (pattern size in blocks)"),
        series,
    }
}

/// Fig 10: full-write behaviour for p = s versus p > s.
pub fn fig10_writes() -> Sweep {
    let settings = [(3u8, 10u16, 10u16), (3, 5, 10), (3, 5, 5), (2, 5, 10)];
    let mut full = Vec::new();
    let mut horizon = Vec::new();
    let mut labels = Vec::new();
    for (idx, (a, s, p)) in settings.iter().enumerate() {
        let cfg = Config::new(*a, *s, *p).expect("valid settings");
        let r = WriteScheduler::new(cfg, 1).simulate(2 * *p as u64, 50);
        full.push((idx as f64, r.full_write_ratio() * 100.0));
        horizon.push((idx as f64, r.required_horizon as f64));
        labels.push(cfg.name());
    }
    Sweep {
        title: format!("Fig 10: write performance ({})", labels.join(", ")),
        x_label: "setting #".into(),
        y_label: "full writes % with 1-column memory; required horizon in columns".into(),
        series: vec![
            Series::new("full writes %", full),
            Series::new("required horizon", horizon),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Env {
        Env {
            data_blocks: 20_000,
            ..Env::paper()
        }
    }

    #[test]
    fn fig11_has_all_ten_series() {
        let sweep = fig11_data_loss(&tiny());
        assert_eq!(sweep.series.len(), 10);
        let labels: Vec<&str> = sweep.series.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"RS(10,4)"));
        assert!(labels.contains(&"AE(3,2,5)"));
        assert!(labels.contains(&"4-way replic."));
        for s in &sweep.series {
            assert_eq!(s.points.len(), 5, "{}", s.label);
        }
    }

    #[test]
    fn fig11_headline_result_ae325_beats_rs412() {
        // The paper's headline: AE(3,2,5) outperforms RS(4,12) at equal
        // storage overhead in large disasters.
        let sweep = fig11_data_loss(&tiny());
        let get = |label: &str| {
            sweep
                .series
                .iter()
                .find(|s| s.label == label)
                .unwrap_or_else(|| panic!("{label} missing"))
                .points
                .clone()
        };
        let ae = get("AE(3,2,5)");
        let rs = get("RS(4,12)");
        // At 40% and 50% disasters AE(3,2,5) must lose no more than RS(4,12).
        for i in [3, 4] {
            assert!(
                ae[i].1.unwrap() <= rs[i].1.unwrap(),
                "at {}%: AE {} vs RS {}",
                ae[i].0,
                ae[i].1.unwrap(),
                rs[i].1.unwrap()
            );
        }
    }

    #[test]
    fn fig12_percentages_bounded() {
        let sweep = fig12_vulnerable(&tiny());
        for s in &sweep.series {
            for (x, y) in &s.points {
                let y = y.expect("fig12 always has values");
                assert!((0.0..=100.0).contains(&y), "{} at {x}: {y}", s.label);
            }
        }
    }

    #[test]
    fn fig13_ae_mostly_single_failures() {
        let sweep = fig13_single_failures(&tiny());
        let ae = sweep
            .series
            .iter()
            .find(|s| s.label == "AE(3,2,5)")
            .unwrap();
        for (x, y) in &ae.points {
            let y = y.expect("disasters repaired something");
            assert!(y > 50.0, "AE(3,2,5) at {x}%: {y}% single failures");
        }
        // Small disasters are almost entirely single failures (Fig 13).
        assert!(ae.points[0].1.unwrap() > 80.0);
    }

    #[test]
    fn table6_rounds_grow_with_disaster() {
        let sweep = table6_rounds(&tiny());
        for s in &sweep.series {
            let first = s.points.first().unwrap().1.unwrap();
            let last = s.points.last().unwrap().1.unwrap();
            assert!(last >= first, "{}: {first} -> {last}", s.label);
            assert!(
                last >= 2.0,
                "{}: heavy disasters need multiple rounds",
                s.label
            );
        }
    }

    #[test]
    fn table4_matches_scheme_costs() {
        let sweep = table4_costs();
        assert_eq!(sweep.series[0].points[0].1, Some(40.0), "RS(10,4) AS");
        assert_eq!(sweep.series[1].points[6].1, Some(2.0), "AE(3,2,5) SF");
    }

    #[test]
    fn fig8_curves_have_paper_shape() {
        // Small p range keeps test time low; release binaries sweep 2..=8.
        let sweep = fig8_me2(2..=4);
        for s in &sweep.series {
            // Sizes never decrease with p (minimum at p = s).
            let ys: Vec<f64> = s.points.iter().filter_map(|p| p.1).collect();
            for w in ys.windows(2) {
                assert!(w[1] >= w[0], "{}: {ys:?}", s.label);
            }
        }
    }

    #[test]
    fn fig10_s_equals_p_wins() {
        let sweep = fig10_writes();
        let full = &sweep.series[0].points;
        // Setting 0 is AE(3,10,10): 100% full writes; setting 1 is
        // AE(3,5,10): strictly fewer.
        assert_eq!(full[0].1, Some(100.0));
        assert!(full[1].1.unwrap() < 100.0);
    }
}

/// Placement ablation (§V.C "Block Placements"): data loss for random vs
/// round-robin placement. Round-robin guarantees lattice neighbours sit in
/// different failure domains; the paper asks whether random placement hurts
/// recovery.
pub fn ablation_placement(env: &Env) -> Sweep {
    use crate::ae_plane::SimPlacement;
    use ae_core::puncture::PuncturePlan;
    let mut series = Vec::new();
    for cfg in ae_configs() {
        for placement in [
            SimPlacement::Random {
                seed: env.placement_seed,
            },
            SimPlacement::RoundRobin,
        ] {
            let mut pts = Vec::new();
            for &size in &env.disaster_sizes {
                let mut sim = AeSimulation::with_options(
                    cfg,
                    env.data_blocks,
                    env.locations,
                    placement,
                    PuncturePlan::none(),
                );
                sim.inject_disaster(size, env.disaster_seed);
                pts.push((size * 100.0, Some(sim.repair_full().data_lost as f64)));
            }
            let label = match placement {
                SimPlacement::Random { .. } => format!("{} random", cfg.name()),
                SimPlacement::RoundRobin => format!("{} round-robin", cfg.name()),
            };
            series.push(Series { label, points: pts });
        }
    }
    Sweep {
        title: "Ablation: random vs round-robin placement (data loss after repairs)".into(),
        x_label: "disaster %".into(),
        y_label: "data loss (# of data blocks)".into(),
        series,
    }
}

/// Puncturing ablation (§III "Reducing Storage Overhead"): data loss when a
/// fraction of parities is never stored.
pub fn ablation_puncture(env: &Env) -> Sweep {
    use ae_core::puncture::PuncturePlan;
    let cfg = Config::new(3, 2, 5).expect("paper setting");
    let plans: [(String, PuncturePlan); 4] = [
        ("no puncturing (300%)".into(), PuncturePlan::none()),
        ("drop 1/8 (262%)".into(), PuncturePlan::every(8)),
        ("drop 1/4 (225%)".into(), PuncturePlan::every(4)),
        ("drop 1/2 (150%)".into(), PuncturePlan::every(2)),
    ];
    let series = plans
        .into_iter()
        .map(|(label, plan)| {
            let pts = env
                .disaster_sizes
                .iter()
                .map(|&size| {
                    let mut sim = AeSimulation::with_options(
                        cfg,
                        env.data_blocks,
                        env.locations,
                        crate::ae_plane::SimPlacement::Random {
                            seed: env.placement_seed,
                        },
                        plan,
                    );
                    sim.inject_disaster(size, env.disaster_seed);
                    (size * 100.0, Some(sim.repair_full().data_lost as f64))
                })
                .collect();
            Series { label, points: pts }
        })
        .collect();
    Sweep {
        title: "Ablation: puncturing AE(3,2,5) (data loss after repairs)".into(),
        x_label: "disaster %".into(),
        y_label: "data loss (# of data blocks)".into(),
        series,
    }
}

/// Repair traffic (§V.C.3 context): blocks read to complete all repairs.
/// AE reads exactly 2 blocks per repaired block; RS reads k per decoded
/// stripe; replication reads 1 per re-copied block.
pub fn ablation_repair_traffic(env: &Env) -> Sweep {
    let mut series = Vec::new();
    for (k, m) in rs_settings() {
        let sim = RsSimulation::new(k, m, env.data_blocks, env.locations, env.placement_seed);
        let pts = env
            .disaster_sizes
            .iter()
            .map(|&size| {
                let out = sim.run_disaster(size, env.disaster_seed);
                (size * 100.0, Some(out.blocks_read as f64))
            })
            .collect();
        series.push(Series {
            label: format!("RS({k},{m})"),
            points: pts,
        });
    }
    for cfg in ae_configs() {
        let pts = env
            .disaster_sizes
            .iter()
            .map(|&size| {
                let mut sim =
                    AeSimulation::new(cfg, env.data_blocks, env.locations, env.placement_seed);
                sim.inject_disaster(size, env.disaster_seed);
                (size * 100.0, Some(sim.repair_full().blocks_read() as f64))
            })
            .collect();
        series.push(Series {
            label: cfg.name(),
            points: pts,
        });
    }
    for n in [2u32, 3, 4] {
        let sim = ReplicationSimulation::new(n, env.data_blocks, env.locations, env.placement_seed);
        let pts = env
            .disaster_sizes
            .iter()
            .map(|&size| {
                let out = sim.run_disaster(size, env.disaster_seed);
                (size * 100.0, Some(out.blocks_read as f64))
            })
            .collect();
        series.push(Series {
            label: format!("{n}-way replic."),
            points: pts,
        });
    }
    Sweep {
        title: "Ablation: repair traffic (blocks read to finish all repairs)".into(),
        x_label: "disaster %".into(),
        y_label: "blocks read".into(),
        series,
    }
}

/// Entangled-mirror reliability (§IV.B.1): mirroring vs open/closed chains.
pub fn ablation_chains(drives: usize, trials: u64, seed: u64) -> Sweep {
    use crate::mirror::{monte_carlo, ArrayKind};
    let qs = [0.01, 0.02, 0.03, 0.05, 0.08];
    let series = [
        ArrayKind::Mirroring,
        ArrayKind::EntangledOpen,
        ArrayKind::EntangledClosed,
    ]
    .into_iter()
    .map(|kind| Series {
        label: kind.name().to_string(),
        points: qs
            .iter()
            .map(|&q| {
                let out = monte_carlo(kind, drives, q, trials, seed);
                (q * 100.0, Some(out.loss_probability() * 100.0))
            })
            .collect(),
    })
    .collect();
    Sweep {
        title: format!(
            "Ablation: mirroring vs entangled chains ({drives}+{drives} drives, {trials} trials)"
        ),
        x_label: "drive death probability %".into(),
        y_label: "P(data loss) %".into(),
        series,
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;

    fn tiny() -> Env {
        Env {
            data_blocks: 20_000,
            ..Env::paper()
        }
    }

    #[test]
    fn placement_ablation_has_paired_series() {
        let sweep = ablation_placement(&tiny());
        assert_eq!(sweep.series.len(), 6, "3 schemes x 2 policies");
        // Round-robin keeps lattice neighbours in distinct failure
        // domains, so across the sweep it loses (much) less than random.
        // Pointwise it can tie or wobble by a few boundary blocks when
        // random gets a lucky draw, so compare aggregates.
        for pair in sweep.series.chunks(2) {
            let total = |s: &Series| s.points.iter().filter_map(|p| p.1).sum::<f64>();
            let (random, rr) = (total(&pair[0]), total(&pair[1]));
            assert!(
                rr <= random,
                "{}: {rr} vs {}: {random}",
                pair[1].label,
                pair[0].label
            );
            // At a 10% disaster round-robin loses nothing at all.
            assert_eq!(pair[1].points[0].1, Some(0.0), "{}", pair[1].label);
        }
    }

    #[test]
    fn puncture_ablation_orders_by_rate() {
        let sweep = ablation_puncture(&tiny());
        assert_eq!(sweep.series.len(), 4);
        // At the heaviest disaster, more puncturing means no less loss.
        let last: Vec<f64> = sweep
            .series
            .iter()
            .map(|s| s.points.last().unwrap().1.unwrap())
            .collect();
        for w in last.windows(2) {
            assert!(w[1] >= w[0], "{last:?}");
        }
    }

    #[test]
    fn repair_traffic_rs_pays_k_per_stripe() {
        let sweep = ablation_repair_traffic(&tiny());
        let get = |label: &str| {
            sweep
                .series
                .iter()
                .find(|s| s.label == label)
                .unwrap()
                .points[1] // 20% disaster
                .1
                .unwrap()
        };
        // Replication reads least, AE twice its repairs, RS the most per
        // repaired block; at 20% RS(10,4) reads far more than AE(3,2,5)
        // repairs the same environment.
        assert!(get("2-way replic.") < get("AE(1,-,-)"));
        assert!(get("RS(10,4)") > 0.0);
    }

    #[test]
    fn chains_ablation_matches_paper_reductions() {
        let sweep = ablation_chains(16, 60_000, 5);
        let at = |idx: usize, q: usize| sweep.series[idx].points[q].1.unwrap();
        // Series order: mirroring, open, closed; q index 2 = 3%.
        let (m, o, c) = (at(0, 2), at(1, 2), at(2, 2));
        assert!(o < m * 0.3, "open {o} vs mirroring {m}");
        assert!(c < o, "closed {c} vs open {o}");
    }
}
