//! Minimal argument parsing shared by the experiment binaries.
//!
//! Flags: `--blocks N`, `--locations N`, `--seed N`, `--csv` (emit CSV
//! after the table). Unknown flags abort with usage help; no external
//! dependency needed for a handful of options.

use crate::experiments::Env;

/// Parsed command line for an experiment binary.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// Simulation environment (paper defaults unless overridden).
    pub env: Env,
    /// Also print CSV after the table.
    pub csv: bool,
}

impl Cli {
    /// Parses `args` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a usage string on unknown or malformed flags.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Cli, String> {
        let mut env = Env::paper();
        let mut csv = false;
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--blocks" => {
                    let v = next_u64(&mut it, "--blocks")?;
                    env = env.with_blocks(v.max(40));
                }
                "--locations" => {
                    env.locations = next_u64(&mut it, "--locations")?.max(1) as u32;
                }
                "--seed" => {
                    let v = next_u64(&mut it, "--seed")?;
                    env.placement_seed = v;
                    env.disaster_seed = v.wrapping_mul(0x9E37_79B9).wrapping_add(1);
                }
                "--csv" => csv = true,
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown flag {other}\n{USAGE}")),
            }
        }
        Ok(Cli { env, csv })
    }

    /// Parses the process arguments, exiting with usage on error.
    pub fn from_process_args() -> Cli {
        match Self::parse(std::env::args().skip(1)) {
            Ok(cli) => cli,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Prints a sweep as a table, plus CSV when requested.
    pub fn emit(&self, sweep: &crate::report::Sweep) {
        print!("{}", sweep.to_table());
        if self.csv {
            println!();
            print!("{}", sweep.to_csv());
        }
    }
}

const USAGE: &str = "usage: <experiment> [--blocks N] [--locations N] [--seed N] [--csv]";

fn next_u64(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<u64, String> {
    it.next()
        .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))?
        .parse()
        .map_err(|e| format!("{flag}: {e}\n{USAGE}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_paper_env() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.env, Env::paper());
        assert!(!cli.csv);
    }

    #[test]
    fn overrides() {
        let cli = parse(&["--blocks", "100000", "--locations", "50", "--csv"]).unwrap();
        assert_eq!(cli.env.data_blocks, 100_000);
        assert_eq!(cli.env.locations, 50);
        assert!(cli.csv);
    }

    #[test]
    fn blocks_are_stripe_aligned() {
        let cli = parse(&["--blocks", "100001"]).unwrap();
        assert_eq!(cli.env.data_blocks % 40, 0);
    }

    #[test]
    fn seed_changes_both_seeds() {
        let a = parse(&["--seed", "1"]).unwrap();
        let b = parse(&["--seed", "2"]).unwrap();
        assert_ne!(a.env.placement_seed, b.env.placement_seed);
        assert_ne!(a.env.disaster_seed, b.env.disaster_seed);
    }

    #[test]
    fn unknown_flag_is_error() {
        assert!(parse(&["--nope"]).is_err());
        assert!(parse(&["--blocks"]).is_err());
        assert!(parse(&["--blocks", "abc"]).is_err());
    }
}
