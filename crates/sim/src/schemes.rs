//! The scheme roster: the redundancy schemes compared in the paper
//! (Table IV) plus the two §IV use-case schemes, each instantiable as a
//! boxed [`RedundancyScheme`] via [`Scheme::build`] so that planes, parity
//! harnesses and binaries drive every scenario through the same generic
//! machinery.

use ae_api::RedundancyScheme;
use ae_baselines::{ReedSolomon, Replication};
use ae_core::Code;
use ae_lattice::Config;
use ae_store::{ChainMode, EntangledChain, GeoLattice};
use std::fmt;

/// A redundancy scheme with the cost model of Table IV.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scheme {
    /// Alpha entanglement AE(α, s, p).
    Ae(Config),
    /// Reed-Solomon RS(k, m).
    Rs {
        /// Data shards per stripe.
        k: u32,
        /// Parity shards per stripe.
        m: u32,
    },
    /// n-way replication.
    Replication {
        /// Copies, original included.
        n: u32,
    },
    /// The α = 1 entangled mirror chain of §IV.B.1 (`ae_store`'s
    /// [`EntangledChain`]): mirroring's storage bill, open or closed.
    Chain {
        /// Chain shape; open chains expose the §IV.B.1 extremity pair.
        mode: ChainMode,
    },
    /// One user's namespaced lattice in the §IV.A cooperative backup
    /// (`ae_store`'s [`GeoLattice`]).
    Geo {
        /// The user's code.
        cfg: Config,
        /// Namespace owner (tags every block id).
        user: u64,
    },
}

impl Scheme {
    /// The seven non-trivial schemes of Table IV, in the paper's column
    /// order, followed by the replication baselines.
    pub fn paper_lineup() -> Vec<Scheme> {
        vec![
            Scheme::Rs { k: 10, m: 4 },
            Scheme::Rs { k: 8, m: 2 },
            Scheme::Rs { k: 5, m: 5 },
            Scheme::Rs { k: 4, m: 12 },
            Scheme::Ae(Config::single()),
            Scheme::Ae(Config::new(2, 2, 5).expect("valid paper setting")),
            Scheme::Ae(Config::new(3, 2, 5).expect("valid paper setting")),
            Scheme::Replication { n: 2 },
            Scheme::Replication { n: 3 },
            Scheme::Replication { n: 4 },
        ]
    }

    /// The paper lineup plus the §IV use-case schemes: the open and closed
    /// mirror chains (§IV.B.1) and a namespaced geo lattice (§IV.A).
    pub fn extended_lineup() -> Vec<Scheme> {
        let mut all = Self::paper_lineup();
        all.push(Scheme::Chain {
            mode: ChainMode::Open,
        });
        all.push(Scheme::Chain {
            mode: ChainMode::Closed,
        });
        all.push(Scheme::Geo {
            cfg: Config::new(3, 2, 5).expect("valid paper setting"),
            user: 3,
        });
        all
    }

    /// Instantiates the scheme as a boxed [`RedundancyScheme`] — the one
    /// constructor every plane, harness and binary goes through. Block
    /// size 0 is fine for availability-plane use.
    pub fn build(&self, block_size: usize) -> Box<dyn RedundancyScheme> {
        match *self {
            Scheme::Ae(cfg) => Box::new(Code::new(cfg, block_size)),
            Scheme::Rs { k, m } => {
                Box::new(ReedSolomon::new(k as usize, m as usize).expect("valid RS setting"))
            }
            Scheme::Replication { n } => Box::new(Replication::new(n as usize)),
            Scheme::Chain { mode } => Box::new(EntangledChain::new(mode, block_size)),
            Scheme::Geo { cfg, user } => {
                Box::new(GeoLattice::new(Code::new(cfg, block_size), user))
            }
        }
    }

    /// Additional storage as a percentage of the original data (Table IV's
    /// "AS" row): `m/k · 100` for RS, `α · 100` for AE (and the geo
    /// lattice), `(n−1) · 100` for replication, mirroring's 100% for the
    /// chains.
    pub fn additional_storage_pct(&self) -> f64 {
        match self {
            Scheme::Ae(cfg) | Scheme::Geo { cfg, .. } => cfg.storage_overhead_pct() as f64,
            Scheme::Rs { k, m } => *m as f64 / *k as f64 * 100.0,
            Scheme::Replication { n } => (*n as f64 - 1.0) * 100.0,
            Scheme::Chain { .. } => 100.0,
        }
    }

    /// Blocks read to repair one missing block (Table IV's "SF" row):
    /// `k` for RS, always 2 for entanglements (chains included), 1 for
    /// replication.
    pub fn single_failure_reads(&self) -> u32 {
        match self {
            Scheme::Ae(_) | Scheme::Geo { .. } | Scheme::Chain { .. } => {
                Config::SINGLE_FAILURE_READS
            }
            Scheme::Rs { k, .. } => *k,
            Scheme::Replication { .. } => 1,
        }
    }

    /// Blocks at a chain extremity left with a single repair tuple (the
    /// §IV.B.1 open-chain weakness); zero everywhere else. Matches
    /// [`ae_api::RepairCost::extremity_exposed`].
    pub fn extremity_exposed(&self) -> u32 {
        match self {
            Scheme::Chain {
                mode: ChainMode::Open,
            } => 2,
            _ => 0,
        }
    }

    /// Paper-style name: `RS(10,4)`, `AE(3,2,5)`, `3-way replic.`,
    /// `chain(open)`, `geo[u3] AE(3,2,5)` — identical to the built
    /// scheme's `scheme_name`.
    pub fn name(&self) -> String {
        match self {
            Scheme::Ae(cfg) => cfg.name(),
            Scheme::Rs { k, m } => format!("RS({k},{m})"),
            Scheme::Replication { n } => format!("{n}-way replic."),
            Scheme::Chain { mode } => format!("chain({mode})"),
            Scheme::Geo { cfg, user } => format!("geo[u{user}] {}", cfg.name()),
        }
    }

    /// Encoded (redundant) blocks generated for `data_blocks` data blocks,
    /// e.g. "RS(10,4) generates 400,000 encoded blocks" for one million
    /// (§V.C "Simulation Environment").
    pub fn encoded_blocks(&self, data_blocks: u64) -> u64 {
        match self {
            Scheme::Ae(cfg) | Scheme::Geo { cfg, .. } => data_blocks * cfg.alpha() as u64,
            Scheme::Rs { k, m } => data_blocks / *k as u64 * *m as u64,
            Scheme::Replication { n } => data_blocks * (*n as u64 - 1),
            Scheme::Chain { mode } => match mode {
                ChainMode::Open => data_blocks,
                ChainMode::Closed => data_blocks + 1, // the closing parity
            },
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every "AS" and "SF" entry of Table IV.
    #[test]
    fn table_iv_costs() {
        let expected: [(&str, f64, u32); 10] = [
            ("RS(10,4)", 40.0, 10),
            ("RS(8,2)", 25.0, 8),
            ("RS(5,5)", 100.0, 5),
            ("RS(4,12)", 300.0, 4),
            ("AE(1,-,-)", 100.0, 2),
            ("AE(2,2,5)", 200.0, 2),
            ("AE(3,2,5)", 300.0, 2),
            ("2-way replic.", 100.0, 1),
            ("3-way replic.", 200.0, 1),
            ("4-way replic.", 300.0, 1),
        ];
        for (scheme, (name, storage, sf)) in Scheme::paper_lineup().iter().zip(expected) {
            assert_eq!(scheme.name(), name);
            assert!(
                (scheme.additional_storage_pct() - storage).abs() < 1e-9,
                "{name} AS"
            );
            assert_eq!(scheme.single_failure_reads(), sf, "{name} SF");
        }
    }

    /// The encoded-block counts quoted in §V.C.
    #[test]
    fn encoded_block_counts_match_paper() {
        let m = 1_000_000;
        assert_eq!(Scheme::Rs { k: 10, m: 4 }.encoded_blocks(m), 400_000);
        assert_eq!(Scheme::Rs { k: 8, m: 2 }.encoded_blocks(m), 250_000);
        assert_eq!(Scheme::Rs { k: 5, m: 5 }.encoded_blocks(m), 1_000_000);
        assert_eq!(
            Scheme::Ae(Config::new(3, 2, 5).unwrap()).encoded_blocks(m),
            3_000_000
        );
        assert_eq!(Scheme::Replication { n: 4 }.encoded_blocks(m), 3_000_000);
    }

    #[test]
    fn display_matches_name() {
        let s = Scheme::Rs { k: 5, m: 5 };
        assert_eq!(format!("{s}"), s.name());
    }

    /// Every roster entry builds to a scheme whose self-description and
    /// cost model agree with the roster's — the roster is the one source
    /// of truth binaries print from.
    #[test]
    fn extended_lineup_builds_and_costs_agree() {
        let lineup = Scheme::extended_lineup();
        assert_eq!(lineup.len(), 13, "paper lineup + 2 chains + geo");
        for s in lineup {
            let built = s.build(0);
            assert_eq!(built.scheme_name(), s.name());
            let cost = built.repair_cost();
            assert_eq!(cost.single_failure_reads, s.single_failure_reads(), "{s}");
            assert!(
                (cost.additional_storage_pct - s.additional_storage_pct()).abs() < 1e-9,
                "{s}"
            );
            assert_eq!(cost.extremity_exposed, s.extremity_exposed(), "{s}");
            assert!(built.supports_dense_index(), "{s}");
        }
    }

    /// Only the open chain exposes an extremity; the roster distinguishes
    /// the chain modes in Table IV-style reports.
    #[test]
    fn open_and_closed_chains_are_distinguished() {
        let open = Scheme::Chain {
            mode: ChainMode::Open,
        };
        let closed = Scheme::Chain {
            mode: ChainMode::Closed,
        };
        assert_ne!(open.name(), closed.name());
        assert_eq!(open.extremity_exposed(), 2);
        assert_eq!(closed.extremity_exposed(), 0);
        assert_eq!(open.encoded_blocks(1000), 1000);
        assert_eq!(closed.encoded_blocks(1000), 1001);
    }
}
