//! The redundancy schemes compared in the paper (Table IV).

use ae_lattice::Config;
use std::fmt;

/// A redundancy scheme with the cost model of Table IV.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scheme {
    /// Alpha entanglement AE(α, s, p).
    Ae(Config),
    /// Reed-Solomon RS(k, m).
    Rs {
        /// Data shards per stripe.
        k: u32,
        /// Parity shards per stripe.
        m: u32,
    },
    /// n-way replication.
    Replication {
        /// Copies, original included.
        n: u32,
    },
}

impl Scheme {
    /// The seven non-trivial schemes of Table IV, in the paper's column
    /// order, followed by the replication baselines.
    pub fn paper_lineup() -> Vec<Scheme> {
        vec![
            Scheme::Rs { k: 10, m: 4 },
            Scheme::Rs { k: 8, m: 2 },
            Scheme::Rs { k: 5, m: 5 },
            Scheme::Rs { k: 4, m: 12 },
            Scheme::Ae(Config::single()),
            Scheme::Ae(Config::new(2, 2, 5).expect("valid paper setting")),
            Scheme::Ae(Config::new(3, 2, 5).expect("valid paper setting")),
            Scheme::Replication { n: 2 },
            Scheme::Replication { n: 3 },
            Scheme::Replication { n: 4 },
        ]
    }

    /// Additional storage as a percentage of the original data (Table IV's
    /// "AS" row): `m/k · 100` for RS, `α · 100` for AE, `(n−1) · 100` for
    /// replication.
    pub fn additional_storage_pct(&self) -> f64 {
        match self {
            Scheme::Ae(cfg) => cfg.storage_overhead_pct() as f64,
            Scheme::Rs { k, m } => *m as f64 / *k as f64 * 100.0,
            Scheme::Replication { n } => (*n as f64 - 1.0) * 100.0,
        }
    }

    /// Blocks read to repair one missing block (Table IV's "SF" row):
    /// `k` for RS, always 2 for AE, 1 for replication.
    pub fn single_failure_reads(&self) -> u32 {
        match self {
            Scheme::Ae(_) => Config::SINGLE_FAILURE_READS,
            Scheme::Rs { k, .. } => *k,
            Scheme::Replication { .. } => 1,
        }
    }

    /// Paper-style name: `RS(10,4)`, `AE(3,2,5)`, `3-way replic.`.
    pub fn name(&self) -> String {
        match self {
            Scheme::Ae(cfg) => cfg.name(),
            Scheme::Rs { k, m } => format!("RS({k},{m})"),
            Scheme::Replication { n } => format!("{n}-way replic."),
        }
    }

    /// Encoded (redundant) blocks generated for `data_blocks` data blocks,
    /// e.g. "RS(10,4) generates 400,000 encoded blocks" for one million
    /// (§V.C "Simulation Environment").
    pub fn encoded_blocks(&self, data_blocks: u64) -> u64 {
        match self {
            Scheme::Ae(cfg) => data_blocks * cfg.alpha() as u64,
            Scheme::Rs { k, m } => data_blocks / *k as u64 * *m as u64,
            Scheme::Replication { n } => data_blocks * (*n as u64 - 1),
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every "AS" and "SF" entry of Table IV.
    #[test]
    fn table_iv_costs() {
        let expected: [(&str, f64, u32); 10] = [
            ("RS(10,4)", 40.0, 10),
            ("RS(8,2)", 25.0, 8),
            ("RS(5,5)", 100.0, 5),
            ("RS(4,12)", 300.0, 4),
            ("AE(1,-,-)", 100.0, 2),
            ("AE(2,2,5)", 200.0, 2),
            ("AE(3,2,5)", 300.0, 2),
            ("2-way replic.", 100.0, 1),
            ("3-way replic.", 200.0, 1),
            ("4-way replic.", 300.0, 1),
        ];
        for (scheme, (name, storage, sf)) in Scheme::paper_lineup().iter().zip(expected) {
            assert_eq!(scheme.name(), name);
            assert!(
                (scheme.additional_storage_pct() - storage).abs() < 1e-9,
                "{name} AS"
            );
            assert_eq!(scheme.single_failure_reads(), sf, "{name} SF");
        }
    }

    /// The encoded-block counts quoted in §V.C.
    #[test]
    fn encoded_block_counts_match_paper() {
        let m = 1_000_000;
        assert_eq!(Scheme::Rs { k: 10, m: 4 }.encoded_blocks(m), 400_000);
        assert_eq!(Scheme::Rs { k: 8, m: 2 }.encoded_blocks(m), 250_000);
        assert_eq!(Scheme::Rs { k: 5, m: 5 }.encoded_blocks(m), 1_000_000);
        assert_eq!(
            Scheme::Ae(Config::new(3, 2, 5).unwrap()).encoded_blocks(m),
            3_000_000
        );
        assert_eq!(Scheme::Replication { n: 4 }.encoded_blocks(m), 3_000_000);
    }

    #[test]
    fn display_matches_name() {
        let s = Scheme::Rs { k: 5, m: 5 };
        assert_eq!(format!("{s}"), s.name());
    }
}
