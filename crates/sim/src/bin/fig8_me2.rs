//! Regenerates Fig 8: |ME(2)| as a function of p for AE(2,2,p), AE(2,3,p),
//! AE(3,2,p), AE(3,3,p). Pattern sizes come from the exhaustive
//! minimal-erasure search (run in release; large p take seconds each).

use ae_sim::experiments;

fn main() {
    let sweep = experiments::fig8_me2(2..=8);
    print!("{}", sweep.to_table());
    println!();
    print!("{}", sweep.to_csv());
}
