//! Regenerates Fig 9: |ME(4)| as a function of p for the Fig 8 settings.

use ae_sim::experiments;

fn main() {
    let sweep = experiments::fig9_me4(2..=8);
    print!("{}", sweep.to_table());
    println!();
    print!("{}", sweep.to_csv());
}
