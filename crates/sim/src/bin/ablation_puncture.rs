//! Puncturing ablation (§III "Reducing Storage Overhead"): data loss of
//! AE(3,2,5) as a growing fraction of parities is never stored.

use ae_sim::cli::Cli;
use ae_sim::experiments;

fn main() {
    let cli = Cli::from_process_args();
    cli.emit(&experiments::ablation_puncture(&cli.env));
}
