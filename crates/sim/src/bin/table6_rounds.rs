//! Regenerates Table VI: repair rounds to fixpoint for the AE schemes.

use ae_sim::cli::Cli;
use ae_sim::experiments;

fn main() {
    let cli = Cli::from_process_args();
    cli.emit(&experiments::table6_rounds(&cli.env));
}
