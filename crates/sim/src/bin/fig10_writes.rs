//! Regenerates Fig 10: full-write behaviour for s = p versus p > s under
//! the column-batched writer model (see `ae_core::writer`).

use ae_sim::experiments;

fn main() {
    let sweep = experiments::fig10_writes();
    print!("{}", sweep.to_table());
}
