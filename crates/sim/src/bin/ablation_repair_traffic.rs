//! Repair-traffic ablation (§V.C.3 context): total blocks read to complete
//! all repairs after a disaster, per scheme — the maintenance-bandwidth
//! story behind the paper's fixed "k = 2" repairs.

use ae_sim::cli::Cli;
use ae_sim::experiments;

fn main() {
    let cli = Cli::from_process_args();
    cli.emit(&experiments::ablation_repair_traffic(&cli.env));
}
