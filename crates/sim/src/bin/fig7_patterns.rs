//! Regenerates the Fig 6/Fig 7 pattern gallery: minimal erasure patterns
//! and their sizes for the code settings shown in the paper, rendered on
//! the lattice grid.

use ae_lattice::{me, render, Config, MeSearch};

fn main() {
    let settings: [(u8, u16, u16, usize, &str); 5] = [
        (1, 1, 0, 2, "Fig 6 primitive form I"),
        (2, 1, 1, 2, "Fig 7 A"),
        (3, 1, 1, 2, "Fig 7 B"),
        (3, 1, 4, 2, "Fig 7 C"),
        (3, 4, 4, 2, "Fig 7 D"),
    ];
    for (a, s, p, x, label) in settings {
        let cfg = Config::new(a, s, p).expect("paper settings are valid");
        let pat = MeSearch::new(cfg)
            .min_erasure(x)
            .expect("pattern exists within the search cap");
        println!("== {label}: {cfg} |ME({x})| = {} ==", pat.size());
        println!("irreducible: {}", me::is_irreducible(&cfg, &pat.blocks));
        println!("{}\n", render::pattern(&cfg, &pat.blocks));
    }
}
