//! Placement ablation (§V.C "Block Placements"): does the random placement
//! the paper adopts hurt recovery compared to the round-robin its earlier
//! work assumed?

use ae_sim::cli::Cli;
use ae_sim::experiments;

fn main() {
    let cli = Cli::from_process_args();
    cli.emit(&experiments::ablation_placement(&cli.env));
}
