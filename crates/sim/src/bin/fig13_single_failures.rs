//! Regenerates Fig 13: the share of repairs that are single failures
//! (solved with one XOR in round 1 for AE; the stripe's only missing block
//! for the RS(4,12) reference).

use ae_sim::cli::Cli;
use ae_sim::experiments;

fn main() {
    let cli = Cli::from_process_args();
    cli.emit(&experiments::fig13_single_failures(&cli.env));
}
