//! Regenerates Table IV: additional storage (AS) and single-failure repair
//! reads (SF) for every scheme in the paper's comparison.

use ae_sim::schemes::Scheme;

fn main() {
    println!("# Table IV: redundancy schemes");
    println!(
        "{:<16} {:>8} {:>10} {:>20}",
        "scheme", "AS %", "SF reads", "encoded blocks / 1M"
    );
    for s in Scheme::paper_lineup() {
        println!(
            "{:<16} {:>8} {:>10} {:>20}",
            s.name(),
            s.additional_storage_pct(),
            s.single_failure_reads(),
            s.encoded_blocks(1_000_000),
        );
    }
}
