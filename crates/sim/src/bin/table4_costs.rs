//! Regenerates Table IV: additional storage (AS) and single-failure repair
//! reads (SF) for every scheme in the paper's comparison, extended with
//! the §IV use-case schemes. The EX column is the number of blocks a
//! chain extremity leaves with a single repair tuple — the typed
//! open-vs-closed distinction (zero everywhere else).

use ae_sim::schemes::Scheme;

fn main() {
    println!("# Table IV: redundancy schemes (+ §IV use-case schemes)");
    println!(
        "{:<18} {:>8} {:>10} {:>4} {:>20}",
        "scheme", "AS %", "SF reads", "EX", "encoded blocks / 1M"
    );
    for s in Scheme::extended_lineup() {
        println!(
            "{:<18} {:>8} {:>10} {:>4} {:>20}",
            s.name(),
            s.additional_storage_pct(),
            s.single_failure_reads(),
            s.extremity_exposed(),
            s.encoded_blocks(1_000_000),
        );
    }
}
