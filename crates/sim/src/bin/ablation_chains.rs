//! Entangled-mirror reliability Monte Carlo (§IV.B.1): probability of data
//! loss for mirroring vs open and closed entangled chains, at equal space
//! overhead.

use ae_sim::experiments;

fn main() {
    let sweep = experiments::ablation_chains(16, 400_000, 7);
    print!("{}", sweep.to_table());
}
