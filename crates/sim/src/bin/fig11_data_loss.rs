//! Regenerates Fig 11: data blocks that the decoder failed to repair, per
//! redundancy scheme, for disasters failing 10–50% of the locations.
//!
//! Run with the paper's scale (1M data blocks, ~1 min in release) or scale
//! down with `--blocks`.

use ae_sim::cli::Cli;
use ae_sim::experiments;

fn main() {
    let cli = Cli::from_process_args();
    cli.emit(&experiments::fig11_data_loss(&cli.env));
}
