//! Regenerates Fig 12: data blocks left without redundancy after
//! minimal-maintenance repairs.

use ae_sim::cli::Cli;
use ae_sim::experiments;

fn main() {
    let cli = Cli::from_process_args();
    cli.emit(&experiments::fig12_vulnerable(&cli.env));
}
