//! Baseline redundancy schemes the paper compares against (§V).
//!
//! * [`rs::ReedSolomon`] — systematic RS(k, m) built from a Cauchy generator
//!   over GF(2^8): splits a source into `k` data shards, adds `m` parity
//!   shards, and reconstructs from **any** k of the k+m shards. RS codes are
//!   the paper's "ideal code" baseline: storage-optimal, but a single-shard
//!   repair reads k shards and moves k·B bytes (§I).
//! * [`replication::Replication`] — n-way replication: n parallel paths,
//!   zero decode cost, (n−1)·100% storage overhead.
//!
//! Both implement enough bookkeeping (reads and bytes moved per repair) for
//! the simulation crate to reproduce the paper's cost comparisons
//! (Table IV, Figs 11–13).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod replication;
pub mod rs;
pub mod scheme;

pub use ae_api::RedundancyScheme;
pub use replication::Replication;
pub use rs::{ReedSolomon, RsError, DEFAULT_DECODE_CACHE_MAX};
