//! n-way replication.
//!
//! The oldest redundancy scheme: n identical copies, n parallel read paths,
//! no decoding. The paper compares against 2-, 3- and 4-way replication
//! (300% additional storage is the cap considered, §V.C). Replication "does
//! not have overheads for single failures" — a repair is one read of one
//! block — but pays linearly in storage for every level of fault tolerance.

use ae_blocks::Block;
use parking_lot::Mutex;

/// An n-way replication scheme.
///
/// The write counter — the only encoding state — sits behind a lock, so
/// one instance can be shared (`Arc<dyn RedundancyScheme>`) between
/// writers and repair workers.
#[derive(Debug)]
pub struct Replication {
    n: usize,
    /// Data blocks written through the scheme API.
    pub(crate) written: Mutex<u64>,
}

impl Clone for Replication {
    fn clone(&self) -> Self {
        Replication {
            n: self.n,
            written: Mutex::new(*self.written.lock()),
        }
    }
}

impl Replication {
    /// Creates n-way replication.
    ///
    /// # Panics
    ///
    /// Panics for `n < 2`: one copy is no redundancy scheme.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "replication needs at least 2 copies, got {n}");
        Replication {
            n,
            written: Mutex::new(0),
        }
    }

    /// Number of copies, original included.
    pub fn copies(&self) -> usize {
        self.n
    }

    /// Additional storage as a percentage: `(n − 1) · 100` (Table IV).
    pub fn storage_overhead_pct(&self) -> f64 {
        (self.n as f64 - 1.0) * 100.0
    }

    /// Blocks read to repair a single lost copy: always 1 (Table IV).
    pub fn single_failure_reads(&self) -> usize {
        1
    }

    /// Failures tolerated per block: any `n − 1` copies may vanish.
    pub fn max_tolerated_failures(&self) -> usize {
        self.n - 1
    }

    /// "Encodes" a block: n identical copies (clones are O(1) by design of
    /// [`Block`]).
    pub fn encode(&self, data: &Block) -> Vec<Block> {
        vec![data.clone(); self.n]
    }

    /// Repairs from any surviving copy, verifying its checksum first so a
    /// corrupted replica is never propagated.
    pub fn repair<'a>(&self, survivors: impl IntoIterator<Item = &'a Block>) -> Option<Block> {
        survivors.into_iter().find(|b| b.verify().is_ok()).cloned()
    }

    /// Whether a block with `available` surviving copies is recoverable.
    pub fn recoverable(&self, available: usize) -> bool {
        available >= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_makes_n_copies() {
        let r = Replication::new(3);
        let b = Block::from_vec(vec![1, 2, 3]);
        let copies = r.encode(&b);
        assert_eq!(copies.len(), 3);
        assert!(copies.iter().all(|c| *c == b));
    }

    #[test]
    fn repair_returns_any_valid_copy() {
        let r = Replication::new(4);
        let b = Block::from_vec(vec![9; 32]);
        let copies = r.encode(&b);
        assert_eq!(r.repair(copies.iter().skip(3)), Some(b));
        assert_eq!(r.repair(std::iter::empty()), None);
    }

    #[test]
    fn costs_match_table_iv() {
        for (n, overhead) in [(2usize, 100.0), (3, 200.0), (4, 300.0)] {
            let r = Replication::new(n);
            assert_eq!(r.storage_overhead_pct(), overhead);
            assert_eq!(r.single_failure_reads(), 1);
            assert_eq!(r.max_tolerated_failures(), n - 1);
        }
    }

    #[test]
    fn recoverable_with_one_survivor() {
        let r = Replication::new(2);
        assert!(r.recoverable(1));
        assert!(!r.recoverable(0));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_single_copy() {
        Replication::new(1);
    }
}
