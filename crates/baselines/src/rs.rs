//! Systematic Reed-Solomon codes over GF(2^8).
//!
//! RS(k, m) encodes `k` data shards into `k + m` total shards such that any
//! `k` suffice to reconstruct everything (maximum distance separable). The
//! generator is `[I_k; C]` with `C` an m×k Cauchy matrix, whose every square
//! submatrix is invertible — the textbook construction used by storage
//! systems (Plank's tutorial, reference \[2\] of the paper; Backblaze's
//! open-source encoder, reference \[32\]).
//!
//! The paper's cost model (§I, Table IV): repairing a single lost shard
//! requires reading `k` surviving shards and moving `k · B` bytes — this is
//! what AE codes beat with their fixed two-block repairs.

use ae_gf::{field, Gf256, Matrix};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default cap on memoized decode matrices; when full the cache is reset.
/// Override per instance with [`ReedSolomon::with_decode_cache_cap`].
///
/// The bound only matters under adversarial erasure-pattern churn: one
/// entry costs k·k bytes plus the key, and a (k, m) code has at most
/// C(k+m, k) distinct patterns. A reset (rather than LRU bookkeeping) keeps
/// the lock hold time constant.
pub const DEFAULT_DECODE_CACHE_MAX: usize = 128;

/// Errors from Reed-Solomon operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsError {
    /// k and m must be positive and k + m ≤ 256 (GF(2^8) field size).
    InvalidParameters {
        /// Requested data shards.
        k: usize,
        /// Requested parity shards.
        m: usize,
    },
    /// The caller passed a shard set of the wrong length.
    WrongShardCount {
        /// Expected k + m.
        expected: usize,
        /// Provided length.
        actual: usize,
    },
    /// Shards present disagree on length, or a data shard list had
    /// mismatched sizes.
    ShardSizeMismatch,
    /// Fewer than k shards survive: the stripe is damaged beyond repair.
    TooFewShards {
        /// Shards still available.
        available: usize,
        /// Shards required (k).
        required: usize,
    },
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::InvalidParameters { k, m } => {
                write!(
                    f,
                    "invalid RS parameters k={k}, m={m} (need k,m >= 1, k+m <= 256)"
                )
            }
            RsError::WrongShardCount { expected, actual } => {
                write!(f, "expected {expected} shards, got {actual}")
            }
            RsError::ShardSizeMismatch => write!(f, "shards have mismatched sizes"),
            RsError::TooFewShards {
                available,
                required,
            } => write!(
                f,
                "stripe unrecoverable: {available} shards available, {required} required"
            ),
        }
    }
}

impl std::error::Error for RsError {}

/// A systematic RS(k, m) erasure code.
///
/// # Examples
///
/// ```
/// use ae_baselines::ReedSolomon;
///
/// let rs = ReedSolomon::new(4, 2).unwrap();
/// let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 16]).collect();
/// let parity = rs.encode(&data).unwrap();
///
/// // Lose any two shards; reconstruction recovers them.
/// let mut shards: Vec<Option<Vec<u8>>> =
///     data.iter().chain(&parity).cloned().map(Some).collect();
/// shards[1] = None;
/// shards[5] = None;
/// rs.reconstruct(&mut shards).unwrap();
/// assert_eq!(shards[1].as_deref(), Some(&data[1][..]));
/// ```
#[derive(Debug)]
pub struct ReedSolomon {
    k: usize,
    m: usize,
    /// Full generator `[I_k; C]`, (k+m) × k.
    generator: Matrix,
    /// Streaming-encoder state — the write counter and the buffered
    /// partial stripe — behind one lock, so an instance can be shared
    /// (`Arc<dyn RedundancyScheme>`) between writers and repair workers.
    pub(crate) enc: Mutex<RsEncoderState>,
    /// Inverted decode submatrices memoized per erasure pattern (keyed by
    /// the k surviving generator rows selected for the solve). Steady-state
    /// repair traffic repeats a handful of patterns — a single lost shard
    /// in particular always selects the same rows — so repairs after the
    /// first skip the O(k³) Gauss-Jordan inversion entirely.
    decode_cache: Mutex<HashMap<Vec<usize>, Arc<Matrix>>>,
    /// Per-instance cap on `decode_cache`; 0 disables memoization.
    decode_cache_cap: usize,
    /// Lookups served from `decode_cache`.
    cache_hits: AtomicU64,
    /// Lookups that had to run the O(k³) inversion.
    cache_misses: AtomicU64,
}

/// The mutable half of a streaming [`ReedSolomon`] encoder.
#[derive(Debug, Clone, Default)]
pub(crate) struct RsEncoderState {
    /// Data blocks written through the scheme API.
    pub(crate) written: u64,
    /// Buffered data blocks of the current (incomplete) stripe.
    pub(crate) pending: Vec<ae_blocks::Block>,
}

impl Clone for ReedSolomon {
    fn clone(&self) -> Self {
        ReedSolomon {
            k: self.k,
            m: self.m,
            generator: self.generator.clone(),
            enc: Mutex::new(self.enc.lock().clone()),
            decode_cache: Mutex::new(self.decode_cache.lock().clone()),
            decode_cache_cap: self.decode_cache_cap,
            cache_hits: AtomicU64::new(self.cache_hits.load(Ordering::Relaxed)),
            cache_misses: AtomicU64::new(self.cache_misses.load(Ordering::Relaxed)),
        }
    }
}

impl ReedSolomon {
    /// Builds an RS(k, m) code.
    ///
    /// # Errors
    ///
    /// Fails unless `k ≥ 1`, `m ≥ 1` and `k + m ≤ 256`.
    pub fn new(k: usize, m: usize) -> Result<Self, RsError> {
        if k == 0 || m == 0 || k + m > 256 {
            return Err(RsError::InvalidParameters { k, m });
        }
        let generator = Matrix::identity(k)
            .stack(&Matrix::cauchy(m, k))
            .expect("identity and Cauchy share k columns");
        Ok(ReedSolomon {
            k,
            m,
            generator,
            enc: Mutex::new(RsEncoderState::default()),
            decode_cache: Mutex::new(HashMap::new()),
            decode_cache_cap: DEFAULT_DECODE_CACHE_MAX,
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        })
    }

    /// Sets the decode-matrix memoization cap for this instance.
    ///
    /// `0` disables memoization: every repair pays the O(k³) inversion,
    /// which is the right trade when erasure patterns never repeat (e.g.
    /// one-shot disaster sweeps) and the k·k-byte entries would only
    /// accumulate. The existing cache is trimmed to fit immediately.
    #[must_use]
    pub fn with_decode_cache_cap(self, cap: usize) -> Self {
        if self.decode_cache.lock().len() > cap {
            self.decode_cache.lock().clear();
        }
        ReedSolomon {
            decode_cache_cap: cap,
            ..self
        }
    }

    /// The decode-matrix memoization cap currently in force.
    pub fn decode_cache_cap(&self) -> usize {
        self.decode_cache_cap
    }

    /// Decode-cache effectiveness counters as `(hits, misses)`.
    ///
    /// Hits served the inverted decode matrix from the per-pattern memo;
    /// misses ran the O(k³) Gauss-Jordan inversion. Counters are
    /// monotonic over the instance's lifetime (clones inherit a snapshot)
    /// and count lookups even when the cap is 0.
    pub fn decode_cache_stats(&self) -> (u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    /// The inverted k×k decode submatrix for the given surviving rows,
    /// memoized per erasure pattern.
    ///
    /// The inversion runs outside the lock: a concurrent miss on the same
    /// pattern duplicates the work once but never serializes repairs
    /// behind an O(k³) critical section.
    fn cached_decode_matrix(&self, rows: &[usize]) -> Arc<Matrix> {
        if let Some(inv) = self.decode_cache.lock().get(rows) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(inv);
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let sub = self.generator.select_rows(rows);
        let inv = Arc::new(
            sub.inverse()
                .expect("every k x k generator submatrix is invertible"),
        );
        if self.decode_cache_cap > 0 {
            let mut cache = self.decode_cache.lock();
            if cache.len() >= self.decode_cache_cap {
                cache.clear();
            }
            cache.insert(rows.to_vec(), Arc::clone(&inv));
        }
        inv
    }

    /// Memoized decode matrices currently cached (exposed for tests).
    #[cfg(test)]
    fn decode_cache_len(&self) -> usize {
        self.decode_cache.lock().len()
    }

    /// Data shards per stripe.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Parity shards per stripe.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Total shards per stripe.
    pub fn total_shards(&self) -> usize {
        self.k + self.m
    }

    /// Additional storage as a percentage of the original data:
    /// `m/k · 100` (Table IV).
    pub fn storage_overhead_pct(&self) -> f64 {
        self.m as f64 / self.k as f64 * 100.0
    }

    /// Shards read to repair a single lost shard (Table IV's "SF" row).
    pub fn single_failure_reads(&self) -> usize {
        self.k
    }

    /// Encodes `k` equal-length data shards into `m` parity shards.
    ///
    /// # Errors
    ///
    /// Fails if the shard count or sizes are wrong.
    pub fn encode(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, RsError> {
        if data.len() != self.k {
            return Err(RsError::WrongShardCount {
                expected: self.k,
                actual: data.len(),
            });
        }
        let len = data[0].len();
        if data.iter().any(|d| d.len() != len) {
            return Err(RsError::ShardSizeMismatch);
        }
        let mut parity = vec![vec![0u8; len]; self.m];
        for (r, out) in parity.iter_mut().enumerate() {
            let row = self.generator.row(self.k + r);
            for (c, shard) in data.iter().enumerate() {
                field::mul_slice_acc(row[c], shard, out);
            }
        }
        Ok(parity)
    }

    /// Reconstructs all missing shards in place. `shards[i] = None` marks an
    /// erasure; indices `0..k` are data, `k..k+m` parity.
    ///
    /// # Errors
    ///
    /// Fails if fewer than `k` shards are present, the vector has the wrong
    /// length, or present shards disagree on size.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), RsError> {
        if shards.len() != self.total_shards() {
            return Err(RsError::WrongShardCount {
                expected: self.total_shards(),
                actual: shards.len(),
            });
        }
        let present: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_some()).collect();
        if present.len() < self.k {
            return Err(RsError::TooFewShards {
                available: present.len(),
                required: self.k,
            });
        }
        if present
            .iter()
            .map(|&i| shards[i].as_ref().expect("present").len())
            .collect::<std::collections::HashSet<_>>()
            .len()
            > 1
        {
            return Err(RsError::ShardSizeMismatch);
        }
        if present.len() == shards.len() {
            return Ok(()); // nothing missing
        }
        let len = shards[present[0]].as_ref().expect("present").len();

        // Invert the k×k submatrix of the generator for k surviving shards
        // (memoized per erasure pattern); its product with those shards
        // yields the data shards.
        let rows: Vec<usize> = present.iter().take(self.k).copied().collect();
        let inv = self.cached_decode_matrix(&rows);

        let mut data: Vec<Vec<u8>> = Vec::with_capacity(self.k);
        for r in 0..self.k {
            let mut out = vec![0u8; len];
            for (c, &src_row) in rows.iter().enumerate() {
                let coeff = inv[(r, c)];
                let shard = shards[src_row].as_ref().expect("selected rows are present");
                field::mul_slice_acc(coeff, shard, &mut out);
            }
            data.push(out);
        }

        // Fill in missing data shards, then recompute missing parities.
        for i in 0..self.k {
            if shards[i].is_none() {
                shards[i] = Some(data[i].clone());
            }
        }
        for r in 0..self.m {
            if shards[self.k + r].is_none() {
                let row = self.generator.row(self.k + r);
                let mut out = vec![0u8; len];
                for (c, d) in data.iter().enumerate() {
                    field::mul_slice_acc(row[c], d, &mut out);
                }
                shards[self.k + r] = Some(out);
            }
        }
        Ok(())
    }

    /// Convenience check used by the availability-plane simulator: a stripe
    /// with `available` of `k + m` shards survives iff `available ≥ k`.
    pub fn stripe_recoverable(&self, available: usize) -> bool {
        available >= self.k
    }

    /// The generator coefficient for parity row `r` and data column `c`
    /// (exposed for tests certifying the MDS property).
    pub fn parity_coefficient(&self, r: usize, c: usize) -> Gf256 {
        self.generator[(self.k + r, c)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|b| ((i * 37 + b * 11 + 5) % 251) as u8)
                    .collect()
            })
            .collect()
    }

    fn roundtrip(k: usize, m: usize, erase: &[usize]) {
        let rs = ReedSolomon::new(k, m).unwrap();
        let data = sample_data(k, 64);
        let parity = rs.encode(&data).unwrap();
        let full: Vec<Vec<u8>> = data.iter().chain(&parity).cloned().collect();
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        for &e in erase {
            shards[e] = None;
        }
        rs.reconstruct(&mut shards).unwrap();
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.as_ref().unwrap(), &full[i], "shard {i} of RS({k},{m})");
        }
    }

    #[test]
    fn paper_settings_roundtrip() {
        // All four settings from Table IV, erasing a mix of data + parity.
        roundtrip(10, 4, &[0, 3, 11, 13]);
        roundtrip(8, 2, &[7, 9]);
        roundtrip(5, 5, &[0, 1, 2, 3, 4]); // all data lost, parity survives
        roundtrip(4, 12, &[0, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14]); // m losses
    }

    #[test]
    fn tolerates_any_m_erasures_exhaustively_small() {
        // RS(3,2): all C(5,2)=10 double-erasure patterns.
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data = sample_data(3, 16);
        let parity = rs.encode(&data).unwrap();
        let full: Vec<Vec<u8>> = data.iter().chain(&parity).cloned().collect();
        for a in 0..5 {
            for b in (a + 1)..5 {
                let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                shards[a] = None;
                shards[b] = None;
                rs.reconstruct(&mut shards).unwrap();
                for (i, s) in shards.iter().enumerate() {
                    assert_eq!(s.as_ref().unwrap(), &full[i], "erasures ({a},{b})");
                }
            }
        }
    }

    #[test]
    fn more_than_m_erasures_fail() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 8);
        let parity = rs.encode(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> =
            data.iter().chain(&parity).cloned().map(Some).collect();
        shards[0] = None;
        shards[1] = None;
        shards[2] = None;
        assert_eq!(
            rs.reconstruct(&mut shards),
            Err(RsError::TooFewShards {
                available: 3,
                required: 4
            })
        );
        assert!(!rs.stripe_recoverable(3));
        assert!(rs.stripe_recoverable(4));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(ReedSolomon::new(0, 2).is_err());
        assert!(ReedSolomon::new(2, 0).is_err());
        assert!(ReedSolomon::new(200, 57).is_err());
        assert!(ReedSolomon::new(200, 56).is_ok());
    }

    #[test]
    fn encode_validates_inputs() {
        let rs = ReedSolomon::new(3, 1).unwrap();
        assert!(matches!(
            rs.encode(&sample_data(2, 8)),
            Err(RsError::WrongShardCount {
                expected: 3,
                actual: 2
            })
        ));
        let mut ragged = sample_data(3, 8);
        ragged[2].pop();
        assert_eq!(rs.encode(&ragged), Err(RsError::ShardSizeMismatch));
    }

    #[test]
    fn reconstruct_validates_inputs() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        let mut wrong_len: Vec<Option<Vec<u8>>> = vec![Some(vec![0; 4]); 2];
        assert!(matches!(
            rs.reconstruct(&mut wrong_len),
            Err(RsError::WrongShardCount { .. })
        ));
        let mut ragged: Vec<Option<Vec<u8>>> = vec![Some(vec![0; 4]), Some(vec![0; 5]), None];
        assert_eq!(rs.reconstruct(&mut ragged), Err(RsError::ShardSizeMismatch));
    }

    #[test]
    fn nothing_missing_is_a_noop() {
        let rs = ReedSolomon::new(2, 2).unwrap();
        let data = sample_data(2, 8);
        let parity = rs.encode(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> =
            data.iter().chain(&parity).cloned().map(Some).collect();
        let before = shards.clone();
        rs.reconstruct(&mut shards).unwrap();
        assert_eq!(shards, before);
    }

    #[test]
    fn costs_match_table_iv() {
        for (k, m, overhead) in [(10, 4, 40.0), (8, 2, 25.0), (5, 5, 100.0), (4, 12, 300.0)] {
            let rs = ReedSolomon::new(k, m).unwrap();
            assert!(
                (rs.storage_overhead_pct() - overhead).abs() < 1e-9,
                "RS({k},{m})"
            );
            assert_eq!(rs.single_failure_reads(), k, "SF cost of RS({k},{m})");
        }
    }

    #[test]
    fn decode_matrix_is_memoized_per_erasure_pattern() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 32);
        let parity = rs.encode(&data).unwrap();
        let full: Vec<Vec<u8>> = data.iter().chain(&parity).cloned().collect();
        assert_eq!(rs.decode_cache_len(), 0);

        // Same erasure pattern twice: one cache entry, correct repairs.
        for _ in 0..2 {
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            shards[1] = None;
            rs.reconstruct(&mut shards).unwrap();
            assert_eq!(shards[1].as_ref().unwrap(), &full[1]);
            assert_eq!(rs.decode_cache_len(), 1);
        }

        // A different pattern adds a second entry and still repairs.
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        shards[0] = None;
        shards[5] = None;
        rs.reconstruct(&mut shards).unwrap();
        assert_eq!(shards[0].as_ref().unwrap(), &full[0]);
        assert_eq!(shards[5].as_ref().unwrap(), &full[5]);
        assert_eq!(rs.decode_cache_len(), 2);
    }

    #[test]
    fn cache_counters_track_hits_and_misses() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        assert_eq!(rs.decode_cache_cap(), DEFAULT_DECODE_CACHE_MAX);
        let data = sample_data(4, 32);
        let parity = rs.encode(&data).unwrap();
        let full: Vec<Vec<u8>> = data.iter().chain(&parity).cloned().collect();

        let lose = |idx: usize| {
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            shards[idx] = None;
            rs.reconstruct(&mut shards).unwrap();
            assert_eq!(shards[idx].as_ref().unwrap(), &full[idx]);
        };
        lose(1);
        lose(1);
        lose(1);
        lose(2);
        // Pattern {1} misses once then hits twice; pattern {2} misses once.
        assert_eq!(rs.decode_cache_stats(), (2, 2));
        // Clones inherit a snapshot and count independently from there.
        let twin = rs.clone();
        assert_eq!(twin.decode_cache_stats(), (2, 2));
        lose(2);
        assert_eq!(rs.decode_cache_stats(), (3, 2));
        assert_eq!(twin.decode_cache_stats(), (2, 2));
    }

    #[test]
    fn cache_cap_bounds_the_memo_and_zero_disables_it() {
        let rs = ReedSolomon::new(4, 2).unwrap().with_decode_cache_cap(2);
        assert_eq!(rs.decode_cache_cap(), 2);
        let data = sample_data(4, 32);
        let parity = rs.encode(&data).unwrap();
        let full: Vec<Vec<u8>> = data.iter().chain(&parity).cloned().collect();

        let lose = |code: &ReedSolomon, idx: usize| {
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            shards[idx] = None;
            code.reconstruct(&mut shards).unwrap();
            assert_eq!(shards[idx].as_ref().unwrap(), &full[idx]);
        };
        // Three distinct patterns against cap 2: the cache resets when
        // full, so it never exceeds the cap, and repairs stay correct.
        lose(&rs, 0);
        lose(&rs, 1);
        assert_eq!(rs.decode_cache_len(), 2);
        lose(&rs, 2);
        assert!(rs.decode_cache_len() <= 2);

        // Cap 0 never memoizes: every repair is a miss, zero entries.
        let cold = ReedSolomon::new(4, 2).unwrap().with_decode_cache_cap(0);
        lose(&cold, 1);
        lose(&cold, 1);
        assert_eq!(cold.decode_cache_len(), 0);
        assert_eq!(cold.decode_cache_stats(), (0, 2));

        // Lowering the cap trims an over-full cache immediately.
        let shrunk = rs.with_decode_cache_cap(1);
        assert!(shrunk.decode_cache_len() <= 1);
    }

    #[test]
    fn xor_parity_structure_for_m1() {
        // With one parity row of a Cauchy matrix, coefficients are nonzero.
        let rs = ReedSolomon::new(4, 1).unwrap();
        for c in 0..4 {
            assert!(!rs.parity_coefficient(0, c).is_zero());
        }
    }
}
