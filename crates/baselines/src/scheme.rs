//! [`RedundancyScheme`] implementations for the baseline codes.
//!
//! Both baselines share the data id space with alpha entanglement
//! (`BlockId::Data(NodeId(i))` in write order) and emit their own
//! redundancy ids:
//!
//! * Reed-Solomon groups each run of `k` consecutive data blocks into a
//!   stripe and emits `m` [`BlockId::Shard`] parity shards per stripe. A
//!   final partial stripe is completed with *virtual* all-zero data blocks
//!   at [`RedundancyScheme::seal`] time — they are never stored, and the
//!   decoder treats them as always available.
//! * Replication emits `n − 1` [`BlockId::Replica`] copies per data block.

use crate::replication::Replication;
use crate::rs::ReedSolomon;
use ae_api::{
    AeError, BlockRepo, BlockSink, BlockSource, EncodeReport, RedundancyScheme, RepairCost,
    RepairError, RepairSummary, RoundStats, SnapshotReader, SnapshotWriter,
};
use ae_blocks::{Block, BlockId, NodeId, ReplicaId, ShardId};
use std::collections::BTreeSet;

impl ReedSolomon {
    /// Stripe number of data position `i` (1-based).
    fn stripe_of(&self, i: u64) -> u64 {
        (i - 1) / self.k() as u64
    }

    /// All member ids of stripe `t`: the `k` data blocks, then the `m`
    /// parity shards.
    fn stripe_members(&self, t: u64) -> Vec<BlockId> {
        let k = self.k() as u64;
        let mut out: Vec<BlockId> = (t * k + 1..=t * k + k)
            .map(|i| BlockId::Data(NodeId(i)))
            .collect();
        out.extend((0..self.m() as u16).map(|index| BlockId::Shard(ShardId { stripe: t, index })));
        out
    }

    /// The stripe a block belongs to, or `None` for foreign ids.
    fn stripe_of_id(&self, id: BlockId) -> Option<u64> {
        match id {
            BlockId::Data(NodeId(i)) if i >= 1 => Some(self.stripe_of(i)),
            BlockId::Shard(s) => Some(s.stripe),
            _ => None,
        }
    }

    /// Whether `id` is a virtual member: a data position past the written
    /// extent inside the final (padded) stripe. Virtual members are
    /// all-zero and always available.
    fn is_virtual(&self, id: BlockId, data_blocks: u64) -> bool {
        matches!(id, BlockId::Data(NodeId(i)) if i > data_blocks)
    }

    /// Encodes one full stripe of data blocks into its parity shards.
    fn emit_stripe(&self, t: u64, data: &[Block], sink: &dyn BlockSink, ids: &mut Vec<BlockId>) {
        let shards: Vec<Vec<u8>> = data.iter().map(|b| b.as_slice().to_vec()).collect();
        let parity = self
            .encode(&shards)
            .expect("stripe is k equal-sized blocks");
        for (index, bytes) in parity.into_iter().enumerate() {
            let id = BlockId::Shard(ShardId {
                stripe: t,
                index: index as u16,
            });
            sink.store(id, Block::from_vec(bytes));
            ids.push(id);
        }
    }

    /// Decodes stripe `t` from whatever `source` has, returning the full
    /// member contents, or the unavailable members that made decoding
    /// impossible.
    fn decode_stripe(
        &self,
        source: &dyn BlockSource,
        t: u64,
        data_blocks: u64,
    ) -> Result<Vec<Block>, Vec<BlockId>> {
        let members = self.stripe_members(t);
        let mut shards: Vec<Option<Vec<u8>>> = Vec::with_capacity(members.len());
        let mut missing = Vec::new();
        let mut len = None;
        for &id in &members {
            if self.is_virtual(id, data_blocks) {
                shards.push(None); // filled with zeros once the length is known
                continue;
            }
            match source.fetch(id) {
                Some(b) => {
                    len = Some(b.len());
                    shards.push(Some(b.as_slice().to_vec()));
                }
                None => {
                    missing.push(id);
                    shards.push(None);
                }
            }
        }
        let Some(len) = len else {
            return Err(missing); // nothing available at all
        };
        for (slot, &id) in shards.iter_mut().zip(&members) {
            if self.is_virtual(id, data_blocks) {
                *slot = Some(vec![0u8; len]);
            }
        }
        if self.reconstruct(&mut shards).is_err() {
            return Err(missing);
        }
        Ok(shards
            .into_iter()
            .map(|s| Block::from_vec(s.expect("reconstruct fills every slot")))
            .collect())
    }
}

impl RedundancyScheme for ReedSolomon {
    fn scheme_name(&self) -> String {
        format!("RS({},{})", self.k(), self.m())
    }

    fn data_written(&self) -> u64 {
        self.enc.lock().written
    }

    fn repair_cost(&self) -> RepairCost {
        RepairCost::new(self.k() as u32, self.storage_overhead_pct())
    }

    fn encode_batch(
        &self,
        blocks: &[Block],
        sink: &dyn BlockSink,
    ) -> Result<EncodeReport, AeError> {
        let mut enc = self.enc.lock();
        // The buffered partial stripe fixes the size; a batch may not
        // change it mid-stripe.
        if let Some(first) = enc.pending.first().or(blocks.first()) {
            let expected = first.len();
            for b in blocks {
                if b.len() != expected {
                    return Err(AeError::SizeMismatch {
                        expected,
                        actual: b.len(),
                    });
                }
            }
        }
        let first_node = enc.written + 1;
        let mut ids = Vec::new();
        for b in blocks {
            enc.written += 1;
            let id = BlockId::Data(NodeId(enc.written));
            sink.store(id, b.clone());
            ids.push(id);
            enc.pending.push(b.clone());
            if enc.pending.len() == self.k() {
                let t = self.stripe_of(enc.written);
                let stripe = std::mem::take(&mut enc.pending);
                self.emit_stripe(t, &stripe, sink, &mut ids);
            }
        }
        Ok(EncodeReport { first_node, ids })
    }

    fn seal(&self, sink: &dyn BlockSink) -> Result<Vec<BlockId>, AeError> {
        let mut enc = self.enc.lock();
        if enc.pending.is_empty() {
            return Ok(Vec::new());
        }
        // Complete the final stripe with virtual zero data blocks; only the
        // parity shards are stored.
        let len = enc.pending[0].len();
        let mut stripe = std::mem::take(&mut enc.pending);
        stripe.resize(self.k(), Block::zero(len));
        let t = self.stripe_of(enc.written);
        let mut ids = Vec::new();
        self.emit_stripe(t, &stripe, sink, &mut ids);
        Ok(ids)
    }

    /// Version 1: `[written u64, pending u32]`. The buffered
    /// partial-stripe *data* blocks already live on the backend (data is
    /// stored immediately; only their parity is buffered), so restore
    /// refetches the last `pending` data blocks instead of embedding them.
    fn frontier_snapshot(&self) -> Vec<u8> {
        let enc = self.enc.lock();
        SnapshotWriter::new(1)
            .u64(enc.written)
            .u32(enc.pending.len() as u32)
            .finish()
    }

    fn restore_frontier(&self, snapshot: &[u8], source: &dyn BlockSource) -> Result<(), AeError> {
        let name = self.scheme_name();
        let mut r = SnapshotReader::new(snapshot, 1, &name)?;
        let written = r.u64()?;
        let pending = u64::from(r.u32()?);
        r.finish()?;
        if pending >= self.k() as u64 || pending > written {
            return Err(AeError::CorruptFrontier {
                detail: format!(
                    "{name}: {pending} buffered blocks against {written} written (stripe is {})",
                    self.k()
                ),
            });
        }
        let mut blocks: Vec<Block> = Vec::with_capacity(pending as usize);
        for i in written - pending + 1..=written {
            let id = BlockId::Data(NodeId(i));
            let block = source
                .fetch(id)
                .ok_or(AeError::FrontierBlockMissing { id })?;
            if let Some(first) = blocks.first() {
                if block.len() != first.len() {
                    return Err(AeError::CorruptFrontier {
                        detail: format!(
                            "{name}: buffered stripe mixes {}- and {}-byte blocks",
                            first.len(),
                            block.len()
                        ),
                    });
                }
            }
            blocks.push(block);
        }
        let mut enc = self.enc.lock();
        enc.written = written;
        enc.pending = blocks;
        Ok(())
    }

    fn repair_block(
        &self,
        source: &dyn BlockSource,
        id: BlockId,
        data_blocks: u64,
    ) -> Result<Block, RepairError> {
        let Some(t) = self.stripe_of_id(id) else {
            return Err(RepairError::ForeignBlock { id });
        };
        // A data position past the written extent is a virtual padding
        // block, not a repairable target.
        if self.is_virtual(id, data_blocks) {
            return Err(RepairError::OutOfExtent {
                id,
                written: data_blocks,
            });
        }
        let members = self.stripe_members(t);
        let index = members
            .iter()
            .position(|&v| v == id)
            .expect("member of its own stripe");
        match self.decode_stripe(source, t, data_blocks) {
            Ok(blocks) => Ok(blocks[index].clone()),
            Err(missing) => Err(RepairError::NoCompleteTuple {
                target: id,
                missing: missing.into_iter().filter(|&v| v != id).collect(),
            }),
        }
    }

    fn repair_missing(
        &self,
        repo: &dyn BlockRepo,
        targets: &[BlockId],
        data_blocks: u64,
    ) -> RepairSummary {
        // One decode per damaged stripe restores every missing member at
        // once; nothing a second round could add (MDS codes have no repair
        // chains).
        let mut stripes: BTreeSet<u64> = BTreeSet::new();
        let mut missing: Vec<BlockId> = targets
            .iter()
            .copied()
            .filter(|&id| !repo.has(id))
            .collect();
        for &id in &missing {
            if let Some(t) = self.stripe_of_id(id) {
                stripes.insert(t);
            }
        }
        let mut repaired = 0;
        let mut data_repaired = 0;
        let mut blocks_read = 0;
        for t in stripes {
            let Ok(blocks) = self.decode_stripe(repo, t, data_blocks) else {
                continue; // stripe damaged beyond recovery
            };
            blocks_read += self.k() as u64;
            let members = self.stripe_members(t);
            for (member, block) in members.into_iter().zip(blocks) {
                if missing.contains(&member) {
                    repo.store(member, block);
                    repaired += 1;
                    if member.is_data() {
                        data_repaired += 1;
                    }
                }
            }
        }
        missing.retain(|&id| !repo.has(id));
        let rounds = if repaired > 0 {
            vec![RoundStats {
                repaired,
                data_repaired,
                blocks_read,
            }]
        } else {
            Vec::new()
        };
        RepairSummary {
            rounds,
            unrecovered: missing,
            blocks_read,
        }
    }

    fn repair_traffic(&self, repaired: &[BlockId]) -> u64 {
        // One k-shard decode per touched stripe.
        let stripes: BTreeSet<u64> = repaired
            .iter()
            .filter_map(|&id| self.stripe_of_id(id))
            .collect();
        stripes.len() as u64 * self.k() as u64
    }

    fn block_ids(&self, data_blocks: u64) -> Vec<BlockId> {
        let k = self.k() as u64;
        let stripes = data_blocks.div_ceil(k);
        let mut out = Vec::with_capacity((data_blocks + stripes * self.m() as u64) as usize);
        for t in 0..stripes {
            for id in self.stripe_members(t) {
                if !self.is_virtual(id, data_blocks) {
                    out.push(id);
                }
            }
        }
        out
    }

    fn is_repairable(
        &self,
        id: BlockId,
        data_blocks: u64,
        avail: &dyn Fn(BlockId) -> bool,
    ) -> bool {
        let Some(t) = self.stripe_of_id(id) else {
            return false;
        };
        if self.is_virtual(id, data_blocks) {
            return false; // padding blocks are not stored, never repaired
        }
        let available = self
            .stripe_members(t)
            .into_iter()
            .filter(|&v| v != id)
            .filter(|&v| self.is_virtual(v, data_blocks) || avail(v))
            .count();
        available >= self.k()
    }

    fn is_single_failure(
        &self,
        id: BlockId,
        data_blocks: u64,
        avail: &dyn Fn(BlockId) -> bool,
    ) -> bool {
        // Fig 13's RS definition: the target is the *only* missing member
        // of its stripe.
        let Some(t) = self.stripe_of_id(id) else {
            return false;
        };
        self.stripe_members(t)
            .into_iter()
            .filter(|&v| v != id)
            .all(|v| self.is_virtual(v, data_blocks) || avail(v))
    }

    fn universe_len(&self, data_blocks: u64) -> u64 {
        data_blocks + data_blocks.div_ceil(self.k() as u64) * self.m() as u64
    }

    fn dense_index(&self, id: &BlockId, data_blocks: u64) -> Option<u32> {
        // block_ids order: per stripe, its stored data blocks then its m
        // parity shards. Only the final stripe can be partial, so every
        // stripe before `t` contributes exactly k + m blocks.
        let (k, m) = (self.k() as u64, self.m() as u64);
        let idx = match *id {
            BlockId::Data(NodeId(i)) if (1..=data_blocks).contains(&i) => {
                let t = (i - 1) / k;
                t * (k + m) + (i - 1) % k
            }
            BlockId::Shard(ShardId { stripe, index }) => {
                if u64::from(index) >= m || stripe >= data_blocks.div_ceil(k) {
                    return None;
                }
                let stored_data = (data_blocks - stripe * k).min(k);
                stripe * (k + m) + stored_data + u64::from(index)
            }
            _ => return None,
        };
        u32::try_from(idx).ok()
    }

    fn block_at(&self, q: u32, data_blocks: u64) -> Option<BlockId> {
        // Inverse of dense_index. Every stripe before the last contributes
        // exactly k + m positions; the final stripe may store fewer data
        // blocks (virtual padding is never stored) but always m shards.
        let (k, m) = (self.k() as u64, self.m() as u64);
        let q = u64::from(q);
        let full_stripes = data_blocks / k;
        let regular = full_stripes * (k + m);
        if q < regular {
            let (t, r) = (q / (k + m), q % (k + m));
            return Some(if r < k {
                BlockId::Data(NodeId(t * k + r + 1))
            } else {
                BlockId::Shard(ShardId {
                    stripe: t,
                    index: (r - k) as u16,
                })
            });
        }
        // Inside the partial final stripe (if any): its stored data blocks
        // first, then its m shards.
        let rem_data = data_blocks - full_stripes * k;
        if rem_data == 0 {
            return None; // no partial stripe: q is past the universe
        }
        let r = q - regular;
        if r < rem_data {
            Some(BlockId::Data(NodeId(full_stripes * k + r + 1)))
        } else if r < rem_data + m {
            Some(BlockId::Shard(ShardId {
                stripe: full_stripes,
                index: (r - rem_data) as u16,
            }))
        } else {
            None
        }
    }

    fn supports_dense_index(&self) -> bool {
        true
    }
}

impl Replication {
    /// All ids of data block `i`'s replica group except `id` itself.
    fn other_copies(&self, id: BlockId) -> Option<Vec<BlockId>> {
        let (node, skip) = match id {
            BlockId::Data(n) => (n, 0),
            BlockId::Replica(r) if (1..self.copies() as u16).contains(&r.copy) => (r.node, r.copy),
            _ => return None,
        };
        let mut out = Vec::with_capacity(self.copies() - 1);
        if skip != 0 {
            out.push(BlockId::Data(node));
        }
        for copy in 1..self.copies() as u16 {
            if copy != skip {
                out.push(BlockId::Replica(ReplicaId { node, copy }));
            }
        }
        Some(out)
    }
}

impl RedundancyScheme for Replication {
    fn scheme_name(&self) -> String {
        format!("{}-way replic.", self.copies())
    }

    fn data_written(&self) -> u64 {
        *self.written.lock()
    }

    fn repair_cost(&self) -> RepairCost {
        RepairCost::new(1, self.storage_overhead_pct())
    }

    fn encode_batch(
        &self,
        blocks: &[Block],
        sink: &dyn BlockSink,
    ) -> Result<EncodeReport, AeError> {
        let mut written = self.written.lock();
        let first_node = *written + 1;
        let mut ids = Vec::with_capacity(blocks.len() * self.copies());
        for b in blocks {
            *written += 1;
            let node = NodeId(*written);
            sink.store(BlockId::Data(node), b.clone());
            ids.push(BlockId::Data(node));
            for copy in 1..self.copies() as u16 {
                let id = BlockId::Replica(ReplicaId { node, copy });
                sink.store(id, b.clone());
                ids.push(id);
            }
        }
        Ok(EncodeReport { first_node, ids })
    }

    /// Version 1: `[written u64]` — the write counter is replication's
    /// entire encoder state.
    fn frontier_snapshot(&self) -> Vec<u8> {
        SnapshotWriter::new(1).u64(*self.written.lock()).finish()
    }

    fn restore_frontier(&self, snapshot: &[u8], _source: &dyn BlockSource) -> Result<(), AeError> {
        let name = self.scheme_name();
        let mut r = SnapshotReader::new(snapshot, 1, &name)?;
        let written = r.u64()?;
        r.finish()?;
        *self.written.lock() = written;
        Ok(())
    }

    fn repair_block(
        &self,
        source: &dyn BlockSource,
        id: BlockId,
        _data_blocks: u64,
    ) -> Result<Block, RepairError> {
        let Some(others) = self.other_copies(id) else {
            return Err(RepairError::ForeignBlock { id });
        };
        // Any surviving verified copy will do.
        for &other in &others {
            if let Some(b) = source.fetch(other) {
                if b.verify().is_ok() {
                    return Ok(b);
                }
            }
        }
        Err(RepairError::NoCompleteTuple {
            target: id,
            missing: others,
        })
    }

    fn block_ids(&self, data_blocks: u64) -> Vec<BlockId> {
        let mut out = Vec::with_capacity(data_blocks as usize * self.copies());
        for i in 1..=data_blocks {
            out.push(BlockId::Data(NodeId(i)));
            for copy in 1..self.copies() as u16 {
                out.push(BlockId::Replica(ReplicaId {
                    node: NodeId(i),
                    copy,
                }));
            }
        }
        out
    }

    fn is_repairable(
        &self,
        id: BlockId,
        _data_blocks: u64,
        avail: &dyn Fn(BlockId) -> bool,
    ) -> bool {
        self.other_copies(id)
            .is_some_and(|others| others.into_iter().any(avail))
    }

    fn universe_len(&self, data_blocks: u64) -> u64 {
        data_blocks * self.copies() as u64
    }

    fn dense_index(&self, id: &BlockId, data_blocks: u64) -> Option<u32> {
        // block_ids order: per data block, the original then its copies in
        // copy order — a fixed stride of n per node.
        let n = self.copies() as u64;
        let idx = match *id {
            BlockId::Data(NodeId(i)) if (1..=data_blocks).contains(&i) => (i - 1) * n,
            BlockId::Replica(ReplicaId {
                node: NodeId(i),
                copy,
            }) if (1..=data_blocks).contains(&i) && (1..self.copies() as u16).contains(&copy) => {
                (i - 1) * n + u64::from(copy)
            }
            _ => return None,
        };
        u32::try_from(idx).ok()
    }

    fn block_at(&self, q: u32, data_blocks: u64) -> Option<BlockId> {
        // Inverse of dense_index: a fixed stride of n per data block.
        let n = self.copies() as u64;
        let (i, copy) = (u64::from(q) / n + 1, u64::from(q) % n);
        if i > data_blocks {
            return None;
        }
        Some(if copy == 0 {
            BlockId::Data(NodeId(i))
        } else {
            BlockId::Replica(ReplicaId {
                node: NodeId(i),
                copy: copy as u16,
            })
        })
    }

    fn supports_dense_index(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_api::BlockMap;

    fn payload(n: usize, len: usize) -> Vec<Block> {
        (0..n)
            .map(|i| Block::from_vec((0..len).map(|b| ((i * 37 + b * 11) % 251) as u8).collect()))
            .collect()
    }

    #[test]
    fn rs_rejects_size_change_against_buffered_stripe() {
        // The buffered partial stripe fixes the block size: a later batch
        // with a different size must fail without writing anything.
        let rs = ReedSolomon::new(4, 2).unwrap();
        let store = BlockMap::new();
        rs.encode_batch(&payload(2, 32), &store).unwrap();
        let before = store.len();
        let err = rs.encode_batch(&payload(2, 16), &store).unwrap_err();
        assert!(matches!(
            err,
            ae_api::AeError::SizeMismatch {
                expected: 32,
                actual: 16
            }
        ));
        assert_eq!(store.len(), before, "failed batch must not write");
        assert_eq!(rs.data_written(), 2);
    }

    #[test]
    fn rs_out_of_extent_targets_error_not_fabricate() {
        // Virtual padding positions of the sealed final stripe are not
        // repairable targets: no Ok(zero block), no oracle "true".
        let rs = ReedSolomon::new(4, 2).unwrap();
        let store = BlockMap::new();
        rs.encode_batch(&payload(10, 16), &store).unwrap();
        rs.seal(&store).unwrap();
        let ghost = BlockId::Data(NodeId(11));
        assert!(matches!(
            rs.repair_block(&store, ghost, 10),
            Err(RepairError::OutOfExtent { written: 10, .. })
        ));
        assert!(!rs.is_repairable(ghost, 10, &|_| true));
    }

    #[test]
    fn rs_scheme_roundtrip_with_seal() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let store = BlockMap::new();
        let blocks = payload(10, 32); // 2 full stripes + 2 pending
        let report = rs.encode_batch(&blocks, &store).unwrap();
        assert_eq!(report.data_written(), 10);
        assert_eq!(report.redundancy_written(), 4, "2 stripes x 2 shards");
        let sealed = rs.seal(&store).unwrap();
        assert_eq!(sealed.len(), 2, "final padded stripe's shards");
        assert_eq!(rs.data_written(), 10);
        assert_eq!(rs.scheme_name(), "RS(4,2)");

        // Lose two members of the padded stripe (its max erasures).
        let victims = [BlockId::Data(NodeId(9)), BlockId::Data(NodeId(10))];
        let originals: Vec<Block> = victims.iter().map(|v| store.remove(v).unwrap()).collect();
        let summary = rs.repair_missing(&store, &victims, 10);
        assert!(summary.fully_recovered());
        assert_eq!(summary.blocks_read, 4, "one k-shard decode");
        for (v, o) in victims.iter().zip(&originals) {
            assert_eq!(store.get(v).as_ref(), Some(o));
        }
    }

    #[test]
    fn rs_repair_block_and_errors() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let store = BlockMap::new();
        rs.encode_batch(&payload(6, 16), &store).unwrap();

        let victim = BlockId::Shard(ShardId {
            stripe: 0,
            index: 1,
        });
        let original = store.remove(&victim).unwrap();
        assert_eq!(rs.repair_block(&store, victim, 6).unwrap(), original);

        // Erase beyond m: the error names the unavailable members.
        store.remove(&BlockId::Data(NodeId(1)));
        store.remove(&BlockId::Data(NodeId(2)));
        let err = rs.repair_block(&store, victim, 6).unwrap_err();
        match err {
            RepairError::NoCompleteTuple { target, missing } => {
                assert_eq!(target, victim);
                assert!(missing.contains(&BlockId::Data(NodeId(1))));
                assert!(missing.contains(&BlockId::Data(NodeId(2))));
                assert!(!missing.contains(&victim));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            rs.repair_block(
                &store,
                BlockId::Parity(ae_blocks::EdgeId::new(
                    ae_blocks::StrandClass::Horizontal,
                    NodeId(1)
                )),
                6
            ),
            Err(RepairError::ForeignBlock { .. })
        ));
    }

    #[test]
    fn rs_structure_and_costs() {
        let rs = ReedSolomon::new(10, 4).unwrap();
        assert_eq!(rs.repair_cost().single_failure_reads, 10);
        assert!((rs.repair_cost().additional_storage_pct - 40.0).abs() < 1e-9);
        let ids = rs.block_ids(100);
        assert_eq!(ids.len(), 100 + 10 * 4);

        // A stripe missing exactly m members: repairable; m+1: not.
        let t0 = rs.stripe_members(0);
        let down: Vec<BlockId> = t0[..4].to_vec();
        let avail = |id: BlockId| !down.contains(&id);
        assert!(rs.is_repairable(t0[0], 100, &avail));
        assert!(!rs.is_single_failure(t0[0], 100, &avail));
        let down5: Vec<BlockId> = t0[..5].to_vec();
        let avail5 = |id: BlockId| !down5.contains(&id);
        assert!(!rs.is_repairable(t0[0], 100, &avail5));

        // Only missing member of its stripe: a single failure.
        let only = |id: BlockId| id != t0[0];
        assert!(rs.is_single_failure(t0[0], 100, &only));
    }

    #[test]
    fn dense_index_matches_block_ids_enumeration() {
        // Partial final stripes included: 23 data blocks over RS(4,2) and
        // RS(10,4) leave 3 data blocks in the last stripe.
        let schemes: Vec<Box<dyn RedundancyScheme>> = vec![
            Box::new(ReedSolomon::new(4, 2).unwrap()),
            Box::new(ReedSolomon::new(10, 4).unwrap()),
            Box::new(Replication::new(2)),
            Box::new(Replication::new(3)),
        ];
        for scheme in schemes {
            let name = scheme.scheme_name();
            assert!(scheme.supports_dense_index(), "{name}");
            for n in [1u64, 4, 23] {
                let ids = scheme.block_ids(n);
                assert_eq!(scheme.universe_len(n), ids.len() as u64, "{name} n={n}");
                for (k, id) in ids.iter().enumerate() {
                    assert_eq!(
                        scheme.dense_index(id, n),
                        Some(k as u32),
                        "{name} n={n}: {id}"
                    );
                    assert_eq!(scheme.block_at(k as u32, n), Some(*id), "{name} n={n}: {k}");
                }
                assert_eq!(scheme.block_at(ids.len() as u32, n), None, "{name} n={n}");
                // Outside the universe.
                assert_eq!(scheme.dense_index(&BlockId::Data(NodeId(0)), n), None);
                assert_eq!(scheme.dense_index(&BlockId::Data(NodeId(n + 1)), n), None);
                let foreign = BlockId::Parity(ae_blocks::EdgeId::new(
                    ae_blocks::StrandClass::Horizontal,
                    NodeId(1),
                ));
                assert_eq!(scheme.dense_index(&foreign, n), None, "{name}");
            }
        }
        // Shard ids past the stripe count or parity width are rejected.
        let rs = ReedSolomon::new(4, 2).unwrap();
        let ghost_stripe = BlockId::Shard(ShardId {
            stripe: 6,
            index: 0,
        });
        let ghost_index = BlockId::Shard(ShardId {
            stripe: 0,
            index: 2,
        });
        assert_eq!(rs.dense_index(&ghost_stripe, 23), None);
        assert_eq!(rs.dense_index(&ghost_index, 23), None);
        // Replication rejects copy 0 (that's the data block itself) and
        // copies at or past n.
        let repl = Replication::new(3);
        for copy in [0u16, 3, 9] {
            let ghost = BlockId::Replica(ReplicaId {
                node: NodeId(1),
                copy,
            });
            assert_eq!(repl.dense_index(&ghost, 23), None, "copy {copy}");
        }
    }

    #[test]
    fn rs_frontier_restores_partial_stripe_from_backend() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let store = BlockMap::new();
        rs.encode_batch(&payload(10, 32), &store).unwrap(); // 2 buffered
        let snap = rs.frontier_snapshot();

        let resumed = ReedSolomon::new(4, 2).unwrap();
        resumed.restore_frontier(&snap, &store).unwrap();
        assert_eq!(resumed.data_written(), 10);
        // Both instances must emit identical blocks (and the identical
        // final-stripe parity) from here on.
        let (a, b) = (BlockMap::new(), BlockMap::new());
        let more = payload(3, 32);
        rs.encode_batch(&more, &a).unwrap();
        resumed.encode_batch(&more, &b).unwrap();
        rs.seal(&a).unwrap();
        resumed.seal(&b).unwrap();
        assert_eq!(a, b, "post-restore stripes are bit-identical");

        // Losing a buffered data block makes the restore name it.
        store.remove(&BlockId::Data(NodeId(10)));
        let broken = ReedSolomon::new(4, 2).unwrap();
        assert!(matches!(
            broken.restore_frontier(&snap, &store),
            Err(ae_api::AeError::FrontierBlockMissing { id }) if id == BlockId::Data(NodeId(10))
        ));
        // Inconsistent counters are typed.
        let bogus = ae_api::SnapshotWriter::new(1).u64(2).u32(3).finish();
        assert!(matches!(
            broken.restore_frontier(&bogus, &store),
            Err(ae_api::AeError::CorruptFrontier { .. })
        ));
    }

    #[test]
    fn replication_frontier_is_the_write_counter() {
        let r = Replication::new(3);
        let store = BlockMap::new();
        r.encode_batch(&payload(5, 8), &store).unwrap();
        let resumed = Replication::new(3);
        resumed
            .restore_frontier(&r.frontier_snapshot(), &store)
            .unwrap();
        assert_eq!(resumed.data_written(), 5);
        let (a, b) = (BlockMap::new(), BlockMap::new());
        let more = payload(2, 8);
        r.encode_batch(&more, &a).unwrap();
        resumed.encode_batch(&more, &b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn replication_scheme_roundtrip() {
        let r = Replication::new(3);
        let store = BlockMap::new();
        let blocks = payload(5, 8);
        let report = r.encode_batch(&blocks, &store).unwrap();
        assert_eq!(report.ids.len(), 15);
        assert_eq!(r.scheme_name(), "3-way replic.");
        assert_eq!(r.repair_cost().single_failure_reads, 1);

        // Lose the original and one copy; the third still repairs both.
        let d = BlockId::Data(NodeId(3));
        let c1 = BlockId::Replica(ReplicaId {
            node: NodeId(3),
            copy: 1,
        });
        let original = store.remove(&d).unwrap();
        store.remove(&c1);
        let summary = r.repair_missing(&store, &[d, c1], 5);
        assert!(summary.fully_recovered());
        assert_eq!(store.get(&d).unwrap(), original);

        // All copies gone: unrecoverable, error lists the copies tried.
        let d5 = BlockId::Data(NodeId(5));
        store.remove(&d5);
        for copy in 1..3u16 {
            store.remove(&BlockId::Replica(ReplicaId {
                node: NodeId(5),
                copy,
            }));
        }
        let err = r.repair_block(&store, d5, 5).unwrap_err();
        assert_eq!(err.missing_blocks().len(), 2);
    }

    #[test]
    fn replication_structure() {
        let r = Replication::new(2);
        let ids = r.block_ids(4);
        assert_eq!(ids.len(), 8);
        let d1 = BlockId::Data(NodeId(1));
        let r1 = BlockId::Replica(ReplicaId {
            node: NodeId(1),
            copy: 1,
        });
        assert!(r.is_repairable(d1, 4, &|id| id == r1));
        assert!(!r.is_repairable(d1, 4, &|_| false));
        assert!(r.is_repairable(r1, 4, &|id| id == d1));
        // Foreign ids are not repairable and error out.
        assert!(!r.is_repairable(
            BlockId::Shard(ShardId {
                stripe: 0,
                index: 0
            }),
            4,
            &|_| true
        ));
    }
}
