//! Time for the vendored runtime: the [`Clock`] (real or virtual) and the
//! hierarchical timer wheel behind [`crate::Runtime`]'s sleeps.
//!
//! All timestamps are `u64` nanoseconds since the clock's creation, so
//! the latency model and the executor share one monotonic axis whichever
//! clock is in use:
//!
//! * a **real** clock reads [`std::time::Instant`] — benchmarks measure
//!   genuine wall-clock collapse from pipelining;
//! * a **virtual** clock is an atomic counter the executor advances to
//!   the next timer deadline whenever nothing is runnable — tests run
//!   simulated seconds in microseconds, **deterministically**: with
//!   seeded jitter and single-threaded driving, every run of a test sees
//!   the identical sequence of timestamps.
//!
//! The wheel files each timer into one of [`SLOTS`] per-millisecond
//! buckets within its horizon and into an overflow map beyond it;
//! advancing the cursor drains whole buckets and migrates overflow
//! entries as they come into range. Firing is **exact-deadline**: the
//! bucket owning the current millisecond is partially drained up to `now`
//! (not rounded to the tick), so a virtual clock advanced to a deadline
//! always fires it — no quantization, no spin.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Waker};
use std::time::Instant;

/// Wheel bucket count: with [`GRANULARITY`]-nanosecond ticks this covers
/// a 256 ms horizon before timers spill into the overflow map.
const SLOTS: usize = 256;

/// Nanoseconds per wheel tick (1 ms).
const GRANULARITY: u64 = 1_000_000;

/// A monotonic nanosecond clock, real or virtual.
#[derive(Debug)]
pub struct Clock {
    /// `Some` = virtual: the counter **is** the time. `None` = real.
    virtual_now: Option<AtomicU64>,
    epoch: Instant,
}

impl Clock {
    /// A real clock: `now` is wall time elapsed since creation.
    pub fn real() -> Self {
        Clock {
            virtual_now: None,
            epoch: Instant::now(),
        }
    }

    /// A virtual clock starting at zero: time advances only when the
    /// executor moves it to the next timer deadline. Deterministic — the
    /// footing of the subsystem's parity tests.
    pub fn virtual_time() -> Self {
        Clock {
            virtual_now: Some(AtomicU64::new(0)),
            epoch: Instant::now(),
        }
    }

    /// Whether this is a virtual clock.
    pub fn is_virtual(&self) -> bool {
        self.virtual_now.is_some()
    }

    /// Nanoseconds since the clock was created.
    pub fn now(&self) -> u64 {
        match &self.virtual_now {
            Some(v) => v.load(Ordering::Acquire),
            None => self.epoch.elapsed().as_nanos() as u64,
        }
    }

    /// Advances a virtual clock to `t` (never backwards); no-op on a real
    /// clock.
    pub(crate) fn advance_to(&self, t: u64) {
        if let Some(v) = &self.virtual_now {
            v.fetch_max(t, Ordering::AcqRel);
        }
    }
}

/// One registered timer: a deadline plus the waker of whoever sleeps on
/// it. Shared between the [`Sleep`] future and the wheel.
#[derive(Debug)]
struct TimerSlot {
    deadline: u64,
    waker: Mutex<Option<Waker>>,
}

impl TimerSlot {
    fn fire(&self) {
        if let Some(w) = self.waker.lock().take() {
            w.wake();
        }
    }
}

/// The wheel state behind one mutex.
#[derive(Debug, Default)]
struct Wheel {
    /// Near timers, bucketed by `tick % SLOTS`. Invariant: every entry in
    /// bucket `b` has `tick == cursor'` for the unique not-yet-drained
    /// tick `cursor' ≡ b (mod SLOTS)` within the horizon.
    buckets: Vec<Vec<Arc<TimerSlot>>>,
    /// First tick whose bucket has not been fully drained.
    cursor: u64,
    /// Timers beyond the horizon, keyed by tick.
    overflow: BTreeMap<u64, Vec<Arc<TimerSlot>>>,
}

/// The timer wheel: registration plus exact-deadline firing.
#[derive(Debug)]
pub(crate) struct Timers {
    wheel: Mutex<Wheel>,
}

impl Timers {
    pub(crate) fn new() -> Self {
        Timers {
            wheel: Mutex::new(Wheel {
                buckets: (0..SLOTS).map(|_| Vec::new()).collect(),
                cursor: 0,
                overflow: BTreeMap::new(),
            }),
        }
    }

    /// Files `slot`; if its deadline already passed (relative to the
    /// cursor's fully-drained region) the caller must re-check the clock,
    /// which the [`Sleep`] future does on every poll.
    fn register(&self, slot: Arc<TimerSlot>) {
        let mut wheel = self.wheel.lock();
        let tick = slot.deadline / GRANULARITY;
        let tick = tick.max(wheel.cursor);
        if tick < wheel.cursor + SLOTS as u64 {
            let b = (tick % SLOTS as u64) as usize;
            wheel.buckets[b].push(slot);
        } else {
            wheel.overflow.entry(tick).or_default().push(slot);
        }
    }

    /// Fires every timer with `deadline <= now`. Whole ticks before
    /// `now`'s tick are drained outright; the current tick's bucket is
    /// partially drained by exact deadline.
    pub(crate) fn fire_due(&self, now: u64) {
        let mut due: Vec<Arc<TimerSlot>> = Vec::new();
        {
            let mut wheel = self.wheel.lock();
            let target = now / GRANULARITY;
            while wheel.cursor < target {
                let b = (wheel.cursor % SLOTS as u64) as usize;
                due.append(&mut wheel.buckets[b]);
                wheel.cursor += 1;
                // Pull overflow timers that just came into the horizon.
                let horizon = wheel.cursor + SLOTS as u64;
                while let Some(entry) = wheel.overflow.first_entry() {
                    if *entry.key() >= horizon {
                        break;
                    }
                    let (tick, slots) = entry.remove_entry();
                    let b = (tick % SLOTS as u64) as usize;
                    wheel.buckets[b].extend(slots);
                }
            }
            // Partial drain of the current tick: exact deadlines only.
            let b = (target % SLOTS as u64) as usize;
            let bucket = &mut wheel.buckets[b];
            let mut k = 0;
            while k < bucket.len() {
                if bucket[k].deadline <= now {
                    due.push(bucket.swap_remove(k));
                } else {
                    k += 1;
                }
            }
        }
        for slot in due {
            slot.fire();
        }
    }

    /// The earliest registered deadline, if any — what the executor
    /// advances a virtual clock to (or parks a real one until).
    pub(crate) fn next_deadline(&self) -> Option<u64> {
        let wheel = self.wheel.lock();
        wheel
            .buckets
            .iter()
            .flatten()
            .map(|s| s.deadline)
            .chain(wheel.overflow.values().flatten().map(|s| s.deadline))
            .min()
    }
}

/// A future that resolves once the runtime's clock reaches its deadline —
/// the primitive under the latency model's RTT waits, timeouts and
/// backoffs. Created by [`crate::Runtime::sleep_until`] /
/// [`crate::Runtime::sleep`].
#[derive(Debug)]
pub struct Sleep {
    deadline: u64,
    clock: Arc<Clock>,
    timers: Arc<Timers>,
    slot: Option<Arc<TimerSlot>>,
}

impl Sleep {
    pub(crate) fn new(deadline: u64, clock: Arc<Clock>, timers: Arc<Timers>) -> Self {
        Sleep {
            deadline,
            clock,
            timers,
            slot: None,
        }
    }

    /// The absolute deadline (nanoseconds on the runtime's clock).
    pub fn deadline(&self) -> u64 {
        self.deadline
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.clock.now() >= self.deadline {
            return Poll::Ready(());
        }
        match &self.slot {
            Some(slot) => {
                // Refresh the waker (the future may have moved tasks).
                *slot.waker.lock() = Some(cx.waker().clone());
            }
            None => {
                let slot = Arc::new(TimerSlot {
                    deadline: self.deadline,
                    waker: Mutex::new(Some(cx.waker().clone())),
                });
                self.timers.register(Arc::clone(&slot));
                self.slot = Some(slot);
            }
        }
        // Re-check: the clock may have crossed the deadline while we
        // registered (real clock, racing driver thread).
        if self.clock.now() >= self.deadline {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_starts_at_zero_and_advances_monotonically() {
        let c = Clock::virtual_time();
        assert!(c.is_virtual());
        assert_eq!(c.now(), 0);
        c.advance_to(5_000);
        assert_eq!(c.now(), 5_000);
        c.advance_to(1_000); // never backwards
        assert_eq!(c.now(), 5_000);
    }

    #[test]
    fn real_clock_moves_forward() {
        let c = Clock::real();
        assert!(!c.is_virtual());
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn wheel_fires_exact_deadlines_including_overflow() {
        let timers = Timers::new();
        let fired = Arc::new(AtomicU64::new(0));
        // Deadlines inside the horizon, on a tick boundary, and far past
        // the horizon (overflow path).
        let deadlines = [1_500u64, 2 * GRANULARITY, 300 * GRANULARITY + 7];
        for &d in &deadlines {
            let slot = Arc::new(TimerSlot {
                deadline: d,
                waker: Mutex::new(Some(counting_waker(&fired))),
            });
            timers.register(slot);
        }
        assert_eq!(timers.next_deadline(), Some(1_500));
        timers.fire_due(1_499);
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        timers.fire_due(1_500); // exact, same tick: partial drain
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        timers.fire_due(2 * GRANULARITY);
        assert_eq!(fired.load(Ordering::SeqCst), 2);
        assert_eq!(timers.next_deadline(), Some(300 * GRANULARITY + 7));
        timers.fire_due(400 * GRANULARITY);
        assert_eq!(fired.load(Ordering::SeqCst), 3);
        assert_eq!(timers.next_deadline(), None);
    }

    fn counting_waker(count: &Arc<AtomicU64>) -> Waker {
        struct Counting(Arc<AtomicU64>);
        impl std::task::Wake for Counting {
            fn wake(self: Arc<Self>) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        Waker::from(Arc::new(Counting(Arc::clone(count))))
    }
}
