//! The latency model: [`LatencyStore`] wraps any sync backend and makes
//! it behave like a remote — every operation becomes a future that takes
//! (virtual or real) time governed by a per-tier [`LinkSpec`], with typed
//! timeout/retry/backoff semantics for dead remotes — plus [`BlockOn`],
//! the sync adapter that lets the wrapped backend slot anywhere a
//! [`BlockRepo`] goes while advertising its async interior through
//! [`BlockSource::as_async`].
//!
//! # Determinism contract
//!
//! Every operation's timing **plan** — queueing on the link, transfer
//! time under the bandwidth cap, RTT, and one jitter draw per retry
//! attempt from the seeded [SplitMix64] generator — is computed eagerly
//! at *future creation*, under one lock. Two runs that create futures in
//! the same order therefore draw identical jitter and reserve identical
//! link slots, regardless of how the futures are later polled; combined
//! with a virtual clock and single-threaded driving, whole simulated
//! repair storms replay byte- and nanosecond-identically. Only the
//! link's dead flag is read lazily, at each attempt's start, so a remote
//! that comes back mid-backoff heals the operation.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use crate::exec::Runtime;
use ae_api::{
    AsyncBlockRepo, AsyncBlockSink, AsyncBlockSource, AsyncHandle, BlockRepo, BlockSink,
    BlockSource, BoxFuture, StoreError,
};
use ae_blocks::{Block, BlockId};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The link parameters of one tier: round-trip time, uniform jitter added
/// on top of it, and an optional bandwidth cap that serializes transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkSpec {
    /// Round-trip time every operation pays.
    pub rtt: Duration,
    /// Jitter bound: each attempt adds a seeded uniform draw from
    /// `[0, jitter]` to its completion time.
    pub jitter: Duration,
    /// Bandwidth cap in bytes per second; `None` = infinite. Payload
    /// transfers queue behind each other on the link when set.
    pub bytes_per_sec: Option<u64>,
}

impl LinkSpec {
    /// A jitter-free, uncapped link with the given round-trip time.
    pub fn rtt(rtt: Duration) -> Self {
        LinkSpec {
            rtt,
            ..LinkSpec::default()
        }
    }
}

/// Which link of a [`LatencyStore`] an operation or a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The data tier (`BlockId::is_data`); the only tier under
    /// [`Tiering::Uniform`].
    Local,
    /// The redundancy/meta tier of a [`Tiering::DataLocal`] store. On a
    /// uniform store this aliases [`Tier::Local`].
    Remote,
}

/// How a [`LatencyStore`] routes block ids onto links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tiering {
    /// One link for everything.
    Uniform(LinkSpec),
    /// Data blocks ride the `local` link, everything else (parities,
    /// shards, replicas, metadata) the `remote` one — mirroring
    /// `ae_store::TieredStore`'s hot/cold split.
    DataLocal {
        /// The link data blocks use.
        local: LinkSpec,
        /// The link everything else uses.
        remote: LinkSpec,
    },
}

/// Timeout/retry/backoff policy: each attempt has `timeout` to complete;
/// failed attempts back off exponentially (`backoff * multiplier^k`)
/// before retrying, and exhausting `attempts` yields the typed failure
/// for the operation — [`StoreError::TimedOut`] for reads, `None`/`false`
/// for fetch/has/remove, a swallowed write for store. Never a hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub attempts: u32,
    /// Per-attempt completion deadline.
    pub timeout: Duration,
    /// Base backoff inserted after a failed attempt.
    pub backoff: Duration,
    /// Exponential backoff factor (attempt `k` waits
    /// `backoff * multiplier^k`).
    pub multiplier: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            timeout: Duration::from_secs(1),
            backoff: Duration::from_millis(10),
            multiplier: 2,
        }
    }
}

/// SplitMix64 — the de-facto standard seeding generator; tiny, full
/// period, and exactly reproducible from its seed.
#[derive(Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One link's mutable state: its spec (adjustable mid-run, so benchmarks
/// can build an archive at zero RTT and then raise it before measuring)
/// and its dead flag.
#[derive(Debug)]
struct LinkState {
    spec: Mutex<LinkSpec>,
    dead: AtomicBool,
}

/// The seeded state shared by every operation plan: the jitter generator
/// and each link's earliest-free time under its bandwidth cap.
#[derive(Debug)]
struct NetState {
    prng: SplitMix64,
    free: Vec<u64>,
}

/// One operation's fully-precomputed timing plan.
struct Plan {
    /// Clock reading at future creation — attempt 0 starts here.
    issue: u64,
    /// Earliest possible completion: queue slot + transfer + RTT.
    base: u64,
    /// One seeded jitter draw per attempt, fixed at creation.
    jitters: Vec<u64>,
    timeout: u64,
    backoff: u64,
    multiplier: u64,
}

/// A latency-injecting wrapper: any sync [`BlockRepo`] behind simulated
/// per-tier network links, exposed through the async mirror traits. See
/// the [crate docs](crate) for the determinism contract, and
/// [`RetryPolicy`] for the failure semantics. Composes with
/// `ae_store::FaultyStore` (wrap the faulty store to model a flaky
/// *and* distant backend).
pub struct LatencyStore<S: ?Sized> {
    rt: Runtime,
    retry: RetryPolicy,
    /// Whether ids route by kind (two links) or uniformly (one link).
    data_local: bool,
    links: Vec<LinkState>,
    state: Mutex<NetState>,
    inner: Arc<S>,
}

impl<S: BlockRepo + Send + ?Sized> LatencyStore<S> {
    /// Wraps `inner` behind `tiering`'s links, drawing jitter from
    /// `seed`. Operations run on `rt`'s clock.
    pub fn new(inner: Arc<S>, rt: Runtime, tiering: Tiering, seed: u64) -> Self {
        let specs = match tiering {
            Tiering::Uniform(spec) => vec![spec],
            Tiering::DataLocal { local, remote } => vec![local, remote],
        };
        let links: Vec<LinkState> = specs
            .into_iter()
            .map(|spec| LinkState {
                spec: Mutex::new(spec),
                dead: AtomicBool::new(false),
            })
            .collect();
        let free = vec![0; links.len()];
        LatencyStore {
            rt,
            retry: RetryPolicy::default(),
            data_local: links.len() == 2,
            links,
            state: Mutex::new(NetState {
                prng: SplitMix64(seed),
                free,
            }),
            inner,
        }
    }

    /// Wraps `inner` behind one uniform link.
    pub fn uniform(inner: Arc<S>, rt: Runtime, spec: LinkSpec, seed: u64) -> Self {
        LatencyStore::new(inner, rt, Tiering::Uniform(spec), seed)
    }

    /// Replaces the retry policy (builder-style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = RetryPolicy {
            attempts: retry.attempts.max(1),
            ..retry
        };
        self
    }

    /// The wrapped backend — damage or inspect it directly in tests.
    pub fn inner(&self) -> &Arc<S> {
        &self.inner
    }

    /// The runtime whose clock this store's operations run on.
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// Replaces a tier's link parameters mid-run. Benchmarks build
    /// archives at zero RTT, then raise it before measuring.
    pub fn set_link(&self, tier: Tier, spec: LinkSpec) {
        *self.links[self.link_index(tier)].spec.lock() = spec;
    }

    /// Marks a tier dead (operations fail per [`RetryPolicy`]) or alive.
    /// Checked lazily at each attempt's start, so reviving a link
    /// mid-backoff lets in-flight operations heal.
    pub fn set_dead(&self, tier: Tier, dead: bool) {
        self.links[self.link_index(tier)]
            .dead
            .store(dead, Ordering::Release);
    }

    /// Whether the tier is currently marked dead.
    pub fn is_dead(&self, tier: Tier) -> bool {
        self.links[self.link_index(tier)]
            .dead
            .load(Ordering::Acquire)
    }

    /// Wraps this store in a [`BlockOn`] adapter on its own runtime,
    /// yielding a drop-in sync [`BlockRepo`] that advertises the async
    /// interior via [`BlockSource::as_async`].
    pub fn into_sync(self) -> BlockOn<Self>
    where
        S: Sized,
    {
        let rt = self.rt.clone();
        BlockOn::new(self, rt)
    }

    fn link_index(&self, tier: Tier) -> usize {
        match tier {
            Tier::Local => 0,
            Tier::Remote => usize::from(self.data_local),
        }
    }

    fn route(&self, id: BlockId) -> usize {
        if self.data_local && !id.is_data() {
            1
        } else {
            0
        }
    }

    /// Computes an operation's timing plan eagerly, under the shared
    /// state lock: reserve a queue slot on the link, pay the transfer
    /// under the bandwidth cap, and draw every attempt's jitter now so
    /// issue order alone fixes the random stream.
    fn plan(&self, id: BlockId, bytes: u64) -> (Plan, &LinkState) {
        let link = &self.links[self.route(id)];
        let spec = *link.spec.lock();
        let rtt = spec.rtt.as_nanos() as u64;
        let jitter = spec.jitter.as_nanos() as u64;
        let mut st = self.state.lock();
        let now = self.rt.now();
        let li = self.route(id);
        let slot = now.max(st.free[li]);
        let transfer = match spec.bytes_per_sec {
            Some(bps) if bps > 0 => bytes.saturating_mul(1_000_000_000) / bps,
            _ => 0,
        };
        st.free[li] = slot + transfer;
        let jitters = (0..self.retry.attempts.max(1))
            .map(|_| {
                let draw = st.prng.next();
                if jitter == 0 {
                    0
                } else {
                    draw % (jitter + 1)
                }
            })
            .collect();
        let plan = Plan {
            issue: now,
            base: slot + transfer + rtt,
            jitters,
            timeout: self.retry.timeout.as_nanos() as u64,
            backoff: self.retry.backoff.as_nanos() as u64,
            multiplier: u64::from(self.retry.multiplier),
        };
        (plan, link)
    }
}

impl<S: ?Sized> std::fmt::Debug for LatencyStore<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyStore")
            .field("retry", &self.retry)
            .field("links", &self.links)
            .finish_non_exhaustive()
    }
}

/// Plays out a precomputed [`Plan`] against the link's (lazily-read) dead
/// flag: resolves `true` at the successful attempt's completion time, or
/// `false` once every attempt has timed out.
async fn transmit(rt: Runtime, dead: &AtomicBool, plan: Plan) -> bool {
    let mut start = plan.issue;
    for (k, &jitter) in plan.jitters.iter().enumerate() {
        rt.sleep_until(start).await;
        let alive = !dead.load(Ordering::Acquire);
        let deadline = start.saturating_add(plan.timeout);
        let complete = plan.base.max(start).saturating_add(jitter);
        if alive && complete <= deadline {
            rt.sleep_until(complete).await;
            return true;
        }
        rt.sleep_until(deadline).await;
        start = deadline.saturating_add(
            plan.backoff
                .saturating_mul(plan.multiplier.saturating_pow(k as u32)),
        );
    }
    false
}

impl<S: BlockRepo + Send + ?Sized> AsyncBlockSource for LatencyStore<S> {
    fn fetch_async(&self, id: BlockId) -> BoxFuture<'_, Option<Block>> {
        // Read-side ops sample the inner backend eagerly (at creation):
        // the plan needs the payload size for the bandwidth cap, and
        // creation order is what the determinism contract pins down.
        let result = self.inner.fetch(id);
        let bytes = result.as_ref().map_or(0, |b| b.len() as u64);
        let (plan, link) = self.plan(id, bytes);
        let rt = self.rt.clone();
        Box::pin(async move {
            if transmit(rt, &link.dead, plan).await {
                result
            } else {
                None
            }
        })
    }

    fn has_async(&self, id: BlockId) -> BoxFuture<'_, bool> {
        let result = self.inner.has(id);
        let (plan, link) = self.plan(id, 0);
        let rt = self.rt.clone();
        Box::pin(async move { transmit(rt, &link.dead, plan).await && result })
    }

    fn read_async(&self, id: BlockId) -> BoxFuture<'_, Result<Block, StoreError>> {
        let result = self.inner.read(id);
        let bytes = result.as_ref().map_or(0, |b| b.len() as u64);
        let (plan, link) = self.plan(id, bytes);
        let rt = self.rt.clone();
        Box::pin(async move {
            if transmit(rt, &link.dead, plan).await {
                result
            } else {
                Err(StoreError::TimedOut(id))
            }
        })
    }
}

impl<S: BlockRepo + Send + ?Sized> AsyncBlockSink for LatencyStore<S> {
    fn store_async(&self, id: BlockId, block: Block) -> BoxFuture<'_, ()> {
        // Write-side ops apply to the inner backend only at completion —
        // a write to a dead remote is swallowed, not teleported past the
        // network.
        let (plan, link) = self.plan(id, block.len() as u64);
        let rt = self.rt.clone();
        Box::pin(async move {
            if transmit(rt, &link.dead, plan).await {
                self.inner.store(id, block);
            }
        })
    }

    fn remove_async(&self, id: BlockId) -> BoxFuture<'_, bool> {
        let (plan, link) = self.plan(id, 0);
        let rt = self.rt.clone();
        Box::pin(async move { transmit(rt, &link.dead, plan).await && self.inner.remove(id) })
    }
}

/// The sync adapter over a natively-async backend: implements the sync
/// [`BlockSource`]/[`BlockSink`] family by driving each operation's
/// future on its runtime, and answers [`BlockSource::as_async`] with the
/// async interior so pipelined callers (the archive's degraded `get` and
/// `scrub`) bypass the one-op-at-a-time sync surface entirely.
#[derive(Debug)]
pub struct BlockOn<A> {
    inner: A,
    rt: Runtime,
}

impl<A: AsyncBlockRepo> BlockOn<A> {
    /// Adapts `inner`, driving its futures on `rt`.
    pub fn new(inner: A, rt: Runtime) -> Self {
        BlockOn { inner, rt }
    }

    /// The wrapped async backend.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// The runtime driving the backend's futures.
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }
}

impl<A: AsyncBlockRepo> BlockSource for BlockOn<A> {
    fn fetch(&self, id: BlockId) -> Option<Block> {
        self.rt.block_on(self.inner.fetch_async(id))
    }

    fn has(&self, id: BlockId) -> bool {
        self.rt.block_on(self.inner.has_async(id))
    }

    fn read(&self, id: BlockId) -> Result<Block, StoreError> {
        self.rt.block_on(self.inner.read_async(id))
    }

    fn as_async(&self) -> Option<AsyncHandle<'_>> {
        Some(AsyncHandle {
            repo: &self.inner,
            driver: &self.rt,
        })
    }
}

impl<A: AsyncBlockRepo> BlockSink for BlockOn<A> {
    fn store(&self, id: BlockId, block: Block) {
        self.rt.block_on(self.inner.store_async(id, block));
    }

    fn remove(&self, id: BlockId) -> bool {
        self.rt.block_on(self.inner.remove_async(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Clock;
    use ae_api::BlockMap;
    use ae_blocks::{MetaId, NodeId};

    const MS: u64 = 1_000_000;

    fn data(i: u64) -> BlockId {
        BlockId::Data(NodeId(i))
    }

    fn seeded(spec: LinkSpec) -> LatencyStore<BlockMap> {
        let rt = Runtime::new(Clock::virtual_time());
        LatencyStore::uniform(Arc::new(BlockMap::new()), rt, spec, 42)
    }

    #[test]
    fn reads_pay_rtt_on_the_virtual_clock() {
        let net = seeded(LinkSpec::rtt(Duration::from_millis(10)));
        net.inner().store(data(1), Block::from_vec(vec![9; 8]));
        let rt = net.runtime().clone();
        let got = rt.block_on(net.read_async(data(1))).unwrap();
        assert_eq!(got.as_slice(), &[9; 8]);
        assert_eq!(rt.now(), 10 * MS);
    }

    #[test]
    fn bandwidth_cap_serializes_transfers_and_jitter_is_seeded() {
        let spec = LinkSpec {
            rtt: Duration::from_millis(1),
            jitter: Duration::from_micros(100),
            bytes_per_sec: Some(1_000_000), // 1 MB/s -> 1 µs per byte
        };
        let run = || {
            let net = seeded(spec);
            for i in 0..4u64 {
                net.inner().store(data(i), Block::from_vec(vec![0; 1000]));
            }
            let rt = net.runtime().clone();
            let futs: Vec<_> = (0..4).map(|i| net.fetch_async(data(i))).collect();
            rt.block_on(async {
                for f in futs {
                    assert!(f.await.is_some());
                }
            });
            rt.now()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "seeded jitter + eager plans replay identically");
        // Four 1000-byte transfers queue: the last completes no earlier
        // than 4 ms of transfer + 1 ms RTT.
        assert!(a >= 5 * MS, "bandwidth queueing observed (t={a})");
    }

    #[test]
    fn dead_remote_times_out_with_typed_errors_and_never_hangs() {
        let net = seeded(LinkSpec::rtt(Duration::from_millis(1))).with_retry(RetryPolicy {
            attempts: 2,
            timeout: Duration::from_millis(5),
            backoff: Duration::from_millis(2),
            multiplier: 2,
        });
        net.inner().store(data(7), Block::from_vec(vec![1; 4]));
        net.set_dead(Tier::Local, true);
        assert!(net.is_dead(Tier::Local));
        let rt = net.runtime().clone();
        // The virtual-clock executor panics on a hang, so completion of
        // block_on itself proves "typed error, never a hang".
        assert_eq!(
            rt.block_on(net.read_async(data(7))),
            Err(StoreError::TimedOut(data(7)))
        );
        assert_eq!(rt.block_on(net.fetch_async(data(7))), None);
        assert!(!rt.block_on(net.has_async(data(7))));
        assert!(!rt.block_on(net.remove_async(data(7))));
        rt.block_on(net.store_async(data(8), Block::from_vec(vec![2])));
        assert!(!net.inner().has(data(8)), "dead-remote write is swallowed");
        assert!(net.inner().has(data(7)), "dead-remote remove is swallowed");
        // Two attempts x 5 ms timeout + 2 ms backoff bounds each op.
        assert!(rt.now() >= 12 * MS);
    }

    #[test]
    fn reviving_the_link_mid_backoff_heals_the_operation() {
        let net = Arc::new(seeded(LinkSpec::rtt(Duration::from_millis(1))).with_retry(
            RetryPolicy {
                attempts: 3,
                timeout: Duration::from_millis(10),
                backoff: Duration::from_millis(5),
                multiplier: 2,
            },
        ));
        net.inner().store(data(3), Block::from_vec(vec![5; 4]));
        net.set_dead(Tier::Local, true);
        let rt = net.runtime().clone();
        let reviver = Arc::clone(&net);
        let rt2 = rt.clone();
        rt.spawn(async move {
            rt2.sleep(Duration::from_millis(12)).await;
            reviver.set_dead(Tier::Local, false);
        });
        // Attempt 0 dies at t=10ms; the reviver fires at t=12ms during
        // the 5 ms backoff; attempt 1 (t=15ms) finds the link alive.
        let got = rt.block_on(net.read_async(data(3))).unwrap();
        assert_eq!(got.as_slice(), &[5; 4]);
        assert!(rt.now() >= 15 * MS && rt.now() < 25 * MS, "t={}", rt.now());
    }

    #[test]
    fn data_local_tiering_routes_by_id_kind() {
        let rt = Runtime::new(Clock::virtual_time());
        let net = LatencyStore::new(
            Arc::new(BlockMap::new()),
            rt.clone(),
            Tiering::DataLocal {
                local: LinkSpec::rtt(Duration::from_millis(1)),
                remote: LinkSpec::rtt(Duration::from_millis(20)),
            },
            7,
        );
        net.inner().store(data(1), Block::from_vec(vec![1]));
        net.inner()
            .store(BlockId::Meta(MetaId(0)), Block::from_vec(vec![2]));
        let t0 = rt.now();
        rt.block_on(net.read_async(data(1))).unwrap();
        let local = rt.now() - t0;
        let t1 = rt.now();
        rt.block_on(net.read_async(BlockId::Meta(MetaId(0))))
            .unwrap();
        let remote = rt.now() - t1;
        assert_eq!(local, MS);
        assert_eq!(remote, 20 * MS);
        // Killing only the remote tier leaves data reachable.
        net.set_dead(Tier::Remote, true);
        assert!(rt.block_on(net.fetch_async(data(1))).is_some());
        assert_eq!(rt.block_on(net.fetch_async(BlockId::Meta(MetaId(0)))), None);
    }

    #[test]
    fn block_on_adapter_is_a_sync_repo_that_advertises_async() {
        let net = seeded(LinkSpec::rtt(Duration::from_millis(2)));
        let sync = net.into_sync();
        sync.store(data(5), Block::from_vec(vec![3; 6]));
        assert!(sync.has(data(5)));
        assert_eq!(sync.read(data(5)).unwrap().as_slice(), &[3; 6]);
        assert_eq!(sync.fetch(data(9)), None);
        let handle = sync.as_async().expect("BlockOn advertises its interior");
        let got = handle.run(handle.repo.fetch_async(data(5)));
        assert_eq!(got.unwrap().as_slice(), &[3; 6]);
        assert!(sync.remove(data(5)));
        assert!(!sync.has(data(5)));
    }
}
