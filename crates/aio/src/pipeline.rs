//! Bounded-in-flight pipelining: [`OrderedWindow`] runs a sequence of
//! lazily-created operations with at most `window` in flight at once and
//! yields their results **in issue order**.
//!
//! Laziness is load-bearing: the latency model computes each operation's
//! timing plan (queue slot, jitter draws) at *future creation*, so the
//! window must defer creation until a slot opens — handing it a `Vec` of
//! already-created futures would both unbound the in-flight count in the
//! model's eyes and fix every plan at the same instant. Hence the factory
//! closures ([`OpFactory`]).
//!
//! Issue-order result collection is equally load-bearing: the pipelined
//! archive paths commit repair writes and collect answers in the same
//! deterministic order the serial path would, whatever order the futures
//! actually complete in, which is what makes the async paths
//! byte-identical to their sync counterparts.

use ae_api::BoxFuture;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};

/// A deferred operation: invoked only when a window slot opens.
pub type OpFactory<'a, T> = Box<dyn FnOnce() -> BoxFuture<'a, T> + Send + 'a>;

enum Slot<'a, T> {
    Pending(BoxFuture<'a, T>),
    Done(T),
}

/// A future running `ops` with a bounded in-flight window, resolving to
/// their results in issue order. Built by [`windowed`] / [`windowed_map`].
pub struct OrderedWindow<'a, T> {
    factories: std::vec::IntoIter<OpFactory<'a, T>>,
    window: usize,
    slots: VecDeque<Slot<'a, T>>,
    out: Vec<T>,
}

impl<T> std::fmt::Debug for OrderedWindow<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedWindow")
            .field("window", &self.window)
            .field("in_flight", &self.slots.len())
            .field("collected", &self.out.len())
            .field("remaining", &self.factories.len())
            .finish()
    }
}

/// Runs the deferred `ops` with at most `window` in flight (clamped to a
/// minimum of 1), collecting results in issue order.
pub fn windowed<'a, T: Send>(ops: Vec<OpFactory<'a, T>>, window: usize) -> OrderedWindow<'a, T> {
    let expected = ops.len();
    OrderedWindow {
        factories: ops.into_iter(),
        window: window.max(1),
        slots: VecDeque::new(),
        out: Vec::with_capacity(expected),
    }
}

/// [`windowed`] over a list of items and one operation builder: `f(item)`
/// is called when the item's window slot opens and must create that
/// item's future then.
pub fn windowed_map<'a, T, U, F>(items: Vec<T>, window: usize, f: F) -> OrderedWindow<'a, U>
where
    T: Send + 'a,
    U: Send,
    F: Fn(T) -> BoxFuture<'a, U> + Send + Sync + 'a,
{
    let f = Arc::new(f);
    let ops = items
        .into_iter()
        .map(|item| {
            let f = Arc::clone(&f);
            Box::new(move || f(item)) as OpFactory<'a, U>
        })
        .collect();
    windowed(ops, window)
}

// All fields are boxed/owned and never pinned through — result values
// are moved in and out freely — so the combinator is Unpin regardless of
// `T` and the poll body can use plain `&mut self` state.
impl<T> Unpin for OrderedWindow<'_, T> {}

impl<T: Send> Future for OrderedWindow<'_, T> {
    type Output = Vec<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Vec<T>> {
        let this = self.get_mut();
        loop {
            let mut progress = false;
            // Top up the window, creating deferred ops as slots open.
            while this.slots.len() < this.window {
                match this.factories.next() {
                    Some(make) => {
                        this.slots.push_back(Slot::Pending(make()));
                        progress = true;
                    }
                    None => break,
                }
            }
            // Poll everything in flight.
            for slot in this.slots.iter_mut() {
                if let Slot::Pending(fut) = slot {
                    if let Poll::Ready(v) = fut.as_mut().poll(cx) {
                        *slot = Slot::Done(v);
                        progress = true;
                    }
                }
            }
            // Collect from the front only: results leave in issue order,
            // and a completed slot behind a pending head keeps occupying
            // the window until the head resolves.
            while matches!(this.slots.front(), Some(Slot::Done(_))) {
                match this.slots.pop_front() {
                    Some(Slot::Done(v)) => this.out.push(v),
                    _ => unreachable!("front was just matched as Done"),
                }
                progress = true;
            }
            if this.slots.is_empty() && this.factories.len() == 0 {
                return Poll::Ready(std::mem::take(&mut this.out));
            }
            if !progress {
                return Poll::Pending;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Runtime;
    use crate::time::Clock;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn results_arrive_in_issue_order_whatever_the_completion_order() {
        let rt = Runtime::new(Clock::virtual_time());
        // Later ops finish earlier (descending sleeps).
        let out = rt.block_on(windowed_map((0..6u64).collect(), 3, |i| {
            let rt = rt.clone();
            Box::pin(async move {
                rt.sleep(Duration::from_millis(10 - i)).await;
                i
            })
        }));
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn in_flight_never_exceeds_the_window() {
        let rt = Runtime::new(Clock::virtual_time());
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let out = rt.block_on(windowed_map((0..20u64).collect(), 4, |i| {
            let rt = rt.clone();
            let live = Arc::clone(&live);
            let peak = Arc::clone(&peak);
            // Factory invocation = issue: count concurrency from here.
            let n = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(n, Ordering::SeqCst);
            Box::pin(async move {
                rt.sleep(Duration::from_millis(1 + i % 3)).await;
                live.fetch_sub(1, Ordering::SeqCst);
                i
            })
        }));
        assert_eq!(out.len(), 20);
        assert!(peak.load(Ordering::SeqCst) <= 4, "peak {peak:?}");
        assert!(peak.load(Ordering::SeqCst) >= 2, "window actually used");
    }

    #[test]
    fn window_collapses_total_latency() {
        let run = |window: usize| {
            let rt = Runtime::new(Clock::virtual_time());
            rt.block_on(windowed_map((0..8u64).collect(), window, |i| {
                let rt = rt.clone();
                Box::pin(async move {
                    rt.sleep(Duration::from_millis(10)).await;
                    i
                })
            }));
            rt.now()
        };
        let serial = run(1);
        let piped = run(8);
        assert_eq!(serial, 8 * 10_000_000, "serial pays every RTT");
        assert_eq!(piped, 10_000_000, "full window pays one RTT");
    }

    #[test]
    fn empty_and_single_item_windows_work() {
        let rt = Runtime::new(Clock::virtual_time());
        let none: Vec<u8> = rt.block_on(windowed_map(Vec::<u8>::new(), 5, |b| {
            Box::pin(async move { b })
        }));
        assert!(none.is_empty());
        // window = 0 clamps to 1.
        let one = rt.block_on(windowed_map(vec![7u8], 0, |b| Box::pin(async move { b })));
        assert_eq!(one, vec![7]);
    }
}
