//! Async block I/O: latency-faithful network backends with pipelined,
//! bounded-in-flight block operations.
//!
//! The paper's repair story is fundamentally about *remote* blocks — §V
//! measures entanglement repair against backends that are a network away
//! — but the sync [`ae_api::BlockSource`] family completes every
//! operation at call time, so a naive port pays `blocks × RTT` for any
//! multi-block operation. This crate supplies the missing layer in four
//! pieces, all vendored (zero external dependencies beyond the
//! workspace):
//!
//! * **Executor + timer wheel** ([`Runtime`], [`Clock`], [`Sleep`]): a
//!   minimal single- or multi-threaded executor whose time source is
//!   either real (benchmarks) or virtual (tests). On the virtual clock
//!   the runtime advances time *exactly* to the next timer deadline
//!   whenever nothing is runnable and panics on a deadlocked future
//!   instead of hanging.
//! * **Latency model** ([`LatencyStore`], [`LinkSpec`], [`Tiering`],
//!   [`RetryPolicy`]): wraps any sync backend behind simulated per-tier
//!   links — RTT, seeded jitter, bandwidth caps — with typed
//!   timeout/retry/backoff so a dead remote degrades to
//!   [`ae_api::StoreError::TimedOut`] (or `None`/`false`), never a hang.
//!   Composes with `ae_store::FaultyStore` for flaky *and* distant.
//! * **Bounded-in-flight pipelining** ([`windowed`], [`windowed_map`],
//!   [`OrderedWindow`]): at most [`in_flight_window`] operations in
//!   flight, results collected in issue order.
//! * **Phase replay** ([`Replay`], [`Recorder`]): runs the unmodified
//!   sync repair algorithms against an async backend by recording their
//!   block demands, resolving them through the window, and rerunning to
//!   a fixed point — provably byte-identical to the serial path.
//!
//! [`BlockOn`] closes the loop: it adapts a natively-async backend back
//! into the sync family and advertises the async interior through
//! [`ae_api::BlockSource::as_async`], which is how the archive's
//! degraded reads and scrubs discover that pipelining is available.
//!
//! # Determinism contract
//!
//! Runs are reproducible when three conditions hold, and every test in
//! this subsystem relies on them:
//!
//! 1. **Virtual clock** ([`Clock::virtual_time`]): time is a counter the
//!    executor advances to exact timer deadlines; wall-clock never leaks
//!    in.
//! 2. **Single-threaded driving** ([`Runtime::new`], not
//!    [`Runtime::with_workers`]): one thread interleaves all futures, so
//!    polling order is a pure function of deadlines and issue order.
//! 3. **Eager planning** (the latency model): every operation's queueing,
//!    transfer and per-attempt jitter draws are fixed at *future
//!    creation* from the seeded generator, so issue order alone pins the
//!    random stream; replay resolves misses in sorted-id order so even
//!    the parallel repair planner's thread interleaving cannot perturb
//!    issue order.
//!
//! Under the contract, a pipelined repair is byte-identical to its
//! serial counterpart and every simulated timestamp replays exactly;
//! with a real clock the same code measures genuine wall time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
mod latency;
mod pipeline;
mod replay;
mod time;

pub use exec::{JoinHandle, Runtime};
pub use latency::{BlockOn, LatencyStore, LinkSpec, RetryPolicy, Tier, Tiering};
pub use pipeline::{windowed, windowed_map, OpFactory, OrderedWindow};
pub use replay::{Recorder, Replay};
pub use time::{Clock, Sleep};

/// The bounded in-flight window for pipelined block operations.
///
/// Defaults to 8; overridden by the `AE_AIO_WINDOW` environment variable
/// (read on every call, so benchmarks can vary it per case), and pinned
/// to 1 by the `serial-aio` feature — the CI leg proving the pipelined
/// and serial paths agree (the env var is ignored under the feature).
pub fn in_flight_window() -> usize {
    if cfg!(feature = "serial-aio") {
        return 1;
    }
    std::env::var("AE_AIO_WINDOW")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&w| w > 0)
        .unwrap_or(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_default_env_and_feature_pinning() {
        if cfg!(feature = "serial-aio") {
            assert_eq!(in_flight_window(), 1);
        } else {
            // Serialize env mutation against other tests via a lock.
            static ENV: std::sync::Mutex<()> = std::sync::Mutex::new(());
            let _guard = ENV.lock().unwrap();
            std::env::remove_var("AE_AIO_WINDOW");
            assert_eq!(in_flight_window(), 8);
            std::env::set_var("AE_AIO_WINDOW", "32");
            assert_eq!(in_flight_window(), 32, "env var read per call");
            std::env::set_var("AE_AIO_WINDOW", "0");
            assert_eq!(in_flight_window(), 8, "zero falls back to default");
            std::env::remove_var("AE_AIO_WINDOW");
        }
    }
}
