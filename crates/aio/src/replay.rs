//! Phase replay: run unmodified *sync* repair logic against an async
//! backend, fetching everything it needs through the bounded-in-flight
//! window — without rewriting the repair algorithms as async code.
//!
//! The trick is record/resolve/replay. A [`Recorder`] stands in for the
//! backend: reads are answered from the replay's accumulated [`answer
//! set`](Replay) (patch-first, so the logic sees its own writes), and
//! anything unanswered is *recorded as a miss* with a provisional
//! "absent" result. After each pass the misses are resolved against the
//! real async backend — pipelined, `window` at a time, in sorted id
//! order — and the pass reruns. When a pass records no misses, every
//! answer it consumed was faithful, so by induction its outcome (and its
//! write log) is byte-identical to running the same logic directly
//! against the backend serially; the writes are then committed through
//! the window in deterministic log order.
//!
//! Misses are collected into an ordered set, not an append log, so the
//! parallel repair planner's thread interleaving cannot perturb the
//! resolution order — and therefore cannot perturb the latency model's
//! seeded jitter stream. Termination: every pass either finishes or
//! grows the answer set, and the id universe a repair touches is finite.

use crate::pipeline::windowed_map;
use ae_api::{AsyncHandle, BlockMap, BlockSink, BlockSource, StoreError};
use ae_blocks::{Block, BlockId};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};

/// Which backend question a miss stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Op {
    Fetch,
    Has,
    Read,
}

/// One resolved miss.
enum AnswerVal {
    Fetch(Option<Block>),
    Has(bool),
    Read(Result<Block, StoreError>),
}

/// Everything the backend has been asked so far, per question kind.
/// `fetch` and `read` are kept separately because fault-injecting
/// backends answer them differently for the same id (a garbled block
/// fetches as tampered bytes but reads as `Corrupted`).
#[derive(Debug, Default)]
struct Answers {
    fetch: HashMap<BlockId, Option<Block>>,
    read: HashMap<BlockId, Result<Block, StoreError>>,
    has: HashMap<BlockId, bool>,
}

/// The stand-in backend one replay pass runs against. Reads are answered
/// patch-first (the pass sees its own writes), then from the answer set,
/// and otherwise recorded as misses with provisional absent results;
/// writes land in the patch and the ordered write log. Replay passes
/// never remove blocks — removal stays with the caller, outside replay.
pub struct Recorder<'a> {
    answers: &'a Answers,
    patch: BlockMap,
    writes: Mutex<Vec<(BlockId, Block)>>,
    misses: Mutex<BTreeSet<(Op, BlockId)>>,
}

impl<'a> Recorder<'a> {
    fn new(answers: &'a Answers) -> Self {
        Recorder {
            answers,
            patch: BlockMap::new(),
            writes: Mutex::new(Vec::new()),
            misses: Mutex::new(BTreeSet::new()),
        }
    }

    fn miss(&self, op: Op, id: BlockId) {
        self.misses.lock().insert((op, id));
    }
}

impl std::fmt::Debug for Recorder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("misses", &self.misses.lock().len())
            .field("writes", &self.writes.lock().len())
            .finish_non_exhaustive()
    }
}

impl BlockSource for Recorder<'_> {
    fn fetch(&self, id: BlockId) -> Option<Block> {
        if let Some(b) = self.patch.fetch(id) {
            return Some(b);
        }
        match self.answers.fetch.get(&id) {
            Some(ans) => ans.clone(),
            None => {
                self.miss(Op::Fetch, id);
                None
            }
        }
    }

    fn has(&self, id: BlockId) -> bool {
        if self.patch.has(id) {
            return true;
        }
        match self.answers.has.get(&id) {
            Some(ans) => *ans,
            None => {
                self.miss(Op::Has, id);
                false
            }
        }
    }

    fn read(&self, id: BlockId) -> Result<Block, StoreError> {
        if let Some(b) = self.patch.fetch(id) {
            return Ok(b);
        }
        match self.answers.read.get(&id) {
            Some(ans) => ans.clone(),
            None => {
                self.miss(Op::Read, id);
                Err(StoreError::NotFound(id))
            }
        }
    }
}

impl BlockSink for Recorder<'_> {
    fn store(&self, id: BlockId, block: Block) {
        self.patch.store(id, block.clone());
        self.writes.lock().push((id, block));
    }

    fn remove(&self, id: BlockId) -> bool {
        // Repair logic never removes; tolerate it as a patch-local
        // operation so the recorder stays a total BlockRepo.
        self.patch.remove(&id).is_some()
    }
}

/// A record/resolve/replay session over one async backend: accumulated
/// answers plus the window configuration. See the [crate docs](crate).
pub struct Replay<'h> {
    handle: AsyncHandle<'h>,
    window: usize,
    answers: Answers,
}

impl<'h> Replay<'h> {
    /// A fresh session over `handle`, resolving misses and committing
    /// writes `window` at a time.
    pub fn new(handle: AsyncHandle<'h>, window: usize) -> Self {
        Replay {
            handle,
            window: window.max(1),
            answers: Answers::default(),
        }
    }

    /// Seeds the answer set with a known `read` result — typically from a
    /// pipelined sweep done before the replay — and derives the `fetch` /
    /// `has` answers it implies. `Corrupted` derives nothing: a
    /// fault-injecting backend fetches a garbled block as tampered bytes,
    /// so those questions must go to the backend itself.
    pub fn seed_read(&mut self, id: BlockId, result: Result<Block, StoreError>) {
        match &result {
            Ok(b) => {
                self.answers.fetch.insert(id, Some(b.clone()));
                self.answers.has.insert(id, true);
            }
            Err(StoreError::NotFound(_)) => {
                self.answers.fetch.insert(id, None);
                self.answers.has.insert(id, false);
            }
            Err(StoreError::Corrupted(_)) | Err(StoreError::TimedOut(_)) => {}
        }
        self.answers.read.insert(id, result);
    }

    /// Records `id` as absent for every question kind — what a caller
    /// asserts after removing the block (e.g. scrub's quarantine).
    pub fn seed_absent(&mut self, id: BlockId) {
        self.answers.fetch.insert(id, None);
        self.answers.has.insert(id, false);
        self.answers.read.insert(id, Err(StoreError::NotFound(id)));
    }

    /// Runs `f` against a fresh [`Recorder`] until a pass records no
    /// misses (resolving each round's misses through the window in
    /// sorted order), then returns the faithful pass's result and its
    /// ordered write log. `f` must be deterministic given the answers it
    /// reads — every repair path here is.
    pub fn run<T>(&mut self, f: impl Fn(&Recorder<'_>) -> T) -> (T, Vec<(BlockId, Block)>) {
        loop {
            let recorder = Recorder::new(&self.answers);
            let result = f(&recorder);
            let misses: Vec<(Op, BlockId)> = std::mem::take(&mut *recorder.misses.lock())
                .into_iter()
                .collect();
            if misses.is_empty() {
                return (result, std::mem::take(&mut *recorder.writes.lock()));
            }
            let repo = self.handle.repo;
            let resolved = self.handle.run(Box::pin(windowed_map(
                misses.clone(),
                self.window,
                move |(op, id)| match op {
                    Op::Fetch => {
                        let fut = repo.fetch_async(id);
                        Box::pin(async move { AnswerVal::Fetch(fut.await) })
                    }
                    Op::Has => {
                        let fut = repo.has_async(id);
                        Box::pin(async move { AnswerVal::Has(fut.await) })
                    }
                    Op::Read => {
                        let fut = repo.read_async(id);
                        Box::pin(async move { AnswerVal::Read(fut.await) })
                    }
                },
            )));
            for ((op, id), val) in misses.into_iter().zip(resolved) {
                match (op, val) {
                    (Op::Fetch, AnswerVal::Fetch(v)) => {
                        self.answers.fetch.insert(id, v);
                    }
                    (Op::Has, AnswerVal::Has(v)) => {
                        self.answers.has.insert(id, v);
                    }
                    (Op::Read, AnswerVal::Read(v)) => {
                        self.answers.read.insert(id, v);
                    }
                    _ => unreachable!("answer kind matches its op by construction"),
                }
            }
        }
    }

    /// Commits a write log to the backend through the window, preserving
    /// log order. Answers for the written ids are invalidated rather than
    /// assumed: a later pass re-reads the backend's truth, which matters
    /// when a dead remote swallowed the write.
    pub fn commit(&mut self, writes: Vec<(BlockId, Block)>) {
        if writes.is_empty() {
            return;
        }
        for (id, _) in &writes {
            self.answers.fetch.remove(id);
            self.answers.read.remove(id);
            self.answers.has.remove(id);
        }
        let repo = self.handle.repo;
        self.handle.run(Box::pin(windowed_map(
            writes,
            self.window,
            move |(id, block)| repo.store_async(id, block),
        )));
    }
}

impl std::fmt::Debug for Replay<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replay")
            .field("window", &self.window)
            .field("answered_reads", &self.answers.read.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Runtime;
    use crate::latency::{BlockOn, LatencyStore, LinkSpec};
    use crate::time::Clock;
    use ae_blocks::NodeId;
    use std::sync::Arc;
    use std::time::Duration;

    fn data(i: u64) -> BlockId {
        BlockId::Data(NodeId(i))
    }

    fn remote(rtt_ms: u64) -> BlockOn<LatencyStore<BlockMap>> {
        let rt = Runtime::new(Clock::virtual_time());
        LatencyStore::uniform(
            Arc::new(BlockMap::new()),
            rt,
            LinkSpec::rtt(Duration::from_millis(rtt_ms)),
            1,
        )
        .into_sync()
    }

    #[test]
    fn replay_converges_to_the_serial_outcome() {
        let store = remote(10);
        for i in 0..16u64 {
            store
                .inner()
                .inner()
                .store(data(i), Block::from_vec(vec![i as u8; 4]));
        }
        let handle = store.as_async().unwrap();
        let mut replay = Replay::new(handle, 8);
        // A two-phase dependency: read block 0, then read the block its
        // first byte names, then write a combination.
        let (result, writes) = replay.run(|src| {
            let a = src.read(data(0)).ok()?;
            let b = src.read(data(u64::from(a.as_slice()[0]) + 1)).ok()?;
            let mut combined = a.as_slice().to_vec();
            combined.extend_from_slice(b.as_slice());
            src.store(data(100), Block::from_vec(combined.clone()));
            // The pass sees its own write, patch-first.
            assert!(src.has(data(100)));
            Some(combined)
        });
        assert_eq!(result.unwrap(), vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert_eq!(writes.len(), 1);
        // Nothing committed yet.
        assert!(!store.inner().inner().has(data(100)));
        replay.commit(writes);
        assert_eq!(
            store.inner().inner().fetch(data(100)).unwrap().as_slice(),
            &[0, 0, 0, 0, 1, 1, 1, 1]
        );
    }

    #[test]
    fn seeded_answers_skip_the_backend_entirely() {
        let store = remote(5);
        let handle = store.as_async().unwrap();
        let rt = store.runtime().clone();
        let mut replay = Replay::new(handle, 4);
        replay.seed_read(data(1), Ok(Block::from_vec(vec![9])));
        replay.seed_absent(data(2));
        let t0 = rt.now();
        let (out, writes) = replay.run(|src| {
            assert!(src.has(data(1)));
            assert!(!src.has(data(2)));
            assert_eq!(src.read(data(2)), Err(StoreError::NotFound(data(2))));
            src.fetch(data(1)).unwrap().as_slice().to_vec()
        });
        assert_eq!(out, vec![9]);
        assert!(writes.is_empty());
        assert_eq!(rt.now(), t0, "fully-seeded replay issues no network ops");
    }

    #[test]
    fn window_collapses_replay_latency() {
        let run = |window: usize| {
            let store = remote(10);
            for i in 0..32u64 {
                store
                    .inner()
                    .inner()
                    .store(data(i), Block::from_vec(vec![1; 2]));
            }
            let handle = store.as_async().unwrap();
            let mut replay = Replay::new(handle, window);
            let (n, _) =
                replay.run(|src| (0..32u64).filter(|&i| src.read(data(i)).is_ok()).count());
            assert_eq!(n, 32);
            store.runtime().now()
        };
        let serial = run(1);
        let piped = run(8);
        assert!(
            piped * 4 <= serial,
            "window=8 at least 4x faster than window=1 ({piped} vs {serial})"
        );
    }
}
