//! The vendored executor: [`Runtime`] — `block_on`, `spawn`, optional
//! worker threads — over the [`crate::time`] clock and timer wheel.
//!
//! # Determinism contract
//!
//! With a **virtual clock** and **single-threaded driving** (no worker
//! threads; everything runs inside one `block_on`), execution is fully
//! deterministic: the only source of time is the timer wheel, the clock
//! advances exactly to the next registered deadline whenever nothing is
//! runnable, and if the driven future is pending with no timers and no
//! queued tasks the runtime **panics** (a deadlock would otherwise hang a
//! test forever). This is the configuration the latency-model parity
//! tests run under — seeded jitter + virtual time + one driver thread
//! means every run replays the identical schedule.
//!
//! With a **real clock** the same `block_on` parks the driving thread
//! until the next deadline (or until a waker from another thread unparks
//! it), so benchmarks measure genuine wall-clock. Worker threads
//! ([`Runtime::with_workers`]) service `spawn`ed tasks concurrently;
//! timers are still fired by whichever thread is inside `block_on`, which
//! is also the only thread that advances a virtual clock.

use crate::time::{Clock, Sleep, Timers};
use ae_api::{BlockOnDriver, BoxFuture};
use std::collections::VecDeque;
use std::future::Future;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;
use std::time::Duration;

/// Shared state of one runtime: clock, timer wheel, ready queue.
#[derive(Debug)]
struct Core {
    clock: Arc<Clock>,
    timers: Arc<Timers>,
    queue: Mutex<VecDeque<Arc<Task>>>,
    /// Signalled when a task is queued (workers wait here).
    available: Condvar,
    /// The thread currently inside `block_on`, to unpark on wakes.
    driver: Mutex<Option<Thread>>,
    shutdown: AtomicBool,
    /// Worker threads, joined by [`Runtime::shutdown`].
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Core {
    fn enqueue(&self, task: Arc<Task>) {
        self.queue.lock().unwrap().push_back(task);
        self.available.notify_one();
        if let Some(t) = self.driver.lock().unwrap().as_ref() {
            t.unpark();
        }
    }

    fn pop_task(&self) -> Option<Arc<Task>> {
        self.queue.lock().unwrap().pop_front()
    }

    fn has_tasks(&self) -> bool {
        !self.queue.lock().unwrap().is_empty()
    }
}

/// One spawned task: its future, re-queued by its waker.
struct Task {
    future: Mutex<Option<BoxFuture<'static, ()>>>,
    core: Weak<Core>,
    /// Guards against double-queuing between wake and poll.
    queued: AtomicBool,
}

impl Task {
    /// Polls the task's future once, with the task itself as the waker.
    fn run(self: &Arc<Self>) {
        self.queued.store(false, Ordering::Release);
        let Some(mut fut) = self.future.lock().unwrap().take() else {
            return; // already completed
        };
        let waker = Waker::from(Arc::clone(self));
        let mut cx = Context::from_waker(&waker);
        if fut.as_mut().poll(&mut cx).is_pending() {
            *self.future.lock().unwrap() = Some(fut);
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        if self.queued.swap(true, Ordering::AcqRel) {
            return; // already queued
        }
        if let Some(core) = self.core.upgrade() {
            core.enqueue(self);
        }
    }
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task").finish_non_exhaustive()
    }
}

/// Wakes the `block_on` driver thread.
struct RootSignal {
    thread: Thread,
    woken: AtomicBool,
}

impl Wake for RootSignal {
    fn wake(self: Arc<Self>) {
        self.woken.store(true, Ordering::Release);
        self.thread.unpark();
    }
}

/// Completion slot shared between a spawned task and its [`JoinHandle`].
#[derive(Debug)]
struct JoinShared<T> {
    slot: Mutex<Option<T>>,
    waker: Mutex<Option<Waker>>,
}

/// A future resolving to a spawned task's output — await it (typically
/// via [`Runtime::block_on`]) to collect the result.
#[derive(Debug)]
pub struct JoinHandle<T> {
    shared: Arc<JoinShared<T>>,
}

impl<T> JoinHandle<T> {
    /// Whether the task has finished (its output may already be taken).
    pub fn is_finished(&self) -> bool {
        self.shared.slot.lock().unwrap().is_some() || Arc::strong_count(&self.shared) == 1
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: std::pin::Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        if let Some(v) = self.shared.slot.lock().unwrap().take() {
            return Poll::Ready(v);
        }
        *self.shared.waker.lock().unwrap() = Some(cx.waker().clone());
        // Re-check to close the race with a completion between the first
        // check and the waker registration.
        match self.shared.slot.lock().unwrap().take() {
            Some(v) => Poll::Ready(v),
            None => Poll::Pending,
        }
    }
}

/// The vendored runtime: a clock, a timer wheel, a ready queue and the
/// `block_on` loop that ties them together. Cheap to clone (shared
/// handle); see the [crate docs](crate) for the determinism contract.
#[derive(Clone, Debug)]
pub struct Runtime {
    core: Arc<Core>,
}

impl Runtime {
    /// A single-threaded runtime over `clock`: spawned tasks run on
    /// whichever thread is inside [`Runtime::block_on`].
    pub fn new(clock: Clock) -> Self {
        Runtime {
            core: Arc::new(Core {
                clock: Arc::new(clock),
                timers: Arc::new(Timers::new()),
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                driver: Mutex::new(None),
                shutdown: AtomicBool::new(false),
                workers: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A runtime with `n` worker threads servicing spawned tasks.
    /// Workers never fire timers or advance a virtual clock — that stays
    /// with the `block_on` driver — so keep virtual-clock determinism
    /// work on [`Runtime::new`]. Call [`Runtime::shutdown`] to join the
    /// workers.
    pub fn with_workers(clock: Clock, n: usize) -> Self {
        let rt = Runtime::new(clock);
        let mut workers = rt.core.workers.lock().unwrap();
        for k in 0..n {
            let core = Arc::clone(&rt.core);
            let handle = std::thread::Builder::new()
                .name(format!("ae-aio-worker-{k}"))
                .spawn(move || loop {
                    let task = {
                        let mut q = core.queue.lock().unwrap();
                        loop {
                            if core.shutdown.load(Ordering::Acquire) {
                                return;
                            }
                            if let Some(t) = q.pop_front() {
                                break t;
                            }
                            q = core.available.wait(q).unwrap();
                        }
                    };
                    task.run();
                })
                .expect("spawning ae-aio worker thread");
            workers.push(handle);
        }
        drop(workers);
        rt
    }

    /// The runtime's clock.
    pub fn clock(&self) -> &Clock {
        &self.core.clock
    }

    /// Nanoseconds since the runtime's clock was created.
    pub fn now(&self) -> u64 {
        self.core.clock.now()
    }

    /// A future resolving when the clock reaches absolute nanosecond
    /// `deadline`.
    pub fn sleep_until(&self, deadline: u64) -> Sleep {
        Sleep::new(
            deadline,
            Arc::clone(&self.core.clock),
            Arc::clone(&self.core.timers),
        )
    }

    /// A future resolving after `d` of clock time.
    pub fn sleep(&self, d: Duration) -> Sleep {
        self.sleep_until(self.now().saturating_add(d.as_nanos() as u64))
    }

    /// Spawns a task onto the runtime; it runs during any `block_on` (and
    /// on worker threads, if any). Await the handle for the output.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let shared = Arc::new(JoinShared {
            slot: Mutex::new(None),
            waker: Mutex::new(None),
        });
        let out = Arc::clone(&shared);
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(async move {
                let v = fut.await;
                *out.slot.lock().unwrap() = Some(v);
                if let Some(w) = out.waker.lock().unwrap().take() {
                    w.wake();
                }
            }))),
            core: Arc::downgrade(&self.core),
            queued: AtomicBool::new(true),
        });
        self.core.enqueue(Arc::clone(&task));
        JoinHandle { shared }
    }

    /// Drives `fut` to completion on the calling thread, running queued
    /// tasks and firing timers while it is pending. On a virtual clock,
    /// idleness advances time to the next deadline; a pending future with
    /// no timers, no tasks and no workers panics (deterministic deadlock
    /// detection). On a real clock, idleness parks until the next
    /// deadline or an external wake.
    pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
        let mut fut = Box::pin(fut);
        let signal = Arc::new(RootSignal {
            thread: std::thread::current(),
            woken: AtomicBool::new(true),
        });
        let waker = Waker::from(Arc::clone(&signal));
        let mut cx = Context::from_waker(&waker);
        let prev_driver = self
            .core
            .driver
            .lock()
            .unwrap()
            .replace(std::thread::current());
        let out = loop {
            // Run everything currently runnable.
            while let Some(task) = self.core.pop_task() {
                task.run();
            }
            self.core.timers.fire_due(self.core.clock.now());
            if signal.woken.swap(false, Ordering::AcqRel) {
                if let Poll::Ready(v) = fut.as_mut().poll(&mut cx) {
                    break v;
                }
                continue;
            }
            if self.core.has_tasks() {
                continue;
            }
            // Idle: the root future and every task are waiting on wakes.
            match self.core.timers.next_deadline() {
                Some(deadline) => {
                    if self.core.clock.is_virtual() {
                        self.core.clock.advance_to(deadline);
                    } else {
                        let now = self.core.clock.now();
                        if deadline > now {
                            std::thread::park_timeout(Duration::from_nanos(deadline - now));
                        }
                    }
                }
                None => {
                    let workers = !self.core.workers.lock().unwrap().is_empty();
                    if self.core.clock.is_virtual() && !workers {
                        // Re-check the signal: a wake may have landed
                        // between the swap above and here.
                        if signal.woken.load(Ordering::Acquire) {
                            continue;
                        }
                        panic!(
                            "ae-aio executor stalled: the driven future is pending \
                             with no timers, no queued tasks and no worker threads \
                             (deterministic deadlock detection on the virtual clock)"
                        );
                    }
                    std::thread::park();
                }
            }
        };
        *self.core.driver.lock().unwrap() = prev_driver;
        out
    }

    /// Signals worker threads (if any) to exit and joins them. Idempotent;
    /// a runtime without workers is a no-op.
    pub fn shutdown(&self) {
        self.core.shutdown.store(true, Ordering::Release);
        self.core.available.notify_all();
        let handles: Vec<_> = self.core.workers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl BlockOnDriver for Runtime {
    fn drive(&self, fut: BoxFuture<'_, ()>) {
        self.block_on(fut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_on_returns_ready_values() {
        let rt = Runtime::new(Clock::virtual_time());
        assert_eq!(rt.block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn virtual_sleep_advances_the_clock_exactly() {
        let rt = Runtime::new(Clock::virtual_time());
        rt.block_on(async {
            rt.sleep(Duration::from_millis(10)).await;
            rt.sleep(Duration::from_micros(1)).await;
        });
        assert_eq!(rt.now(), 10_001_000, "advanced to exact deadlines");
    }

    #[test]
    fn nested_sleeps_interleave_deterministically() {
        let rt = Runtime::new(Clock::virtual_time());
        let order = Arc::new(Mutex::new(Vec::new()));
        let o1 = Arc::clone(&order);
        let o2 = Arc::clone(&order);
        let rt1 = rt.clone();
        let rt2 = rt.clone();
        let h1 = rt.spawn(async move {
            rt1.sleep(Duration::from_millis(5)).await;
            o1.lock().unwrap().push("late");
        });
        let h2 = rt.spawn(async move {
            rt2.sleep(Duration::from_millis(2)).await;
            o2.lock().unwrap().push("early");
        });
        rt.block_on(async {
            h1.await;
            h2.await;
        });
        assert_eq!(*order.lock().unwrap(), vec!["early", "late"]);
        assert_eq!(rt.now(), 5_000_000);
    }

    #[test]
    fn spawn_runs_on_worker_threads_with_a_real_clock() {
        let rt = Runtime::with_workers(Clock::real(), 2);
        let handles: Vec<_> = (0..8)
            .map(|k: u64| rt.spawn(async move { k * k }))
            .collect();
        let mut total = 0;
        for h in handles {
            total += rt.block_on(h);
        }
        assert_eq!(total, (0..8).map(|k| k * k).sum::<u64>());
        rt.shutdown();
        rt.shutdown(); // idempotent
    }

    #[test]
    fn real_clock_sleep_takes_wall_time() {
        let rt = Runtime::new(Clock::real());
        let start = std::time::Instant::now();
        rt.block_on(rt.sleep(Duration::from_millis(5)));
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "executor stalled")]
    fn virtual_deadlock_panics_instead_of_hanging() {
        let rt = Runtime::new(Clock::virtual_time());
        rt.block_on(std::future::pending::<()>());
    }

    #[test]
    fn join_handle_reports_completion() {
        let rt = Runtime::new(Clock::virtual_time());
        let rt2 = rt.clone();
        let h = rt.spawn(async move {
            rt2.sleep(Duration::from_millis(1)).await;
            7
        });
        assert_eq!(rt.block_on(h), 7);
    }
}
