//! Alpha entanglement codes: the byte-plane implementation of AE(α, s, p).
//!
//! This crate is the paper's primary contribution as runnable code. It sits
//! on top of [`ae_lattice`] (which knows *which* blocks connect) and
//! [`ae_blocks`] (which knows how to XOR them), and provides:
//!
//! * [`encoder::Entangler`] — the streaming encoder: each incoming data
//!   block is tangled with the α parities at the heads of its strands,
//!   producing α new parities. Memory footprint is exactly one parity per
//!   strand (`s + (α−1)·p` blocks), matching §IV.A's broker description.
//! * [`decoder`] — single-block repairs: a data block from any complete
//!   pp-tuple (two parities, one XOR), a parity block from either dp-tuple.
//! * [`repair::RepairEngine`] — the round-based global decoder used after
//!   disasters: each round repairs every block that has a complete tuple,
//!   newly repaired blocks enable further repairs next round (§V.C.4).
//! * [`writer::WriteScheduler`] — the Fig 10 write-performance model:
//!   full-writes vs deferred buckets as a function of s and p.
//! * [`puncture`] — the storage-overhead reduction sketched in §III
//!   ("Reducing Storage Overhead"): deterministically skip storing a
//!   fraction of parities.
//! * [`upgrade`] — dynamic fault tolerance: raise α without re-encoding
//!   existing blocks (§I: "alpha entanglements permit changes in the
//!   parameters without the need to encode the content again").
//! * [`tamper`] — the anti-tampering cost analysis of §III: how many blocks
//!   an attacker must rewrite to alter one data block undetectably.
//!
//! # Quickstart
//!
//! ```
//! use ae_core::{Code, BlockMap};
//! use ae_blocks::{Block, BlockId, NodeId};
//! use ae_lattice::Config;
//!
//! // AE(3,2,5): triple entanglement, the paper's 5-HEC equivalent.
//! let code = Code::new(Config::new(3, 2, 5).unwrap(), 64);
//! let mut store = BlockMap::new();
//! let mut enc = code.entangler();
//! for n in 0u8..100 {
//!     let out = enc.entangle(Block::from_vec(vec![n; 64])).unwrap();
//!     out.insert_into(&mut store);
//! }
//!
//! // Lose a data block; repair it with a single XOR of two parities.
//! let lost = BlockId::Data(NodeId(42));
//! let original = store.remove(&lost).unwrap();
//! let repaired = code.repair_block(&store, lost, 100).unwrap();
//! assert_eq!(repaired, original);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod code;
pub mod decoder;
pub mod encoder;
pub mod puncture;
pub mod repair;
pub mod tamper;
pub mod upgrade;
pub mod writer;

pub use code::{BlockMap, Code};
pub use encoder::{EntangleOutput, Entangler};
pub use repair::{RepairEngine, RepairReport};
pub use writer::{WriteReport, WriteScheduler};

use ae_blocks::{BlockId, EdgeId, NodeId};
use ae_lattice::LatticeBlock;

/// Converts a byte-plane block id to the lattice analysis plane.
pub fn to_lattice(id: BlockId) -> LatticeBlock {
    match id {
        BlockId::Data(NodeId(i)) => LatticeBlock::Node(i as i64),
        BlockId::Parity(EdgeId { class, left }) => LatticeBlock::Edge(class, left.0 as i64),
    }
}

/// Converts a lattice block back to a byte-plane id.
///
/// # Panics
///
/// Panics on virtual positions (`i < 1`), which have no stored counterpart.
pub fn from_lattice(b: LatticeBlock) -> BlockId {
    match b {
        LatticeBlock::Node(i) => {
            assert!(i >= 1, "virtual node {i} has no block id");
            BlockId::Data(NodeId(i as u64))
        }
        LatticeBlock::Edge(class, i) => {
            assert!(i >= 1, "virtual edge {i} has no block id");
            BlockId::Parity(EdgeId::new(class, NodeId(i as u64)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_blocks::StrandClass;

    #[test]
    fn lattice_conversion_roundtrip() {
        let ids = [
            BlockId::Data(NodeId(1)),
            BlockId::Data(NodeId(26)),
            BlockId::Parity(EdgeId::new(StrandClass::LeftHanded, NodeId(26))),
        ];
        for id in ids {
            assert_eq!(from_lattice(to_lattice(id)), id);
        }
    }

    #[test]
    #[should_panic(expected = "virtual")]
    fn virtual_positions_rejected() {
        from_lattice(LatticeBlock::Node(0));
    }
}
