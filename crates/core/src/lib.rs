//! Alpha entanglement codes: the byte-plane implementation of AE(α, s, p).
//!
//! This crate is the paper's primary contribution as runnable code. It sits
//! on top of [`ae_lattice`] (which knows *which* blocks connect) and
//! [`ae_blocks`] (which knows how to XOR them), and provides:
//!
//! * [`code::Code`] — the alpha-entanglement implementation of the
//!   scheme-agnostic [`ae_api::RedundancyScheme`] trait: batch-first
//!   encoding, error-typed repairs, and the structural hooks the
//!   availability-plane simulations drive.
//! * [`encoder::Entangler`] — the streaming encoder: each incoming data
//!   block is tangled with the α parities at the heads of its strands,
//!   producing α new parities. Memory footprint is exactly one parity per
//!   strand (`s + (α−1)·p` blocks), matching §IV.A's broker description.
//!   [`encoder::Entangler::entangle_batch`] is the hot path.
//! * [`decoder`] — single-block repairs: a data block from any complete
//!   pp-tuple (two parities, one XOR), a parity block from either dp-tuple.
//!   Failures return [`ae_api::RepairError::NoCompleteTuple`] naming the
//!   missing tuple members.
//! * [`repair::RepairEngine`] — the round-based global decoder used after
//!   disasters: each round repairs every block that has a complete tuple,
//!   newly repaired blocks enable further repairs next round (§V.C.4).
//! * [`writer::WriteScheduler`] — the Fig 10 write-performance model:
//!   full-writes vs deferred buckets as a function of s and p.
//! * [`puncture`] — the storage-overhead reduction sketched in §III
//!   ("Reducing Storage Overhead"): deterministically skip storing a
//!   fraction of parities.
//! * [`upgrade`] — dynamic fault tolerance: raise α without re-encoding
//!   existing blocks (§I: "alpha entanglements permit changes in the
//!   parameters without the need to encode the content again").
//! * [`tamper`] — the anti-tampering cost analysis of §III: how many blocks
//!   an attacker must rewrite to alter one data block undetectably.
//!
//! # Quickstart
//!
//! Encode through the scheme-agnostic API — the same code works for any
//! [`RedundancyScheme`] (swap in `ae_baselines::ReedSolomon` or
//! `ae_baselines::Replication` and nothing else changes):
//!
//! ```
//! use ae_core::{BlockMap, Code, RedundancyScheme};
//! use ae_blocks::{Block, BlockId, NodeId};
//! use ae_lattice::Config;
//!
//! // AE(3,2,5): triple entanglement, the paper's 5-HEC equivalent.
//! let code = Code::new(Config::new(3, 2, 5).unwrap(), 64);
//! let store = BlockMap::new();
//!
//! // Batch-first encoding: data and parities stream into any BlockSink
//! // (everything is &self; schemes and backends are shared-by-default).
//! let blocks: Vec<Block> = (0u8..100).map(|n| Block::from_vec(vec![n; 64])).collect();
//! let report = code.encode_batch(&blocks, &store).unwrap();
//! assert_eq!(report.data_written(), 100);
//!
//! // Lose a data block; repair it with a single XOR of two parities.
//! let lost = BlockId::Data(NodeId(42));
//! let original = store.remove(&lost).unwrap();
//! let repaired = code.repair_block(&store, lost, 100).unwrap();
//! assert_eq!(repaired, original);
//!
//! // Failed repairs say *which* tuple members were missing.
//! let err = code.repair_block(&BlockMap::new(), lost, 100).unwrap_err();
//! assert!(!err.missing_blocks().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod code;
pub mod decoder;
pub mod encoder;
pub mod puncture;
pub mod repair;
pub mod tamper;
pub mod upgrade;
pub mod writer;

pub use ae_api::{
    AeError, BlockRepo, BlockSink, BlockSource, EncodeReport, RedundancyScheme, RepairCost,
    RepairError, RepairSummary,
};
pub use code::{BlockMap, Code};
pub use encoder::{EntangleOutput, Entangler};
pub use repair::{RepairEngine, RepairReport};
pub use writer::{WriteReport, WriteScheduler};

use ae_blocks::{BlockId, NodeId};
use ae_lattice::LatticeBlock;

/// Converts a byte-plane block id to the lattice analysis plane.
///
/// # Panics
///
/// Panics on ids that are not lattice blocks (Reed-Solomon shards,
/// replicas); use `LatticeBlock::try_from` for a fallible conversion.
pub fn to_lattice(id: BlockId) -> LatticeBlock {
    LatticeBlock::try_from(id)
        .unwrap_or_else(|id| panic!("{id} is not an entanglement lattice block"))
}

/// Data-block id for a 1-based lattice position — a shorthand shared by
/// examples and tests.
pub fn data_id(i: u64) -> BlockId {
    BlockId::Data(NodeId(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_blocks::{EdgeId, StrandClass};

    #[test]
    fn lattice_conversion_roundtrip() {
        let ids = [
            BlockId::Data(NodeId(1)),
            BlockId::Data(NodeId(26)),
            BlockId::Parity(EdgeId::new(StrandClass::LeftHanded, NodeId(26))),
        ];
        for id in ids {
            assert_eq!(BlockId::try_from(to_lattice(id)), Ok(id));
        }
    }

    #[test]
    fn virtual_positions_rejected() {
        let err = BlockId::try_from(LatticeBlock::Node(0)).unwrap_err();
        assert_eq!(err.block, LatticeBlock::Node(0));
        assert!(err.to_string().contains("virtual"));
    }

    #[test]
    #[should_panic(expected = "not an entanglement lattice block")]
    fn to_lattice_rejects_foreign_ids() {
        to_lattice(BlockId::Shard(ae_blocks::ShardId {
            stripe: 1,
            index: 0,
        }));
    }
}
