//! Anti-tampering cost analysis (§III "Anti-tampering Property").
//!
//! "To go undetected, an attacker should modify the α strands in which the
//! targeted block participates by replacing all the parities computed from
//! its position to the closest strand extremity." Because every parity on a
//! strand after position `i` transitively depends on `d_i`, altering `d_i`
//! forces recomputing every following parity on all α strands. This module
//! quantifies that cost; it grows with lattice size, so tampering becomes
//! harder the longer the system lives.

use ae_blocks::StrandClass;
use ae_lattice::{strand, Config};

/// Cost to tamper with one data block undetectably.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TamperReport {
    /// Target node position.
    pub node: u64,
    /// Parities to recompute per strand class, in class order.
    pub per_strand: Vec<(StrandClass, u64)>,
}

impl TamperReport {
    /// Total parity blocks the attacker must rewrite.
    pub fn total_parities(&self) -> u64 {
        self.per_strand.iter().map(|(_, n)| n).sum()
    }

    /// Total blocks to rewrite, including the data block itself.
    pub fn total_blocks(&self) -> u64 {
        self.total_parities() + 1
    }
}

/// Computes the tamper cost for node `i` in a lattice of `n` written nodes:
/// on each of its α strands, every parity from `i`'s output to the strand's
/// current end must be recomputed.
pub fn tamper_cost(cfg: &Config, i: u64, n: u64) -> TamperReport {
    assert!(i >= 1 && i <= n, "node {i} outside lattice 1..={n}");
    let per_strand = cfg
        .classes()
        .iter()
        .map(|&class| {
            (
                class,
                strand::parities_to_strand_end(cfg, class, i as i64, n as i64),
            )
        })
        .collect();
    TamperReport {
        node: i,
        per_strand,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_covers_alpha_strands() {
        let cfg = Config::new(3, 5, 5).unwrap();
        let r = tamper_cost(&cfg, 26, 1000);
        assert_eq!(r.per_strand.len(), 3);
        assert!(r.per_strand.iter().all(|&(_, n)| n > 0));
        assert_eq!(r.total_blocks(), r.total_parities() + 1);
    }

    #[test]
    fn older_blocks_cost_more() {
        let cfg = Config::new(3, 2, 5).unwrap();
        let early = tamper_cost(&cfg, 10, 10_000).total_parities();
        let late = tamper_cost(&cfg, 9_990, 10_000).total_parities();
        assert!(
            early > 100 * late.max(1) / 10,
            "early {early} should dwarf late {late}"
        );
    }

    #[test]
    fn cost_grows_with_lattice_size() {
        // Permanent storage keeps appending, so tampering any fixed block
        // keeps getting more expensive.
        let cfg = Config::new(2, 2, 2).unwrap();
        let small = tamper_cost(&cfg, 100, 1_000).total_parities();
        let large = tamper_cost(&cfg, 100, 100_000).total_parities();
        assert!(large > small);
    }

    #[test]
    fn single_chain_cost_is_distance_to_end() {
        let cfg = Config::single();
        let r = tamper_cost(&cfg, 7, 10);
        // Outputs of nodes 7, 8, 9, 10.
        assert_eq!(r.total_parities(), 4);
    }

    #[test]
    #[should_panic(expected = "outside lattice")]
    fn rejects_out_of_range_node() {
        tamper_cost(&Config::single(), 11, 10);
    }
}
