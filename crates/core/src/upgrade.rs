//! Dynamic fault tolerance: raising α without re-encoding.
//!
//! "Alpha entanglements permit changes in the parameters without the need to
//! encode the content again. This property opens the possibility of a
//! dynamic fault-tolerance, which is an interesting feature for long-term
//! storage systems" (§I); §III suggests "start with a low α and increase the
//! value later as required".
//!
//! This works because each strand class is computed independently from the
//! data stream: the horizontal parities of AE(2,s,p) are byte-identical to
//! those of AE(3,s,p), so adding the left-handed class only requires
//! streaming the data blocks once and storing the new parities. Existing
//! blocks are untouched.

use crate::encoder::Entangler;
use ae_blocks::{Block, BlockError, EdgeId};
use ae_lattice::Config;
use std::fmt;

/// Errors from an upgrade request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpgradeError {
    /// α may only increase; re-encoding would otherwise be required.
    AlphaNotIncreased {
        /// Current α.
        from: u8,
        /// Requested α.
        to: u8,
    },
    /// The strand geometry (s, and p when helical classes already exist)
    /// must be preserved, or existing parities become invalid.
    GeometryChanged {
        /// Current configuration.
        from: Config,
        /// Requested configuration.
        to: Config,
    },
    /// A data block failed to entangle (size mismatch).
    Block(BlockError),
}

impl fmt::Display for UpgradeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpgradeError::AlphaNotIncreased { from, to } => {
                write!(f, "upgrade must increase alpha, got {from} -> {to}")
            }
            UpgradeError::GeometryChanged { from, to } => {
                write!(f, "upgrade may not change strand geometry: {from} -> {to}")
            }
            UpgradeError::Block(e) => write!(f, "upgrade failed on a block: {e}"),
        }
    }
}

impl std::error::Error for UpgradeError {}

impl From<BlockError> for UpgradeError {
    fn from(e: BlockError) -> Self {
        UpgradeError::Block(e)
    }
}

/// Validates that `to` is reachable from `from` without re-encoding:
/// α strictly increases, `s` is unchanged, and `p` is unchanged whenever
/// `from` already has helical strands.
pub fn validate(from: &Config, to: &Config) -> Result<(), UpgradeError> {
    if to.alpha() <= from.alpha() {
        return Err(UpgradeError::AlphaNotIncreased {
            from: from.alpha(),
            to: to.alpha(),
        });
    }
    let geometry_ok = from.s() == to.s() && (from.alpha() == 1 || from.p() == to.p());
    if !geometry_ok {
        return Err(UpgradeError::GeometryChanged {
            from: *from,
            to: *to,
        });
    }
    Ok(())
}

/// Streams the data blocks of an existing lattice (positions 1, 2, … in
/// order) and produces the parities of the strand classes present in `to`
/// but not in `from`. Existing data and parity blocks are untouched.
///
/// # Errors
///
/// Fails if the upgrade is invalid (see [`validate`]) or a block has the
/// wrong size.
pub fn upgrade_parities(
    from: &Config,
    to: &Config,
    block_size: usize,
    data: impl IntoIterator<Item = Block>,
) -> Result<Vec<(EdgeId, Block)>, UpgradeError> {
    validate(from, to)?;
    let old_classes = from.classes();
    // Run a full encoder for the new configuration and keep only the new
    // classes' parities. The XOR work for old classes is redundant but
    // correctness-critical paths stay identical to the primary encoder.
    let mut enc = Entangler::new(*to, block_size);
    let mut out = Vec::new();
    for block in data {
        let produced = enc.entangle(block)?;
        for (edge, parity) in produced.parities {
            if !old_classes.contains(&edge.class) {
                out.push((edge, parity));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_blocks::{BlockId, NodeId};

    fn data(n: u64, len: usize) -> Vec<Block> {
        (0..n)
            .map(|k| {
                Block::from_vec(
                    (0..len)
                        .map(|b| (k as u8).wrapping_mul(7).wrapping_add(b as u8))
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn validation_rules() {
        let ae1 = Config::single();
        let ae2 = Config::new(2, 1, 3).unwrap();
        let ae3 = Config::new(3, 1, 3).unwrap();
        let ae3_other_p = Config::new(3, 1, 4).unwrap();
        let ae2_s2 = Config::new(2, 2, 3).unwrap();

        assert!(validate(&ae1, &ae2).is_ok(), "AE(1) -> AE(2,1,p) adds RH");
        assert!(validate(&ae2, &ae3).is_ok(), "AE(2) -> AE(3) same geometry");
        assert!(matches!(
            validate(&ae2, &ae2),
            Err(UpgradeError::AlphaNotIncreased { .. })
        ));
        assert!(matches!(
            validate(&ae3, &ae2),
            Err(UpgradeError::AlphaNotIncreased { .. })
        ));
        assert!(matches!(
            validate(&ae2, &ae3_other_p),
            Err(UpgradeError::GeometryChanged { .. })
        ));
        assert!(matches!(
            validate(&ae1, &ae2_s2),
            Err(UpgradeError::GeometryChanged { .. })
        ));
    }

    /// Upgrading AE(2,2,5) to AE(3,2,5): existing H and RH parities stay
    /// byte-identical; the produced LH parities equal a from-scratch
    /// AE(3,2,5) encoding.
    #[test]
    fn upgrade_produces_exactly_the_missing_class() {
        let from = Config::new(2, 2, 5).unwrap();
        let to = Config::new(3, 2, 5).unwrap();
        let blocks = data(150, 16);

        // From-scratch AE(3,2,5) encoding as ground truth.
        let truth = ae_api::BlockMap::new();
        let mut enc3 = Entangler::new(to, 16);
        for b in &blocks {
            enc3.entangle(b.clone()).unwrap().insert_into(&truth);
        }

        let new_parities = upgrade_parities(&from, &to, 16, blocks.clone()).unwrap();
        assert_eq!(new_parities.len(), 150, "one LH parity per data block");
        for (edge, parity) in &new_parities {
            assert_eq!(edge.class, ae_blocks::StrandClass::LeftHanded);
            assert_eq!(
                truth.get(&BlockId::Parity(*edge)).as_ref(),
                Some(parity),
                "{edge:?}"
            );
        }

        // Old H/RH parities are already identical between AE(2) and AE(3).
        let mut enc2 = Entangler::new(from, 16);
        for (k, b) in blocks.iter().enumerate() {
            let out2 = enc2.entangle(b.clone()).unwrap();
            for (edge, parity) in &out2.parities {
                assert_eq!(
                    truth.get(&BlockId::Parity(*edge)).as_ref(),
                    Some(parity),
                    "block {k} class {}",
                    edge.class
                );
            }
        }
    }

    /// After an upgrade the store behaves as a native AE(3) lattice:
    /// a data block survives the loss of both its old-class tuples.
    #[test]
    fn upgraded_lattice_gains_fault_tolerance() {
        use crate::code::Code;
        use ae_blocks::{EdgeId, StrandClass};

        let from = Config::new(2, 1, 2).unwrap();
        let to = Config::new(3, 1, 2).unwrap();
        let blocks = data(60, 8);

        let store = ae_api::BlockMap::new();
        let mut enc = Entangler::new(from, 8);
        for b in &blocks {
            enc.entangle(b.clone()).unwrap().insert_into(&store);
        }
        for (e, p) in upgrade_parities(&from, &to, 8, blocks.clone()).unwrap() {
            store.insert(BlockId::Parity(e), p);
        }

        // Destroy d30 and its H and RH output parities: before the upgrade
        // this could be fatal; with LH present it repairs.
        let code = Code::new(to, 8);
        let original = store.remove(&BlockId::Data(NodeId(30))).unwrap();
        store.remove(&BlockId::Parity(EdgeId::new(
            StrandClass::Horizontal,
            NodeId(30),
        )));
        store.remove(&BlockId::Parity(EdgeId::new(
            StrandClass::RightHanded,
            NodeId(30),
        )));
        let repaired = code
            .repair_block(&store, BlockId::Data(NodeId(30)), 60)
            .unwrap();
        assert_eq!(repaired, original);
    }

    #[test]
    fn upgrade_propagates_block_errors() {
        let from = Config::single();
        let to = Config::new(2, 1, 1).unwrap();
        let result = upgrade_parities(&from, &to, 8, vec![Block::zero(9)]);
        assert!(matches!(result, Err(UpgradeError::Block(_))));
    }

    #[test]
    fn error_display() {
        let e = UpgradeError::AlphaNotIncreased { from: 3, to: 2 };
        assert!(e.to_string().contains("increase"));
        let e = UpgradeError::GeometryChanged {
            from: Config::single(),
            to: Config::new(2, 2, 2).unwrap(),
        };
        assert!(e.to_string().contains("geometry"));
    }
}
