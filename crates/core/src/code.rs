//! The [`Code`] facade: one object tying configuration, block size, encoder
//! and decoder together.

use crate::decoder;
use crate::encoder::Entangler;
use crate::repair::RepairEngine;
use ae_blocks::{Block, BlockId};
use ae_lattice::Config;
use std::collections::HashMap;

/// In-memory block container used throughout the byte plane: block id →
/// contents. Presence in the map *is* availability.
pub type BlockMap = HashMap<BlockId, Block>;

/// An alpha entanglement code bound to a block size.
///
/// See the crate-level example for end-to-end usage.
#[derive(Debug, Clone)]
pub struct Code {
    cfg: Config,
    block_size: usize,
    zero: Block,
}

impl Code {
    /// Creates a code for blocks of `block_size` bytes.
    pub fn new(cfg: Config, block_size: usize) -> Self {
        Code {
            cfg,
            block_size,
            zero: Block::zero(block_size),
        }
    }

    /// The code configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The cached all-zero block (virtual strand-head parity).
    pub fn zero_block(&self) -> &Block {
        &self.zero
    }

    /// A fresh streaming encoder for this code.
    pub fn entangler(&self) -> Entangler {
        Entangler::new(self.cfg, self.block_size)
    }

    /// Repairs a single block from the store (one XOR of two blocks), given
    /// that `max_node` data blocks have been written to the lattice.
    ///
    /// Returns `None` if no complete repair tuple is available.
    pub fn repair_block(&self, store: &BlockMap, id: BlockId, max_node: u64) -> Option<Block> {
        let mut lookup = |id: BlockId| store.get(&id).cloned();
        decoder::repair_block(&self.cfg, id, max_node, &self.zero, &mut lookup)
            .map(|r| r.block)
    }

    /// A round-based global repair engine for disasters affecting many
    /// blocks at once.
    pub fn repair_engine(&self, max_node: u64) -> RepairEngine<'_> {
        RepairEngine::new(&self.cfg, max_node, &self.zero)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_blocks::NodeId;

    #[test]
    fn facade_roundtrip() {
        let code = Code::new(Config::new(2, 2, 5).unwrap(), 32);
        assert_eq!(code.block_size(), 32);
        assert_eq!(code.config().alpha(), 2);
        assert!(code.zero_block().is_zero());

        let mut store = BlockMap::new();
        let mut enc = code.entangler();
        for k in 0..60u8 {
            enc.entangle(Block::from_vec(vec![k; 32]))
                .unwrap()
                .insert_into(&mut store);
        }
        let lost = BlockId::Data(NodeId(30));
        let original = store.remove(&lost).unwrap();
        assert_eq!(code.repair_block(&store, lost, 60).unwrap(), original);
    }

    #[test]
    fn repair_block_returns_none_without_tuples() {
        let code = Code::new(Config::single(), 8);
        let store = BlockMap::new(); // nothing stored at all
        assert!(code.repair_block(&store, BlockId::Data(NodeId(5)), 10).is_none());
    }
}
