//! The [`Code`] facade: one object tying configuration, block size, encoder
//! and decoder together — and the alpha-entanglement implementation of
//! [`RedundancyScheme`].

use crate::decoder;
use crate::encoder::Entangler;
use crate::repair::RepairEngine;
use ae_api::{
    AeError, BlockSink, BlockSource, EncodeReport, RedundancyScheme, RepairCost, RepairError,
    SnapshotReader, SnapshotWriter,
};
use ae_blocks::{Block, BlockId, EdgeId, NodeId};
use ae_lattice::{rules, Config};
use parking_lot::Mutex;

/// In-memory block container used throughout the byte plane: block id →
/// contents. Presence in the map *is* availability.
///
/// Re-exported from [`ae_api`], where the [`ae_api::BlockSource`] /
/// [`ae_api::BlockSink`] impls live.
pub type BlockMap = ae_api::BlockMap;

/// An alpha entanglement code bound to a block size.
///
/// `Code` owns the streaming encoder state behind a lock, so one value is
/// both the encoder ([`Code::encode_batch`] via [`RedundancyScheme`]) and
/// the decoder ([`Code::repair_block`], [`Code::repair_engine`]) — and can
/// be shared (`Arc<Code>`, `Arc<dyn RedundancyScheme>`) between an
/// archive, a plane and repair workers. See the crate-level example for
/// end-to-end usage.
#[derive(Debug)]
pub struct Code {
    cfg: Config,
    zero: Block,
    entangler: Mutex<Entangler>,
}

impl Clone for Code {
    fn clone(&self) -> Self {
        Code {
            cfg: self.cfg,
            zero: self.zero.clone(),
            entangler: Mutex::new(self.entangler.lock().clone()),
        }
    }
}

impl Code {
    /// Creates a code for blocks of `block_size` bytes.
    pub fn new(cfg: Config, block_size: usize) -> Self {
        Code {
            cfg,
            zero: Block::zero(block_size),
            entangler: Mutex::new(Entangler::new(cfg, block_size)),
        }
    }

    /// The code configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.zero.len()
    }

    /// The cached all-zero block (virtual strand-head parity).
    pub fn zero_block(&self) -> &Block {
        &self.zero
    }

    /// Data blocks encoded through this code so far.
    pub fn written(&self) -> u64 {
        self.entangler.lock().written()
    }

    /// A fresh streaming encoder for this code, independent of the code's
    /// own encoding state (for brokers that manage their own stream).
    pub fn entangler(&self) -> Entangler {
        Entangler::new(*self.config(), self.block_size())
    }

    /// Repairs a single block from the store (one XOR of two blocks), given
    /// that `max_node` data blocks have been written to the lattice.
    ///
    /// # Errors
    ///
    /// [`RepairError::NoCompleteTuple`] naming the unavailable tuple
    /// members when no repair option is complete.
    pub fn repair_block(
        &self,
        source: &impl BlockSource,
        id: BlockId,
        max_node: u64,
    ) -> Result<Block, RepairError> {
        let mut lookup = |id: BlockId| source.fetch(id);
        decoder::repair_block(self.config(), id, max_node, &self.zero, &mut lookup).map(|r| r.block)
    }

    /// A round-based global repair engine for disasters affecting many
    /// blocks at once.
    pub fn repair_engine(&self, max_node: u64) -> RepairEngine<'_> {
        RepairEngine::new(self.config(), max_node, &self.zero)
    }

    /// Whether the input parity of node `i` on `class` is available
    /// (virtual inputs before the lattice are always available).
    fn input_available(
        &self,
        class: ae_blocks::StrandClass,
        i: i64,
        avail: &dyn Fn(BlockId) -> bool,
    ) -> bool {
        let h = rules::input_source(self.config(), class, i);
        h < 1 || avail(BlockId::Parity(EdgeId::new(class, NodeId(h as u64))))
    }
}

impl RedundancyScheme for Code {
    fn scheme_name(&self) -> String {
        self.config().name()
    }

    fn data_written(&self) -> u64 {
        self.written()
    }

    fn repair_cost(&self) -> RepairCost {
        RepairCost::new(
            Config::SINGLE_FAILURE_READS,
            self.config().storage_overhead_pct() as f64,
        )
    }

    fn encode_batch(
        &self,
        blocks: &[Block],
        sink: &dyn BlockSink,
    ) -> Result<EncodeReport, AeError> {
        self.entangler.lock().entangle_batch(blocks, sink)
    }

    /// Version 1: `[counter u64, block_size u64]`. The strand-frontier
    /// parities themselves live on the backend (every parity is stored
    /// permanently), so the snapshot is just the write counter — exactly
    /// the broker recovery of §IV.A — plus the block size, so restoring
    /// into a code with mismatched parameters fails typed at open instead
    /// of confusingly at the next encode.
    fn frontier_snapshot(&self) -> Vec<u8> {
        SnapshotWriter::new(1)
            .u64(self.written())
            .u64(self.block_size() as u64)
            .finish()
    }

    fn restore_frontier(&self, snapshot: &[u8], source: &dyn BlockSource) -> Result<(), AeError> {
        let name = self.scheme_name();
        let mut r = SnapshotReader::new(snapshot, 1, &name)?;
        let counter = r.u64()?;
        let block_size = r.u64()?;
        r.finish()?;
        if block_size != self.block_size() as u64 {
            return Err(AeError::CorruptFrontier {
                detail: format!(
                    "{name}: snapshot encodes {block_size}-byte blocks, this code {}",
                    self.block_size()
                ),
            });
        }
        let restored = Entangler::restore(self.cfg, self.block_size(), counter, |e| {
            source.fetch(BlockId::Parity(e))
        })
        .map_err(|e| AeError::FrontierBlockMissing {
            id: BlockId::Parity(e),
        })?;
        *self.entangler.lock() = restored;
        Ok(())
    }

    fn repair_block(
        &self,
        source: &dyn BlockSource,
        id: BlockId,
        data_blocks: u64,
    ) -> Result<Block, RepairError> {
        let mut lookup = |id: BlockId| source.fetch(id);
        decoder::repair_block(self.config(), id, data_blocks, &self.zero, &mut lookup)
            .map(|r| r.block)
    }

    fn block_ids(&self, data_blocks: u64) -> Vec<BlockId> {
        let classes = self.config().classes();
        let mut out = Vec::with_capacity(data_blocks as usize * (1 + classes.len()));
        for i in 1..=data_blocks {
            out.push(BlockId::Data(NodeId(i)));
            for &class in classes {
                out.push(BlockId::Parity(EdgeId::new(class, NodeId(i))));
            }
        }
        out
    }

    fn is_repairable(
        &self,
        id: BlockId,
        data_blocks: u64,
        avail: &dyn Fn(BlockId) -> bool,
    ) -> bool {
        match id {
            BlockId::Data(NodeId(i)) => self.config().classes().iter().any(|&class| {
                self.input_available(class, i as i64, avail)
                    && avail(BlockId::Parity(EdgeId::new(class, NodeId(i))))
            }),
            BlockId::Parity(e) => {
                let i = e.left.0 as i64;
                // Left dp-tuple: d_i and i's input parity on the class.
                if avail(BlockId::Data(e.left)) && self.input_available(e.class, i, avail) {
                    return true;
                }
                // Right dp-tuple: d_j and j's output parity on the class.
                let j = rules::output_target(self.config(), e.class, i);
                j as u64 <= data_blocks
                    && avail(BlockId::Data(NodeId(j as u64)))
                    && avail(BlockId::Parity(EdgeId::new(e.class, NodeId(j as u64))))
            }
            _ => false,
        }
    }

    fn universe_len(&self, data_blocks: u64) -> u64 {
        data_blocks * (1 + self.config().alpha() as u64)
    }

    fn dense_index(&self, id: &BlockId, data_blocks: u64) -> Option<u32> {
        // block_ids order: per node i, the data block then its α output
        // parities in class order — a fixed stride of 1 + α per node.
        let stride = 1 + self.config().alpha() as u64;
        let idx = match *id {
            BlockId::Data(NodeId(i)) if (1..=data_blocks).contains(&i) => (i - 1) * stride,
            BlockId::Parity(e) if (1..=data_blocks).contains(&e.left.0) => {
                if e.class.index() >= self.config().alpha() as usize {
                    return None; // class not present at this α
                }
                (e.left.0 - 1) * stride + 1 + e.class.index() as u64
            }
            _ => return None,
        };
        u32::try_from(idx).ok()
    }

    fn block_at(&self, k: u32, data_blocks: u64) -> Option<BlockId> {
        // Inverse of dense_index: position k → node 1 + k / stride, then
        // the data block or the (k mod stride − 1)-th class parity.
        let stride = 1 + self.config().alpha() as u64;
        let (i, r) = (u64::from(k) / stride + 1, u64::from(k) % stride);
        if i > data_blocks {
            return None;
        }
        Some(if r == 0 {
            BlockId::Data(NodeId(i))
        } else {
            BlockId::Parity(EdgeId::new(
                self.config().classes()[r as usize - 1],
                NodeId(i),
            ))
        })
    }

    fn supports_dense_index(&self) -> bool {
        true
    }

    fn maintenance_targets(&self, missing_data: &[BlockId], _data_blocks: u64) -> Vec<BlockId> {
        // The parities of a missing data block's pp-tuples: repairing them
        // is what unlocks the data repair ("some parities are repaired if
        // they are part of the same stripe of an unavailable data block",
        // §V.C.2).
        let mut out = Vec::new();
        for id in missing_data {
            let BlockId::Data(NodeId(i)) = *id else {
                continue;
            };
            for &class in self.config().classes() {
                let h = rules::input_source(self.config(), class, i as i64);
                if h >= 1 {
                    out.push(BlockId::Parity(EdgeId::new(class, NodeId(h as u64))));
                }
                out.push(BlockId::Parity(EdgeId::new(class, NodeId(i))));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_blocks::NodeId;

    #[test]
    fn facade_roundtrip() {
        let code = Code::new(Config::new(2, 2, 5).unwrap(), 32);
        assert_eq!(code.block_size(), 32);
        assert_eq!(code.config().alpha(), 2);
        assert!(code.zero_block().is_zero());

        let store = BlockMap::new();
        let mut enc = code.entangler();
        for k in 0..60u8 {
            enc.entangle(Block::from_vec(vec![k; 32]))
                .unwrap()
                .insert_into(&store);
        }
        let lost = BlockId::Data(NodeId(30));
        let original = store.remove(&lost).unwrap();
        assert_eq!(code.repair_block(&store, lost, 60).unwrap(), original);
    }

    #[test]
    fn repair_block_reports_missing_tuples() {
        let code = Code::new(Config::single(), 8);
        let store = BlockMap::new(); // nothing stored at all
        let err = code
            .repair_block(&store, BlockId::Data(NodeId(5)), 10)
            .unwrap_err();
        assert!(matches!(
            err,
            RepairError::NoCompleteTuple {
                target: BlockId::Data(NodeId(5)),
                ..
            }
        ));
        assert!(!err.missing_blocks().is_empty());
    }

    #[test]
    fn scheme_impl_encode_and_repair() {
        let code = Code::new(Config::new(3, 2, 5).unwrap(), 16);
        let store = BlockMap::new();
        let blocks: Vec<Block> = (0..80u8).map(|k| Block::from_vec(vec![k; 16])).collect();
        let report = code.encode_batch(&blocks, &store).unwrap();
        assert_eq!(report.data_written(), 80);
        assert_eq!(report.redundancy_written(), 240);
        assert_eq!(code.data_written(), 80);
        assert_eq!(code.scheme_name(), "AE(3,2,5)");
        assert_eq!(code.repair_cost().single_failure_reads, 2);

        let victim = BlockId::Data(NodeId(40));
        let original = store.remove(&victim).unwrap();
        let scheme: &dyn RedundancyScheme = &code;
        let repaired = scheme.repair_block(&store, victim, 80).unwrap();
        assert_eq!(repaired, original);
    }

    #[test]
    fn frontier_snapshot_restores_bit_identical_encoding() {
        let cfg = Config::new(3, 2, 5).unwrap();
        let code = Code::new(cfg, 16);
        let store = BlockMap::new();
        let blocks: Vec<Block> = (0..77u8).map(|k| Block::from_vec(vec![k; 16])).collect();
        code.encode_batch(&blocks, &store).unwrap();
        let snap = code.frontier_snapshot();

        // A fresh instance restored from backend + snapshot continues
        // exactly where the original stopped.
        let resumed = Code::new(cfg, 16);
        resumed.restore_frontier(&snap, &store).unwrap();
        assert_eq!(resumed.data_written(), 77);
        let more: Vec<Block> = (77..99u8).map(|k| Block::from_vec(vec![k; 16])).collect();
        let a = BlockMap::new();
        let b = BlockMap::new();
        code.encode_batch(&more, &a).unwrap();
        resumed.encode_batch(&more, &b).unwrap();
        assert_eq!(a, b, "post-restore encoding is bit-identical");

        // Losing a frontier parity makes the restore name it.
        let frontier_edge = EdgeId::new(ae_blocks::StrandClass::Horizontal, NodeId(77));
        store.remove(&BlockId::Parity(frontier_edge));
        let broken = Code::new(cfg, 16);
        assert!(matches!(
            broken.restore_frontier(&snap, &store),
            Err(AeError::FrontierBlockMissing { id }) if id.is_parity()
        ));
        // Garbage snapshots are typed, never a panic.
        assert!(matches!(
            broken.restore_frontier(&[9, 9], &store),
            Err(AeError::CorruptFrontier { .. })
        ));
    }

    #[test]
    fn dense_index_matches_block_ids_enumeration() {
        for cfg in [
            Config::single(),
            Config::new(2, 2, 5).unwrap(),
            Config::new(3, 2, 5).unwrap(),
        ] {
            let code = Code::new(cfg, 0);
            assert!(code.supports_dense_index());
            let n = 37;
            let ids = code.block_ids(n);
            assert_eq!(code.universe_len(n), ids.len() as u64, "{}", cfg.name());
            for (k, id) in ids.iter().enumerate() {
                assert_eq!(
                    code.dense_index(id, n),
                    Some(k as u32),
                    "{}: {id}",
                    cfg.name()
                );
                assert_eq!(code.block_at(k as u32, n), Some(*id), "{}: {k}", cfg.name());
            }
            assert_eq!(code.block_at(ids.len() as u32, n), None);
            // Outside the universe: virtual positions, absent classes,
            // foreign schemes.
            assert_eq!(code.dense_index(&BlockId::Data(NodeId(0)), n), None);
            assert_eq!(code.dense_index(&BlockId::Data(NodeId(n + 1)), n), None);
            if cfg.alpha() < 3 {
                let absent =
                    BlockId::Parity(EdgeId::new(ae_blocks::StrandClass::LeftHanded, NodeId(1)));
                assert_eq!(code.dense_index(&absent, n), None);
            }
            let foreign = BlockId::Shard(ae_blocks::ShardId {
                stripe: 0,
                index: 0,
            });
            assert_eq!(code.dense_index(&foreign, n), None);
        }
    }

    #[test]
    fn scheme_structure_matches_lattice() {
        let code = Code::new(Config::new(3, 2, 5).unwrap(), 16);
        let ids = code.block_ids(10);
        assert_eq!(ids.len(), 40, "10 data + 30 parities");
        assert!(ids[0].is_data() && ids[1].is_parity());

        // A fully available lattice: everything is repairable.
        let all = |_: BlockId| true;
        for &id in &ids {
            assert!(code.is_repairable(id, 10, &all), "{id}");
        }
        // Nothing available: nothing is repairable.
        let none = |_: BlockId| false;
        assert!(!code.is_repairable(ids[0], 10, &none));

        // Maintenance targets of a missing data block are its tuple
        // parities: α output edges plus the real input edges.
        let targets = code.maintenance_targets(&[BlockId::Data(NodeId(8))], 10);
        assert!(targets.len() >= 3, "{targets:?}");
        assert!(targets.iter().all(|t| t.is_parity()));
    }
}
