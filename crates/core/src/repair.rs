//! Round-based global repair.
//!
//! After a disaster, many blocks are missing at once. "At each round, our AE
//! decoder computes 1 XOR between two available blocks for any data and
//! parity blocks that is repaired. When data blocks cannot be repaired at
//! the first round, the decoder will do it at the second round if other
//! required data or parity block becomes available" (§V.C.4). Repairs
//! within one round read only blocks available at the start of the round,
//! so a round models one parallel wave of distributed repairs; the number
//! of rounds to fixpoint is the paper's Table VI metric.

use crate::decoder;
use ae_api::{BlockSink, BlockSource};
use ae_blocks::{Block, BlockId};
use ae_lattice::Config;

/// Statistics of one repair round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundStats {
    /// Blocks repaired this round (data + parity).
    pub repaired: usize,
    /// Of which data blocks.
    pub data_repaired: usize,
}

/// Outcome of a global repair.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// Per-round statistics, in order.
    pub rounds: Vec<RoundStats>,
    /// Targets the decoder could not reconstruct (a dead pattern remains).
    pub unrecovered: Vec<BlockId>,
}

impl RepairReport {
    /// Number of rounds that made progress.
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }

    /// Total blocks repaired.
    pub fn total_repaired(&self) -> usize {
        self.rounds.iter().map(|r| r.repaired).sum()
    }

    /// Total data blocks repaired.
    pub fn total_data_repaired(&self) -> usize {
        self.rounds.iter().map(|r| r.data_repaired).sum()
    }

    /// Data blocks repaired in round 1 — the paper's *single failures*: one
    /// XOR of two available blocks with no dependency on other repairs
    /// (§V.C.3, Fig 13).
    pub fn single_failure_data_repairs(&self) -> usize {
        self.rounds.first().map_or(0, |r| r.data_repaired)
    }

    /// Whether every target was reconstructed.
    pub fn fully_recovered(&self) -> bool {
        self.unrecovered.is_empty()
    }
}

/// Round-based repair engine over an in-memory block map.
#[derive(Debug)]
pub struct RepairEngine<'a> {
    cfg: &'a Config,
    max_node: u64,
    zero: &'a Block,
}

impl<'a> RepairEngine<'a> {
    /// Creates an engine for a lattice with nodes `1..=max_node`; `zero` is
    /// the all-zero block of the lattice's block size.
    pub fn new(cfg: &'a Config, max_node: u64, zero: &'a Block) -> Self {
        RepairEngine {
            cfg,
            max_node,
            zero,
        }
    }

    /// Repairs `targets` in rounds until fixpoint. Repaired blocks are
    /// inserted into `store` (any [`BlockSource`] + [`BlockSink`], e.g. the
    /// in-memory [`crate::BlockMap`] or an `ae-store` store); each round
    /// only reads blocks present at the round's start.
    pub fn repair_all(
        &self,
        store: &(impl BlockSource + BlockSink + ?Sized),
        targets: impl IntoIterator<Item = BlockId>,
    ) -> RepairReport {
        let mut missing: Vec<BlockId> = targets.into_iter().filter(|&id| !store.has(id)).collect();
        let mut rounds = Vec::new();
        while !missing.is_empty() {
            // Plan all repairs against the round-start snapshot…
            let mut planned: Vec<(BlockId, Block)> = Vec::new();
            let mut still_missing = Vec::new();
            for &id in &missing {
                let mut lookup = |q: BlockId| store.fetch(q);
                match decoder::repair_block(self.cfg, id, self.max_node, self.zero, &mut lookup) {
                    Ok(r) => planned.push((id, r.block)),
                    Err(_) => still_missing.push(id),
                }
            }
            if planned.is_empty() {
                break; // fixpoint: a dead pattern remains
            }
            // …then commit them together, making them visible next round.
            let stats = RoundStats {
                repaired: planned.len(),
                data_repaired: planned.iter().filter(|(id, _)| id.is_data()).count(),
            };
            for (id, block) in planned {
                store.store(id, block);
            }
            rounds.push(stats);
            missing = still_missing;
        }
        RepairReport {
            rounds,
            unrecovered: missing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::{BlockMap, Code};
    use ae_blocks::{EdgeId, NodeId, StrandClass};

    fn build(cfg: Config, n: u64, len: usize) -> (Code, BlockMap) {
        let code = Code::new(cfg, len);
        let store = BlockMap::new();
        let mut enc = code.entangler();
        for k in 0..n {
            enc.entangle(Block::from_vec(vec![(k % 251) as u8; len]))
                .unwrap()
                .insert_into(&store);
        }
        (code, store)
    }

    /// Deleting scattered single blocks repairs in one round, one XOR each.
    #[test]
    fn scattered_singles_repair_in_one_round() {
        let cfg = Config::new(3, 2, 5).unwrap();
        let (code, store) = build(cfg, 300, 16);
        let full = store.clone();
        let victims: Vec<BlockId> = vec![
            BlockId::Data(NodeId(50)),
            BlockId::Data(NodeId(120)),
            BlockId::Parity(EdgeId::new(StrandClass::RightHanded, NodeId(200))),
        ];
        for v in &victims {
            store.remove(v);
        }
        let report = code.repair_engine(300).repair_all(&store, victims.clone());
        assert!(report.fully_recovered());
        assert_eq!(report.round_count(), 1);
        assert_eq!(report.total_repaired(), 3);
        assert_eq!(report.single_failure_data_repairs(), 2);
        for v in &victims {
            assert_eq!(store.get(v), full.get(v), "{v:?}");
        }
    }

    /// A clustered failure needs multiple rounds: repairing the cluster's
    /// data blocks through surviving helical strands in round 1 unlocks the
    /// horizontal parities in round 2.
    #[test]
    fn clustered_failure_needs_multiple_rounds() {
        let cfg = Config::new(3, 2, 5).unwrap();
        let (code, store) = build(cfg, 400, 8);
        let full = store.clone();
        // Erase a contiguous range of nodes together with their horizontal
        // parities: the H pp-tuples are gone, so data blocks must repair via
        // RH/LH first, and the H parities only become repairable afterwards.
        let mut victims = Vec::new();
        for i in 100..=140u64 {
            victims.push(BlockId::Data(NodeId(i)));
            victims.push(BlockId::Parity(EdgeId::new(
                StrandClass::Horizontal,
                NodeId(i),
            )));
        }
        for v in &victims {
            store.remove(v);
        }
        let report = code.repair_engine(400).repair_all(&store, victims.clone());
        assert!(
            report.fully_recovered(),
            "unrecovered: {:?}",
            report.unrecovered
        );
        assert!(report.round_count() > 1, "rounds: {:?}", report.rounds);
        for v in &victims {
            assert_eq!(store.get(v), full.get(v), "{v:?}");
        }
    }

    /// A minimal erasure pattern is genuinely irrecoverable; the engine
    /// reports it rather than looping.
    #[test]
    fn dead_pattern_reported_unrecovered() {
        let cfg = Config::new(2, 1, 1).unwrap();
        let (code, store) = build(cfg, 100, 8);
        // Fig 7 A: two adjacent nodes plus both parallel edges between them.
        let victims = vec![
            BlockId::Data(NodeId(50)),
            BlockId::Data(NodeId(51)),
            BlockId::Parity(EdgeId::new(StrandClass::Horizontal, NodeId(50))),
            BlockId::Parity(EdgeId::new(StrandClass::RightHanded, NodeId(50))),
        ];
        for v in &victims {
            store.remove(v);
        }
        let report = code.repair_engine(100).repair_all(&store, victims.clone());
        assert!(!report.fully_recovered());
        assert_eq!(report.unrecovered.len(), 4);
        assert_eq!(report.round_count(), 0);
    }

    /// Removing a dead pattern plus extra repairable blocks: the decoder
    /// recovers everything outside the dead core.
    #[test]
    fn partial_recovery_around_dead_core() {
        let cfg = Config::new(2, 1, 1).unwrap();
        let (code, store) = build(cfg, 100, 8);
        let mut victims = vec![
            BlockId::Data(NodeId(50)),
            BlockId::Data(NodeId(51)),
            BlockId::Parity(EdgeId::new(StrandClass::Horizontal, NodeId(50))),
            BlockId::Parity(EdgeId::new(StrandClass::RightHanded, NodeId(50))),
        ];
        // Plus repairable extras.
        victims.push(BlockId::Data(NodeId(10)));
        victims.push(BlockId::Parity(EdgeId::new(
            StrandClass::Horizontal,
            NodeId(70),
        )));
        for v in &victims {
            store.remove(v);
        }
        let report = code.repair_engine(100).repair_all(&store, victims);
        assert_eq!(report.unrecovered.len(), 4);
        assert_eq!(report.total_repaired(), 2);
    }

    #[test]
    fn already_present_targets_are_skipped() {
        let cfg = Config::single();
        let (code, store) = build(cfg, 20, 8);
        let report = code
            .repair_engine(20)
            .repair_all(&store, vec![BlockId::Data(NodeId(5))]);
        assert_eq!(report.round_count(), 0);
        assert!(report.fully_recovered());
    }
}
