//! Single-block repairs.
//!
//! "The decoder repairs a node using two adjacent edges that belong to the
//! same strand, thus, there are α options. \[It\] repairs an edge using any of
//! the two incident nodes on the damaged edge and its corresponding adjacent
//! edge, hence, there are always two options" (§III.B). Each repair is one
//! XOR of two blocks — the fixed "k = 2" single-failure cost of Table IV.
//!
//! Functions here take a lookup closure rather than a concrete container so
//! they serve both the in-memory [`ae_api::BlockMap`] and the distributed
//! stores in `ae-store`. On failure they return
//! [`RepairError::NoCompleteTuple`] naming exactly the unavailable blocks
//! that blocked every repair option — so operators see *which* tuple
//! members to chase, not a bare `None`.

use ae_api::RepairError;
use ae_blocks::{Block, BlockId, EdgeId, NodeId, StrandClass};
use ae_lattice::{rules, Config};

/// How a successful repair was performed (for accounting: every variant
/// costs exactly two block reads, or one at a strand head).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairPath {
    /// Data block rebuilt from its pp-tuple on this strand class.
    NodeViaStrand(StrandClass),
    /// Parity rebuilt from its left dp-tuple (`d_i` and `p_{h,i}`).
    EdgeFromLeft,
    /// Parity rebuilt from its right dp-tuple (`d_j` and `p_{j,k}`).
    EdgeFromRight,
}

/// A repaired block plus the path used.
#[derive(Debug, Clone)]
pub struct Repaired {
    /// The reconstructed contents.
    pub block: Block,
    /// Which tuple produced it.
    pub path: RepairPath,
}

/// Records the unavailable members of failed repair options, deduplicated
/// in option order.
fn note_missing(missing: &mut Vec<BlockId>, id: BlockId) {
    if !missing.contains(&id) {
        missing.push(id);
    }
}

/// Attempts to repair data block `d_i` from any complete pp-tuple.
///
/// `lookup` returns the contents of currently *available* blocks; `zero` is
/// the all-zero block of the lattice's size (virtual parities at strand
/// heads).
///
/// # Errors
///
/// [`RepairError::NoCompleteTuple`] when no strand has both incident
/// parities, listing every unavailable tuple member.
pub fn repair_node(
    cfg: &Config,
    i: u64,
    zero: &Block,
    lookup: &mut impl FnMut(BlockId) -> Option<Block>,
) -> Result<Repaired, RepairError> {
    let mut missing = Vec::new();
    for &class in cfg.classes() {
        let h = rules::input_source(cfg, class, i as i64);
        let input_id = (h >= 1).then(|| BlockId::Parity(EdgeId::new(class, NodeId(h as u64))));
        let output_id = BlockId::Parity(EdgeId::new(class, NodeId(i)));
        let input = match input_id {
            Some(id) => lookup(id),
            None => Some(zero.clone()),
        };
        let output = lookup(output_id);
        match (input, output) {
            (Some(input), Some(output)) => {
                let block = input.xor(&output).expect("lattice blocks share one size");
                return Ok(Repaired {
                    block,
                    path: RepairPath::NodeViaStrand(class),
                });
            }
            (input, output) => {
                if input.is_none() {
                    note_missing(
                        &mut missing,
                        input_id.expect("virtual inputs always resolve"),
                    );
                }
                if output.is_none() {
                    note_missing(&mut missing, output_id);
                }
            }
        }
    }
    Err(RepairError::NoCompleteTuple {
        target: BlockId::Data(NodeId(i)),
        missing,
    })
}

/// Attempts to repair parity `p_{i,j}` (edge `(class, i)`) from either
/// dp-tuple. `max_node` bounds the written lattice: the right option needs
/// `d_j` to exist.
///
/// # Errors
///
/// [`RepairError::NoCompleteTuple`] listing the unavailable members of
/// both tuples (members beyond `max_node` do not exist and are omitted).
pub fn repair_edge(
    cfg: &Config,
    edge: EdgeId,
    max_node: u64,
    zero: &Block,
    lookup: &mut impl FnMut(BlockId) -> Option<Block>,
) -> Result<Repaired, RepairError> {
    let i = edge.left.0 as i64;
    let mut missing = Vec::new();
    // Left tuple: p_{i,j} = d_i XOR p_{h,i}.
    let d_id = BlockId::Data(NodeId(i as u64));
    let h = rules::input_source(cfg, edge.class, i);
    let input_id = (h >= 1).then(|| BlockId::Parity(EdgeId::new(edge.class, NodeId(h as u64))));
    let d = lookup(d_id);
    let input = match input_id {
        Some(id) => lookup(id),
        None => Some(zero.clone()),
    };
    match (d, input) {
        (Some(d), Some(input)) => {
            return Ok(Repaired {
                block: d.xor(&input).expect("lattice blocks share one size"),
                path: RepairPath::EdgeFromLeft,
            });
        }
        (d, input) => {
            if d.is_none() {
                note_missing(&mut missing, d_id);
            }
            if input.is_none() {
                note_missing(
                    &mut missing,
                    input_id.expect("virtual inputs always resolve"),
                );
            }
        }
    }
    // Right tuple: p_{i,j} = d_j XOR p_{j,k}.
    let j = rules::output_target(cfg, edge.class, i);
    if j as u64 <= max_node {
        let dj_id = BlockId::Data(NodeId(j as u64));
        let next_id = BlockId::Parity(EdgeId::new(edge.class, NodeId(j as u64)));
        match (lookup(dj_id), lookup(next_id)) {
            (Some(d), Some(next)) => {
                return Ok(Repaired {
                    block: d.xor(&next).expect("lattice blocks share one size"),
                    path: RepairPath::EdgeFromRight,
                });
            }
            (d, next) => {
                if d.is_none() {
                    note_missing(&mut missing, dj_id);
                }
                if next.is_none() {
                    note_missing(&mut missing, next_id);
                }
            }
        }
    }
    Err(RepairError::NoCompleteTuple {
        target: BlockId::Parity(edge),
        missing,
    })
}

/// Attempts to repair any block by id.
///
/// # Errors
///
/// [`RepairError::NoCompleteTuple`] when no repair option is complete;
/// [`RepairError::ForeignBlock`] for ids that are not lattice blocks
/// (Reed-Solomon shards, replicas).
pub fn repair_block(
    cfg: &Config,
    id: BlockId,
    max_node: u64,
    zero: &Block,
    lookup: &mut impl FnMut(BlockId) -> Option<Block>,
) -> Result<Repaired, RepairError> {
    match id {
        BlockId::Data(n) => repair_node(cfg, n.0, zero, lookup),
        BlockId::Parity(e) => repair_edge(cfg, e, max_node, zero, lookup),
        other => Err(RepairError::ForeignBlock { id: other }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Entangler;
    use std::collections::HashMap;

    fn build(cfg: Config, n: u64, len: usize) -> HashMap<BlockId, Block> {
        let mut enc = Entangler::new(cfg, len);
        let store = ae_api::BlockMap::new();
        for k in 0..n {
            enc.entangle(Block::from_vec(vec![k as u8; len]))
                .unwrap()
                .insert_into(&store);
        }
        store.entries().into_iter().collect()
    }

    fn lookup_in(store: &HashMap<BlockId, Block>) -> impl FnMut(BlockId) -> Option<Block> + '_ {
        move |id| store.get(&id).cloned()
    }

    #[test]
    fn node_repair_uses_each_strand() {
        let cfg = Config::new(3, 2, 5).unwrap();
        let mut store = build(cfg, 200, 16);
        let zero = Block::zero(16);
        let original = store.remove(&BlockId::Data(NodeId(100))).unwrap();

        // Full store: repairs via the first class (horizontal).
        let r = repair_node(&cfg, 100, &zero, &mut lookup_in(&store)).unwrap();
        assert_eq!(r.block, original);
        assert_eq!(r.path, RepairPath::NodeViaStrand(StrandClass::Horizontal));

        // Knock out the horizontal tuple: falls over to RH.
        store.remove(&BlockId::Parity(EdgeId::new(
            StrandClass::Horizontal,
            NodeId(100),
        )));
        let r = repair_node(&cfg, 100, &zero, &mut lookup_in(&store)).unwrap();
        assert_eq!(r.block, original);
        assert_eq!(r.path, RepairPath::NodeViaStrand(StrandClass::RightHanded));

        // Knock out RH too: falls over to LH.
        store.remove(&BlockId::Parity(EdgeId::new(
            StrandClass::RightHanded,
            NodeId(100),
        )));
        let r = repair_node(&cfg, 100, &zero, &mut lookup_in(&store)).unwrap();
        assert_eq!(r.block, original);
        assert_eq!(r.path, RepairPath::NodeViaStrand(StrandClass::LeftHanded));

        // All three output parities gone: no pp-tuple is complete, and the
        // error lists exactly the three missing outputs.
        store.remove(&BlockId::Parity(EdgeId::new(
            StrandClass::LeftHanded,
            NodeId(100),
        )));
        let err = repair_node(&cfg, 100, &zero, &mut lookup_in(&store)).unwrap_err();
        match err {
            RepairError::NoCompleteTuple { target, missing } => {
                assert_eq!(target, BlockId::Data(NodeId(100)));
                assert_eq!(missing.len(), 3, "{missing:?}");
                for class in [
                    StrandClass::Horizontal,
                    StrandClass::RightHanded,
                    StrandClass::LeftHanded,
                ] {
                    assert!(missing.contains(&BlockId::Parity(EdgeId::new(class, NodeId(100)))));
                }
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn edge_repair_left_and_right() {
        let cfg = Config::new(3, 5, 5).unwrap();
        let mut store = build(cfg, 40, 8);
        let zero = Block::zero(8);
        // Paper's example: repair p21,26 = XOR(d21, p16,21).
        let target = BlockId::Parity(EdgeId::new(StrandClass::Horizontal, NodeId(21)));
        let original = store.remove(&target).unwrap();
        let r = repair_edge(
            &cfg,
            EdgeId::new(StrandClass::Horizontal, NodeId(21)),
            40,
            &zero,
            &mut lookup_in(&store),
        )
        .unwrap();
        assert_eq!(r.block, original);
        assert_eq!(r.path, RepairPath::EdgeFromLeft);

        // Remove d21 as well: must fall back to the right tuple
        // p21,26 = XOR(d26, p26,31).
        store.remove(&BlockId::Data(NodeId(21)));
        let r = repair_edge(
            &cfg,
            EdgeId::new(StrandClass::Horizontal, NodeId(21)),
            40,
            &zero,
            &mut lookup_in(&store),
        )
        .unwrap();
        assert_eq!(r.block, original);
        assert_eq!(r.path, RepairPath::EdgeFromRight);
    }

    #[test]
    fn edge_at_tail_has_no_right_tuple() {
        let cfg = Config::single();
        let store = build(cfg, 10, 8);
        let zero = Block::zero(8);
        let mut partial: HashMap<BlockId, Block> = store.clone();
        // Remove the last edge and its left node: with only 10 nodes
        // written, d11 does not exist, so p10,11 is unrepairable — and the
        // error names only the left tuple's missing member.
        let target = EdgeId::new(StrandClass::Horizontal, NodeId(10));
        partial.remove(&BlockId::Parity(target));
        partial.remove(&BlockId::Data(NodeId(10)));
        let err = repair_edge(&cfg, target, 10, &zero, &mut lookup_in(&partial)).unwrap_err();
        assert_eq!(
            err,
            RepairError::NoCompleteTuple {
                target: BlockId::Parity(target),
                missing: vec![BlockId::Data(NodeId(10))],
            }
        );
    }

    #[test]
    fn strand_head_repairs_use_virtual_zero() {
        let cfg = Config::new(3, 2, 5).unwrap();
        let mut store = build(cfg, 50, 8);
        let zero = Block::zero(8);
        // Node 1's pp-tuples are (virtual, output): losing d1 still repairs.
        let original = store.remove(&BlockId::Data(NodeId(1))).unwrap();
        let r = repair_node(&cfg, 1, &zero, &mut lookup_in(&store)).unwrap();
        assert_eq!(r.block, original);
    }

    #[test]
    fn repair_block_dispatches() {
        let cfg = Config::new(2, 2, 2).unwrap();
        let mut store = build(cfg, 30, 8);
        let zero = Block::zero(8);
        let d = BlockId::Data(NodeId(15));
        let e = BlockId::Parity(EdgeId::new(StrandClass::RightHanded, NodeId(15)));
        let od = store.remove(&d).unwrap();
        let oe = store.remove(&e).unwrap();
        assert_eq!(
            repair_block(&cfg, d, 30, &zero, &mut lookup_in(&store))
                .unwrap()
                .block,
            od
        );
        assert_eq!(
            repair_block(&cfg, e, 30, &zero, &mut lookup_in(&store))
                .unwrap()
                .block,
            oe
        );
    }

    #[test]
    fn foreign_ids_rejected() {
        let cfg = Config::single();
        let store = build(cfg, 5, 8);
        let zero = Block::zero(8);
        let foreign = BlockId::Shard(ae_blocks::ShardId {
            stripe: 0,
            index: 0,
        });
        assert!(matches!(
            repair_block(&cfg, foreign, 5, &zero, &mut lookup_in(&store)),
            Err(RepairError::ForeignBlock { .. })
        ));
    }
}
