//! Single-block repairs.
//!
//! "The decoder repairs a node using two adjacent edges that belong to the
//! same strand, thus, there are α options. [It] repairs an edge using any of
//! the two incident nodes on the damaged edge and its corresponding adjacent
//! edge, hence, there are always two options" (§III.B). Each repair is one
//! XOR of two blocks — the fixed "k = 2" single-failure cost of Table IV.
//!
//! Functions here take a lookup closure rather than a concrete container so
//! they serve both the in-memory [`crate::BlockMap`] and the distributed
//! stores in `ae-store`.

use ae_blocks::{Block, BlockId, EdgeId, NodeId, StrandClass};
use ae_lattice::{rules, Config};

/// How a successful repair was performed (for accounting: every variant
/// costs exactly two block reads, or one at a strand head).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairPath {
    /// Data block rebuilt from its pp-tuple on this strand class.
    NodeViaStrand(StrandClass),
    /// Parity rebuilt from its left dp-tuple (`d_i` and `p_{h,i}`).
    EdgeFromLeft,
    /// Parity rebuilt from its right dp-tuple (`d_j` and `p_{j,k}`).
    EdgeFromRight,
}

/// A repaired block plus the path used.
#[derive(Debug, Clone)]
pub struct Repaired {
    /// The reconstructed contents.
    pub block: Block,
    /// Which tuple produced it.
    pub path: RepairPath,
}

/// Attempts to repair data block `d_i` from any complete pp-tuple.
///
/// `lookup` returns the contents of currently *available* blocks; `zero` is
/// the all-zero block of the lattice's size (virtual parities at strand
/// heads). Returns `None` when no strand has both incident parities.
pub fn repair_node(
    cfg: &Config,
    i: u64,
    zero: &Block,
    lookup: &mut impl FnMut(BlockId) -> Option<Block>,
) -> Option<Repaired> {
    for &class in cfg.classes() {
        let h = rules::input_source(cfg, class, i as i64);
        let input = if h >= 1 {
            lookup(BlockId::Parity(EdgeId::new(class, NodeId(h as u64))))
        } else {
            Some(zero.clone())
        };
        let Some(input) = input else { continue };
        let Some(output) = lookup(BlockId::Parity(EdgeId::new(class, NodeId(i)))) else {
            continue;
        };
        let block = input.xor(&output).expect("lattice blocks share one size");
        return Some(Repaired {
            block,
            path: RepairPath::NodeViaStrand(class),
        });
    }
    None
}

/// Attempts to repair parity `p_{i,j}` (edge `(class, i)`) from either
/// dp-tuple. `max_node` bounds the written lattice: the right option needs
/// `d_j` to exist.
pub fn repair_edge(
    cfg: &Config,
    edge: EdgeId,
    max_node: u64,
    zero: &Block,
    lookup: &mut impl FnMut(BlockId) -> Option<Block>,
) -> Option<Repaired> {
    let i = edge.left.0 as i64;
    // Left tuple: p_{i,j} = d_i XOR p_{h,i}.
    if let Some(d) = lookup(BlockId::Data(NodeId(i as u64))) {
        let h = rules::input_source(cfg, edge.class, i);
        let input = if h >= 1 {
            lookup(BlockId::Parity(EdgeId::new(edge.class, NodeId(h as u64))))
        } else {
            Some(zero.clone())
        };
        if let Some(input) = input {
            return Some(Repaired {
                block: d.xor(&input).expect("lattice blocks share one size"),
                path: RepairPath::EdgeFromLeft,
            });
        }
    }
    // Right tuple: p_{i,j} = d_j XOR p_{j,k}.
    let j = rules::output_target(cfg, edge.class, i);
    if j as u64 <= max_node {
        if let (Some(d), Some(next)) = (
            lookup(BlockId::Data(NodeId(j as u64))),
            lookup(BlockId::Parity(EdgeId::new(edge.class, NodeId(j as u64)))),
        ) {
            return Some(Repaired {
                block: d.xor(&next).expect("lattice blocks share one size"),
                path: RepairPath::EdgeFromRight,
            });
        }
    }
    None
}

/// Attempts to repair any block by id.
pub fn repair_block(
    cfg: &Config,
    id: BlockId,
    max_node: u64,
    zero: &Block,
    lookup: &mut impl FnMut(BlockId) -> Option<Block>,
) -> Option<Repaired> {
    match id {
        BlockId::Data(n) => repair_node(cfg, n.0, zero, lookup),
        BlockId::Parity(e) => repair_edge(cfg, e, max_node, zero, lookup),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Entangler;
    use std::collections::HashMap;

    fn build(cfg: Config, n: u64, len: usize) -> HashMap<BlockId, Block> {
        let mut enc = Entangler::new(cfg, len);
        let mut store = HashMap::new();
        for k in 0..n {
            enc.entangle(Block::from_vec(vec![k as u8; len]))
                .unwrap()
                .insert_into(&mut store);
        }
        store
    }

    fn lookup_in(store: &HashMap<BlockId, Block>) -> impl FnMut(BlockId) -> Option<Block> + '_ {
        move |id| store.get(&id).cloned()
    }

    #[test]
    fn node_repair_uses_each_strand() {
        let cfg = Config::new(3, 2, 5).unwrap();
        let mut store = build(cfg, 200, 16);
        let zero = Block::zero(16);
        let original = store.remove(&BlockId::Data(NodeId(100))).unwrap();

        // Full store: repairs via the first class (horizontal).
        let r = repair_node(&cfg, 100, &zero, &mut lookup_in(&store)).unwrap();
        assert_eq!(r.block, original);
        assert_eq!(r.path, RepairPath::NodeViaStrand(StrandClass::Horizontal));

        // Knock out the horizontal tuple: falls over to RH.
        store.remove(&BlockId::Parity(EdgeId::new(StrandClass::Horizontal, NodeId(100))));
        let r = repair_node(&cfg, 100, &zero, &mut lookup_in(&store)).unwrap();
        assert_eq!(r.block, original);
        assert_eq!(r.path, RepairPath::NodeViaStrand(StrandClass::RightHanded));

        // Knock out RH too: falls over to LH.
        store.remove(&BlockId::Parity(EdgeId::new(StrandClass::RightHanded, NodeId(100))));
        let r = repair_node(&cfg, 100, &zero, &mut lookup_in(&store)).unwrap();
        assert_eq!(r.block, original);
        assert_eq!(r.path, RepairPath::NodeViaStrand(StrandClass::LeftHanded));

        // All three output parities gone: no pp-tuple is complete.
        store.remove(&BlockId::Parity(EdgeId::new(StrandClass::LeftHanded, NodeId(100))));
        assert!(repair_node(&cfg, 100, &zero, &mut lookup_in(&store)).is_none());
    }

    #[test]
    fn edge_repair_left_and_right() {
        let cfg = Config::new(3, 5, 5).unwrap();
        let mut store = build(cfg, 40, 8);
        let zero = Block::zero(8);
        // Paper's example: repair p21,26 = XOR(d21, p16,21).
        let target = BlockId::Parity(EdgeId::new(StrandClass::Horizontal, NodeId(21)));
        let original = store.remove(&target).unwrap();
        let r = repair_edge(
            &cfg,
            EdgeId::new(StrandClass::Horizontal, NodeId(21)),
            40,
            &zero,
            &mut lookup_in(&store),
        )
        .unwrap();
        assert_eq!(r.block, original);
        assert_eq!(r.path, RepairPath::EdgeFromLeft);

        // Remove d21 as well: must fall back to the right tuple
        // p21,26 = XOR(d26, p26,31).
        store.remove(&BlockId::Data(NodeId(21)));
        let r = repair_edge(
            &cfg,
            EdgeId::new(StrandClass::Horizontal, NodeId(21)),
            40,
            &zero,
            &mut lookup_in(&store),
        )
        .unwrap();
        assert_eq!(r.block, original);
        assert_eq!(r.path, RepairPath::EdgeFromRight);
    }

    #[test]
    fn edge_at_tail_has_no_right_tuple() {
        let cfg = Config::single();
        let store = build(cfg, 10, 8);
        let zero = Block::zero(8);
        let mut partial: HashMap<BlockId, Block> = store.clone();
        // Remove the last edge and its left node: with only 10 nodes
        // written, d11 does not exist, so p10,11 is unrepairable.
        let target = EdgeId::new(StrandClass::Horizontal, NodeId(10));
        partial.remove(&BlockId::Parity(target));
        partial.remove(&BlockId::Data(NodeId(10)));
        assert!(repair_edge(&cfg, target, 10, &zero, &mut lookup_in(&partial)).is_none());
    }

    #[test]
    fn strand_head_repairs_use_virtual_zero() {
        let cfg = Config::new(3, 2, 5).unwrap();
        let mut store = build(cfg, 50, 8);
        let zero = Block::zero(8);
        // Node 1's pp-tuples are (virtual, output): losing d1 still repairs.
        let original = store.remove(&BlockId::Data(NodeId(1))).unwrap();
        let r = repair_node(&cfg, 1, &zero, &mut lookup_in(&store)).unwrap();
        assert_eq!(r.block, original);
    }

    #[test]
    fn repair_block_dispatches() {
        let cfg = Config::new(2, 2, 2).unwrap();
        let mut store = build(cfg, 30, 8);
        let zero = Block::zero(8);
        let d = BlockId::Data(NodeId(15));
        let e = BlockId::Parity(EdgeId::new(StrandClass::RightHanded, NodeId(15)));
        let od = store.remove(&d).unwrap();
        let oe = store.remove(&e).unwrap();
        assert_eq!(
            repair_block(&cfg, d, 30, &zero, &mut lookup_in(&store)).unwrap().block,
            od
        );
        assert_eq!(
            repair_block(&cfg, e, 30, &zero, &mut lookup_in(&store)).unwrap().block,
            oe
        );
    }
}
