//! Puncturing: trading fault tolerance for storage (§III "Reducing Storage
//! Overhead").
//!
//! "A second option is to puncture the code. Puncturing is a standard
//! technique used in coding theory in which, after encoding, some of the
//! parities are not stored in the system." The lattice is unchanged —
//! punctured parities are simply never written, and the decoder treats them
//! as missing blocks it may transiently reconstruct during repairs.

use ae_blocks::{EdgeId, StrandClass};
use ae_lattice::Config;
use serde::{Deserialize, Serialize};

/// A deterministic puncturing plan: which parities are actually stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PuncturePlan {
    /// Restrict puncturing to one strand class (`None` punctures all
    /// classes uniformly).
    pub class: Option<StrandClass>,
    /// Drop one of every `period` parities of the selected class(es);
    /// `period = 0` disables puncturing.
    pub period: u64,
}

impl PuncturePlan {
    /// No puncturing: every parity is stored.
    pub fn none() -> Self {
        PuncturePlan {
            class: None,
            period: 0,
        }
    }

    /// Punctures one in `period` parities across all classes.
    ///
    /// # Panics
    ///
    /// Panics if `period < 2` (dropping every parity of a class would break
    /// the strand entirely).
    pub fn every(period: u64) -> Self {
        assert!(period >= 2, "puncture period must be at least 2");
        PuncturePlan {
            class: None,
            period,
        }
    }

    /// Punctures one in `period` parities of a single class.
    ///
    /// # Panics
    ///
    /// Panics if `period < 2`.
    pub fn every_in_class(class: StrandClass, period: u64) -> Self {
        assert!(period >= 2, "puncture period must be at least 2");
        PuncturePlan {
            class: Some(class),
            period,
        }
    }

    /// Whether the parity `edge` is stored under this plan.
    pub fn is_stored(&self, edge: EdgeId) -> bool {
        if self.period == 0 {
            return true;
        }
        if let Some(c) = self.class {
            if edge.class != c {
                return true;
            }
        }
        !edge.left.0.is_multiple_of(self.period)
    }

    /// Fraction of parities dropped for a code with `cfg`'s α.
    pub fn drop_fraction(&self, cfg: &Config) -> f64 {
        if self.period == 0 {
            return 0.0;
        }
        let per_class = 1.0 / self.period as f64;
        match self.class {
            Some(c) if !cfg.classes().contains(&c) => 0.0,
            Some(_) => per_class / cfg.alpha() as f64,
            None => per_class,
        }
    }

    /// Effective additional storage after puncturing, as a percentage
    /// (the unpunctured value is `α · 100`, Table IV).
    pub fn effective_overhead_pct(&self, cfg: &Config) -> f64 {
        cfg.alpha() as f64 * 100.0 * (1.0 - self.drop_fraction(cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::{BlockMap, Code};
    use ae_blocks::{Block, BlockId, NodeId};

    #[test]
    fn none_stores_everything() {
        let plan = PuncturePlan::none();
        for i in 1..100 {
            assert!(plan.is_stored(EdgeId::new(StrandClass::Horizontal, NodeId(i))));
        }
        assert_eq!(plan.drop_fraction(&Config::single()), 0.0);
        assert_eq!(plan.effective_overhead_pct(&Config::single()), 100.0);
    }

    #[test]
    fn every_drops_expected_fraction() {
        let cfg = Config::new(3, 2, 5).unwrap();
        let plan = PuncturePlan::every(4);
        let stored = (1..=1000u64)
            .filter(|&i| plan.is_stored(EdgeId::new(StrandClass::Horizontal, NodeId(i))))
            .count();
        assert_eq!(stored, 750);
        assert!((plan.drop_fraction(&cfg) - 0.25).abs() < 1e-12);
        assert!((plan.effective_overhead_pct(&cfg) - 225.0).abs() < 1e-9);
    }

    #[test]
    fn class_restricted_puncturing() {
        let cfg = Config::new(3, 2, 5).unwrap();
        let plan = PuncturePlan::every_in_class(StrandClass::LeftHanded, 2);
        assert!(plan.is_stored(EdgeId::new(StrandClass::Horizontal, NodeId(4))));
        assert!(!plan.is_stored(EdgeId::new(StrandClass::LeftHanded, NodeId(4))));
        assert!(plan.is_stored(EdgeId::new(StrandClass::LeftHanded, NodeId(5))));
        // One class of three, half punctured: 1/6 of all parities.
        assert!((plan.drop_fraction(&cfg) - 1.0 / 6.0).abs() < 1e-12);
        // Puncturing a class the code does not have drops nothing.
        let cfg2 = Config::new(2, 2, 5).unwrap();
        assert_eq!(plan.drop_fraction(&cfg2), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_degenerate_period() {
        PuncturePlan::every(1);
    }

    /// A punctured lattice still repairs single data-block failures: the
    /// decoder reconstructs through strands whose parities survived.
    #[test]
    fn punctured_lattice_survives_single_failures() {
        let cfg = Config::new(3, 2, 5).unwrap();
        let code = Code::new(cfg, 8);
        let plan = PuncturePlan::every_in_class(StrandClass::LeftHanded, 2);

        let store = BlockMap::new();
        let mut enc = code.entangler();
        for k in 0..200u64 {
            let out = enc.entangle(Block::from_vec(vec![k as u8; 8])).unwrap();
            store.insert(BlockId::Data(out.node), out.data.clone());
            for (e, b) in &out.parities {
                if plan.is_stored(*e) {
                    store.insert(BlockId::Parity(*e), b.clone());
                }
            }
        }

        // Every interior data block must still be repairable alone.
        for i in 20..180u64 {
            let id = BlockId::Data(NodeId(i));
            let original = store.remove(&id).unwrap();
            let repaired = code
                .repair_block(&store, id, 200)
                .unwrap_or_else(|e| panic!("d{i} must repair via a surviving strand: {e}"));
            assert_eq!(repaired, original);
            store.insert(id, original);
        }
    }
}
