//! The streaming entanglement encoder.
//!
//! "The entanglement function computes the exclusive-or (XOR) of two
//! consecutive blocks at the head of a strand and inserts the output
//! adjacent to the last block" (§III). Concretely, when data block `d_i`
//! arrives, for each of its α strand classes the encoder XORs `d_i` with
//! the parity currently at the head of that strand (`p_{h,i}`, the output
//! of the strand's previous node, or the all-zero virtual parity if the
//! strand has not started) and emits the result as `p_{i,j}`.
//!
//! The encoder's working state — the *frontier* — is the last parity of
//! every strand: `s + (α−1)·p` blocks, exactly the broker memory footprint
//! described in §IV.A ("AE(3,5,5) requires to keep in memory the last
//! p-block of its 15 strands"). Because every parity is consumed by exactly
//! one later node, the frontier never grows beyond that bound.
//!
//! The frontier is stored flat, one slot per strand, with the strand of a
//! position resolved by table lookup (the strand structure repeats every
//! `s·p` positions) — no hashing on the hot path. The batch entry point
//! [`Entangler::entangle_batch`] is the preferred producer: it validates
//! once, skips the per-block output scaffolding and streams data plus
//! parities straight into a [`BlockSink`].

use ae_api::{AeError, BlockSink, EncodeReport};
use ae_blocks::{Block, BlockError, BlockId, EdgeId, NodeId};
use ae_lattice::{rules, Config};

/// The result of entangling one data block: the node it became and the α
/// parities the entanglement created.
#[derive(Debug, Clone)]
pub struct EntangleOutput {
    /// Position assigned to the data block.
    pub node: NodeId,
    /// The data block itself.
    pub data: Block,
    /// The α new parities, one per strand class, in class order.
    pub parities: Vec<(EdgeId, Block)>,
}

impl EntangleOutput {
    /// Inserts the data block and all parities into any backend (a "sealed
    /// bucket" write: the d-block plus its α parities, §V.B).
    pub fn insert_into(&self, store: &dyn BlockSink) {
        store.store(BlockId::Data(self.node), self.data.clone());
        for (e, b) in &self.parities {
            store.store(BlockId::Parity(*e), b.clone());
        }
    }

    /// All block ids this write produced.
    pub fn block_ids(&self) -> Vec<BlockId> {
        let mut out = vec![BlockId::Data(self.node)];
        out.extend(self.parities.iter().map(|(e, _)| BlockId::Parity(*e)));
        out
    }
}

/// Per-class strand table: which frontier slot each lattice position maps
/// to. The mapping is periodic in `s·p` (or `s` when no helical strands
/// exist), so one small table serves the whole infinite lattice.
#[derive(Debug, Clone)]
struct StrandTable {
    /// Slot of position `i` at `slot[(i-1) % period]`.
    slot: Vec<u16>,
    period: u64,
    /// Number of strands of this class.
    strands: u16,
}

impl StrandTable {
    fn new(cfg: &Config, class: ae_blocks::StrandClass) -> Self {
        let s = cfg.s() as i64;
        let p = cfg.p() as i64;
        let period = (s * p.max(1)) as usize;
        let mut slot = vec![u16::MAX; period];
        let mut strands = 0u16;
        // The backward map r -> input_source projects to a permutation of
        // the residues; label its cycles. Pick representatives far enough
        // from the origin that inputs are real positions.
        for r0 in 0..period {
            if slot[r0] != u16::MAX {
                continue;
            }
            let mut r = r0;
            loop {
                slot[r] = strands;
                let i = r as i64 + 1 + period as i64 * 4;
                let h = rules::input_source(cfg, class, i);
                let rh = (h - 1).rem_euclid(period as i64) as usize;
                if slot[rh] != u16::MAX {
                    break;
                }
                r = rh;
            }
            strands += 1;
        }
        StrandTable {
            slot,
            period: period as u64,
            strands,
        }
    }

    /// Frontier slot of the strand through position `i` (1-based).
    #[inline]
    fn slot_of(&self, i: u64) -> usize {
        self.slot[((i - 1) % self.period) as usize] as usize
    }
}

/// Streaming encoder for one entanglement lattice.
///
/// # Examples
///
/// ```
/// use ae_core::Entangler;
/// use ae_blocks::Block;
/// use ae_lattice::Config;
///
/// let mut enc = Entangler::new(Config::new(3, 5, 5).unwrap(), 16);
/// let out = enc.entangle(Block::from_vec(vec![7; 16])).unwrap();
/// assert_eq!(out.node.0, 1);
/// assert_eq!(out.parities.len(), 3);
/// // The first parity of a strand equals the data block (XOR with zero).
/// assert_eq!(out.parities[0].1, out.data);
/// ```
#[derive(Debug, Clone)]
pub struct Entangler {
    cfg: Config,
    block_size: usize,
    /// Last processed position (the paper's counter `c`).
    counter: u64,
    /// Per-class strand tables (class order).
    tables: Vec<StrandTable>,
    /// Strand frontier: the last parity of each live strand, flat per
    /// class. `None` before the strand has started.
    frontier: Vec<Vec<Option<Block>>>,
}

impl Entangler {
    /// Creates an encoder for blocks of `block_size` bytes.
    pub fn new(cfg: Config, block_size: usize) -> Self {
        let tables: Vec<StrandTable> = cfg
            .classes()
            .iter()
            .map(|&c| StrandTable::new(&cfg, c))
            .collect();
        let frontier = tables
            .iter()
            .map(|t| vec![None; t.strands as usize])
            .collect();
        Entangler {
            cfg,
            block_size,
            counter: 0,
            tables,
            frontier,
        }
    }

    /// The code configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Number of data blocks entangled so far.
    pub fn written(&self) -> u64 {
        self.counter
    }

    /// Current frontier size in parities. Once the lattice is warmed up this
    /// equals [`Config::strand_count`].
    pub fn memory_footprint(&self) -> usize {
        self.frontier
            .iter()
            .flatten()
            .filter(|s| s.is_some())
            .count()
    }

    /// Restores the frontier from previously stored parities, as a broker
    /// does after a crash ("If the broker crashes, it only needs to retrieve
    /// the p-blocks from the remote nodes", §IV.A).
    ///
    /// `counter` is the last written position; `fetch` must return the
    /// stored parity for each in-flight edge id it is asked for.
    ///
    /// # Errors
    ///
    /// Returns the edge id for which `fetch` produced nothing.
    pub fn restore(
        cfg: Config,
        block_size: usize,
        counter: u64,
        mut fetch: impl FnMut(EdgeId) -> Option<Block>,
    ) -> Result<Self, EdgeId> {
        let mut enc = Entangler::new(cfg, block_size);
        enc.counter = counter;
        // In-flight edges: produced by a node ≤ counter but consumed by a
        // node > counter. Producers lie within one maximal forward span of
        // the counter, so scan that window.
        let span = (cfg.s() as i64 * cfg.p().max(1) as i64 + cfg.s() as i64 + 2).max(4);
        for (c, &class) in cfg.classes().iter().enumerate() {
            for h in ((counter as i64 - span).max(1))..=(counter as i64) {
                if rules::output_target(&cfg, class, h) > counter as i64 {
                    let e = EdgeId::new(class, NodeId(h as u64));
                    let block = fetch(e).ok_or(e)?;
                    let slot = enc.tables[c].slot_of(h as u64);
                    enc.frontier[c][slot] = Some(block);
                }
            }
        }
        Ok(enc)
    }

    /// Produces the α parities of position `i` for `data`, updating the
    /// frontier, and hands each `(edge, parity)` to `emit`.
    #[inline]
    fn tangle_one(&mut self, i: u64, data: &Block, mut emit: impl FnMut(EdgeId, &Block)) {
        for (c, &class) in self.cfg.classes().iter().enumerate() {
            let h = rules::input_source(&self.cfg, class, i as i64);
            let slot = self.tables[c].slot_of(i);
            let parity = if h >= 1 {
                // Consume: each parity is input to exactly one entanglement.
                let input = self.frontier[c][slot]
                    .take()
                    .expect("frontier holds the last parity of every live strand");
                data.xor(&input).expect("sizes validated on entry")
            } else {
                // Strand head: XOR with the virtual zero parity.
                data.clone()
            };
            let out_edge = EdgeId::new(class, NodeId(i));
            emit(out_edge, &parity);
            self.frontier[c][slot] = Some(parity);
        }
    }

    /// Entangles the next data block, assigning it position `counter + 1`
    /// and producing α parities.
    ///
    /// Prefer [`Entangler::entangle_batch`] when blocks arrive in groups;
    /// it amortises validation and skips the per-block output scaffolding.
    ///
    /// # Errors
    ///
    /// Fails with [`BlockError::SizeMismatch`] if the block size differs
    /// from the lattice's.
    pub fn entangle(&mut self, data: Block) -> Result<EntangleOutput, BlockError> {
        if data.len() != self.block_size {
            return Err(BlockError::SizeMismatch {
                expected: self.block_size,
                actual: data.len(),
            });
        }
        let i = self.counter + 1;
        let mut parities = Vec::with_capacity(self.cfg.alpha() as usize);
        self.tangle_one(i, &data, |edge, parity| {
            parities.push((edge, parity.clone()))
        });
        self.counter = i;
        Ok(EntangleOutput {
            node: NodeId(i),
            data,
            parities,
        })
    }

    /// Entangles a batch of data blocks, writing data and parities straight
    /// into `sink` — the hot path used by the archive, the simulations and
    /// the benches.
    ///
    /// Equivalent to calling [`Entangler::entangle`] once per block and
    /// inserting every output, but validates the whole slice up front and
    /// allocates no per-block scaffolding.
    ///
    /// # Errors
    ///
    /// Fails with [`AeError::SizeMismatch`] — before writing anything — if
    /// any block's size differs from the lattice's.
    pub fn entangle_batch(
        &mut self,
        blocks: &[Block],
        sink: &dyn BlockSink,
    ) -> Result<EncodeReport, AeError> {
        for b in blocks {
            if b.len() != self.block_size {
                return Err(AeError::SizeMismatch {
                    expected: self.block_size,
                    actual: b.len(),
                });
            }
        }
        let first_node = self.counter + 1;
        let mut ids = Vec::with_capacity(blocks.len() * (1 + self.cfg.alpha() as usize));
        for data in blocks {
            let i = self.counter + 1;
            sink.store(BlockId::Data(NodeId(i)), data.clone());
            ids.push(BlockId::Data(NodeId(i)));
            self.tangle_one(i, data, |edge, parity| {
                sink.store(BlockId::Parity(edge), parity.clone());
                ids.push(BlockId::Parity(edge));
            });
            self.counter = i;
        }
        Ok(EncodeReport { first_node, ids })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_blocks::StrandClass::*;
    use ae_blocks::{xor, StrandClass};
    use std::collections::HashMap;

    fn blk(seed: u8, len: usize) -> Block {
        Block::from_vec(
            (0..len)
                .map(|k| seed.wrapping_add(k as u8).wrapping_mul(31))
                .collect(),
        )
    }

    fn run_encoder(cfg: Config, n: u64, len: usize) -> (Entangler, HashMap<BlockId, Block>) {
        let mut enc = Entangler::new(cfg, len);
        let store = ae_api::BlockMap::new();
        for k in 0..n {
            let out = enc.entangle(blk(k as u8, len)).unwrap();
            out.insert_into(&store);
        }
        // Snapshot into a plain map for the indexing-heavy assertions.
        (enc, store.entries().into_iter().collect())
    }

    #[test]
    fn produces_alpha_parities_per_block() {
        for (a, s, p) in [(1u8, 1u16, 0u16), (2, 2, 3), (3, 2, 5)] {
            let cfg = Config::new(a, s, p).unwrap();
            let mut enc = Entangler::new(cfg, 8);
            let out = enc.entangle(blk(1, 8)).unwrap();
            assert_eq!(out.parities.len(), a as usize);
            assert_eq!(out.block_ids().len(), 1 + a as usize);
        }
    }

    #[test]
    fn frontier_is_bounded_by_strand_count() {
        let cfg = Config::new(3, 5, 5).unwrap();
        let (enc, _) = run_encoder(cfg, 500, 8);
        assert_eq!(
            enc.memory_footprint(),
            cfg.strand_count() as usize,
            "AE(3,5,5) keeps the last p-block of its 15 strands (§IV.A)"
        );
        assert_eq!(enc.written(), 500);
    }

    #[test]
    fn strand_tables_count_strands() {
        // s horizontal strands, p per helical class (§III.B).
        for (a, s, p) in [(2u8, 2u16, 5u16), (3, 2, 5), (3, 5, 5), (2, 1, 3)] {
            let cfg = Config::new(a, s, p).unwrap();
            let enc = Entangler::new(cfg, 8);
            assert_eq!(enc.tables[0].strands, s, "{cfg} H strands");
            for t in &enc.tables[1..] {
                assert_eq!(t.strands, p, "{cfg} helical strands");
            }
        }
        let single = Entangler::new(Config::single(), 8);
        assert_eq!(single.tables[0].strands, 1);
    }

    /// Every parity must satisfy the entanglement identity
    /// p_{i,j} = d_i XOR p_{h,i} (with p_{h,i} = 0 at strand heads).
    #[test]
    fn parities_satisfy_entanglement_identity() {
        for (a, s, p) in [
            (1u8, 1u16, 0u16),
            (2, 1, 2),
            (2, 2, 5),
            (3, 2, 5),
            (3, 5, 5),
        ] {
            let cfg = Config::new(a, s, p).unwrap();
            let (_, store) = run_encoder(cfg, 300, 16);
            for i in 1..=300i64 {
                let d = &store[&BlockId::Data(NodeId(i as u64))];
                for &class in cfg.classes() {
                    let out_edge = BlockId::Parity(EdgeId::new(class, NodeId(i as u64)));
                    let h = rules::input_source(&cfg, class, i);
                    let expect = if h >= 1 {
                        let input = &store[&BlockId::Parity(EdgeId::new(class, NodeId(h as u64)))];
                        Block::from_vec(xor::xor_of(d.as_slice(), input.as_slice()))
                    } else {
                        d.clone()
                    };
                    assert_eq!(store[&out_edge], expect, "{cfg} node {i} class {class}");
                }
            }
        }
    }

    /// The batch path must be byte-identical to the streaming path.
    #[test]
    fn batch_matches_streaming() {
        for (a, s, p) in [(1u8, 1u16, 0u16), (2, 1, 2), (3, 2, 5), (3, 5, 5)] {
            let cfg = Config::new(a, s, p).unwrap();
            let blocks: Vec<Block> = (0..200).map(|k| blk(k as u8, 16)).collect();

            let (_, streamed) = run_encoder(cfg, 200, 16);
            let batched = ae_api::BlockMap::new();
            let mut enc = Entangler::new(cfg, 16);
            // Split into uneven batches to exercise batch boundaries.
            let report_a = enc.entangle_batch(&blocks[..37], &batched).unwrap();
            let report_b = enc.entangle_batch(&blocks[37..], &batched).unwrap();

            assert_eq!(report_a.first_node, 1);
            assert_eq!(report_b.first_node, 38);
            assert_eq!(report_a.data_written() + report_b.data_written(), 200);
            assert_eq!(enc.written(), 200);
            assert_eq!(batched.len(), streamed.len(), "{cfg}");
            for (id, block) in &streamed {
                assert_eq!(batched.get(id).as_ref(), Some(block), "{cfg}: {id}");
            }
        }
    }

    /// The paper's Table V worked example: in AE(3,5,5), block d26's six
    /// incident parities are p21,26 / p26,31 (h), p22,26 / p26,35 (lh),
    /// p25,26 / p26,32 (rh), and d26 is recoverable from any complete pair.
    #[test]
    fn table5_worked_example() {
        let cfg = Config::new(3, 5, 5).unwrap();
        let (_, store) = run_encoder(cfg, 40, 32);
        let d26 = store[&BlockId::Data(NodeId(26))].clone();
        let pairs: [(StrandClass, u64, u64); 3] = [
            (Horizontal, 21, 26),
            (RightHanded, 25, 26),
            (LeftHanded, 22, 26),
        ];
        for (class, h, i) in pairs {
            let input = &store[&BlockId::Parity(EdgeId::new(class, NodeId(h)))];
            let output = &store[&BlockId::Parity(EdgeId::new(class, NodeId(i)))];
            assert_eq!(
                input.xor(output).unwrap(),
                d26,
                "d26 = p[{class}]{h},26 XOR p[{class}]26,*"
            );
        }
    }

    #[test]
    fn rejects_wrong_block_size() {
        let mut enc = Entangler::new(Config::single(), 8);
        assert!(matches!(
            enc.entangle(Block::zero(9)),
            Err(BlockError::SizeMismatch {
                expected: 8,
                actual: 9
            })
        ));
        // The batch path rejects before writing anything.
        let store = ae_api::BlockMap::new();
        let result = enc.entangle_batch(&[Block::zero(8), Block::zero(9)], &store);
        assert!(matches!(
            result,
            Err(AeError::SizeMismatch {
                expected: 8,
                actual: 9
            })
        ));
        assert!(store.is_empty(), "failed batch must not write");
        assert_eq!(enc.written(), 0);
    }

    #[test]
    fn restore_resumes_identically() {
        let cfg = Config::new(3, 2, 5).unwrap();
        let n = 123;
        let (mut original, store) = run_encoder(cfg, n, 8);

        // Rebuild a broker from the stored parities alone.
        let mut restored =
            Entangler::restore(cfg, 8, n, |e| store.get(&BlockId::Parity(e)).cloned()).unwrap();
        assert_eq!(restored.memory_footprint(), original.memory_footprint());

        // Both encoders must produce identical parities from here on.
        for k in 0..50 {
            let a = original.entangle(blk(k, 8)).unwrap();
            let b = restored.entangle(blk(k, 8)).unwrap();
            assert_eq!(a.node, b.node);
            for ((ea, pa), (eb, pb)) in a.parities.iter().zip(&b.parities) {
                assert_eq!(ea, eb);
                assert_eq!(pa, pb);
            }
        }
    }

    #[test]
    fn restore_reports_missing_parity() {
        let cfg = Config::new(2, 2, 2).unwrap();
        let (_, store) = run_encoder(cfg, 50, 8);
        let result = Entangler::restore(cfg, 8, 50, |e| {
            // Withhold one frontier parity.
            if e.left == NodeId(50) {
                None
            } else {
                store.get(&BlockId::Parity(e)).cloned()
            }
        });
        assert!(matches!(result, Err(e) if e.left == NodeId(50)));
    }
}
