//! Write performance model (§V.B, Fig 10).
//!
//! "The values of parameters s and p impact on the number of data blocks
//! that need to wait to be entangled. When s = p, this number is maximized
//! and entanglements can be done in parallel operations." A *sealed bucket*
//! is a data block together with its α parities; a bucket can be sealed as
//! soon as all α input parities are at hand.
//!
//! The model: the writer appends one **column** (s data blocks) per wave
//! and keeps parities produced in the most recent `horizon` columns hot in
//! memory. A bucket is a **full-write** if every input parity it needs is
//! hot (was produced within the horizon); otherwise the bucket is written
//! *partially* and sealed `delay` waves later, where `delay` is how far
//! beyond the horizon its oldest input lies.
//!
//! With `s = p`, every input — including the helical wrap parities — is
//! produced exactly one column earlier, so a one-column horizon seals 100%
//! of buckets: Fig 10's left panel. With `p > s`, the wrap parities of top
//! (RH strand) and bottom (LH strand) nodes are `p − s + 1` columns old,
//! deferring 2 of every s·1 column's buckets: the right panel's partially
//! written buckets.

use ae_lattice::{rules, Config};
use serde::Serialize;

/// Result of simulating a batch of column writes.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WriteReport {
    /// Data blocks simulated.
    pub total: u64,
    /// Buckets sealed at write time (all inputs hot).
    pub full_writes: u64,
    /// Buckets deferred because some input had aged out of the horizon.
    pub deferred: u64,
    /// Largest deferral in waves (0 when everything sealed immediately).
    pub max_delay: u64,
    /// Sum of all deferrals, for averaging.
    pub total_delay: u64,
    /// Parities the writer must keep hot to avoid any deferral: the maximum
    /// input age over all blocks, in columns.
    pub required_horizon: u64,
}

impl WriteReport {
    /// Fraction of buckets sealed at write time.
    pub fn full_write_ratio(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.full_writes as f64 / self.total as f64
    }

    /// Mean deferral in waves across all buckets.
    pub fn mean_delay(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.total_delay as f64 / self.total as f64
    }
}

/// Simulator of the column-batched writer.
#[derive(Debug, Clone)]
pub struct WriteScheduler {
    cfg: Config,
    horizon: u64,
}

impl WriteScheduler {
    /// Creates a scheduler with a memory horizon of `horizon` columns
    /// (1 = only the previous column's parities are hot, the pipelined
    /// full-write regime of Fig 10).
    pub fn new(cfg: Config, horizon: u64) -> Self {
        assert!(horizon >= 1, "the previous column is always hot");
        WriteScheduler { cfg, horizon }
    }

    /// Age in columns of the oldest input parity of node `i` (0 for strand
    /// heads with virtual inputs).
    pub fn oldest_input_age(&self, i: i64) -> u64 {
        let col_i = rules::column(&self.cfg, i);
        self.cfg
            .classes()
            .iter()
            .map(|&class| {
                let h = rules::input_source(&self.cfg, class, i);
                if h < 1 {
                    0
                } else {
                    (col_i - rules::column(&self.cfg, h)) as u64
                }
            })
            .max()
            .unwrap_or(0)
    }

    /// Simulates writing `columns` columns starting at `start_column`
    /// (choose a start past the bootstrap region — e.g. `2p` — to measure
    /// steady state).
    pub fn simulate(&self, start_column: u64, columns: u64) -> WriteReport {
        let s = self.cfg.s() as u64;
        let mut report = WriteReport {
            total: 0,
            full_writes: 0,
            deferred: 0,
            max_delay: 0,
            total_delay: 0,
            required_horizon: 0,
        };
        for col in start_column..start_column + columns {
            for row in 0..s {
                let i = (col * s + row + 1) as i64;
                let age = self.oldest_input_age(i);
                report.total += 1;
                report.required_horizon = report.required_horizon.max(age);
                let delay = age.saturating_sub(self.horizon);
                if delay == 0 {
                    report.full_writes += 1;
                } else {
                    report.deferred += 1;
                    report.total_delay += delay;
                    report.max_delay = report.max_delay.max(delay);
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(a: u8, s: u16, p: u16) -> Config {
        Config::new(a, s, p).unwrap()
    }

    /// Fig 10 left panel: with s = p every bucket is a full-write under a
    /// one-column horizon.
    #[test]
    fn s_equals_p_seals_everything() {
        for (a, s, p) in [(3u8, 10u16, 10u16), (3, 5, 5), (2, 3, 3)] {
            let r = WriteScheduler::new(cfg(a, s, p), 1).simulate(2 * p as u64, 20);
            assert_eq!(r.deferred, 0, "AE({a},{s},{p}): {r:?}");
            assert_eq!(r.full_write_ratio(), 1.0);
            assert_eq!(r.required_horizon, 1, "all inputs one column back");
        }
    }

    /// Fig 10 right panel: with p > s the wrap parities of 2 rows per
    /// column age out of a one-column horizon.
    #[test]
    fn p_greater_than_s_defers_wrap_rows() {
        let c = cfg(3, 5, 10);
        let r = WriteScheduler::new(c, 1).simulate(20, 20);
        assert!(r.deferred > 0);
        // Exactly two deferred buckets per column: the RH wrap (top row)
        // and the LH wrap (bottom row).
        assert_eq!(r.deferred, 2 * 20);
        assert_eq!(r.full_writes + r.deferred, r.total);
        // Wrap inputs are p − s + 1 columns old.
        assert_eq!(r.required_horizon, (10 - 5 + 1) as u64);
        assert_eq!(r.max_delay, r.required_horizon - 1);
    }

    /// Increasing the horizon to the wrap distance restores full writes —
    /// the "keep more parities in memory" option of §V.B.
    #[test]
    fn larger_horizon_restores_full_writes() {
        let c = cfg(3, 5, 10);
        let needed = WriteScheduler::new(c, 1).simulate(20, 20).required_horizon;
        let r = WriteScheduler::new(c, needed).simulate(20, 20);
        assert_eq!(r.deferred, 0);
        assert_eq!(r.full_write_ratio(), 1.0);
    }

    /// α = 2 lacks the LH class, so only the top row defers.
    #[test]
    fn alpha2_defers_one_row_per_column() {
        let r = WriteScheduler::new(cfg(2, 4, 8), 1).simulate(16, 10);
        assert_eq!(r.deferred, 10);
    }

    /// Single entanglement never waits: the chain only ever needs the
    /// previous parity.
    #[test]
    fn single_chain_never_defers() {
        let r = WriteScheduler::new(Config::single(), 1).simulate(5, 50);
        assert_eq!(r.deferred, 0);
        assert!(r.mean_delay() == 0.0);
    }

    #[test]
    fn report_ratios() {
        let mut r = WriteReport {
            total: 10,
            full_writes: 8,
            deferred: 2,
            max_delay: 3,
            total_delay: 5,
            required_horizon: 4,
        };
        assert!((r.full_write_ratio() - 0.8).abs() < 1e-12);
        assert!((r.mean_delay() - 0.5).abs() < 1e-12);
        r.total = 0;
        assert_eq!(r.full_write_ratio(), 1.0);
        assert_eq!(r.mean_delay(), 0.0);
    }
}
