//! Property-based tests of the byte-plane encoder, decoder and repair
//! engine.

use ae_blocks::{Block, BlockId, EdgeId, NodeId};
use ae_core::{upgrade, BlockMap, Code, Entangler, WriteScheduler};
use ae_lattice::Config;
use proptest::prelude::*;

fn any_config() -> impl Strategy<Value = Config> {
    prop_oneof![
        Just(Config::single()),
        Just(Config::new(2, 1, 3).unwrap()),
        Just(Config::new(2, 2, 2).unwrap()),
        Just(Config::new(3, 2, 5).unwrap()),
        Just(Config::new(3, 4, 4).unwrap()),
    ]
}

fn build(cfg: Config, n: u64, seed: u64) -> (Code, BlockMap) {
    let code = Code::new(cfg, 24);
    let store = BlockMap::new();
    let mut enc = code.entangler();
    let mut state = seed | 1;
    for _ in 0..n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let bytes: Vec<u8> = (0..24).map(|k| (state >> (k & 31)) as u8).collect();
        enc.entangle(Block::from_vec(bytes))
            .unwrap()
            .insert_into(&store);
    }
    (code, store)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Deleting any single block and repairing restores identical bytes.
    #[test]
    fn single_block_repairs_byte_identical(
        cfg in any_config(),
        seed: u64,
        pos in 1u64..200,
        kind in 0u8..4,
    ) {
        let n = 260;
        let (code, store) = build(cfg, n, seed);
        let id = match kind % (1 + cfg.alpha()) {
            0 => BlockId::Data(NodeId(pos)),
            k => BlockId::Parity(EdgeId::new(cfg.classes()[(k - 1) as usize], NodeId(pos))),
        };
        let original = store.remove(&id).expect("block exists");
        let repaired = code.repair_block(&store, id, n).expect("single failure");
        prop_assert_eq!(repaired, original);
    }

    /// Random scattered erasures below the ME(2) bound recover fully and
    /// byte-identically through the round engine.
    #[test]
    fn scattered_erasures_recover(
        cfg in any_config(),
        seed: u64,
        positions in proptest::collection::btree_set(50u64..250, 1..6),
    ) {
        let n = 300;
        let (code, store) = build(cfg, n, seed);
        let full = store.clone();
        // Erase one data block per chosen position — far enough apart that
        // no dead pattern can form (dead patterns need co-located erasures
        // of data AND parities).
        let victims: Vec<BlockId> = positions
            .iter()
            .map(|&p| BlockId::Data(NodeId(p)))
            .collect();
        for v in &victims {
            store.remove(v);
        }
        let report = code.repair_engine(n).repair_all(&store, victims.clone());
        prop_assert!(report.fully_recovered());
        for v in &victims {
            prop_assert_eq!(store.get(v), full.get(v));
        }
    }

    /// A broker restored from stored parities continues the stream exactly
    /// like the original, from any crash point.
    #[test]
    fn restore_at_any_point_is_seamless(cfg in any_config(), seed: u64, crash in 30u64..150) {
        let code = Code::new(cfg, 24);
        let store = BlockMap::new();
        let mut enc = code.entangler();
        let mut state = seed | 1;
        let mut next_block = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            Block::from_vec((0..24).map(|k| (state >> (k & 31)) as u8).collect())
        };
        for _ in 0..crash {
            enc.entangle(next_block()).unwrap().insert_into(&store);
        }
        let mut restored = Entangler::restore(cfg, 24, crash, |e| {
            store.get(&BlockId::Parity(e))
        })
        .expect("all frontier parities stored");
        // Both encoders continue with the same inputs.
        for _ in 0..40 {
            let b = next_block();
            let a = enc.entangle(b.clone()).unwrap();
            let r = restored.entangle(b).unwrap();
            prop_assert_eq!(a.node, r.node);
            prop_assert_eq!(a.parities, r.parities);
        }
    }

    /// Upgrading α produces exactly the parities a from-scratch encoder at
    /// the higher α would have produced for the added classes.
    #[test]
    fn upgrade_matches_from_scratch(seed: u64) {
        let from = Config::new(2, 2, 4).unwrap();
        let to = Config::new(3, 2, 4).unwrap();
        let mut state = seed | 1;
        let blocks: Vec<Block> = (0..100)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                Block::from_vec((0..24).map(|k| (state >> (k & 31)) as u8).collect())
            })
            .collect();
        let truth = BlockMap::new();
        let mut enc = Entangler::new(to, 24);
        for b in &blocks {
            enc.entangle(b.clone()).unwrap().insert_into(&truth);
        }
        let added = upgrade::upgrade_parities(&from, &to, 24, blocks).unwrap();
        prop_assert_eq!(added.len(), 100);
        for (e, p) in added {
            prop_assert_eq!(truth.get(&BlockId::Parity(e)), Some(p));
        }
    }

    /// Writer-model invariants: totals add up, s = p never defers, and the
    /// required horizon matches the wrap distance.
    #[test]
    fn writer_model_invariants(s in 2u16..8, extra in 0u16..6, horizon in 1u64..4) {
        let p = s + extra;
        let cfg = Config::new(3, s, p).unwrap();
        let r = WriteScheduler::new(cfg, horizon).simulate(2 * p as u64, 30);
        prop_assert_eq!(r.full_writes + r.deferred, r.total);
        prop_assert_eq!(r.total, 30 * s as u64);
        if s == p {
            prop_assert_eq!(r.required_horizon, 1);
            prop_assert_eq!(r.deferred, 0);
        } else {
            prop_assert_eq!(r.required_horizon, (p - s + 1) as u64);
            if horizon >= r.required_horizon {
                prop_assert_eq!(r.deferred, 0);
            } else {
                prop_assert!(r.deferred > 0);
            }
        }
    }
}
