//! Constructive minimal-erasure pattern families (§V.A).
//!
//! The branch-and-bound search in [`crate::me`] finds minimal patterns from
//! nothing, but its cost grows exponentially with pattern size. This module
//! *constructs* the pattern families the paper names — primitive forms I
//! and II for single entanglements, the α = 2 **square**, and the α = 3
//! **cube** whose |ME(8)| = 20 instance for AE(3,3,3) the paper quotes —
//! and verifies them with the shared deadness/irreducibility checkers.
//! Constructions give upper bounds on |ME(x)| instantly; the search
//! certifies minimality where it is feasible.

use crate::config::Config;
use crate::graph::LatticeBlock;
use crate::rules;
use ae_blocks::StrandClass;
use std::collections::BTreeSet;

/// Primitive form I (Fig 6): two adjacent nodes on a strand plus their
/// shared edge — the minimal fatal pattern of a single entanglement.
///
/// Valid for any configuration; for α ≥ 2 the form alone is *not* dead
/// (the other strands repair it), matching the paper's "when α ≥ 2
/// primitive forms do not cause data loss".
pub fn primitive_form_i(cfg: &Config, class: StrandClass, left: i64) -> BTreeSet<LatticeBlock> {
    let right = rules::output_target(cfg, class, left);
    [
        LatticeBlock::Node(left),
        LatticeBlock::Node(right),
        LatticeBlock::Edge(class, left),
    ]
    .into_iter()
    .collect()
}

/// Primitive form II (Fig 6): two nodes at strand distance `hops` with all
/// connecting edges erased (form I is the `hops = 1` case).
pub fn primitive_form_ii(
    cfg: &Config,
    class: StrandClass,
    left: i64,
    hops: usize,
) -> BTreeSet<LatticeBlock> {
    assert!(hops >= 1, "a form needs at least one edge");
    let mut set = BTreeSet::new();
    set.insert(LatticeBlock::Node(left));
    let mut cur = left;
    for _ in 0..hops {
        set.insert(LatticeBlock::Edge(class, cur));
        cur = rules::output_target(cfg, class, cur);
    }
    set.insert(LatticeBlock::Node(cur));
    set
}

/// The strand segment (all edges) between two nodes along `class`, assuming
/// `to` is reachable from `from`; `None` otherwise.
fn segment(cfg: &Config, class: StrandClass, from: i64, to: i64) -> Option<Vec<LatticeBlock>> {
    let mut cur = from;
    let mut edges = Vec::new();
    while cur < to {
        edges.push(LatticeBlock::Edge(class, cur));
        cur = rules::output_target(cfg, class, cur);
    }
    (cur == to).then_some(edges)
}

/// The α = 2 **square** (Fig 9's explanation): 4 nodes pairwise linked into
/// a cycle that alternates the two strand classes, plus the 4 connecting
/// edge segments. For AE(2,s,p) with s = p this is exactly 4 nodes + 4
/// edges = 8 blocks, the constant |ME(4)| of Fig 9.
///
/// Returns `None` when the anchor's neighbourhood does not close into a
/// 4-cycle (some lattice alignments need a different anchor row; try all
/// rows of a column).
pub fn square(cfg: &Config, anchor: i64) -> Option<BTreeSet<LatticeBlock>> {
    assert!(cfg.alpha() >= 2, "the square needs two strand classes");
    let h = StrandClass::Horizontal;
    let rh = StrandClass::RightHanded;
    // Corners: anchor --H--> b; anchor --RH--> c; then b --RH--> d and
    // c --H--> d must meet at the same node d.
    let b = rules::output_target(cfg, h, anchor);
    let c = rules::output_target(cfg, rh, anchor);
    let d_via_b = rules::output_target(cfg, rh, b);
    let d_via_c = rules::output_target(cfg, h, c);
    if d_via_b != d_via_c {
        return None;
    }
    let mut set: BTreeSet<LatticeBlock> = [anchor, b, c, d_via_b]
        .into_iter()
        .map(LatticeBlock::Node)
        .collect();
    if set.len() != 4 {
        return None; // degenerate: corners collide
    }
    set.insert(LatticeBlock::Edge(h, anchor));
    set.insert(LatticeBlock::Edge(rh, anchor));
    set.insert(LatticeBlock::Edge(rh, b));
    set.insert(LatticeBlock::Edge(h, c));
    Some(set)
}

/// The α = 3 **cube**: 8 nodes on the corners of a combinatorial cube whose
/// 12 edges are strand segments in the three classes — the paper's
/// |ME(8)| = 20 pattern for AE(3,3,3) (8 nodes + 12 edges).
///
/// Corners are reached from the anchor by applying subsets of the three
/// "directions" (one output hop per class); an edge of the cube erases the
/// full strand segment between its two corners. Returns `None` when the
/// walk does not close (corner collisions or non-commuting hops that no
/// segment can bridge).
pub fn cube(cfg: &Config, anchor: i64) -> Option<BTreeSet<LatticeBlock>> {
    assert_eq!(cfg.alpha(), 3, "the cube needs all three strand classes");
    let classes = [
        StrandClass::Horizontal,
        StrandClass::RightHanded,
        StrandClass::LeftHanded,
    ];
    // Corner positions by direction bitmask, applying hops in class order
    // (H first, then RH, then LH) for determinism.
    let mut corner = [0i64; 8];
    for (mask, slot) in corner.iter_mut().enumerate() {
        let mut pos = anchor;
        for (bit, &class) in classes.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                pos = rules::output_target(cfg, class, pos);
            }
        }
        *slot = pos;
    }
    let nodes: BTreeSet<i64> = corner.iter().copied().collect();
    if nodes.len() != 8 {
        return None;
    }
    let mut set: BTreeSet<LatticeBlock> = nodes.into_iter().map(LatticeBlock::Node).collect();
    // Cube edges: masks differing in one bit; erase the strand segment of
    // that bit's class between the two corners.
    for mask in 0..8usize {
        for (bit, &class) in classes.iter().enumerate() {
            if mask & (1 << bit) == 0 {
                let from = corner[mask];
                let to = corner[mask | (1 << bit)];
                let (lo, hi) = if from <= to { (from, to) } else { (to, from) };
                for e in segment(cfg, class, lo, hi)? {
                    set.insert(e);
                }
            }
        }
    }
    Some(set)
}

/// Tries `square` on every row of the anchor column, returning the first
/// closing alignment.
pub fn square_anywhere(cfg: &Config, anchor_column: i64) -> Option<BTreeSet<LatticeBlock>> {
    let s = cfg.s() as i64;
    (0..s).find_map(|row| square(cfg, anchor_column * s + row + 1))
}

/// Tries `cube` on every row of the anchor column.
pub fn cube_anywhere(cfg: &Config, anchor_column: i64) -> Option<BTreeSet<LatticeBlock>> {
    let s = cfg.s() as i64;
    (0..s).find_map(|row| cube(cfg, anchor_column * s + row + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::me;

    fn cfg(a: u8, s: u16, p: u16) -> Config {
        Config::new(a, s, p).unwrap()
    }

    #[test]
    fn form_i_is_fatal_only_for_single_entanglements() {
        let single = Config::single();
        let pat = primitive_form_i(&single, StrandClass::Horizontal, 5000);
        assert_eq!(pat.len(), 3);
        assert!(me::is_dead(&single, &pat));
        assert!(me::is_irreducible(&single, &pat));

        // With α = 2 the same shape is innocuous (Fig 7's caption).
        let double = cfg(2, 2, 2);
        let pat = primitive_form_i(&double, StrandClass::Horizontal, 5000);
        assert!(!me::is_dead(&double, &pat));
        assert!(me::decode_fixpoint(&double, &pat).is_empty());
    }

    #[test]
    fn form_ii_matches_figure_6() {
        let single = Config::single();
        // The drawn example: 4 connecting edges, |ME(2)| = 6.
        let pat = primitive_form_ii(&single, StrandClass::Horizontal, 5000, 4);
        assert_eq!(pat.len(), 6);
        assert!(me::is_dead(&single, &pat));
        assert!(me::is_irreducible(&single, &pat));
        // Form I is the 1-hop special case.
        assert_eq!(
            primitive_form_ii(&single, StrandClass::Horizontal, 5000, 1),
            primitive_form_i(&single, StrandClass::Horizontal, 5000)
        );
    }

    #[test]
    fn square_is_the_constant_me4_of_alpha2() {
        for (s, p) in [(1u16, 2u16), (2, 2), (3, 3), (2, 3)] {
            let c = cfg(2, s, p);
            let pat = square_anywhere(&c, 1000).unwrap_or_else(|| panic!("AE(2,{s},{p})"));
            assert_eq!(pat.len(), 8, "AE(2,{s},{p}): {pat:?}");
            assert_eq!(pat.iter().filter(|b| b.is_node()).count(), 4);
            assert!(me::is_dead(&c, &pat), "AE(2,{s},{p})");
            assert!(me::is_irreducible(&c, &pat), "AE(2,{s},{p})");
        }
    }

    #[test]
    fn square_matches_search_minimum() {
        let c = cfg(2, 2, 2);
        let constructed = square_anywhere(&c, 1000).unwrap().len();
        let searched = me::MeSearch::new(c).min_erasure(4).unwrap().size();
        assert_eq!(constructed, searched, "construction is tight at s = p");
    }

    /// The paper's quoted bound: |ME(8)| = 20 for AE(3,3,3) — the cube.
    #[test]
    fn cube_gives_me8_20_for_ae333() {
        let c = cfg(3, 3, 3);
        let pat = cube_anywhere(&c, 400).expect("cube closes for s = p = 3");
        assert_eq!(pat.len(), 20, "{pat:?}");
        assert_eq!(pat.iter().filter(|b| b.is_node()).count(), 8);
        assert!(me::is_dead(&c, &pat));
        assert!(me::is_irreducible(&c, &pat));
    }

    #[test]
    fn cube_grows_beyond_s_equals_p() {
        // For p > s the cube's segments lengthen: still dead, more blocks.
        let c = cfg(3, 3, 5);
        if let Some(pat) = cube_anywhere(&c, 400) {
            assert!(pat.len() >= 20, "{}", pat.len());
            assert!(me::is_dead(&c, &pat));
        }
    }

    #[test]
    fn constructions_upper_bound_the_search() {
        // Wherever both are available, the search can only match or beat
        // the construction.
        for (s, p) in [(1u16, 2u16), (2, 2)] {
            let c = cfg(2, s, p);
            let constructed = square_anywhere(&c, 1000).unwrap().len();
            let searched = me::MeSearch::new(c).min_erasure(4).unwrap().size();
            assert!(searched <= constructed, "AE(2,{s},{p})");
        }
    }

    /// With s = p = 1 both classes are parallel, so no geometric square
    /// exists; ME(4) = 8 is instead two disjoint ME(2) dominoes, which the
    /// partition step of the search finds.
    #[test]
    fn degenerate_square_falls_back_to_partition() {
        let c = cfg(2, 1, 1);
        assert!(square_anywhere(&c, 1000).is_none());
        let pat = me::MeSearch::new(c).min_erasure(4).unwrap();
        assert_eq!(pat.size(), 8);
        assert!(me::is_dead(&c, &pat.blocks));
    }
}
