//! Strand navigation: walking chains of alternating data and parity blocks.
//!
//! Each strand is a single entanglement: `… → d_h → p_{h,i} → d_i → p_{i,j}
//! → …`. A node belongs to exactly one strand per class, so walking from any
//! node along a class is unambiguous. Strand *heads* are the nodes whose
//! input on the class is virtual (position ≤ 0); they identify the strand.

use crate::config::Config;
use crate::rules;
use ae_blocks::StrandClass;

/// Walks backward from node `i` along `class` to the strand head (the node
/// whose input parity on the class is virtual).
///
/// Cost is linear in the distance to the origin; intended for analysis and
/// display, not hot paths (the encoder and decoder never need strand
/// identity, only local adjacency).
pub fn strand_head(cfg: &Config, class: StrandClass, i: i64) -> i64 {
    let mut cur = i;
    loop {
        let h = rules::input_source(cfg, class, cur);
        if h < 1 {
            return cur;
        }
        cur = h;
    }
}

/// Walks forward from node `i` along `class`, returning the next `count`
/// node positions (exclusive of `i`).
pub fn walk_forward(cfg: &Config, class: StrandClass, i: i64, count: usize) -> Vec<i64> {
    let mut out = Vec::with_capacity(count);
    let mut cur = i;
    for _ in 0..count {
        cur = rules::output_target(cfg, class, cur);
        out.push(cur);
    }
    out
}

/// Walks backward from node `i` along `class`, returning up to `count`
/// previous node positions (exclusive of `i`), stopping at the strand head.
pub fn walk_backward(cfg: &Config, class: StrandClass, i: i64, count: usize) -> Vec<i64> {
    let mut out = Vec::with_capacity(count);
    let mut cur = i;
    for _ in 0..count {
        let h = rules::input_source(cfg, class, cur);
        if h < 1 {
            break;
        }
        out.push(h);
        cur = h;
    }
    out
}

/// Number of parities between node `i` and the end of its strand on `class`,
/// in a lattice of `n` nodes: the count of parities an attacker must
/// recompute on this strand to tamper with `d_i` undetectably (§III
/// "Anti-tampering Property").
pub fn parities_to_strand_end(cfg: &Config, class: StrandClass, i: i64, n: i64) -> u64 {
    let mut count = 0u64;
    let mut cur = i;
    // d_i's own output parity, then every following node's output on the
    // strand, until outputs fall beyond the written lattice.
    while cur <= n {
        count += 1;
        cur = rules::output_target(cfg, class, cur);
    }
    count
}

/// The strands of `class` in a lattice of `n` nodes, each represented by its
/// head node, in increasing head order.
pub fn strand_heads(cfg: &Config, class: StrandClass, n: i64) -> Vec<i64> {
    (1..=n)
        .filter(|&i| rules::input_source(cfg, class, i) < 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_blocks::StrandClass::*;

    fn cfg(a: u8, s: u16, p: u16) -> Config {
        Config::new(a, s, p).unwrap()
    }

    #[test]
    fn horizontal_strand_count_is_s() {
        let c = cfg(3, 5, 5);
        assert_eq!(strand_heads(&c, Horizontal, 200), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn helical_strand_count_is_p() {
        // AE(3,5,5): 5 RH and 5 LH strands (15 total with H, §III.B).
        let c = cfg(3, 5, 5);
        assert_eq!(strand_heads(&c, RightHanded, 200).len(), 5);
        assert_eq!(strand_heads(&c, LeftHanded, 200).len(), 5);
        // AE(2,2,5): 5 RH strands.
        let c = cfg(2, 2, 5);
        assert_eq!(strand_heads(&c, RightHanded, 200).len(), 5);
    }

    #[test]
    fn walk_forward_then_backward_returns_home() {
        let c = cfg(3, 2, 5);
        for &class in c.classes() {
            let start = 300;
            let fwd = walk_forward(&c, class, start, 10);
            let back = walk_backward(&c, class, *fwd.last().unwrap(), 10);
            assert_eq!(*back.last().unwrap(), start, "{class}");
        }
    }

    #[test]
    fn walk_is_strictly_monotonic() {
        let c = cfg(3, 4, 4);
        for &class in c.classes() {
            let w = walk_forward(&c, class, 100, 20);
            for pair in w.windows(2) {
                assert!(pair[0] < pair[1], "{class}");
            }
        }
    }

    #[test]
    fn strand_head_is_fixed_point_of_walking() {
        let c = cfg(3, 3, 6);
        for i in [1, 7, 50, 123] {
            for &class in c.classes() {
                let head = strand_head(&c, class, i);
                assert!(head >= 1);
                // Head has virtual input; walking back from i passes it.
                assert!(crate::rules::input_source(&c, class, head) < 1);
            }
        }
    }

    #[test]
    fn nodes_on_same_horizontal_strand_share_head() {
        let c = cfg(3, 5, 5);
        // 26 is on H1 with 1, 6, 11, … (Fig 4).
        assert_eq!(strand_head(&c, Horizontal, 26), 1);
        assert_eq!(strand_head(&c, Horizontal, 27), 2);
    }

    #[test]
    fn tamper_cost_counts_parities_to_strand_end() {
        // Single chain of 10 nodes: tampering d_7 on H requires recomputing
        // p7,8 … p10,11-tail: outputs of 7, 8, 9, 10 → 4 parities.
        let c = Config::single();
        assert_eq!(parities_to_strand_end(&c, Horizontal, 7, 10), 4);
        assert_eq!(parities_to_strand_end(&c, Horizontal, 10, 10), 1);
    }

    #[test]
    fn tamper_cost_scales_with_strand_position() {
        let c = cfg(3, 5, 5);
        let early = parities_to_strand_end(&c, RightHanded, 26, 1000);
        let late = parities_to_strand_end(&c, RightHanded, 900, 1000);
        assert!(early > late, "earlier blocks cost more to tamper");
    }
}
