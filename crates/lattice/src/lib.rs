//! The helical lattice geometry of alpha entanglement codes.
//!
//! AE(α, s, p) tangles each new data block with α existing parities, growing
//! a mesh of strands: `s` horizontal strands plus, for α ≥ 2, `p`
//! right-handed and, for α = 3, `p` left-handed helical strands (§III of the
//! DSN 2018 paper). This crate implements the *geometry* of that mesh —
//! which blocks connect to which — independent of block contents:
//!
//! * [`config::Config`] — validated code parameters (α, s, p) and derived
//!   quantities (code rate, storage overhead, strand count).
//! * [`rules`] — the paper's Tables I and II: for a node `d_i`, the indices
//!   of its input parity `p_{h,i}` and output parity `p_{i,j}` on each
//!   strand class, including the `s = 1` degenerate family.
//! * [`graph`] — navigation built on the rules: incident edges of a node,
//!   endpoints of an edge, and the **repair options** the decoder uses
//!   (pp-tuples for nodes, dp-tuples for edges).
//! * [`strand`] — walking strands and locating strand heads.
//! * [`me`] — minimal-erasure analysis: a branch-and-bound search for the
//!   smallest irreducible erasure patterns `ME(x)`, replacing the authors'
//!   private Prolog verification tool (§V.A, Figs 6–9).
//! * [`patterns`] — constructive pattern families (primitive forms, the
//!   α = 2 square, the α = 3 cube), giving instant upper bounds that the
//!   search certifies.
//! * [`render`] — ASCII rendering of lattice windows and erasure patterns
//!   (Fig 4-style diagrams).
//!
//! Positions are `i64` throughout this crate: indices at or below zero
//! denote the virtual all-zero blocks "before" the lattice, which the rules
//! produce naturally near the origin.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod graph;
pub mod me;
pub mod patterns;
pub mod render;
pub mod rules;
pub mod strand;

pub use config::{Config, ConfigError};
pub use graph::{Endpoints, LatticeBlock, RepairOption, VirtualPosition};
pub use me::{MePattern, MeSearch};
pub use rules::NodeCategory;
