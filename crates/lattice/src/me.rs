//! Minimal-erasure analysis (§V.A of the paper, Figs 6–9).
//!
//! A **minimal erasure** ME(x) is an irreducible pattern of erased blocks
//! that causes the irrecoverable loss of `x` data blocks: no block in the
//! pattern can be repaired from blocks outside it, and removing any single
//! block from the pattern makes some erased block repairable. The paper
//! characterizes fault tolerance by `|ME(x)|`, the size (in blocks, data +
//! parity) of the smallest such pattern, and shows it grows with `s` and `p`
//! at zero storage cost.
//!
//! The authors verified their patterns with a private Prolog tool; this
//! module replaces it with an exhaustive branch-and-bound search.
//!
//! # Algorithm
//!
//! A set `S` of blocks is **dead** when no block in `S` has a repair option
//! (see [`crate::graph::repair_options`]) whose requirements all lie outside
//! `S`. The search anchors one data node far from the lattice origin and
//! grows `S` by *violation-driven branching*: while some block of `S` is
//! still repairable, a dead superset must block one of its open repair
//! options, and each open option can be blocked by at most two specific
//! blocks — so branch on those. Every step adds exactly one block, giving a
//! search tree of depth `|S|`; iterative deepening on the target size finds
//! the minimum. Completeness caveat (shared with the paper, which also "does
//! not identify all erasure patterns"): patterns that contain a *dead proper
//! subset* are not reachable by violation-driven growth; for the pattern
//! families of Figs 6–9 this does not arise, and disjoint unions of smaller
//! patterns are handled separately by [`MeSearch::min_erasure`]'s partition
//! step.

use crate::config::Config;
use crate::graph::{self, LatticeBlock};
use std::collections::{BTreeSet, HashSet};

/// A minimal erasure pattern found by the search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MePattern {
    /// The erased blocks (data and parity), in lattice order.
    pub blocks: BTreeSet<LatticeBlock>,
}

impl MePattern {
    /// Total pattern size `|ME(x)|` in blocks (the paper's metric).
    pub fn size(&self) -> usize {
        self.blocks.len()
    }

    /// Number of data blocks lost (`x`).
    pub fn data_count(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_node()).count()
    }

    /// Number of parity blocks in the pattern (`y − x`).
    pub fn parity_count(&self) -> usize {
        self.size() - self.data_count()
    }

    /// The protection ratio `y / x`: pattern blocks per lost data block.
    /// Larger is better ("Ideally, we want patterns with y ≫ x", §V.A).
    pub fn protection_ratio(&self) -> f64 {
        self.size() as f64 / self.data_count() as f64
    }
}

/// Searcher for minimal erasure patterns of one code configuration.
#[derive(Debug, Clone)]
pub struct MeSearch {
    cfg: Config,
    max_size: usize,
    anchor_base: i64,
}

impl MeSearch {
    /// Default cap on pattern size; the largest pattern reported in the
    /// paper is |ME(8)| = 20 for AE(3,3,3).
    pub const DEFAULT_MAX_SIZE: usize = 24;

    /// Creates a searcher with the default size cap.
    pub fn new(cfg: Config) -> Self {
        MeSearch {
            cfg,
            max_size: Self::DEFAULT_MAX_SIZE,
            anchor_base: Self::anchor_base_for(&cfg),
        }
    }

    /// Overrides the size cap (searches are exponential in the cap; sizes
    /// beyond ~26 get slow).
    pub fn with_max_size(mut self, max_size: usize) -> Self {
        self.max_size = max_size;
        self
    }

    fn anchor_base_for(cfg: &Config) -> i64 {
        // Far enough from the origin that no block touched by a bounded
        // search has a virtual input: patterns drift at most max_size wrap
        // spans from the anchor.
        let span = cfg.s() as i64 * cfg.p().max(1) as i64;
        (span * 64).max(4096)
    }

    /// Minimum-size *connected* dead pattern losing exactly `x` data blocks,
    /// or `None` if none exists within the size cap.
    pub fn min_connected(&self, x: usize) -> Option<MePattern> {
        assert!(x >= 1, "patterns lose at least one data block");
        // No finite dead set loses fewer than 2 data blocks: an erased edge
        // chain must terminate on erased nodes at both ends.
        if x < 2 {
            return None;
        }
        for limit in (x + 1)..=self.max_size {
            // Try an anchor in every row category (top/central/bottom);
            // minimal patterns may require a specific alignment.
            for r in 0..self.cfg.s() as i64 {
                let anchor = self.anchor_base + 1 + r;
                let mut dfs = Dfs {
                    cfg: &self.cfg,
                    limit,
                    target_data: x,
                    member: HashSet::new(),
                    order: Vec::new(),
                    data_count: 0,
                    seen: HashSet::new(),
                };
                dfs.push(LatticeBlock::Node(anchor));
                if let Some(found) = dfs.run() {
                    return Some(MePattern { blocks: found });
                }
            }
        }
        None
    }

    /// Minimum-size dead pattern losing exactly `x` data blocks, allowing
    /// disjoint unions of connected components (each component is dead on
    /// its own, so the union is too). This is the paper's `|ME(x)|`.
    pub fn min_erasure(&self, x: usize) -> Option<MePattern> {
        // Connected minima for every component size.
        let conn: Vec<Option<MePattern>> = (0..=x)
            .map(|k| if k < 2 { None } else { self.min_connected(k) })
            .collect();
        // Partition DP: best[j] = minimal total size losing j data blocks.
        let mut best: Vec<Option<(usize, Vec<usize>)>> = vec![None; x + 1];
        best[0] = Some((0, Vec::new()));
        for j in 1..=x {
            for k in 2..=j {
                let (Some(p), Some((base, parts))) = (&conn[k], &best[j - k]) else {
                    continue;
                };
                let cand = base + p.size();
                if best[j].as_ref().is_none_or(|(b, _)| cand < *b) {
                    let mut parts = parts.clone();
                    parts.push(k);
                    best[j] = Some((cand, parts));
                }
            }
        }
        let (_, parts) = best[x].take()?;
        // Materialize the union, translating components apart by multiples
        // of s (which preserves node categories and hence the rules).
        let sep = (self.cfg.s() as i64 * self.cfg.p().max(1) as i64 + self.cfg.s() as i64) * 40;
        let mut blocks = BTreeSet::new();
        for (idx, &k) in parts.iter().enumerate() {
            let comp = conn[k].as_ref().expect("DP only uses present components");
            let delta = idx as i64 * sep;
            for &b in &comp.blocks {
                blocks.insert(match b {
                    LatticeBlock::Node(i) => LatticeBlock::Node(i + delta),
                    LatticeBlock::Edge(c, i) => LatticeBlock::Edge(c, i + delta),
                });
            }
        }
        Some(MePattern { blocks })
    }
}

/// Runs the iterated decoder on an erased set: repeatedly repairs any block
/// that has a repair option fully outside the erased set, until a fixpoint.
/// Returns the irrecoverable remainder (empty = full recovery).
pub fn decode_fixpoint(cfg: &Config, erased: &BTreeSet<LatticeBlock>) -> BTreeSet<LatticeBlock> {
    let mut remaining = erased.clone();
    loop {
        let repairable: Vec<LatticeBlock> = remaining
            .iter()
            .copied()
            .filter(|&b| {
                graph::repair_options(cfg, b, i64::MAX)
                    .iter()
                    .any(|o| o.requires.iter().all(|r| !remaining.contains(r)))
            })
            .collect();
        if repairable.is_empty() {
            return remaining;
        }
        for b in repairable {
            remaining.remove(&b);
        }
    }
}

/// Whether `set` is dead: no member is repairable from outside the set.
pub fn is_dead(cfg: &Config, set: &BTreeSet<LatticeBlock>) -> bool {
    set.iter().all(|&b| {
        graph::repair_options(cfg, b, i64::MAX)
            .iter()
            .all(|o| o.requires.iter().any(|r| set.contains(r)))
    })
}

/// Whether `set` is an irreducible erasure: it is dead, and removing any
/// single block lets the decoder recover at least one further block
/// (Wiley's minimal-erasure criterion as restated in §V.A).
pub fn is_irreducible(cfg: &Config, set: &BTreeSet<LatticeBlock>) -> bool {
    if !is_dead(cfg, set) {
        return false;
    }
    set.iter().all(|&b| {
        let mut without = set.clone();
        without.remove(&b);
        decode_fixpoint(cfg, &without) != without
    })
}

/// Violation-driven DFS: grows the erased set until dead or out of budget.
struct Dfs<'a> {
    cfg: &'a Config,
    limit: usize,
    target_data: usize,
    member: HashSet<LatticeBlock>,
    order: Vec<LatticeBlock>,
    data_count: usize,
    /// Canonical (sorted) states already explored at this limit.
    seen: HashSet<Vec<LatticeBlock>>,
}

impl Dfs<'_> {
    fn push(&mut self, b: LatticeBlock) {
        debug_assert!(!self.member.contains(&b));
        if b.is_node() {
            self.data_count += 1;
        }
        self.member.insert(b);
        self.order.push(b);
    }

    fn pop(&mut self) {
        let b = self.order.pop().expect("pop matches push");
        if b.is_node() {
            self.data_count -= 1;
        }
        self.member.remove(&b);
    }

    /// Finds the first repairable member and returns the blocks that could
    /// close its first open repair option.
    fn first_violation(&self) -> Option<Vec<LatticeBlock>> {
        for &b in &self.order {
            for opt in graph::repair_options(self.cfg, b, i64::MAX) {
                if opt.requires.iter().all(|r| !self.member.contains(r)) {
                    return Some(opt.requires);
                }
            }
        }
        None
    }

    fn run(&mut self) -> Option<BTreeSet<LatticeBlock>> {
        let Some(candidates) = self.first_violation() else {
            // Dead. Accept only exact data-loss targets.
            return (self.data_count == self.target_data)
                .then(|| self.order.iter().copied().collect());
        };
        if self.order.len() >= self.limit {
            return None;
        }
        let mut canonical: Vec<LatticeBlock> = self.order.clone();
        canonical.sort_unstable();
        if !self.seen.insert(canonical) {
            return None;
        }
        for cand in candidates {
            if cand.is_node() && self.data_count >= self.target_data {
                continue;
            }
            self.push(cand);
            if let Some(found) = self.run() {
                return Some(found);
            }
            self.pop();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_blocks::StrandClass::*;

    fn cfg(a: u8, s: u16, p: u16) -> Config {
        Config::new(a, s, p).unwrap()
    }

    /// Fig 6, primitive form I: a single entanglement cannot tolerate two
    /// adjacent nodes plus their shared edge — |ME(2)| = 3.
    #[test]
    fn single_entanglement_me2_is_3() {
        let pat = MeSearch::new(Config::single()).min_erasure(2).unwrap();
        assert_eq!(pat.size(), 3);
        assert_eq!(pat.data_count(), 2);
        assert!(is_irreducible(&Config::single(), &pat.blocks));
    }

    /// Fig 6, primitive form II: nodes at distance L with all L connecting
    /// edges erased is dead (the example drawn has |ME(2)| = 6).
    #[test]
    fn single_entanglement_extended_form_is_dead() {
        let c = Config::single();
        let base = 1000;
        let mut set = BTreeSet::new();
        set.insert(LatticeBlock::Node(base));
        set.insert(LatticeBlock::Node(base + 4));
        for k in 0..4 {
            set.insert(LatticeBlock::Edge(Horizontal, base + k));
        }
        assert_eq!(set.len(), 6);
        assert!(is_dead(&c, &set));
        assert!(is_irreducible(&c, &set));
    }

    /// Fig 7 pattern A: AE(2,1,1) has |ME(2)| = 4.
    #[test]
    fn ae211_me2_is_4() {
        let pat = MeSearch::new(cfg(2, 1, 1)).min_erasure(2).unwrap();
        assert_eq!(pat.size(), 4, "{pat:?}");
        assert!(is_irreducible(&cfg(2, 1, 1), &pat.blocks));
    }

    /// Fig 7 pattern B: AE(3,1,1) has |ME(2)| = 5.
    #[test]
    fn ae311_me2_is_5() {
        let pat = MeSearch::new(cfg(3, 1, 1)).min_erasure(2).unwrap();
        assert_eq!(pat.size(), 5, "{pat:?}");
    }

    /// Fig 7 pattern C: AE(3,1,4) has |ME(2)| = 8 (also quoted in §I).
    #[test]
    fn ae314_me2_is_8() {
        let pat = MeSearch::new(cfg(3, 1, 4)).min_erasure(2).unwrap();
        assert_eq!(pat.size(), 8, "{pat:?}");
        assert!(is_irreducible(&cfg(3, 1, 4), &pat.blocks));
    }

    /// Fig 9's explanation: with α = 2, redundancy propagates across a
    /// square of 4 nodes and 4 edges, so |ME(4)| = 8 regardless of s and p.
    #[test]
    fn ae2_me4_is_square_of_8() {
        for (s, p) in [(1, 1), (2, 2), (2, 3)] {
            let pat = MeSearch::new(cfg(2, s, p)).min_erasure(4).unwrap();
            assert_eq!(pat.size(), 8, "AE(2,{s},{p}): {pat:?}");
            assert_eq!(pat.data_count(), 4);
        }
    }

    #[test]
    fn no_pattern_loses_a_single_data_block() {
        assert!(MeSearch::new(cfg(2, 1, 1)).min_erasure(1).is_none());
        assert!(MeSearch::new(Config::single()).min_erasure(1).is_none());
    }

    #[test]
    fn found_patterns_are_dead_and_exact() {
        for (a, s, p, x) in [(2u8, 1u16, 2u16, 2usize), (2, 2, 2, 2), (3, 1, 2, 2)] {
            let c = cfg(a, s, p);
            let pat = MeSearch::new(c).min_erasure(x).unwrap();
            assert!(is_dead(&c, &pat.blocks), "AE({a},{s},{p})");
            assert_eq!(pat.data_count(), x);
            // Nothing in a dead set is recoverable.
            assert_eq!(decode_fixpoint(&c, &pat.blocks), pat.blocks);
        }
    }

    #[test]
    fn decode_fixpoint_recovers_non_dead_sets() {
        let c = cfg(3, 2, 5);
        // A lone missing node repairs in one step; a node plus one incident
        // edge still repairs (α = 3 leaves two open strands).
        let mut set = BTreeSet::new();
        set.insert(LatticeBlock::Node(500));
        set.insert(LatticeBlock::Edge(Horizontal, 500));
        assert!(decode_fixpoint(&c, &set).is_empty());
    }

    #[test]
    fn protection_ratio_reported() {
        let pat = MeSearch::new(cfg(2, 1, 1)).min_erasure(2).unwrap();
        assert!(
            (pat.protection_ratio() - 2.0).abs() < 1e-12,
            "4 blocks / 2 data"
        );
        assert_eq!(pat.parity_count(), 2);
    }

    /// min_erasure must consider disjoint unions: losing 4 data blocks via
    /// two separate |ME(2)| patterns costs 2·|ME(2)|; the reported |ME(4)|
    /// is the cheaper of that and the connected minimum.
    #[test]
    fn min_erasure_uses_partition_dp() {
        let c = cfg(2, 1, 1);
        let me2 = MeSearch::new(c).min_erasure(2).unwrap().size();
        let me4 = MeSearch::new(c).min_erasure(4).unwrap().size();
        assert!(
            me4 <= 2 * me2,
            "ME(4)={me4} must not exceed two ME(2)={me2}"
        );
        let pat = MeSearch::new(c).min_erasure(4).unwrap();
        assert!(is_dead(&c, &pat.blocks), "union of dead components is dead");
    }
}
