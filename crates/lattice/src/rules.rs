//! The entanglement rules: Tables I and II of the paper.
//!
//! For a node `d_i`, these rules give the index `h` of its *input* parity
//! `p_{h,i}` and the index `j` of its *output* parity `p_{i,j}` on each
//! strand class. The offsets depend on the node's category — **top**
//! (`i ≡ 1 mod s`), **bottom** (`i ≡ 0 mod s`) or **central** — because
//! helical strands wrap around the `s` rows of the lattice.
//!
//! | category | H in/out | RH in | RH out | LH in | LH out |
//! |---|---|---|---|---|---|
//! | top      | i−s / i+s | i−s·p+(s²−1) | i+s+1 | i−(s−1) | i+s·p−(s−1)² |
//! | central  | i−s / i+s | i−(s+1) | i+s+1 | i−(s−1) | i+s−1 |
//! | bottom   | i−s / i+s | i−(s+1) | i+s·p−(s²−1) | i−s·p+(s−1)² | i+s−1 |
//!
//! **Degenerate family `s = 1`** (this includes the α = 1 single chain): the
//! table offsets self-intersect, because every node is simultaneously top
//! and bottom. Following Fig 3 of the paper ("α=2, s=1, p=2" draws the
//! helical parities p1,3, p2,4, …), helical strands simply connect
//! `i − p → i → i + p`, and the horizontal strand connects `i − 1 → i →
//! i + 1`.
//!
//! Indices at or below zero refer to virtual all-zero blocks before the
//! lattice start; callers treat such inputs as always-available zeros.

use crate::config::Config;
use ae_blocks::StrandClass;
use serde::{Deserialize, Serialize};

/// Category of a node in the helical lattice, determining which row of the
/// rules tables applies (§III.B "Code Specification").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeCategory {
    /// First row of a column: `i ≡ 1 (mod s)`.
    Top,
    /// Interior row of a column.
    Central,
    /// Last row of a column: `i ≡ 0 (mod s)`.
    Bottom,
    /// `s = 1`: the single row is top and bottom at once; the degenerate
    /// rules apply.
    SingleRow,
}

/// Returns the category of node `i` under configuration `cfg`.
///
/// # Panics
///
/// Panics if `i < 1`: virtual positions have no category.
pub fn category(cfg: &Config, i: i64) -> NodeCategory {
    assert!(i >= 1, "node positions start at 1, got {i}");
    let s = cfg.s() as i64;
    if s == 1 {
        return NodeCategory::SingleRow;
    }
    match i.rem_euclid(s) {
        1 => NodeCategory::Top,
        0 => NodeCategory::Bottom,
        _ => NodeCategory::Central,
    }
}

/// Row of node `i` within its column, in `0..s` (0 = top row).
pub fn row(cfg: &Config, i: i64) -> i64 {
    (i - 1).rem_euclid(cfg.s() as i64)
}

/// Column of node `i`, starting at 0.
pub fn column(cfg: &Config, i: i64) -> i64 {
    (i - 1).div_euclid(cfg.s() as i64)
}

/// Index `h` of the input parity `p_{h,i}` of node `i` on `class`
/// (Table I). May be ≤ 0 near the lattice origin, denoting the virtual
/// zero parity at a strand head.
///
/// # Panics
///
/// Panics if `class` is not present for the configuration's α.
pub fn input_source(cfg: &Config, class: StrandClass, i: i64) -> i64 {
    assert_class_present(cfg, class);
    let s = cfg.s() as i64;
    let p = cfg.p() as i64;
    match class {
        StrandClass::Horizontal => i - s,
        StrandClass::RightHanded | StrandClass::LeftHanded if s == 1 => i - p,
        StrandClass::RightHanded => match category(cfg, i) {
            NodeCategory::Top => i - s * p + (s * s - 1),
            NodeCategory::Central | NodeCategory::Bottom => i - (s + 1),
            NodeCategory::SingleRow => unreachable!("s == 1 handled above"),
        },
        StrandClass::LeftHanded => match category(cfg, i) {
            NodeCategory::Top | NodeCategory::Central => i - (s - 1),
            NodeCategory::Bottom => i - s * p + (s - 1) * (s - 1),
            NodeCategory::SingleRow => unreachable!("s == 1 handled above"),
        },
    }
}

/// Index `j` of the output parity `p_{i,j}` of node `i` on `class`
/// (Table II). Always greater than `i`.
///
/// # Panics
///
/// Panics if `class` is not present for the configuration's α.
pub fn output_target(cfg: &Config, class: StrandClass, i: i64) -> i64 {
    assert_class_present(cfg, class);
    let s = cfg.s() as i64;
    let p = cfg.p() as i64;
    match class {
        StrandClass::Horizontal => i + s,
        StrandClass::RightHanded | StrandClass::LeftHanded if s == 1 => i + p,
        StrandClass::RightHanded => match category(cfg, i) {
            NodeCategory::Top | NodeCategory::Central => i + s + 1,
            NodeCategory::Bottom => i + s * p - (s * s - 1),
            NodeCategory::SingleRow => unreachable!("s == 1 handled above"),
        },
        StrandClass::LeftHanded => match category(cfg, i) {
            NodeCategory::Top => i + s * p - (s - 1) * (s - 1),
            NodeCategory::Central | NodeCategory::Bottom => i + s - 1,
            NodeCategory::SingleRow => unreachable!("s == 1 handled above"),
        },
    }
}

fn assert_class_present(cfg: &Config, class: StrandClass) {
    assert!(
        cfg.classes().contains(&class),
        "strand class {class} is not present in {cfg}",
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_blocks::StrandClass::*;

    fn cfg(a: u8, s: u16, p: u16) -> Config {
        Config::new(a, s, p).unwrap()
    }

    /// The paper's worked example (Fig 4 + Tables I/II captions + Table V):
    /// in AE(3,5,5), top node d26 is tangled with p21,26 (H), p25,26 (RH),
    /// p22,26 (LH) and creates p26,31 (H), p26,32 (RH), p26,35 (LH).
    #[test]
    fn ae355_worked_example_d26() {
        let c = cfg(3, 5, 5);
        assert_eq!(category(&c, 26), NodeCategory::Top);
        assert_eq!(input_source(&c, Horizontal, 26), 21);
        assert_eq!(output_target(&c, Horizontal, 26), 31);
        assert_eq!(input_source(&c, RightHanded, 26), 25);
        assert_eq!(output_target(&c, RightHanded, 26), 32);
        assert_eq!(input_source(&c, LeftHanded, 26), 22);
        assert_eq!(output_target(&c, LeftHanded, 26), 35);
    }

    #[test]
    fn categories_cycle_with_s() {
        let c = cfg(3, 5, 5);
        assert_eq!(category(&c, 1), NodeCategory::Top);
        assert_eq!(category(&c, 2), NodeCategory::Central);
        assert_eq!(category(&c, 4), NodeCategory::Central);
        assert_eq!(category(&c, 5), NodeCategory::Bottom);
        assert_eq!(category(&c, 6), NodeCategory::Top);
        assert_eq!(category(&cfg(2, 1, 3), 7), NodeCategory::SingleRow);
    }

    #[test]
    fn rows_and_columns() {
        let c = cfg(3, 5, 5);
        assert_eq!(row(&c, 1), 0);
        assert_eq!(row(&c, 5), 4);
        assert_eq!(row(&c, 26), 0);
        assert_eq!(column(&c, 1), 0);
        assert_eq!(column(&c, 5), 0);
        assert_eq!(column(&c, 6), 1);
        assert_eq!(column(&c, 26), 5);
    }

    /// Input and output rules must be inverses: if node h's output on class
    /// C lands at i, then node i's input on C comes from h.
    #[test]
    fn rules_are_mutually_consistent() {
        for (a, s, p) in [
            (1u8, 1u16, 0u16),
            (2, 1, 1),
            (2, 1, 4),
            (2, 2, 2),
            (2, 2, 5),
            (2, 3, 7),
            (3, 1, 1),
            (3, 1, 4),
            (3, 2, 2),
            (3, 2, 5),
            (3, 3, 3),
            (3, 4, 4),
            (3, 5, 5),
            (3, 3, 8),
        ] {
            let c = cfg(a, s, p);
            let lo = (s as i64) * (p.max(1) as i64) * 3; // past all wrap spans
            for i in lo..lo + 4 * s as i64 * p.max(1) as i64 {
                for &class in c.classes() {
                    let j = output_target(&c, class, i);
                    assert!(j > i, "{c} {class} output of {i} must advance, got {j}");
                    assert_eq!(
                        input_source(&c, class, j),
                        i,
                        "{c}: node {j} input on {class} should be {i}"
                    );
                    let h = input_source(&c, class, i);
                    assert!(h < i, "{c} {class} input of {i} must be in the past");
                    if h >= 1 {
                        assert_eq!(
                            output_target(&c, class, h),
                            i,
                            "{c}: node {h} output on {class} should be {i}"
                        );
                    }
                }
            }
        }
    }

    /// Fig 3's "α = 2, s = 1, p = 2" example: helical parities p1,3, p2,4,
    /// p3,5 … span two positions.
    #[test]
    fn single_row_helical_span_is_p() {
        let c = cfg(2, 1, 2);
        assert_eq!(output_target(&c, RightHanded, 1), 3);
        assert_eq!(output_target(&c, RightHanded, 2), 4);
        assert_eq!(input_source(&c, RightHanded, 5), 3);
        // Horizontal chain still spans 1.
        assert_eq!(output_target(&c, Horizontal, 4), 5);
    }

    #[test]
    fn near_origin_inputs_are_virtual() {
        let c = cfg(3, 2, 5);
        // Node 1's inputs all come from before the lattice.
        for &class in c.classes() {
            assert!(input_source(&c, class, 1) <= 0, "{class}");
        }
        // Far from the origin nothing is virtual.
        for &class in c.classes() {
            assert!(input_source(&c, class, 1000) >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn absent_class_rejected() {
        let c = cfg(2, 2, 2);
        input_source(&c, LeftHanded, 10);
    }

    #[test]
    #[should_panic(expected = "positions start at 1")]
    fn category_of_virtual_position_panics() {
        category(&cfg(3, 2, 5), 0);
    }

    /// Every node must have exactly one input and one output edge per class;
    /// equivalently, on each class the maps i→j are injective over a window.
    #[test]
    fn outputs_are_injective_per_class() {
        use std::collections::HashSet;
        for (a, s, p) in [(2u8, 2u16, 3u16), (3, 2, 5), (3, 4, 4), (3, 5, 7)] {
            let c = cfg(a, s, p);
            for &class in c.classes() {
                let mut seen = HashSet::new();
                for i in 200..200 + 6 * s as i64 * p as i64 {
                    let j = output_target(&c, class, i);
                    assert!(seen.insert(j), "{c} {class}: target {j} hit twice");
                }
            }
        }
    }
}
