//! Validated AE(α, s, p) code parameters.

use ae_blocks::StrandClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from invalid code parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// α must be 1, 2 or 3 (the paper leaves α > 3 open).
    AlphaOutOfRange(u8),
    /// Single entanglements are defined only for s = 1, p = 0 (§III.B).
    SingleEntanglementShape {
        /// The rejected `s`.
        s: u16,
        /// The rejected `p`.
        p: u16,
    },
    /// For α ≥ 2 the lattice is valid only when p ≥ s ≥ 1; p < s causes a
    /// deformed lattice (§III.B "Code Parameters").
    DeformedLattice {
        /// The rejected `s`.
        s: u16,
        /// The rejected `p`.
        p: u16,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::AlphaOutOfRange(a) => {
                write!(f, "alpha must be in 1..=3, got {a}")
            }
            ConfigError::SingleEntanglementShape { s, p } => write!(
                f,
                "single entanglements (alpha = 1) require s = 1 and p = 0, got s = {s}, p = {p}"
            ),
            ConfigError::DeformedLattice { s, p } => write!(
                f,
                "alpha >= 2 requires p >= s >= 1 (p < s deforms the lattice), got s = {s}, p = {p}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validated parameters of an AE(α, s, p) code.
///
/// * `alpha` — parities created per data block; also the number of strands
///   each data block participates in. Determines the code rate `1/(α+1)`.
/// * `s` — number of horizontal strands (lattice rows).
/// * `p` — number of helical strands per helical class (lattice
///   columns/diagonals per revolution).
///
/// Tuning `s` and `p` raises fault tolerance **without** extra storage;
/// tuning `alpha` trades storage for connectivity (§III.B).
///
/// # Examples
///
/// ```
/// use ae_lattice::Config;
///
/// let cfg = Config::new(3, 2, 5).unwrap();       // AE(3,2,5), the 5-HEC code
/// assert_eq!(cfg.storage_overhead_pct(), 300);
/// assert_eq!(cfg.strand_count(), 2 + 2 * 5);
/// assert!((cfg.code_rate() - 0.25).abs() < 1e-9);
///
/// assert!(Config::new(2, 5, 3).is_err());        // p < s: deformed lattice
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Config {
    alpha: u8,
    s: u16,
    p: u16,
}

impl Config {
    /// Validates and builds a configuration.
    ///
    /// # Errors
    ///
    /// See [`ConfigError`] for the constraints.
    pub fn new(alpha: u8, s: u16, p: u16) -> Result<Self, ConfigError> {
        if !(1..=3).contains(&alpha) {
            return Err(ConfigError::AlphaOutOfRange(alpha));
        }
        if alpha == 1 {
            if s != 1 || p != 0 {
                return Err(ConfigError::SingleEntanglementShape { s, p });
            }
        } else if s < 1 || p < s {
            return Err(ConfigError::DeformedLattice { s, p });
        }
        Ok(Config { alpha, s, p })
    }

    /// The single-entanglement code AE(1,-,-): one horizontal chain.
    pub fn single() -> Self {
        Config {
            alpha: 1,
            s: 1,
            p: 0,
        }
    }

    /// Parities per data block.
    pub fn alpha(&self) -> u8 {
        self.alpha
    }

    /// Number of horizontal strands (rows).
    pub fn s(&self) -> u16 {
        self.s
    }

    /// Number of helical strands per helical class.
    pub fn p(&self) -> u16 {
        self.p
    }

    /// The strand classes present: `[H]`, `[H, RH]` or `[H, RH, LH]`.
    pub fn classes(&self) -> &'static [StrandClass] {
        StrandClass::for_alpha(self.alpha)
    }

    /// Total number of strands in the lattice: `s + (α − 1) · p` (§III.B).
    ///
    /// This is also the encoder's memory footprint in parities: it keeps the
    /// last parity of every strand.
    pub fn strand_count(&self) -> u32 {
        self.s as u32 + (self.alpha as u32 - 1) * self.p as u32
    }

    /// Code rate `1 / (α + 1)`: fraction of stored blocks that are data.
    pub fn code_rate(&self) -> f64 {
        1.0 / (self.alpha as f64 + 1.0)
    }

    /// Code rate for systems that only store the parities, `1 / α` (§III.B).
    pub fn parity_only_rate(&self) -> f64 {
        1.0 / self.alpha as f64
    }

    /// Additional storage as a percentage of the original data: `α · 100`
    /// (Table IV's "AS" row).
    pub fn storage_overhead_pct(&self) -> u32 {
        self.alpha as u32 * 100
    }

    /// Blocks read to repair one missing block: always 2, independent of
    /// every parameter (Table IV's "SF" row). The defining practical win of
    /// AE codes over RS(k, m), whose single-failure repair reads k blocks.
    pub const SINGLE_FAILURE_READS: u32 = 2;

    /// Whether this is the degenerate single-strand family (α = 1, and any
    /// α ≥ 2 with s = 1, whose helical strands span `p` positions along the
    /// single row).
    pub fn is_single_row(&self) -> bool {
        self.s == 1
    }

    /// Paper-style display name, e.g. `AE(3,2,5)` or `AE(1,-,-)`.
    pub fn name(&self) -> String {
        if self.alpha == 1 {
            "AE(1,-,-)".to_string()
        } else {
            format!("AE({},{},{})", self.alpha, self.s, self.p)
        }
    }
}

impl fmt::Debug for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_paper_settings() {
        // Every setting used in the paper's evaluation.
        for (a, s, p) in [
            (1, 1, 0),
            (2, 2, 5),
            (3, 2, 5), // 5-HEC
            (2, 1, 1),
            (3, 1, 1),
            (3, 1, 4),
            (3, 4, 4),
            (3, 5, 5),
            (3, 3, 3),
            (3, 10, 10),
        ] {
            assert!(Config::new(a, s, p).is_ok(), "AE({a},{s},{p})");
        }
    }

    #[test]
    fn rejects_invalid_settings() {
        assert_eq!(
            Config::new(0, 1, 0).unwrap_err(),
            ConfigError::AlphaOutOfRange(0)
        );
        assert_eq!(
            Config::new(4, 2, 2).unwrap_err(),
            ConfigError::AlphaOutOfRange(4)
        );
        assert!(matches!(
            Config::new(1, 2, 2).unwrap_err(),
            ConfigError::SingleEntanglementShape { .. }
        ));
        assert!(matches!(
            Config::new(2, 5, 3).unwrap_err(),
            ConfigError::DeformedLattice { s: 5, p: 3 }
        ));
        assert!(matches!(
            Config::new(2, 0, 0).unwrap_err(),
            ConfigError::DeformedLattice { .. }
        ));
    }

    #[test]
    fn derived_quantities() {
        let cfg = Config::new(3, 5, 5).unwrap();
        assert_eq!(cfg.strand_count(), 15, "AE(3,5,5) has 15 strands (§III.B)");
        assert_eq!(cfg.storage_overhead_pct(), 300);
        assert!((cfg.code_rate() - 0.25).abs() < 1e-12);
        assert!((cfg.parity_only_rate() - 1.0 / 3.0).abs() < 1e-12);

        let single = Config::single();
        assert_eq!(single.strand_count(), 1);
        assert_eq!(single.classes().len(), 1);
        assert!(single.is_single_row());
    }

    #[test]
    fn names_match_paper_notation() {
        assert_eq!(Config::single().name(), "AE(1,-,-)");
        assert_eq!(Config::new(2, 2, 5).unwrap().name(), "AE(2,2,5)");
        assert_eq!(format!("{}", Config::new(3, 2, 5).unwrap()), "AE(3,2,5)");
    }

    #[test]
    fn config_error_display() {
        assert!(Config::new(4, 2, 2)
            .unwrap_err()
            .to_string()
            .contains("alpha"));
        assert!(Config::new(2, 5, 3)
            .unwrap_err()
            .to_string()
            .contains("deform"));
        assert!(Config::new(1, 1, 3)
            .unwrap_err()
            .to_string()
            .contains("single"));
    }
}
