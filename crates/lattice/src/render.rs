//! ASCII rendering of lattice windows and erasure patterns.
//!
//! Produces Fig 4-style views: nodes arranged in `s` rows, one column per
//! write group, with markers for erased or highlighted blocks. Horizontal
//! edges are drawn inline; helical edges are summarized below the grid
//! (drawing every diagonal in ASCII is noise rather than signal).

use crate::config::Config;
use crate::graph::LatticeBlock;
use crate::rules;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Renders the nodes of columns `[first_col, last_col]` as a grid.
///
/// Markers: `(i)` for highlighted nodes, `[i]` for ordinary nodes. An `x`
/// after a horizontal gap marks an erased H edge leaving the left node.
///
/// # Examples
///
/// ```
/// use ae_lattice::{Config, render};
/// use std::collections::BTreeSet;
///
/// let cfg = Config::new(3, 5, 5).unwrap();
/// let grid = render::grid(&cfg, 0, 7, &BTreeSet::new());
/// assert!(grid.contains("[26]")); // Fig 4's example node
/// ```
pub fn grid(
    cfg: &Config,
    first_col: i64,
    last_col: i64,
    marked: &BTreeSet<LatticeBlock>,
) -> String {
    let s = cfg.s() as i64;
    let mut out = String::new();
    let width = ((last_col + 1) * s).to_string().len() + 2;
    for row in 0..s {
        for col in first_col..=last_col {
            let i = col * s + row + 1;
            let node = LatticeBlock::Node(i);
            let cell = if marked.contains(&node) {
                format!("({i})")
            } else {
                format!("[{i}]")
            };
            let _ = write!(out, "{cell:>width$}");
            let h_edge = LatticeBlock::Edge(ae_blocks::StrandClass::Horizontal, i);
            let gap = if marked.contains(&h_edge) {
                "--x--"
            } else {
                "-----"
            };
            if col < last_col {
                out.push_str(gap);
            }
        }
        out.push('\n');
    }
    out
}

/// One-line description of every marked block, grouped by kind, e.g.
/// `nodes: d26 d27 | edges: p[h]26(26,31) p[rh]25(25,26)`.
pub fn describe(cfg: &Config, marked: &BTreeSet<LatticeBlock>) -> String {
    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    for &b in marked {
        match b {
            LatticeBlock::Node(i) => nodes.push(format!("d{i}")),
            LatticeBlock::Edge(c, i) => {
                let j = rules::output_target(cfg, c, i);
                edges.push(format!("p[{c}]({i},{j})"));
            }
        }
    }
    format!("nodes: {} | edges: {}", nodes.join(" "), edges.join(" "))
}

/// Renders a minimal-erasure pattern: the grid window covering it plus the
/// block list, ready to print from examples and experiment binaries.
pub fn pattern(cfg: &Config, marked: &BTreeSet<LatticeBlock>) -> String {
    if marked.is_empty() {
        return "(empty pattern)".to_string();
    }
    let s = cfg.s() as i64;
    let min_pos = marked
        .iter()
        .map(|b| b.position())
        .min()
        .expect("non-empty");
    let max_pos = marked
        .iter()
        .map(|b| match b {
            LatticeBlock::Node(i) => *i,
            LatticeBlock::Edge(c, i) => rules::output_target(cfg, *c, *i),
        })
        .max()
        .expect("non-empty");
    let first_col = (min_pos - 1).div_euclid(s);
    let last_col = (max_pos - 1).div_euclid(s);
    format!(
        "{}\n{}",
        grid(cfg, first_col, last_col, marked),
        describe(cfg, marked)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_blocks::StrandClass::*;

    #[test]
    fn grid_places_nodes_in_columns() {
        let cfg = Config::new(3, 5, 5).unwrap();
        let g = grid(&cfg, 5, 6, &BTreeSet::new());
        // Column 5 holds nodes 26..=30 (Fig 4 layout).
        for i in 26..=30 {
            assert!(g.contains(&format!("[{i}]")), "node {i} in {g}");
        }
        assert_eq!(g.lines().count(), 5, "one line per row");
    }

    #[test]
    fn marked_nodes_get_parentheses() {
        let cfg = Config::new(2, 2, 2).unwrap();
        let mut marked = BTreeSet::new();
        marked.insert(LatticeBlock::Node(13));
        let g = grid(&cfg, 5, 7, &marked);
        assert!(g.contains("(13)"));
        assert!(g.contains("[14]"));
    }

    #[test]
    fn erased_horizontal_edges_marked() {
        let cfg = Config::new(2, 2, 2).unwrap();
        let mut marked = BTreeSet::new();
        marked.insert(LatticeBlock::Edge(Horizontal, 13));
        let g = grid(&cfg, 6, 8, &marked);
        assert!(g.contains("--x--"));
    }

    #[test]
    fn describe_lists_endpoints() {
        let cfg = Config::new(3, 5, 5).unwrap();
        let mut marked = BTreeSet::new();
        marked.insert(LatticeBlock::Node(26));
        marked.insert(LatticeBlock::Edge(LeftHanded, 26));
        let d = describe(&cfg, &marked);
        assert!(d.contains("d26"));
        assert!(d.contains("p[lh](26,35)"), "{d}");
    }

    #[test]
    fn pattern_covers_its_window() {
        let cfg = Config::new(2, 2, 3).unwrap();
        let mut marked = BTreeSet::new();
        marked.insert(LatticeBlock::Node(41));
        marked.insert(LatticeBlock::Node(44));
        let out = pattern(&cfg, &marked);
        assert!(out.contains("(41)") && out.contains("(44)"));
        assert_eq!(pattern(&cfg, &BTreeSet::new()), "(empty pattern)");
    }
}
