//! Graph navigation over the helical lattice.
//!
//! Builds on [`crate::rules`] to answer the questions the encoder, decoder
//! and analyses ask: what are the endpoints of an edge, which edges are
//! incident to a node, and — centrally — what are the **repair options** of
//! a block:
//!
//! * a node (data block) `d_i` is repaired from a complete *pp-tuple*: both
//!   incident parities on any one of its α strands (§IV.A "Failure Mode");
//! * an edge (parity block) `p_{i,j}` is repaired from a complete
//!   *dp-tuple*: one incident node plus that node's other parity on the same
//!   strand — two options, one per endpoint.
//!
//! Virtual blocks (positions ≤ 0) are all-zero and always available, so
//! they are simply omitted from the requirement lists.

use crate::config::Config;
use crate::rules;
use ae_blocks::StrandClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A block of the lattice identified by position: a node `d_i` or the edge
/// `p_{i,j}` of strand `class` whose left endpoint is `i`.
///
/// This is the `i64` analysis-plane counterpart of
/// [`ae_blocks::BlockId`]; positions ≤ 0 are virtual and never appear in a
/// `LatticeBlock` (they are omitted instead).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LatticeBlock {
    /// Data block `d_i`.
    Node(i64),
    /// Parity block: output edge of node `i` on `class`.
    Edge(StrandClass, i64),
}

impl LatticeBlock {
    /// Whether this is a data block.
    pub fn is_node(self) -> bool {
        matches!(self, LatticeBlock::Node(_))
    }

    /// The block's anchor position (`i` for both nodes and edges).
    pub fn position(self) -> i64 {
        match self {
            LatticeBlock::Node(i) | LatticeBlock::Edge(_, i) => i,
        }
    }
}

impl fmt::Debug for LatticeBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeBlock::Node(i) => write!(f, "d{i}"),
            LatticeBlock::Edge(c, i) => write!(f, "p[{c}]{i}"),
        }
    }
}

/// Error converting a [`LatticeBlock`] into a stored [`ae_blocks::BlockId`]:
/// the position is virtual (`i < 1`) and has no stored counterpart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualPosition {
    /// The offending analysis-plane block.
    pub block: LatticeBlock,
}

impl fmt::Display for VirtualPosition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "virtual lattice block {} has no stored block id",
            self.block
        )
    }
}

impl std::error::Error for VirtualPosition {}

/// Byte-plane id for an analysis-plane block. Fails on virtual positions
/// (`i < 1`), which are the implicit all-zero blocks before the lattice
/// and are never stored.
impl TryFrom<LatticeBlock> for ae_blocks::BlockId {
    type Error = VirtualPosition;

    fn try_from(b: LatticeBlock) -> Result<Self, VirtualPosition> {
        use ae_blocks::{BlockId, EdgeId, NodeId};
        if b.position() < 1 {
            return Err(VirtualPosition { block: b });
        }
        Ok(match b {
            LatticeBlock::Node(i) => BlockId::Data(NodeId(i as u64)),
            LatticeBlock::Edge(class, i) => BlockId::Parity(EdgeId::new(class, NodeId(i as u64))),
        })
    }
}

/// Analysis-plane view of a stored block id. Fails on redundancy ids that
/// are not lattice blocks (Reed-Solomon shards, replicas).
impl TryFrom<ae_blocks::BlockId> for LatticeBlock {
    type Error = ae_blocks::BlockId;

    fn try_from(id: ae_blocks::BlockId) -> Result<Self, ae_blocks::BlockId> {
        use ae_blocks::BlockId;
        match id {
            BlockId::Data(n) => Ok(LatticeBlock::Node(n.0 as i64)),
            BlockId::Parity(e) => Ok(LatticeBlock::Edge(e.class, e.left.0 as i64)),
            other => Err(other),
        }
    }
}

impl fmt::Display for LatticeBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        <Self as fmt::Debug>::fmt(self, f)
    }
}

/// Endpoints of an edge: the parity `p_{left,right}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Endpoints {
    /// Left endpoint `i` (the node whose entanglement created the parity).
    pub left: i64,
    /// Right endpoint `j` (the node the parity is tangled with next).
    pub right: i64,
}

/// One way to repair a block: XOR together all `requires` blocks.
///
/// Blocks listed are real lattice positions; virtual zero blocks are already
/// omitted, so an empty list means the target equals zero (never the case
/// for real data, but kept for completeness).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairOption {
    /// The strand class the tuple lives on.
    pub class: StrandClass,
    /// Blocks that must all be available.
    pub requires: Vec<LatticeBlock>,
}

/// Endpoints of edge `(class, left)`.
pub fn endpoints(cfg: &Config, class: StrandClass, left: i64) -> Endpoints {
    Endpoints {
        left,
        right: rules::output_target(cfg, class, left),
    }
}

/// The input edge of node `i` on `class`, or `None` when the input is the
/// virtual zero parity at a strand head.
pub fn input_edge(cfg: &Config, class: StrandClass, i: i64) -> Option<LatticeBlock> {
    let h = rules::input_source(cfg, class, i);
    (h >= 1).then_some(LatticeBlock::Edge(class, h))
}

/// The output edge of node `i` on `class` (always exists once `d_i` is
/// written).
pub fn output_edge(_cfg: &Config, class: StrandClass, i: i64) -> LatticeBlock {
    LatticeBlock::Edge(class, i)
}

/// All 2α incident edges of node `i` (inputs that exist, plus outputs).
pub fn incident_edges(cfg: &Config, i: i64) -> Vec<LatticeBlock> {
    let mut out = Vec::with_capacity(2 * cfg.alpha() as usize);
    for &class in cfg.classes() {
        if let Some(e) = input_edge(cfg, class, i) {
            out.push(e);
        }
        out.push(output_edge(cfg, class, i));
    }
    out
}

/// The α repair options of node `i`: for each strand class, the pp-tuple of
/// both incident parities (§III.B: "The decoder repairs a node using two
/// adjacent edges that belong to the same strand, thus, there are α
/// options").
pub fn node_repair_options(cfg: &Config, i: i64) -> Vec<RepairOption> {
    cfg.classes()
        .iter()
        .map(|&class| {
            let mut requires = Vec::with_capacity(2);
            if let Some(e) = input_edge(cfg, class, i) {
                requires.push(e);
            }
            requires.push(output_edge(cfg, class, i));
            RepairOption { class, requires }
        })
        .collect()
}

/// The two repair options of edge `(class, left)`: the dp-tuple at its left
/// endpoint (`d_i` plus `i`'s input parity on the strand) or at its right
/// endpoint (`d_j` plus `j`'s output parity on the strand).
///
/// In a lattice bounded to `max_node` nodes, the right option only exists
/// while `j ≤ max_node`; pass `i64::MAX` for the unbounded analysis plane.
pub fn edge_repair_options(
    cfg: &Config,
    class: StrandClass,
    left: i64,
    max_node: i64,
) -> Vec<RepairOption> {
    let mut opts = Vec::with_capacity(2);
    // Left: p_{i,j} = d_i XOR p_{h,i}.
    let mut requires = vec![LatticeBlock::Node(left)];
    if let Some(e) = input_edge(cfg, class, left) {
        requires.push(e);
    }
    opts.push(RepairOption { class, requires });
    // Right: p_{i,j} = d_j XOR p_{j,k}; both exist only if d_j was written.
    let right = rules::output_target(cfg, class, left);
    if right <= max_node {
        opts.push(RepairOption {
            class,
            requires: vec![LatticeBlock::Node(right), output_edge(cfg, class, right)],
        });
    }
    opts
}

/// Repair options for any block (dispatches on node vs edge).
pub fn repair_options(cfg: &Config, block: LatticeBlock, max_node: i64) -> Vec<RepairOption> {
    match block {
        LatticeBlock::Node(i) => node_repair_options(cfg, i),
        LatticeBlock::Edge(class, left) => edge_repair_options(cfg, class, left, max_node),
    }
}

/// Iterates all blocks of a lattice with nodes `1..=n`: `n` nodes and
/// `α · n` edges (every written node creates α output parities).
pub fn all_blocks(cfg: &Config, n: i64) -> impl Iterator<Item = LatticeBlock> + '_ {
    (1..=n).flat_map(move |i| {
        std::iter::once(LatticeBlock::Node(i)).chain(
            cfg.classes()
                .iter()
                .map(move |&class| LatticeBlock::Edge(class, i)),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_blocks::StrandClass::*;

    fn cfg(a: u8, s: u16, p: u16) -> Config {
        Config::new(a, s, p).unwrap()
    }

    #[test]
    fn endpoints_match_rules() {
        let c = cfg(3, 5, 5);
        let e = endpoints(&c, Horizontal, 26);
        assert_eq!((e.left, e.right), (26, 31));
        let e = endpoints(&c, LeftHanded, 26);
        assert_eq!((e.left, e.right), (26, 35));
    }

    #[test]
    fn node_has_alpha_repair_options_of_two_blocks() {
        let c = cfg(3, 2, 5);
        let opts = node_repair_options(&c, 100);
        assert_eq!(opts.len(), 3);
        for o in &opts {
            assert_eq!(o.requires.len(), 2, "pp-tuple on {o:?}");
            assert!(o.requires.iter().all(|b| !b.is_node()));
        }
        // Distinct classes.
        assert_ne!(opts[0].class, opts[1].class);
        assert_ne!(opts[1].class, opts[2].class);
    }

    #[test]
    fn node_near_origin_has_shorter_tuples() {
        let c = cfg(3, 2, 5);
        // Node 1: all inputs virtual, so each option needs only the output.
        for o in node_repair_options(&c, 1) {
            assert_eq!(o.requires.len(), 1, "{o:?}");
        }
    }

    #[test]
    fn edge_repair_options_are_dp_tuples() {
        let c = cfg(3, 5, 5);
        // Paper §III.B: to repair p21,26, compute XOR(d21, p16,21).
        let opts = edge_repair_options(&c, Horizontal, 21, i64::MAX);
        assert_eq!(opts.len(), 2);
        assert_eq!(
            opts[0].requires,
            vec![LatticeBlock::Node(21), LatticeBlock::Edge(Horizontal, 16)]
        );
        assert_eq!(
            opts[1].requires,
            vec![LatticeBlock::Node(26), LatticeBlock::Edge(Horizontal, 26)]
        );
    }

    #[test]
    fn edge_right_option_vanishes_at_lattice_tail() {
        let c = cfg(3, 5, 5);
        // Edge p26,31 with only 30 nodes written: right endpoint missing.
        let opts = edge_repair_options(&c, Horizontal, 26, 30);
        assert_eq!(opts.len(), 1);
        assert_eq!(opts[0].requires[0], LatticeBlock::Node(26));
    }

    #[test]
    fn incident_edges_count() {
        let c = cfg(3, 3, 3);
        // Far from origin: α inputs + α outputs.
        assert_eq!(incident_edges(&c, 500).len(), 6);
        // Node 1: inputs are virtual.
        assert_eq!(incident_edges(&c, 1).len(), 3);
    }

    #[test]
    fn all_blocks_counts() {
        let c = cfg(2, 2, 3);
        let blocks: Vec<_> = all_blocks(&c, 10).collect();
        assert_eq!(blocks.len(), 10 + 2 * 10);
        assert_eq!(blocks.iter().filter(|b| b.is_node()).count(), 10);
    }

    #[test]
    fn block_ordering_and_display() {
        let a = LatticeBlock::Node(3);
        let b = LatticeBlock::Edge(Horizontal, 3);
        assert!(a < b, "nodes sort before edges at equal position");
        assert_eq!(format!("{a}"), "d3");
        assert_eq!(format!("{b}"), "p[h]3");
        assert_eq!(a.position(), 3);
        assert_eq!(b.position(), 3);
        assert!(a.is_node() && !b.is_node());
    }
}
