//! Quick sanity sweep of the minimal-erasure search against the pattern
//! sizes printed in the paper (Fig 7 and §I).
use ae_lattice::{Config, MeSearch};

fn main() {
    for (a, s, p, x, expect) in [
        (1u8, 1u16, 0u16, 2usize, 3usize), // Fig 6 primitive form I
        (2, 1, 1, 2, 4),                   // Fig 7 A
        (3, 1, 1, 2, 5),                   // Fig 7 B
        (3, 1, 4, 2, 8),                   // Fig 7 C
        (3, 4, 4, 2, 14),                  // Fig 7 D
    ] {
        let cfg = Config::new(a, s, p).unwrap();
        let t = std::time::Instant::now();
        let pat = MeSearch::new(cfg).min_erasure(x).expect("pattern exists");
        println!(
            "{cfg} |ME({x})| = {} (paper: {expect}) in {:?}",
            pat.size(),
            t.elapsed()
        );
        assert_eq!(pat.size(), expect);
    }
    println!("all pattern sizes match the paper");
}
