//! Property-based tests of the lattice geometry.

use ae_lattice::{graph, me, rules, strand, Config, LatticeBlock};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Arbitrary valid configurations over the ranges the paper considers.
fn any_config() -> impl Strategy<Value = Config> {
    (1u8..=3, 1u16..=6, 0u16..=8).prop_filter_map("valid AE settings", |(a, s, p)| {
        if a == 1 {
            Config::new(1, 1, 0).ok()
        } else {
            let p = p.max(s);
            Config::new(a, s, p).ok()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Input and output rules are mutual inverses on every class, at any
    /// position.
    #[test]
    fn rules_invert(cfg in any_config(), i in 1i64..100_000) {
        // Keep away from the origin so inputs are real.
        let i = i + (cfg.s() as i64 * cfg.p().max(1) as i64) * 4;
        for &class in cfg.classes() {
            let j = rules::output_target(&cfg, class, i);
            prop_assert!(j > i);
            prop_assert_eq!(rules::input_source(&cfg, class, j), i);
            let h = rules::input_source(&cfg, class, i);
            prop_assert!(h < i);
            prop_assert_eq!(rules::output_target(&cfg, class, h), i);
        }
    }

    /// Row/column/category are mutually consistent.
    #[test]
    fn geometry_coordinates_consistent(cfg in any_config(), i in 1i64..1_000_000) {
        let s = cfg.s() as i64;
        let (row, col) = (rules::row(&cfg, i), rules::column(&cfg, i));
        prop_assert_eq!(col * s + row + 1, i);
        prop_assert!((0..s).contains(&row));
        match rules::category(&cfg, i) {
            ae_lattice::NodeCategory::Top => prop_assert_eq!(row, 0),
            ae_lattice::NodeCategory::Bottom => prop_assert_eq!(row, s - 1),
            ae_lattice::NodeCategory::Central => prop_assert!(row > 0 && row < s - 1),
            ae_lattice::NodeCategory::SingleRow => prop_assert_eq!(s, 1),
        }
    }

    /// Walking forward then backward along any strand returns home.
    #[test]
    fn strand_walks_invert(cfg in any_config(), start in 1i64..10_000, len in 1usize..30) {
        let start = start + (cfg.s() as i64 * cfg.p().max(1) as i64) * 40;
        for &class in cfg.classes() {
            let fwd = strand::walk_forward(&cfg, class, start, len);
            let back = strand::walk_backward(&cfg, class, *fwd.last().unwrap(), len);
            prop_assert_eq!(*back.last().unwrap(), start);
        }
    }

    /// Every node's repair options are α pp-tuples whose blocks are
    /// incident edges of the node.
    #[test]
    fn node_options_are_incident(cfg in any_config(), i in 1i64..50_000) {
        let i = i + (cfg.s() as i64 * cfg.p().max(1) as i64) * 4;
        let incident: BTreeSet<LatticeBlock> =
            graph::incident_edges(&cfg, i).into_iter().collect();
        let opts = graph::node_repair_options(&cfg, i);
        prop_assert_eq!(opts.len(), cfg.alpha() as usize);
        for o in opts {
            prop_assert_eq!(o.requires.len(), 2);
            for r in &o.requires {
                prop_assert!(incident.contains(r), "{:?} not incident to d{}", r, i);
            }
        }
    }

    /// A single missing block is always repairable; so is any pair (every
    /// dead pattern needs at least |ME(2)| ≥ 3 blocks).
    #[test]
    fn singles_and_pairs_always_recover(
        cfg in any_config(),
        a in 0u8..4,
        b in 0u8..4,
        off in 0i64..50,
    ) {
        let base = (cfg.s() as i64 * cfg.p().max(1) as i64) * 50 + 1000;
        let to_block = |kind: u8, pos: i64| match kind % (1 + cfg.alpha()) {
            0 => LatticeBlock::Node(pos),
            k => LatticeBlock::Edge(cfg.classes()[(k - 1) as usize], pos),
        };
        let mut erased = BTreeSet::new();
        erased.insert(to_block(a, base));
        erased.insert(to_block(b, base + off));
        let rest = me::decode_fixpoint(&cfg, &erased);
        prop_assert!(rest.is_empty(), "{:?} stuck for {}", rest, cfg);
    }

    /// decode_fixpoint is monotone: erasing more blocks never recovers
    /// blocks that a smaller erasure could not.
    #[test]
    fn fixpoint_monotone(cfg in any_config(), picks in proptest::collection::vec((0u8..4, 0i64..40), 2..10)) {
        let base = (cfg.s() as i64 * cfg.p().max(1) as i64) * 50 + 1000;
        let blocks: Vec<LatticeBlock> = picks
            .iter()
            .map(|&(kind, off)| match kind % (1 + cfg.alpha()) {
                0 => LatticeBlock::Node(base + off),
                k => LatticeBlock::Edge(cfg.classes()[(k - 1) as usize], base + off),
            })
            .collect();
        let small: BTreeSet<LatticeBlock> = blocks[..blocks.len() / 2].iter().copied().collect();
        let large: BTreeSet<LatticeBlock> = blocks.iter().copied().collect();
        let small_rest = me::decode_fixpoint(&cfg, &small);
        let large_rest = me::decode_fixpoint(&cfg, &large);
        // Anything the small erasure could not recover is also stuck (or
        // erased) in the large erasure's remainder.
        for b in &small_rest {
            prop_assert!(large_rest.contains(b), "{:?} recovered only in the larger erasure", b);
        }
    }

    /// Dead sets stay dead under the byte-level definition used everywhere:
    /// patterns found by search never shrink under fixpoint decoding.
    #[test]
    fn search_patterns_are_fixpoints(
        cfg in prop_oneof![
            Just(Config::new(2, 1, 1).unwrap()),
            Just(Config::new(2, 2, 2).unwrap()),
            Just(Config::new(3, 1, 2).unwrap()),
        ],
    ) {
        let pat = me::MeSearch::new(cfg).min_erasure(2).expect("exists");
        prop_assert_eq!(me::decode_fixpoint(&cfg, &pat.blocks), pat.blocks);
    }
}
