//! Block primitives for alpha entanglement codes.
//!
//! Every redundancy scheme in this workspace — alpha entanglement codes,
//! Reed-Solomon, replication — operates on fixed-size byte blocks. This crate
//! provides the shared substrate:
//!
//! * [`Block`] — an owned, fixed-size byte block with cheap clones (backed by
//!   [`bytes::Bytes`]).
//! * [`xor`] — the XOR kernels used by the entanglement encoder and decoder.
//!   A single-failure repair in an entangled storage system is exactly one
//!   call to [`xor::xor_of`].
//! * [`crc`] — CRC32 (IEEE 802.3) checksums so stores can detect corrupted or
//!   tampered blocks before using them in a repair.
//! * [`id`] — typed identifiers for data blocks (lattice nodes) and parity
//!   blocks (lattice edges), shared by the lattice, core, store and sim
//!   crates.
//!
//! # Design notes
//!
//! The paper's encoder and decoder are "lightweight — essentially based on
//! exclusive-or operations" (§VII). The hot path is XORing two equal-length
//! slices; the byte-moving loops behind [`xor`] and [`crc`] live in the
//! [`ae_kernels`] crate, which detects the host CPU once at first use and
//! installs the widest supported implementation (AVX2/SSE2 XOR and PCLMULQDQ
//! CRC folding on x86-64, NEON and the ARMv8 CRC32 instructions on AArch64,
//! an autovectorized portable fallback elsewhere). This crate stays
//! `forbid(unsafe_code)`; all `unsafe` is confined to the kernel crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod crc;
pub mod id;
pub mod xor;

pub use block::{Block, BlockError};
pub use crc::{crc32, crc32_of_xor, crc32_zeros, Crc32};
pub use id::{BlockId, EdgeId, MetaId, NodeId, ReplicaId, ShardId, StrandClass};
