//! Typed identifiers for lattice blocks.
//!
//! The helical lattice of AE(α, s, p) is a graph whose vertices are data
//! blocks and whose edges are parity blocks (§III). A vertex is uniquely
//! identified by its position `i ≥ 1` in write order. Because every node has
//! exactly one *output* edge per strand class, an edge is uniquely identified
//! by `(class, left endpoint)`; the right endpoint follows from the code
//! parameters. These identifiers are shared by every crate in the workspace
//! so that a block referenced by the lattice, the repair engine and a store
//! is unambiguously the same block.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Position of a data block (lattice node), starting at 1.
///
/// The paper writes nodes `d_i` with `i` the position in the sequential write
/// order; position 0 is reserved for "before the lattice" (virtual zero
/// blocks at strand heads).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u64);

impl NodeId {
    /// Returns the raw 1-based position.
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        <Self as fmt::Debug>::fmt(self, f)
    }
}

/// The three strand classes of an alpha entanglement lattice.
///
/// A lattice has `s` horizontal strands and, per helical class present,
/// `p` strands: double entanglements (α = 2) add the right-handed class,
/// triple entanglements (α = 3) add the left-handed class as well (§III.B).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StrandClass {
    /// Horizontal strand: connects `d_i` to `d_{i+s}`.
    Horizontal,
    /// Right-handed helical strand (diagonal of slope 1, wrapping downward).
    RightHanded,
    /// Left-handed helical strand (diagonal of slope −1, wrapping upward).
    LeftHanded,
}

impl StrandClass {
    /// All classes, in the order `[H, RH, LH]`.
    pub const ALL: [StrandClass; 3] = [
        StrandClass::Horizontal,
        StrandClass::RightHanded,
        StrandClass::LeftHanded,
    ];

    /// The classes present in a code with `alpha` parities per data block:
    /// `[H]`, `[H, RH]` or `[H, RH, LH]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is 0 or greater than 3; codes beyond α = 3 are an
    /// open problem in the paper ("it is not clear how to connect the extra
    /// helical strands", §V.A).
    pub fn for_alpha(alpha: u8) -> &'static [StrandClass] {
        match alpha {
            1 => &Self::ALL[..1],
            2 => &Self::ALL[..2],
            3 => &Self::ALL[..3],
            _ => panic!("alpha entanglement codes support alpha in 1..=3, got {alpha}"),
        }
    }

    /// Small dense index (0 = H, 1 = RH, 2 = LH) for array-backed tables.
    pub fn index(self) -> usize {
        match self {
            StrandClass::Horizontal => 0,
            StrandClass::RightHanded => 1,
            StrandClass::LeftHanded => 2,
        }
    }

    /// Short lower-case label used in tables and debug output (`h`, `rh`,
    /// `lh`), matching the paper's Table V.
    pub fn label(self) -> &'static str {
        match self {
            StrandClass::Horizontal => "h",
            StrandClass::RightHanded => "rh",
            StrandClass::LeftHanded => "lh",
        }
    }
}

impl fmt::Debug for StrandClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl fmt::Display for StrandClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        <Self as fmt::Debug>::fmt(self, f)
    }
}

/// Identifier of a parity block (lattice edge): the output edge of node
/// `left` on strand class `class`.
///
/// The paper writes edges `p_{i,j}`; since `j` is a function of `(class, i)`
/// and the code parameters, `(class, i)` is the canonical form. Use
/// [`ae_lattice`-level helpers](https://docs.rs/ae-lattice) to recover `j`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId {
    /// Strand class the parity belongs to (each edge belongs to exactly one
    /// strand).
    pub class: StrandClass,
    /// Left endpoint `d_i`; the parity is `p_{i,j}`.
    pub left: NodeId,
}

impl EdgeId {
    /// Convenience constructor.
    pub fn new(class: StrandClass, left: NodeId) -> Self {
        EdgeId { class, left }
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p[{}]{}→", self.class.label(), self.left.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        <Self as fmt::Debug>::fmt(self, f)
    }
}

/// Identifier of a Reed-Solomon parity shard: shard `index` (0-based among
/// the `m` parity shards) of stripe `stripe` (0-based in write order).
///
/// Data shards of a stripe are ordinary [`BlockId::Data`] blocks — all
/// redundancy schemes share the data id space, so a scheme-agnostic store
/// or simulation can compare them block for block.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ShardId {
    /// 0-based stripe number in write order.
    pub stripe: u64,
    /// 0-based index among the stripe's parity shards.
    pub index: u16,
}

impl fmt::Debug for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}.{}", self.stripe, self.index)
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        <Self as fmt::Debug>::fmt(self, f)
    }
}

/// Identifier of a replica: copy `copy` (1-based; copy 0 is the original
/// [`BlockId::Data`] block) of data block `node`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReplicaId {
    /// The replicated data block.
    pub node: NodeId,
    /// 1-based copy number (the original data block is copy 0).
    pub copy: u16,
}

impl fmt::Debug for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}#{}", self.node.0, self.copy)
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        <Self as fmt::Debug>::fmt(self, f)
    }
}

/// Identifier of an archive metadata block: a journal record **copy** or
/// a checkpoint **pointer cell**.
///
/// Metadata blocks live in a **reserved namespace** of the shared id
/// space: no redundancy scheme ever emits a `Meta` id, every scheme
/// treats one as foreign, and placement keys them far away from all
/// scheme ids — so an archive can persist its manifest, write-order id
/// log and encoder frontier through the *same* backend that holds the
/// blocks, without colliding with any code's universe.
///
/// # Bit layout
///
/// The raw `u64` packs three sub-fields, all kept below bit 48 because
/// multi-tenant stores tag the tenant number into the high 16 bits of
/// every id kind:
///
/// | bits   | field |
/// |-------:|-------|
/// | 0..40  | journal sequence number (records) or pointer slot |
/// | 40..43 | copy index, `0..`[`MetaId::MAX_COPIES`] |
/// | 43     | pointer-cell flag |
///
/// Copy 0 of record `seq` is the raw value `seq` itself, so journals
/// written before metadata redundancy existed read back as a one-copy
/// copy set unchanged.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MetaId(pub u64);

impl MetaId {
    /// Most copies a metadata record can be spread over (3 copy bits).
    pub const MAX_COPIES: u16 = 8;
    /// Width of the sequence-number field.
    pub const SEQ_BITS: u32 = 40;
    const COPY_SHIFT: u32 = Self::SEQ_BITS;
    const POINTER_BIT: u64 = 1 << 43;
    const SEQ_MASK: u64 = (1 << Self::SEQ_BITS) - 1;

    /// The id of copy `copy` of journal record `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` overflows the 40-bit sequence space or `copy` is
    /// not below [`MetaId::MAX_COPIES`].
    pub fn record(seq: u64, copy: u16) -> Self {
        assert!(seq <= Self::SEQ_MASK, "meta sequence {seq} overflows");
        assert!(copy < Self::MAX_COPIES, "copy {copy} out of range");
        MetaId(seq | ((copy as u64) << Self::COPY_SHIFT))
    }

    /// The id of copy `copy` of checkpoint-pointer cell `slot`.
    ///
    /// # Panics
    ///
    /// Panics as [`MetaId::record`] does on out-of-range fields.
    pub fn pointer(slot: u64, copy: u16) -> Self {
        MetaId(Self::record(slot, copy).0 | Self::POINTER_BIT)
    }

    /// Sequence number (records) or slot (pointer cells).
    pub fn seq(self) -> u64 {
        self.0 & Self::SEQ_MASK
    }

    /// Which copy of the record or pointer cell this is.
    pub fn copy(self) -> u16 {
        ((self.0 >> Self::COPY_SHIFT) & (Self::MAX_COPIES as u64 - 1)) as u16
    }

    /// Whether this id addresses a checkpoint-pointer cell.
    pub fn is_pointer(self) -> bool {
        self.0 & Self::POINTER_BIT != 0
    }
}

impl fmt::Debug for MetaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pointer() {
            write!(f, "meta-ptr#{}", self.seq())?;
        } else {
            write!(f, "meta#{}", self.seq())?;
        }
        if self.copy() != 0 {
            write!(f, "~{}", self.copy())?;
        }
        Ok(())
    }
}

impl fmt::Display for MetaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        <Self as fmt::Debug>::fmt(self, f)
    }
}

/// Any block in an entangled (or baseline-encoded) storage system.
///
/// Data blocks are shared across all redundancy schemes; the redundancy
/// variants identify each scheme's derived blocks: lattice parities for
/// alpha entanglement, parity shards for Reed-Solomon, extra copies for
/// replication. A scheme only ever emits ids of its own redundancy kind,
/// but stores and simulations handle all of them uniformly. The
/// [`BlockId::Meta`] namespace is reserved for archive metadata records
/// (see [`MetaId`]) and belongs to no scheme.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BlockId {
    /// A data block `d_i`.
    Data(NodeId),
    /// An entanglement parity block `p_{i,j}` identified by its class and
    /// left endpoint.
    Parity(EdgeId),
    /// A Reed-Solomon parity shard.
    Shard(ShardId),
    /// An extra replica of a data block.
    Replica(ReplicaId),
    /// An archive metadata record (reserved namespace; scheme-foreign).
    Meta(MetaId),
}

impl BlockId {
    /// Returns `true` for data blocks.
    pub fn is_data(self) -> bool {
        matches!(self, BlockId::Data(_))
    }

    /// Returns `true` for entanglement parity blocks.
    pub fn is_parity(self) -> bool {
        matches!(self, BlockId::Parity(_))
    }

    /// Returns `true` for any redundancy block (everything but data and
    /// archive metadata).
    pub fn is_redundancy(self) -> bool {
        !self.is_data() && !self.is_meta()
    }

    /// Returns `true` for archive metadata records (the reserved
    /// scheme-foreign namespace).
    pub fn is_meta(self) -> bool {
        matches!(self, BlockId::Meta(_))
    }

    /// The node id if this is a data block.
    pub fn as_data(self) -> Option<NodeId> {
        match self {
            BlockId::Data(n) => Some(n),
            _ => None,
        }
    }

    /// The edge id if this is an entanglement parity block.
    pub fn as_parity(self) -> Option<EdgeId> {
        match self {
            BlockId::Parity(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NodeId> for BlockId {
    fn from(n: NodeId) -> Self {
        BlockId::Data(n)
    }
}

impl From<EdgeId> for BlockId {
    fn from(e: EdgeId) -> Self {
        BlockId::Parity(e)
    }
}

impl From<ShardId> for BlockId {
    fn from(s: ShardId) -> Self {
        BlockId::Shard(s)
    }
}

impl From<ReplicaId> for BlockId {
    fn from(r: ReplicaId) -> Self {
        BlockId::Replica(r)
    }
}

impl From<MetaId> for BlockId {
    fn from(m: MetaId) -> Self {
        BlockId::Meta(m)
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockId::Data(n) => write!(f, "{n:?}"),
            BlockId::Parity(e) => write!(f, "{e:?}"),
            BlockId::Shard(s) => write!(f, "{s:?}"),
            BlockId::Replica(r) => write!(f, "{r:?}"),
            BlockId::Meta(m) => write!(f, "{m:?}"),
        }
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        <Self as fmt::Debug>::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_for_alpha_slices() {
        assert_eq!(StrandClass::for_alpha(1), &[StrandClass::Horizontal]);
        assert_eq!(
            StrandClass::for_alpha(2),
            &[StrandClass::Horizontal, StrandClass::RightHanded]
        );
        assert_eq!(StrandClass::for_alpha(3).len(), 3);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn class_for_alpha_rejects_zero() {
        StrandClass::for_alpha(0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn class_for_alpha_rejects_four() {
        StrandClass::for_alpha(4);
    }

    #[test]
    fn display_formats_match_paper_notation() {
        assert_eq!(NodeId(26).to_string(), "d26");
        let e = EdgeId::new(StrandClass::LeftHanded, NodeId(26));
        assert_eq!(e.to_string(), "p[lh]26→");
        assert_eq!(StrandClass::RightHanded.to_string(), "rh");
    }

    #[test]
    fn block_id_accessors() {
        let d: BlockId = NodeId(5).into();
        let p: BlockId = EdgeId::new(StrandClass::Horizontal, NodeId(5)).into();
        assert!(d.is_data() && !d.is_parity());
        assert!(p.is_parity() && !p.is_data());
        let m: BlockId = MetaId(7).into();
        assert!(m.is_meta() && !m.is_data() && !m.is_redundancy());
        assert_eq!(m.to_string(), "meta#7");
        assert!(p.is_redundancy() && !d.is_redundancy());
        assert_eq!(d.as_data(), Some(NodeId(5)));
        assert_eq!(p.as_data(), None);
        assert_eq!(p.as_parity().unwrap().left, NodeId(5));
        assert_eq!(d.as_parity(), None);
    }

    #[test]
    fn meta_copy_addressing_roundtrips_below_the_tenant_bits() {
        // Copy 0 of a record is the bare sequence number (v1 journals).
        assert_eq!(MetaId::record(7, 0), MetaId(7));
        let mut seen = std::collections::HashSet::new();
        for seq in [0, 1, 7, (1 << MetaId::SEQ_BITS) - 1] {
            for copy in 0..MetaId::MAX_COPIES {
                let r = MetaId::record(seq, copy);
                assert_eq!((r.seq(), r.copy(), r.is_pointer()), (seq, copy, false));
                assert!(seen.insert(r.0), "{r:?} collides");
                assert_eq!(r.0 >> 48, 0, "copy ids stay in the tenant-local space");
                if seq < 2 {
                    let p = MetaId::pointer(seq, copy);
                    assert_eq!((p.seq(), p.copy(), p.is_pointer()), (seq, copy, true));
                    assert!(seen.insert(p.0), "{p:?} collides");
                    assert_eq!(p.0 >> 48, 0);
                }
            }
        }
        assert_eq!(MetaId::record(3, 2).to_string(), "meta#3~2");
        assert_eq!(MetaId::pointer(1, 0).to_string(), "meta-ptr#1");
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn meta_record_rejects_overflowing_sequences() {
        MetaId::record(1 << MetaId::SEQ_BITS, 0);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let mut s = BTreeSet::new();
        s.insert(BlockId::Data(NodeId(2)));
        s.insert(BlockId::Data(NodeId(1)));
        s.insert(BlockId::Parity(EdgeId::new(
            StrandClass::Horizontal,
            NodeId(1),
        )));
        assert_eq!(s.len(), 3);
    }
}
