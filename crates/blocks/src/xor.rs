//! XOR kernels.
//!
//! The entanglement function of AE(α, s, p) computes each parity as the XOR
//! of two consecutive blocks at the head of a strand (§III of the paper), and
//! every repair — of a data block from a pp-tuple or of a parity block from a
//! dp-tuple — is again a single XOR of two blocks. These kernels are the
//! entire arithmetic of the code.
//!
//! The byte-moving bodies live in [`ae_kernels`], which selects the widest
//! implementation the host supports at first use (AVX2/SSE2 on x86-64, NEON
//! on AArch64, an autovectorized portable loop elsewhere or under
//! `AE_KERNEL=scalar`). This module contributes the block-level contracts:
//! equal-length validation, the zero-block identity of [`xor_all`], and the
//! allocation discipline of [`xor_of`]/[`xor_of_owned`].

/// XORs `src` into `dst` in place: `dst[i] ^= src[i]`.
///
/// Delegates to the runtime-dispatched [`ae_kernels::xor_into`] kernel —
/// four-register unrolled AVX2/SSE2/NEON where available, a 32-byte-per-step
/// portable loop otherwise.
///
/// # Panics
///
/// Panics if the slices have different lengths. Blocks in one lattice always
/// share a size; mismatched lengths indicate a logic error upstream, not a
/// runtime condition to recover from.
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "xor_into requires equal-length blocks"
    );
    ae_kernels::xor_into(dst, src);
}

/// Returns the XOR of two equal-length slices as a fresh vector.
///
/// This is the exact cost of a single-failure repair in an entangled storage
/// system: `SF = 2` block reads plus one `xor_of` (§V.C.3, Table IV). The
/// output is produced in one fused pass ([`ae_kernels::xor3`]) rather than
/// copy-then-XOR, so each operand byte is read once and each output byte
/// written once.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor_of(a: &[u8], b: &[u8]) -> Vec<u8> {
    assert_eq!(a.len(), b.len(), "xor_of requires equal-length blocks");
    let mut out = vec![0u8; a.len()];
    ae_kernels::xor3(&mut out, a, b);
    out
}

/// Returns `a XOR b`, consuming `a` as the output buffer.
///
/// When the caller already owns one operand — the encoder's pad cache hands
/// over an owned block on the entanglement hot path — the XOR happens in
/// place and no new allocation or copy is made at all.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor_of_owned(mut a: Vec<u8>, b: &[u8]) -> Vec<u8> {
    assert_eq!(
        a.len(),
        b.len(),
        "xor_of_owned requires equal-length blocks"
    );
    ae_kernels::xor_into(&mut a, b);
    a
}

/// XORs all `srcs` together into a fresh vector of `len` bytes.
///
/// Used by punctured-lattice repairs and by the RS baseline's XOR fast path.
/// The accumulator is initialized by copying the first source — not by
/// zero-filling and XORing it in, which would cost one extra full pass —
/// and every further source folds in through the wide [`xor_into`] kernel.
/// An empty `srcs` yields the all-zero block, which is also the virtual
/// parity at a strand head (blocks before the start of the lattice read as
/// zeros).
///
/// # Panics
///
/// Panics if any source has a length other than `len`.
pub fn xor_all<'a, I>(len: usize, srcs: I) -> Vec<u8>
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let mut srcs = srcs.into_iter();
    let Some(first) = srcs.next() else {
        return vec![0u8; len];
    };
    assert_eq!(first.len(), len, "xor_all requires equal-length sources");
    let mut out = first.to_vec();
    for s in srcs {
        xor_into(&mut out, s);
    }
    out
}

/// Returns `true` if every byte of `b` is zero.
///
/// Zero blocks act as the virtual parities at strand heads; the decoder uses
/// this to recognize them cheaply.
pub fn is_zero(b: &[u8]) -> bool {
    b.iter().all(|&x| x == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_into_basic() {
        let mut a = vec![0b1010_1010u8; 20];
        let b = vec![0b0101_0101u8; 20];
        xor_into(&mut a, &b);
        assert!(a.iter().all(|&x| x == 0xFF));
    }

    #[test]
    fn xor_into_handles_unaligned_tail() {
        for len in 0..=33 {
            let a: Vec<u8> = (0..len as u8).collect();
            let b: Vec<u8> = (0..len as u8).map(|x| x.wrapping_mul(7)).collect();
            let mut got = a.clone();
            xor_into(&mut got, &b);
            let want: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
            assert_eq!(got, want, "len={len}");
        }
    }

    #[test]
    fn xor_of_is_involutive() {
        let a: Vec<u8> = (0..255).collect();
        let b: Vec<u8> = (0..255)
            .map(|x: u8| x.wrapping_mul(31).wrapping_add(5))
            .collect();
        let p = xor_of(&a, &b);
        assert_eq!(xor_of(&p, &b), a, "a ^ b ^ b == a");
        assert_eq!(xor_of(&p, &a), b, "a ^ b ^ a == b");
    }

    #[test]
    fn xor_all_empty_is_zero() {
        let z = xor_all(16, std::iter::empty());
        assert!(is_zero(&z));
    }

    #[test]
    fn xor_all_three_sources() {
        let a = vec![1u8; 8];
        let b = vec![2u8; 8];
        let c = vec![4u8; 8];
        let out = xor_all(8, [a.as_slice(), b.as_slice(), c.as_slice()]);
        assert!(out.iter().all(|&x| x == 7));
    }

    #[test]
    fn xor_all_single_source_is_a_copy() {
        let a: Vec<u8> = (0..37).collect();
        assert_eq!(xor_all(37, [a.as_slice()]), a);
    }

    #[test]
    fn xor_all_matches_bytewise_reference_across_widths() {
        // Lengths straddling the 32-byte kernel, the 8-byte tail and the
        // byte tail.
        for len in [0usize, 1, 7, 8, 9, 31, 32, 33, 40, 63, 64, 65, 100] {
            let srcs: Vec<Vec<u8>> = (0..4u8)
                .map(|s| (0..len).map(|i| (i as u8).wrapping_mul(s + 3)).collect())
                .collect();
            let want: Vec<u8> = (0..len)
                .map(|i| srcs.iter().fold(0u8, |acc, s| acc ^ s[i]))
                .collect();
            let got = xor_all(len, srcs.iter().map(|s| s.as_slice()));
            assert_eq!(got, want, "len={len}");
        }
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn xor_into_rejects_mismatched_lengths() {
        let mut a = vec![0u8; 4];
        xor_into(&mut a, &[0u8; 5]);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn xor_all_rejects_mismatched_first_source() {
        xor_all(4, [&[0u8; 5][..]]);
    }

    #[test]
    fn is_zero_detects_nonzero() {
        assert!(is_zero(&[0, 0, 0]));
        assert!(!is_zero(&[0, 1, 0]));
        assert!(is_zero(&[]));
    }
}
