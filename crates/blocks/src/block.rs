//! The [`Block`] type: a fixed-size, cheaply clonable byte block.
//!
//! Data and parity blocks in an entanglement lattice always have identical
//! sizes ("The encoder constructs a helical lattice using data and parity
//! blocks with identical size", §III.B). `Block` wraps [`bytes::Bytes`] so
//! that the many components holding references to the same block — encoder
//! frontier, store, repair engine — share one allocation.

use crate::crc::crc32;
use crate::xor;
use bytes::Bytes;
use std::fmt;

/// Errors arising from block-level operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockError {
    /// Two blocks that must have equal sizes did not.
    SizeMismatch {
        /// Size of the left/destination operand.
        expected: usize,
        /// Size of the right/source operand.
        actual: usize,
    },
    /// A stored checksum did not match the block contents.
    ChecksumMismatch {
        /// Checksum recorded when the block was sealed.
        stored: u32,
        /// Checksum recomputed from the current contents.
        computed: u32,
    },
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::SizeMismatch { expected, actual } => {
                write!(
                    f,
                    "block size mismatch: expected {expected} bytes, got {actual}"
                )
            }
            BlockError::ChecksumMismatch { stored, computed } => write!(
                f,
                "block checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for BlockError {}

/// An immutable, fixed-size byte block with a cached CRC32 checksum.
///
/// Cloning is O(1) (reference-counted). Equality compares contents.
///
/// # Examples
///
/// ```
/// use ae_blocks::Block;
///
/// let a = Block::from_vec(vec![1, 2, 3, 4]);
/// let b = Block::from_vec(vec![5, 6, 7, 8]);
/// let parity = a.xor(&b).unwrap();
/// // XOR is self-inverse: recover `a` from the parity and `b`.
/// assert_eq!(parity.xor(&b).unwrap(), a);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Block {
    bytes: Bytes,
    crc: u32,
}

impl Block {
    /// Wraps an owned byte vector as a block, computing its checksum.
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        let crc = crc32(&bytes);
        Block {
            bytes: Bytes::from(bytes),
            crc,
        }
    }

    /// Copies a slice into a new block.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Self::from_vec(bytes.to_vec())
    }

    /// The all-zero block of `len` bytes.
    ///
    /// Zero blocks serve as the virtual parities at strand heads: tangling
    /// the first data block of a strand XORs it with zeros, so the first
    /// parity equals the data block itself.
    pub fn zero(len: usize) -> Self {
        Self::from_vec(vec![0u8; len])
    }

    /// Block contents.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Block size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the block has zero length.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Whether every byte is zero.
    pub fn is_zero(&self) -> bool {
        xor::is_zero(&self.bytes)
    }

    /// The CRC32 checksum computed when the block was created.
    pub fn crc(&self) -> u32 {
        self.crc
    }

    /// Recomputes the checksum and verifies it against the cached value.
    ///
    /// A store calls this before using a fetched block in a repair, so a
    /// corrupted or tampered replica is detected rather than silently XORed
    /// into reconstructed data (the paper's integrity motivation, §I).
    pub fn verify(&self) -> Result<(), BlockError> {
        let computed = crc32(&self.bytes);
        if computed == self.crc {
            Ok(())
        } else {
            Err(BlockError::ChecksumMismatch {
                stored: self.crc,
                computed,
            })
        }
    }

    /// Returns `self XOR other` as a new block.
    ///
    /// This is the entanglement function: one XOR of two equal-size
    /// blocks. The result's checksum is derived from the operands'
    /// checksums via CRC32 linearity (`crc(a⊕b) = crc(a) ⊕ crc(b) ⊕
    /// crc(0…0)`), so no second pass over the bytes is needed.
    pub fn xor(&self, other: &Block) -> Result<Block, BlockError> {
        if self.len() != other.len() {
            return Err(BlockError::SizeMismatch {
                expected: self.len(),
                actual: other.len(),
            });
        }
        let crc = crate::crc::crc32_of_xor(self.crc, other.crc, self.len());
        Ok(Block {
            bytes: Bytes::from(xor::xor_of(&self.bytes, &other.bytes)),
            crc,
        })
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Block({} bytes, crc={:#010x})", self.len(), self.crc)
    }
}

impl AsRef<[u8]> for Block {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

impl From<Vec<u8>> for Block {
    fn from(v: Vec<u8>) -> Self {
        Block::from_vec(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_block_is_zero() {
        let z = Block::zero(64);
        assert!(z.is_zero());
        assert_eq!(z.len(), 64);
        assert!(!z.is_empty());
        assert!(Block::zero(0).is_empty());
    }

    #[test]
    fn xor_roundtrip() {
        let a = Block::from_vec((0..128u8).collect());
        let b = Block::from_vec((0..128u8).map(|x| x.wrapping_mul(3)).collect());
        let p = a.xor(&b).unwrap();
        assert_eq!(p.xor(&b).unwrap(), a);
        assert_eq!(p.xor(&a).unwrap(), b);
    }

    #[test]
    fn xor_with_zero_is_identity() {
        let a = Block::from_vec(vec![7; 32]);
        let z = Block::zero(32);
        assert_eq!(a.xor(&z).unwrap(), a);
    }

    #[test]
    fn xor_size_mismatch_errors() {
        let a = Block::zero(8);
        let b = Block::zero(9);
        match a.xor(&b) {
            Err(BlockError::SizeMismatch {
                expected: 8,
                actual: 9,
            }) => {}
            other => panic!("expected size mismatch, got {other:?}"),
        }
    }

    #[test]
    fn verify_passes_on_fresh_block() {
        let a = Block::from_vec(vec![1, 2, 3]);
        a.verify().unwrap();
        assert_eq!(a.crc(), crc32(&[1, 2, 3]));
    }

    #[test]
    fn clone_shares_contents() {
        let a = Block::from_vec(vec![9; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    #[test]
    fn error_display_is_informative() {
        let e = BlockError::SizeMismatch {
            expected: 4,
            actual: 5,
        };
        assert!(e.to_string().contains("expected 4"));
        let e = BlockError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("checksum"));
    }
}
