//! CRC32 (IEEE 802.3 polynomial) implemented from scratch.
//!
//! Entangled storage systems place parity blocks on untrusted remote nodes
//! (§IV.A). Before a fetched block participates in a repair XOR, the store
//! verifies its checksum; otherwise a corrupted block would poison every
//! block reconstructed from it. CRC32 is not cryptographic — the paper's
//! anti-tampering property comes from redundancy propagation, not from the
//! checksum — but it reliably catches accidental corruption.

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// A streaming CRC32 hasher.
///
/// # Examples
///
/// ```
/// use ae_blocks::Crc32;
///
/// let mut h = Crc32::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), ae_blocks::crc32(b"hello world"));
/// ```
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

/// 256-entry lookup table, generated once at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

impl Crc32 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        let mut c = self.state;
        for &b in data {
            c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Returns the checksum of everything fed so far.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32 test vectors (IEEE 802.3 / zlib).
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        for split in [0, 1, 9, 4999, 10_000] {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), crc32(&data), "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 4096];
        let clean = crc32(&data);
        data[2048] ^= 0x10;
        assert_ne!(crc32(&data), clean);
    }

    #[test]
    fn finalize_is_idempotent() {
        let mut h = Crc32::new();
        h.update(b"xyz");
        assert_eq!(h.finalize(), h.finalize());
    }
}
