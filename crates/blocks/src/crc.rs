//! CRC32 (IEEE 802.3 polynomial) over the dispatched kernel layer.
//!
//! Entangled storage systems place parity blocks on untrusted remote nodes
//! (§IV.A). Before a fetched block participates in a repair XOR, the store
//! verifies its checksum; otherwise a corrupted block would poison every
//! block reconstructed from it. CRC32 is not cryptographic — the paper's
//! anti-tampering property comes from redundancy propagation, not from the
//! checksum — but it reliably catches accidental corruption.
//!
//! The state update is [`ae_kernels::crc32_update`]: PCLMULQDQ folding on
//! x86-64, the ARMv8 CRC32 instructions on AArch64, slice-by-16 tables
//! otherwise. This module keeps the protocol pieces — init/final inversion,
//! streaming, and the XOR-linearity identity behind [`crc32_of_xor`] that
//! lets `Block::xor` derive the parity checksum in O(1).

/// A streaming CRC32 hasher.
///
/// # Examples
///
/// ```
/// use ae_blocks::Crc32;
///
/// let mut h = Crc32::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), ae_blocks::crc32(b"hello world"));
/// ```
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the hasher.
    ///
    /// Advances the raw state through the runtime-dispatched kernel:
    /// hardware carry-less-multiply folding where the host supports it,
    /// slice-by-16 tables otherwise.
    pub fn update(&mut self, data: &[u8]) {
        self.state = ae_kernels::crc32_update(self.state, data);
    }

    /// Returns the checksum of everything fed so far.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finalize()
}

/// CRC32 of `len` zero bytes, cached per length.
///
/// CRC32 is affine-linear over GF(2): for equal-length inputs,
/// `crc(a ⊕ b) = crc(a) ⊕ crc(b) ⊕ crc(0…0)`. With this cached zero term,
/// the checksum of an XOR of two blocks (the entanglement hot path) costs
/// O(1) instead of a full pass over the bytes — see [`crc32_of_xor`].
pub fn crc32_zeros(len: usize) -> u32 {
    use std::cell::Cell;
    // Hot path: a code works with one block size, so a thread-local
    // single-entry memo answers every call after the first without
    // touching shared state (the XOR fast path must not take a global
    // lock per parity).
    thread_local! {
        static LAST: Cell<(usize, u32)> = const { Cell::new((usize::MAX, 0)) };
    }
    LAST.with(|last| {
        let (cached_len, cached_crc) = last.get();
        if cached_len == len {
            return cached_crc;
        }
        let c = crc32_zeros_uncached(len);
        last.set((len, c));
        c
    })
}

/// Cross-thread cache behind the thread-local memo: computed zero-CRCs
/// are shared so each distinct length is scanned once per process.
fn crc32_zeros_uncached(len: usize) -> u32 {
    use std::collections::HashMap;
    use std::sync::{OnceLock, RwLock};
    static CACHE: OnceLock<RwLock<HashMap<usize, u32>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| RwLock::new(HashMap::new()));
    if let Some(&c) = cache.read().expect("cache lock").get(&len) {
        return c;
    }
    let c = crc32(&vec![0u8; len]);
    cache.write().expect("cache lock").insert(len, c);
    c
}

/// CRC32 of the XOR of two equal-length inputs, from their checksums
/// alone (see [`crc32_zeros`] for the linearity identity).
pub fn crc32_of_xor(crc_a: u32, crc_b: u32, len: usize) -> u32 {
    crc_a ^ crc_b ^ crc32_zeros(len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32 test vectors (IEEE 802.3 / zlib).
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    /// Bitwise (table-free) reference implementation.
    fn crc32_bitwise(data: &[u8]) -> u32 {
        const POLY: u32 = 0xEDB8_8320;
        let mut c = 0xFFFF_FFFFu32;
        for &b in data {
            c ^= b as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            }
        }
        c ^ 0xFFFF_FFFF
    }

    #[test]
    fn slice_by_8_matches_bitwise_reference_at_all_alignments() {
        let data: Vec<u8> = (0..97u32).map(|i| (i * 151 + 13) as u8).collect();
        for start in 0..9 {
            for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 64, 88] {
                let slice = &data[start..start + len];
                assert_eq!(
                    crc32(slice),
                    crc32_bitwise(slice),
                    "start {start}, len {len}"
                );
            }
        }
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        for split in [0, 1, 9, 4999, 10_000] {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), crc32(&data), "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 4096];
        let clean = crc32(&data);
        data[2048] ^= 0x10;
        assert_ne!(crc32(&data), clean);
    }

    #[test]
    fn finalize_is_idempotent() {
        let mut h = Crc32::new();
        h.update(b"xyz");
        assert_eq!(h.finalize(), h.finalize());
    }

    #[test]
    fn xor_linearity_identity() {
        for len in [0usize, 1, 7, 64, 4096] {
            let a: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
            let b: Vec<u8> = (0..len).map(|i| (i * 17 + 3) as u8).collect();
            let x: Vec<u8> = a.iter().zip(&b).map(|(p, q)| p ^ q).collect();
            assert_eq!(
                crc32_of_xor(crc32(&a), crc32(&b), len),
                crc32(&x),
                "len {len}"
            );
        }
    }

    #[test]
    fn zeros_cache_consistent() {
        assert_eq!(crc32_zeros(64), crc32(&[0u8; 64]));
        assert_eq!(crc32_zeros(64), crc32_zeros(64));
        assert_eq!(crc32_zeros(0), 0);
    }
}
