//! Property tests for [`ae_blocks::xor::xor_all`] under the dispatched
//! SIMD kernels: source counts of 0, 1, 2 and many, odd lengths straddling
//! every vector width, and unaligned sub-slice views (offset by 1..=31
//! bytes) must all match a byte-at-a-time reference.

use ae_blocks::xor::{is_zero, xor_all, xor_of, xor_of_owned};
use proptest::prelude::*;

/// Deterministic pseudo-random buffer.
fn buf(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

/// Byte-at-a-time fold over all sources — the ground truth.
fn reference_xor(len: usize, srcs: &[&[u8]]) -> Vec<u8> {
    (0..len)
        .map(|i| srcs.iter().fold(0u8, |acc, s| acc ^ s[i]))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// 0, 1, 2 or many sources, odd lengths, and views starting 1..=31
    /// bytes into their backing buffers (every misalignment class of the
    /// widest 32-byte vector path).
    #[test]
    fn xor_all_matches_reference_for_any_source_count(
        n_srcs in 0usize..=7,
        len_idx in 0usize..17,
        offset in 1usize..=31,
        seed: u64,
    ) {
        const LENS: [usize; 17] =
            [0, 1, 3, 7, 9, 13, 17, 31, 33, 63, 65, 127, 129, 255, 257, 511, 1021];
        let len = LENS[len_idx];
        let backing: Vec<Vec<u8>> = (0..n_srcs)
            .map(|i| buf(len + offset, seed.wrapping_add(i as u64 * 0x9E37_79B9)))
            .collect();
        let views: Vec<&[u8]> = backing.iter().map(|b| &b[offset..]).collect();
        let want = reference_xor(len, &views);
        let got = xor_all(len, views.iter().copied());
        prop_assert_eq!(&got, &want, "n_srcs={} len={} offset={}", n_srcs, len, offset);
        if n_srcs == 0 {
            prop_assert!(is_zero(&got));
        }
    }

    /// `xor_of` and the consuming `xor_of_owned` agree with each other and
    /// with the reference over unaligned views.
    #[test]
    fn xor_of_variants_agree(
        len in 0usize..700,
        offset in 1usize..=31,
        seed: u64,
    ) {
        let a = buf(len + offset, seed);
        let b = buf(len + offset, seed ^ 0x5555_5555_5555_5555);
        let (av, bv) = (&a[offset..], &b[offset..]);
        let want = reference_xor(len, &[av, bv]);
        prop_assert_eq!(&xor_of(av, bv), &want);
        prop_assert_eq!(&xor_of_owned(av.to_vec(), bv), &want);
    }
}
