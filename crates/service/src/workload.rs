//! The deterministic workload engine: config-driven op mixes, open-loop
//! arrival schedules and Zipf-skewed popularity, all derived from one
//! seed.
//!
//! [`Workload::generate`] expands a `(seed, WorkloadConfig)` pair into a
//! concrete, fully materialized operation sequence — every payload byte,
//! tenant choice and arrival offset pinned at generation time, so the
//! *same* sequence can be driven through a sharded
//! [`crate::ArchiveService`] ([`Workload::drive`]) and replayed serially
//! against a second service ([`Workload::replay`]) and the two final
//! states compared block for block. Warm/cold phases are op-mix +
//! arrival-rate segments of one generator stream: generating phase *n*+1
//! continues exactly where phase *n* stopped.

use crate::rng::{SplitMix64, Zipf};
use crate::service::{ArchiveService, ServiceClient, ServiceError, Ticket};
use crate::tenant::TenantId;
use ae_blocks::{crc32, BlockId};
use ae_store::archive::{ArchiveError, Entry};
use std::time::{Duration, Instant};

/// Relative weights of the operations a phase issues.
#[derive(Debug, Clone, Copy)]
pub struct OpMix {
    /// Weight of archive writes.
    pub put: u32,
    /// Weight of file reads.
    pub get: u32,
    /// Weight of whole-archive scrubs.
    pub scrub: u32,
}

impl OpMix {
    /// The warm-up mix: all writes, populating cold archives.
    pub fn write_only() -> Self {
        OpMix {
            put: 1,
            get: 0,
            scrub: 0,
        }
    }

    /// A serving mix: mostly reads over occasional writes and scrubs.
    pub fn read_heavy() -> Self {
        OpMix {
            put: 15,
            get: 80,
            scrub: 5,
        }
    }

    fn total(&self) -> u64 {
        (self.put + self.get + self.scrub) as u64
    }
}

/// One segment of a workload: `ops` operations drawn from `mix`, arriving
/// open-loop every `interarrival` (zero means as-fast-as-possible).
#[derive(Debug, Clone)]
pub struct Phase {
    /// Operations this phase issues.
    pub ops: usize,
    /// Relative op weights.
    pub mix: OpMix,
    /// Scheduled gap between consecutive arrivals; `ZERO` disables
    /// pacing (max-rate mode, what the throughput bench uses).
    pub interarrival: Duration,
}

/// Everything that determines a workload, besides the seed.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Tenants the workload addresses (`t0..`); the driving service must
    /// have at least this many.
    pub tenants: u16,
    /// Warm/cold segments, generated back to back from one stream.
    pub phases: Vec<Phase>,
    /// Zipf skew for tenant popularity; `None` is uniform.
    pub tenant_skew: Option<f64>,
    /// Zipf skew for file popularity within a tenant; `None` is uniform.
    pub file_skew: Option<f64>,
    /// Inclusive payload size range for puts, in bytes.
    pub payload: (usize, usize),
    /// Pin every generated scrub to this tenant instead of the
    /// popularity-sampled one — models an operator sweeping one tenant's
    /// archive (a maintenance window) while serving traffic for all.
    /// `None` lets scrubs follow tenant popularity.
    pub scrub_tenant: Option<TenantId>,
    /// Append a deterministic seal of every tenant after the last phase.
    pub seal_tail: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            tenants: 4,
            phases: vec![
                Phase {
                    ops: 64,
                    mix: OpMix::write_only(),
                    interarrival: Duration::ZERO,
                },
                Phase {
                    ops: 192,
                    mix: OpMix::read_heavy(),
                    interarrival: Duration::ZERO,
                },
            ],
            tenant_skew: Some(0.9),
            file_skew: Some(0.9),
            payload: (64, 1024),
            scrub_tenant: None,
            seal_tail: false,
        }
    }
}

/// One archive operation, fully materialized at generation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadOp {
    /// Write `contents` under `name`.
    Put {
        /// File name, unique per tenant.
        name: String,
        /// Payload bytes, pinned by the seed.
        contents: Vec<u8>,
    },
    /// Read `name` back and check it against the generation-time CRC.
    Get {
        /// File to read.
        name: String,
        /// CRC32 of the contents the read must return.
        expect_crc: u32,
    },
    /// Scrub the tenant's archive.
    Scrub,
    /// Seal the tenant's archive (only emitted by the seal tail).
    Seal,
}

/// A [`WorkloadOp`] with its tenant and open-loop arrival offset.
#[derive(Debug, Clone)]
pub struct ScheduledOp {
    /// Offset from workload start at which the op is submitted.
    pub at: Duration,
    /// The tenant the op addresses.
    pub tenant: TenantId,
    /// The operation.
    pub op: WorkloadOp,
}

/// A materialized operation sequence — see the [module docs](self).
#[derive(Debug, Clone)]
pub struct Workload {
    /// The schedule, in submission order.
    pub ops: Vec<ScheduledOp>,
}

/// File ranks the per-tenant Zipf sampler covers; beyond that many files
/// in one tenant, popularity folds back to uniform over the overflow.
const FILE_RANKS: usize = 1024;

/// Generator state carried across phases.
struct Generator {
    cfg: WorkloadConfig,
    tenant_rng: SplitMix64,
    kind_rng: SplitMix64,
    file_rng: SplitMix64,
    payload_rng: SplitMix64,
    tenant_zipf: Option<Zipf>,
    file_zipf: Option<Zipf>,
    /// Per-tenant: how many files exist, and each file's generation-time
    /// CRC (index = file number).
    files: Vec<Vec<u32>>,
    clock: Duration,
}

impl Generator {
    fn new(seed: u64, cfg: WorkloadConfig) -> Self {
        assert!(cfg.tenants > 0, "workloads need at least one tenant");
        assert!(
            cfg.payload.0 <= cfg.payload.1 && cfg.payload.1 > 0,
            "payload range must be non-empty"
        );
        let mut root = SplitMix64::new(seed);
        let tenant_rng = root.split();
        let kind_rng = root.split();
        let file_rng = root.split();
        let payload_rng = root.split();
        let tenant_zipf = cfg.tenant_skew.map(|t| Zipf::new(cfg.tenants as usize, t));
        let file_zipf = cfg.file_skew.map(|t| Zipf::new(FILE_RANKS, t));
        let files = vec![Vec::new(); cfg.tenants as usize];
        Generator {
            cfg,
            tenant_rng,
            kind_rng,
            file_rng,
            payload_rng,
            tenant_zipf,
            file_zipf,
            files,
            clock: Duration::ZERO,
        }
    }

    fn pick_tenant(&mut self) -> TenantId {
        let t = match &self.tenant_zipf {
            Some(z) => z.sample(&mut self.tenant_rng),
            None => self.tenant_rng.below(self.cfg.tenants as u64) as usize,
        };
        TenantId(t as u16)
    }

    fn pick_file(&mut self, count: usize) -> usize {
        debug_assert!(count > 0);
        if let Some(z) = &self.file_zipf {
            // Bounded rejection keeps the draw deterministic; if the hot
            // ranks keep missing (young tenant), fall through to uniform.
            for _ in 0..16 {
                let r = z.sample(&mut self.file_rng);
                if r < count {
                    return r;
                }
            }
        }
        self.file_rng.below(count as u64) as usize
    }

    fn payload(&mut self) -> Vec<u8> {
        let (lo, hi) = self.cfg.payload;
        let len = lo + self.payload_rng.below((hi - lo + 1) as u64) as usize;
        let mut bytes = Vec::with_capacity(len);
        while bytes.len() < len {
            let word = self.payload_rng.next_u64().to_le_bytes();
            let take = word.len().min(len - bytes.len());
            bytes.extend_from_slice(&word[..take]);
        }
        bytes
    }

    fn next_op(&mut self, mix: &OpMix) -> ScheduledOp {
        let mut tenant = self.pick_tenant();
        let count = self.files[tenant.0 as usize].len();
        let mut w = self.kind_rng.below(mix.total());
        let op = if w < mix.put as u64 || count == 0 {
            // A read or scrub against an empty tenant degrades to a put so
            // every generated op is satisfiable; the substitution is part
            // of the deterministic sequence.
            let contents = self.payload();
            let name = format!("{tenant}-f{count:05}");
            self.files[tenant.0 as usize].push(crc32(&contents));
            WorkloadOp::Put { name, contents }
        } else {
            w -= mix.put as u64;
            if w < mix.get as u64 {
                let f = self.pick_file(count);
                WorkloadOp::Get {
                    name: format!("{tenant}-f{f:05}"),
                    expect_crc: self.files[tenant.0 as usize][f],
                }
            } else {
                if let Some(victim) = self.cfg.scrub_tenant {
                    tenant = victim;
                }
                WorkloadOp::Scrub
            }
        };
        ScheduledOp {
            at: self.clock,
            tenant,
            op,
        }
    }

    fn phase(&mut self, phase: &Phase) -> Workload {
        let mut ops = Vec::with_capacity(phase.ops);
        for _ in 0..phase.ops {
            ops.push(self.next_op(&phase.mix));
            self.clock += phase.interarrival;
        }
        Workload { ops }
    }

    fn seal_tail(&mut self) -> Vec<ScheduledOp> {
        (0..self.cfg.tenants)
            .map(|t| ScheduledOp {
                at: self.clock,
                tenant: TenantId(t),
                op: WorkloadOp::Seal,
            })
            .collect()
    }
}

/// What [`Workload::drive`] observed: submission/completion accounting
/// plus every per-op failure, by op index.
#[derive(Debug, Default)]
pub struct DriveOutcome {
    /// Operations submitted (always the workload length).
    pub submitted: usize,
    /// Operations that completed successfully, reads CRC-verified.
    pub completed: usize,
    /// Failed operations: `(op index, error)`. A read returning bytes
    /// whose CRC differs from the generation-time CRC reports
    /// [`ArchiveError::ChecksumMismatch`].
    pub failures: Vec<(usize, ServiceError)>,
    /// Times a submission bounced off a full queue and was retried —
    /// the open-loop schedule degrades to closed-loop at saturation.
    pub saturated_retries: u64,
}

impl DriveOutcome {
    /// True when every operation completed successfully.
    pub fn clean(&self) -> bool {
        self.failures.is_empty() && self.completed == self.submitted
    }
}

/// An in-flight op's ticket, tagged with its workload index.
enum Pending {
    Put(usize, Ticket<Entry>),
    Get(usize, u32, Ticket<Vec<u8>>),
    Scrub(usize, Ticket<u64>),
    Seal(usize, Ticket<Vec<BlockId>>),
}

impl Workload {
    /// Materializes the full workload for `(seed, cfg)` as one sequence;
    /// phase boundaries disappear.
    pub fn generate(seed: u64, cfg: WorkloadConfig) -> Workload {
        let phased = Self::generate_phased(seed, cfg);
        Workload {
            ops: phased.into_iter().flat_map(|w| w.ops).collect(),
        }
    }

    /// Materializes the workload for `(seed, cfg)` as one [`Workload`]
    /// per phase (the seal tail, if configured, rides on the last
    /// phase). Driving the pieces in order through any service —
    /// with anything in between, e.g. fault injection — touches the same
    /// operation sequence as [`Workload::generate`].
    pub fn generate_phased(seed: u64, cfg: WorkloadConfig) -> Vec<Workload> {
        let seal_tail = cfg.seal_tail;
        let phases = cfg.phases.clone();
        let mut g = Generator::new(seed, cfg);
        let mut out: Vec<Workload> = phases.iter().map(|p| g.phase(p)).collect();
        if seal_tail {
            let tail = g.seal_tail();
            match out.last_mut() {
                Some(last) => last.ops.extend(tail),
                None => out.push(Workload { ops: tail }),
            }
        }
        out
    }

    /// Submits the whole schedule through `client` (open-loop: each op
    /// waits for its arrival offset; saturation is retried and counted),
    /// then waits for every ticket. Reads are verified against their
    /// generation-time CRC.
    pub fn drive(&self, client: &ServiceClient<'_>) -> DriveOutcome {
        let start = Instant::now();
        let mut outcome = DriveOutcome {
            submitted: self.ops.len(),
            ..DriveOutcome::default()
        };
        let mut pending = Vec::with_capacity(self.ops.len());
        for (i, sop) in self.ops.iter().enumerate() {
            // Open-loop pacing: sleep up to the op's arrival offset.
            loop {
                let now = start.elapsed();
                if now >= sop.at {
                    break;
                }
                std::thread::sleep((sop.at - now).min(Duration::from_millis(1)));
            }
            loop {
                let submitted = match &sop.op {
                    WorkloadOp::Put { name, contents } => client
                        .put(sop.tenant, name, contents)
                        .map(|t| Pending::Put(i, t)),
                    WorkloadOp::Get { name, expect_crc } => client
                        .get(sop.tenant, name)
                        .map(|t| Pending::Get(i, *expect_crc, t)),
                    WorkloadOp::Scrub => client.scrub(sop.tenant).map(|t| Pending::Scrub(i, t)),
                    WorkloadOp::Seal => client.seal(sop.tenant).map(|t| Pending::Seal(i, t)),
                };
                match submitted {
                    Ok(p) => {
                        pending.push(p);
                        break;
                    }
                    Err(ServiceError::Saturated { .. }) => {
                        // Backpressure: yield and retry — the open-loop
                        // schedule degrades to closed-loop at capacity.
                        outcome.saturated_retries += 1;
                        std::thread::yield_now();
                    }
                    Err(e) => {
                        outcome.failures.push((i, e));
                        break;
                    }
                }
            }
        }
        for p in pending {
            let (i, res): (usize, Result<(), ServiceError>) = match p {
                Pending::Put(i, t) => (i, t.wait().map(|_| ())),
                Pending::Get(i, expect, t) => (
                    i,
                    t.wait().and_then(|bytes| {
                        let actual = crc32(&bytes);
                        if actual == expect {
                            Ok(())
                        } else {
                            Err(ServiceError::Archive(ArchiveError::ChecksumMismatch {
                                name: match &self.ops[i].op {
                                    WorkloadOp::Get { name, .. } => name.clone(),
                                    _ => String::new(),
                                },
                                expected: expect,
                                actual,
                            }))
                        }
                    }),
                ),
                Pending::Scrub(i, t) => (i, t.wait().map(|_| ())),
                Pending::Seal(i, t) => (i, t.wait().map(|_| ())),
            };
            match res {
                Ok(()) => outcome.completed += 1,
                Err(e) => outcome.failures.push((i, e)),
            }
        }
        outcome.failures.sort_by_key(|(i, _)| *i);
        outcome
    }

    /// Executes the schedule serially, in generation order, directly
    /// against `svc`'s archives — the reference execution the parity
    /// suite compares sharded runs to. Arrival offsets are ignored
    /// (serial replay is about final state, not timing). Stops at the
    /// first error.
    pub fn replay(&self, svc: &mut ArchiveService) -> Result<(), (usize, ArchiveError)> {
        for (i, sop) in self.ops.iter().enumerate() {
            let ar = svc.archive_mut(sop.tenant);
            match &sop.op {
                WorkloadOp::Put { name, contents } => {
                    ar.put(name, contents).map_err(|e| (i, e))?;
                }
                WorkloadOp::Get { name, expect_crc } => {
                    let bytes = ar.get(name).map_err(|e| (i, e))?;
                    let actual = crc32(&bytes);
                    if actual != *expect_crc {
                        return Err((
                            i,
                            ArchiveError::ChecksumMismatch {
                                name: name.clone(),
                                expected: *expect_crc,
                                actual,
                            },
                        ));
                    }
                }
                WorkloadOp::Scrub => {
                    ar.scrub();
                }
                WorkloadOp::Seal => {
                    ar.seal().map_err(|e| (i, e))?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{ServiceConfig, ServiceError};
    use crate::tenant::SharedBackend;
    use ae_core::Code;
    use ae_lattice::Config;
    use ae_store::MemStore;
    use std::collections::HashSet;
    use std::sync::Arc;

    fn small_cfg() -> WorkloadConfig {
        WorkloadConfig {
            tenants: 3,
            phases: vec![
                Phase {
                    ops: 20,
                    mix: OpMix::write_only(),
                    interarrival: Duration::ZERO,
                },
                Phase {
                    ops: 60,
                    mix: OpMix::read_heavy(),
                    interarrival: Duration::ZERO,
                },
            ],
            tenant_skew: Some(1.0),
            file_skew: Some(1.0),
            payload: (16, 200),
            scrub_tenant: None,
            seal_tail: false,
        }
    }

    fn service(shards: usize, tenants: u16) -> ArchiveService {
        let backend: SharedBackend = Arc::new(MemStore::new());
        let mut svc = ArchiveService::new(backend, ServiceConfig::with_shards(shards));
        for _ in 0..tenants {
            svc.add_tenant(Arc::new(Code::new(Config::new(3, 2, 5).unwrap(), 64)), 64);
        }
        svc
    }

    #[test]
    fn same_seed_same_workload() {
        let a = Workload::generate(42, small_cfg());
        let b = Workload::generate(42, small_cfg());
        assert_eq!(a.ops.len(), b.ops.len());
        for (x, y) in a.ops.iter().zip(&b.ops) {
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.op, y.op);
            assert_eq!(x.at, y.at);
        }
        let c = Workload::generate(43, small_cfg());
        assert!(
            a.ops.iter().zip(&c.ops).any(|(x, y)| x.op != y.op),
            "different seeds diverge"
        );
    }

    #[test]
    fn scrubs_can_be_pinned_to_one_tenant() {
        let mut cfg = small_cfg();
        cfg.scrub_tenant = Some(TenantId(2));
        let w = Workload::generate(7, cfg);
        let scrubs: Vec<_> = w
            .ops
            .iter()
            .filter(|o| matches!(o.op, WorkloadOp::Scrub))
            .collect();
        assert!(!scrubs.is_empty(), "read-heavy phase must emit scrubs");
        assert!(scrubs.iter().all(|o| o.tenant == TenantId(2)));
        // Pinning only reroutes scrubs; the rest of the sequence is
        // untouched relative to the unpinned generation.
        let free = Workload::generate(7, small_cfg());
        assert_eq!(w.ops.len(), free.ops.len());
        for (a, b) in w.ops.iter().zip(&free.ops) {
            assert_eq!(a.op, b.op);
            if !matches!(a.op, WorkloadOp::Scrub) {
                assert_eq!(a.tenant, b.tenant);
            }
        }
    }

    #[test]
    fn phased_generation_matches_flat() {
        let flat = Workload::generate(7, small_cfg());
        let phased = Workload::generate_phased(7, small_cfg());
        assert_eq!(phased.len(), 2);
        let joined: Vec<_> = phased.into_iter().flat_map(|w| w.ops).collect();
        assert_eq!(flat.ops.len(), joined.len());
        for (x, y) in flat.ops.iter().zip(&joined) {
            assert_eq!(x.op, y.op);
        }
    }

    #[test]
    fn gets_always_reference_written_files() {
        let w = Workload::generate(99, small_cfg());
        let mut written = HashSet::new();
        let mut gets = 0;
        for sop in &w.ops {
            match &sop.op {
                WorkloadOp::Put { name, .. } => {
                    assert!(written.insert((sop.tenant, name.clone())), "unique names");
                }
                WorkloadOp::Get { name, .. } => {
                    gets += 1;
                    assert!(
                        written.contains(&(sop.tenant, name.clone())),
                        "get of never-written {name}"
                    );
                }
                _ => {}
            }
        }
        assert!(gets > 0, "read-heavy phase produced reads");
    }

    #[test]
    fn seal_tail_covers_every_tenant_and_only_at_the_end() {
        let mut cfg = small_cfg();
        cfg.seal_tail = true;
        let w = Workload::generate(1, cfg);
        let seals: Vec<_> = w
            .ops
            .iter()
            .enumerate()
            .filter(|(_, s)| s.op == WorkloadOp::Seal)
            .collect();
        assert_eq!(seals.len(), 3);
        assert_eq!(seals[0].0, w.ops.len() - 3, "seals are the tail");
        let sealed: HashSet<_> = seals.iter().map(|(_, s)| s.tenant).collect();
        assert_eq!(sealed.len(), 3);
    }

    #[test]
    fn drive_and_replay_agree_with_generation() {
        let w = Workload::generate(1234, small_cfg());
        let mut sharded = service(2, 3);
        let (outcome, report) = sharded.run(|client| w.drive(client));
        assert!(outcome.clean(), "failures: {:?}", outcome.failures);
        assert_eq!(report.completed() as usize, w.ops.len());

        let mut serial = service(1, 3);
        w.replay(&mut serial).expect("serial replay is clean");
        // Both executions verify end to end.
        assert!(sharded.verify_all().is_empty());
        assert!(serial.verify_all().is_empty());
    }

    #[test]
    fn drive_reports_archive_failures_by_op_index() {
        // A workload against a service with too few tenants: every op
        // addressed at the missing tenant fails with UnknownTenant.
        let w = Workload::generate(5, small_cfg());
        let mut svc = service(2, 2); // workload wants 3 tenants
        let (outcome, _) = svc.run(|client| w.drive(client));
        assert!(!outcome.clean());
        for (i, e) in &outcome.failures {
            assert_eq!(w.ops[*i].tenant, TenantId(2), "only t2 ops fail");
            assert!(matches!(e, ServiceError::UnknownTenant(TenantId(2))));
        }
        assert_eq!(
            outcome.completed + outcome.failures.len(),
            outcome.submitted
        );
    }

    #[test]
    fn open_loop_pacing_respects_arrival_offsets() {
        let cfg = WorkloadConfig {
            tenants: 1,
            phases: vec![Phase {
                ops: 10,
                mix: OpMix::write_only(),
                interarrival: Duration::from_millis(2),
            }],
            tenant_skew: None,
            file_skew: None,
            payload: (8, 8),
            scrub_tenant: None,
            seal_tail: false,
        };
        let w = Workload::generate(3, cfg);
        assert_eq!(w.ops.last().unwrap().at, Duration::from_millis(18));
        let mut svc = service(1, 1);
        let start = Instant::now();
        let (outcome, _) = svc.run(|client| w.drive(client));
        assert!(outcome.clean());
        assert!(
            start.elapsed() >= Duration::from_millis(18),
            "schedule paced the submissions"
        );
    }
}
