//! The multi-tenant archive service: tenant-affine shards, bounded
//! submission queues, typed per-op results.
//!
//! # Threading model
//!
//! [`ArchiveService`] owns one [`Archive`] per tenant, every tenant a view
//! ([`TenantStore`]) of the **same shared backend**. [`ArchiveService::run`]
//! raises a fixed pool of `std::thread::scope` workers — one per shard,
//! defaulting to the [`ae_api::repair_threads`] width (so the
//! `AE_REPAIR_THREADS` convention governs the service too) — hands the
//! caller a [`ServiceClient`], and joins the pool when the caller's closure
//! returns, yielding a [`ServiceReport`] of per-op latency histograms,
//! completion counts, queue-depth highwaters and saturation rejections.
//!
//! # Shard affinity
//!
//! A tenant is pinned to shard `tenant % shards` for the service's
//! lifetime. Each shard's worker is the **single writer** for every
//! archive it owns, so no archive-level locking exists anywhere: mutation
//! order per tenant is exactly submission order, whatever the other
//! shards do. Cross-shard traffic still lands on the one shared backend —
//! that is where contention is real and measured. Reads of the shared
//! backend may cross shards freely through the existing `Sync` snapshot
//! surface.
//!
//! # Backpressure
//!
//! Every shard has a bounded submission queue. [`ServiceClient`] submission
//! never blocks: a full queue answers a typed
//! [`ServiceError::Saturated`] immediately, and the caller decides whether
//! to retry, shed or slow down. Queue-depth highwater and the number of
//! saturation rejections are part of the run's report.
//!
//! # Determinism
//!
//! Because sharding is tenant-affine and queues are FIFO, each tenant's
//! operations execute in submission order no matter how many shards run.
//! Tenants' id spaces are disjoint ([`TenantStore`]), so the final archive
//! and backend state after a run is **byte-identical** to executing every
//! tenant's subsequence serially — the property the parity suite pins by
//! replaying seeded workloads with [`crate::Workload::replay`] against the
//! `serial-service` in-line path.

use crate::stats::{OpKind, ServiceReport, ShardStats};
use crate::tenant::{SharedBackend, TenantId, TenantStore};
use ae_api::RedundancyScheme;
use ae_blocks::BlockId;
use ae_store::archive::{Archive, ArchiveError, Entry, RecoveryError};
use ae_store::meta::MetaConfig;
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sizing knobs for [`ArchiveService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker shards; `None` resolves to [`ae_api::repair_threads`] (the
    /// `AE_REPAIR_THREADS` convention). Ignored in in-line mode, which is
    /// always one worker.
    pub shards: Option<usize>,
    /// Bounded submission-queue capacity per shard; a full queue rejects
    /// with [`ServiceError::Saturated`].
    pub queue_depth: usize,
    /// Execute every operation on the submitting thread instead of a
    /// worker pool — the reference serial path. Forced on by the
    /// `serial-service` cargo feature.
    pub inline: bool,
    /// Default metadata durability policy for new tenants: copy-set width,
    /// checkpoint cadence, checkpoint segment size. Per-tenant overrides
    /// via [`ArchiveService::add_tenant_with_meta`].
    pub meta: MetaConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: None,
            queue_depth: 64,
            inline: false,
            meta: MetaConfig::default(),
        }
    }
}

impl ServiceConfig {
    /// A config pinned to `shards` worker shards.
    pub fn with_shards(shards: usize) -> Self {
        ServiceConfig {
            shards: Some(shards),
            ..Self::default()
        }
    }

    /// The reference serial configuration: one in-line worker.
    pub fn serial() -> Self {
        ServiceConfig {
            inline: true,
            ..Self::default()
        }
    }
}

/// Errors from service submission or completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// No tenant with that id was added to the service.
    UnknownTenant(TenantId),
    /// The tenant's shard has a full submission queue — backpressure.
    /// Submission never blocks; retry, shed or slow down.
    Saturated {
        /// The saturated shard.
        shard: usize,
        /// Its queue capacity.
        capacity: usize,
    },
    /// The worker pool is gone (the run ended before the reply arrived).
    Shutdown,
    /// The archive operation itself failed; the wrapped error names
    /// exactly what went wrong (missing tuple members, checksum, seal).
    Archive(ArchiveError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownTenant(t) => write!(f, "no tenant {t}"),
            ServiceError::Saturated { shard, capacity } => {
                write!(f, "shard {shard} submission queue full ({capacity} deep)")
            }
            ServiceError::Shutdown => write!(f, "service worker pool has shut down"),
            ServiceError::Archive(e) => write!(f, "archive operation failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Archive(e) => Some(e),
            _ => None,
        }
    }
}

/// A pending typed result for one submitted operation.
///
/// The worker resolves the ticket when the operation completes; dropping
/// an unwanted ticket is fine (the result is discarded).
#[derive(Debug)]
pub struct Ticket<T> {
    rx: Receiver<Result<T, ArchiveError>>,
}

impl<T> Ticket<T> {
    fn new() -> (SyncSender<Result<T, ArchiveError>>, Self) {
        let (tx, rx) = mpsc::sync_channel(1);
        (tx, Ticket { rx })
    }

    /// Blocks until the operation completes.
    pub fn wait(self) -> Result<T, ServiceError> {
        match self.rx.recv() {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(e)) => Err(ServiceError::Archive(e)),
            Err(_) => Err(ServiceError::Shutdown),
        }
    }

    /// Waits up to `timeout`; on timeout the ticket comes back unresolved
    /// so the caller can keep waiting — the fairness suite uses this to
    /// prove one shard's progress while another is wedged.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Result<T, ServiceError>, Ticket<T>> {
        match self.rx.recv_timeout(timeout) {
            Ok(Ok(v)) => Ok(Ok(v)),
            Ok(Err(e)) => Ok(Err(ServiceError::Archive(e))),
            Err(RecvTimeoutError::Timeout) => Err(self),
            Err(RecvTimeoutError::Disconnected) => Ok(Err(ServiceError::Shutdown)),
        }
    }
}

/// One queued operation (tenant resolved to its shard-local slot).
enum Request {
    Put {
        local: usize,
        name: String,
        contents: Vec<u8>,
        submitted: Instant,
        reply: SyncSender<Result<Entry, ArchiveError>>,
    },
    Get {
        local: usize,
        name: String,
        submitted: Instant,
        reply: SyncSender<Result<Vec<u8>, ArchiveError>>,
    },
    Scrub {
        local: usize,
        submitted: Instant,
        reply: SyncSender<Result<u64, ArchiveError>>,
    },
    Seal {
        local: usize,
        submitted: Instant,
        reply: SyncSender<Result<Vec<BlockId>, ArchiveError>>,
    },
}

/// A tenant archive paired with its service-wide tenant index.
type Slot = (usize, Archive<TenantStore>);

fn execute(archives: &mut [Slot], req: Request, stats: &mut ShardStats) {
    match req {
        Request::Put {
            local,
            name,
            contents,
            submitted,
            reply,
        } => {
            let res = archives[local].1.put(&name, &contents);
            stats.record(OpKind::Put, submitted.elapsed());
            let _ = reply.send(res);
        }
        Request::Get {
            local,
            name,
            submitted,
            reply,
        } => {
            let res = archives[local].1.get(&name);
            stats.record(OpKind::Get, submitted.elapsed());
            let _ = reply.send(res);
        }
        Request::Scrub {
            local,
            submitted,
            reply,
        } => {
            let repaired = archives[local].1.scrub();
            stats.record(OpKind::Scrub, submitted.elapsed());
            let _ = reply.send(Ok(repaired));
        }
        Request::Seal {
            local,
            submitted,
            reply,
        } => {
            let res = archives[local].1.seal();
            stats.record(OpKind::Seal, submitted.elapsed());
            let _ = reply.send(res);
        }
    }
}

/// Per-shard queue pressure gauges, shared between client and report.
struct ShardQueue {
    depth: AtomicI64,
    highwater: AtomicI64,
    capacity: usize,
}

impl ShardQueue {
    fn new(capacity: usize) -> Self {
        ShardQueue {
            depth: AtomicI64::new(0),
            highwater: AtomicI64::new(0),
            capacity,
        }
    }

    fn enqueued(&self) {
        let d = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.highwater.fetch_max(d, Ordering::Relaxed);
    }

    fn dequeued(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }
}

/// In-line execution state: every tenant behind one lock, operations run
/// on the submitting thread — the reference serial worker.
struct InlineState {
    archives: Vec<Slot>,
    stats: ShardStats,
}

enum Mode<'a> {
    Pool {
        senders: Vec<SyncSender<Request>>,
        queues: &'a [ShardQueue],
    },
    Inline {
        state: &'a Mutex<InlineState>,
    },
}

/// The submission handle [`ArchiveService::run`] lends its driver closure.
///
/// Submission is non-blocking: each call routes the operation to the
/// tenant's shard and answers a typed [`Ticket`] (or
/// [`ServiceError::Saturated`] when the shard's bounded queue is full).
pub struct ServiceClient<'a> {
    mode: Mode<'a>,
    /// tenant index → (shard, shard-local slot)
    route: &'a [(usize, usize)],
    saturated: &'a AtomicU64,
}

impl ServiceClient<'_> {
    fn route(&self, tenant: TenantId) -> Result<(usize, usize), ServiceError> {
        self.route
            .get(tenant.0 as usize)
            .copied()
            .ok_or(ServiceError::UnknownTenant(tenant))
    }

    fn enqueue(&self, shard: usize, req: Request) -> Result<(), ServiceError> {
        let Mode::Pool { senders, queues } = &self.mode else {
            unreachable!("enqueue is only called in pool mode");
        };
        match senders[shard].try_send(req) {
            Ok(()) => {
                queues[shard].enqueued();
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.saturated.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::Saturated {
                    shard,
                    capacity: queues[shard].capacity,
                })
            }
            Err(TrySendError::Disconnected(_)) => Err(ServiceError::Shutdown),
        }
    }

    fn inline_run<T>(
        state: &Mutex<InlineState>,
        reply: SyncSender<Result<T, ArchiveError>>,
        kind: OpKind,
        op: impl FnOnce(&mut Archive<TenantStore>) -> Result<T, ArchiveError>,
        local: usize,
    ) {
        let mut st = state.lock();
        let submitted = Instant::now();
        let res = op(&mut st.archives[local].1);
        st.stats.record(kind, submitted.elapsed());
        let _ = reply.send(res);
    }

    /// Archives `contents` under `name` in `tenant`'s archive.
    pub fn put(
        &self,
        tenant: TenantId,
        name: &str,
        contents: &[u8],
    ) -> Result<Ticket<Entry>, ServiceError> {
        let (shard, local) = self.route(tenant)?;
        let (reply, ticket) = Ticket::new();
        match &self.mode {
            Mode::Pool { .. } => self.enqueue(
                shard,
                Request::Put {
                    local,
                    name: name.to_string(),
                    contents: contents.to_vec(),
                    submitted: Instant::now(),
                    reply,
                },
            )?,
            Mode::Inline { state } => Self::inline_run(
                state,
                reply,
                OpKind::Put,
                |ar| ar.put(name, contents),
                local,
            ),
        }
        Ok(ticket)
    }

    /// Reads `name` back from `tenant`'s archive (degraded reads repair
    /// missing blocks on the fly, read-only).
    pub fn get(&self, tenant: TenantId, name: &str) -> Result<Ticket<Vec<u8>>, ServiceError> {
        let (shard, local) = self.route(tenant)?;
        let (reply, ticket) = Ticket::new();
        match &self.mode {
            Mode::Pool { .. } => self.enqueue(
                shard,
                Request::Get {
                    local,
                    name: name.to_string(),
                    submitted: Instant::now(),
                    reply,
                },
            )?,
            Mode::Inline { state } => {
                Self::inline_run(state, reply, OpKind::Get, |ar| ar.get(name), local)
            }
        }
        Ok(ticket)
    }

    /// Scrubs `tenant`'s archive: repairs every block its backend view
    /// should hold but lost, journal records included. Resolves to the
    /// number of blocks restored.
    pub fn scrub(&self, tenant: TenantId) -> Result<Ticket<u64>, ServiceError> {
        let (shard, local) = self.route(tenant)?;
        let (reply, ticket) = Ticket::new();
        match &self.mode {
            Mode::Pool { .. } => self.enqueue(
                shard,
                Request::Scrub {
                    local,
                    submitted: Instant::now(),
                    reply,
                },
            )?,
            Mode::Inline { state } => {
                Self::inline_run(state, reply, OpKind::Scrub, |ar| Ok(ar.scrub()), local)
            }
        }
        Ok(ticket)
    }

    /// Seals `tenant`'s archive: flushes buffered redundancy and freezes
    /// it. Resolves to the ids the flush stored.
    pub fn seal(&self, tenant: TenantId) -> Result<Ticket<Vec<BlockId>>, ServiceError> {
        let (shard, local) = self.route(tenant)?;
        let (reply, ticket) = Ticket::new();
        match &self.mode {
            Mode::Pool { .. } => self.enqueue(
                shard,
                Request::Seal {
                    local,
                    submitted: Instant::now(),
                    reply,
                },
            )?,
            Mode::Inline { state } => {
                Self::inline_run(state, reply, OpKind::Seal, |ar| ar.seal(), local)
            }
        }
        Ok(ticket)
    }
}

/// A multi-tenant archive service over one shared backend.
///
/// See the [module docs](self) for the threading model, shard affinity
/// and determinism guarantees.
///
/// # Examples
///
/// ```
/// use ae_service::{ArchiveService, ServiceConfig, SharedBackend};
/// use ae_store::MemStore;
/// use ae_core::Code;
/// use ae_lattice::Config;
/// use std::sync::Arc;
///
/// let backend: SharedBackend = Arc::new(MemStore::new());
/// let mut svc = ArchiveService::new(backend, ServiceConfig::with_shards(2));
/// let a = svc.add_tenant(Arc::new(Code::new(Config::new(3, 2, 5).unwrap(), 64)), 64);
/// let b = svc.add_tenant(Arc::new(Code::new(Config::new(2, 2, 5).unwrap(), 64)), 64);
///
/// let (done, report) = svc.run(|client| {
///     let ta = client.put(a, "a.bin", b"alpha").unwrap();
///     let tb = client.put(b, "b.bin", b"bravo").unwrap();
///     ta.wait().unwrap();
///     tb.wait().unwrap();
///     client.get(a, "a.bin").unwrap().wait().unwrap()
/// });
/// assert_eq!(done, b"alpha");
/// assert_eq!(report.completed(), 3);
/// ```
pub struct ArchiveService {
    backend: SharedBackend,
    /// Tenant archives by id; `None` only while a run has them out on
    /// loan to the worker pool (unobservable: `run` takes `&mut self`).
    tenants: Vec<Option<Archive<TenantStore>>>,
    config: ServiceConfig,
}

impl ArchiveService {
    /// An empty service over `backend`.
    pub fn new(backend: SharedBackend, config: ServiceConfig) -> Self {
        ArchiveService {
            backend,
            tenants: Vec::new(),
            config,
        }
    }

    /// Whether operations execute in-line on the submitting thread (the
    /// `serial-service` feature forces this on).
    pub fn is_inline(&self) -> bool {
        cfg!(feature = "serial-service") || self.config.inline
    }

    /// Worker shards a run will raise (1 in in-line mode).
    pub fn shard_count(&self) -> usize {
        if self.is_inline() {
            return 1;
        }
        self.config
            .shards
            .unwrap_or_else(ae_api::repair_threads)
            .max(1)
    }

    /// Adds a tenant with a fresh archive: `scheme` over this service's
    /// shared backend, viewed through the tenant's private namespace.
    ///
    /// The tenant is pinned to shard `tenant % shards` for the service's
    /// lifetime.
    ///
    /// # Panics
    ///
    /// Panics if the scheme is not fresh, the tenant's namespace already
    /// holds an archive, or the tenant roster is full (2^16 tenants).
    pub fn add_tenant(&mut self, scheme: Arc<dyn RedundancyScheme>, block_size: usize) -> TenantId {
        let meta = self.config.meta.clone();
        self.add_tenant_with_meta(scheme, block_size, meta)
    }

    /// [`ArchiveService::add_tenant`] with a per-tenant metadata policy —
    /// one tenant can run wider copy sets or a tighter checkpoint cadence
    /// than the service default.
    ///
    /// # Panics
    ///
    /// As [`ArchiveService::add_tenant`].
    pub fn add_tenant_with_meta(
        &mut self,
        scheme: Arc<dyn RedundancyScheme>,
        block_size: usize,
        meta: MetaConfig,
    ) -> TenantId {
        assert!(self.tenants.len() < u16::MAX as usize, "tenant roster full");
        let id = TenantId(self.tenants.len() as u16);
        let view = Arc::new(TenantStore::new(Arc::clone(&self.backend), id));
        self.tenants.push(Some(Archive::with_scheme_meta(
            scheme, block_size, view, meta,
        )));
        id
    }

    /// Reopens a tenant archive that a **previous service process** left
    /// on the shared backend: the tenant's namespaced metadata journal is
    /// replayed checkpoint-first (O(checkpoint), exactly like
    /// [`Archive::open`]) and the tenant joins this service's roster under
    /// the next free id. `scheme` must be a fresh instance of the scheme
    /// the tenant was created with; the service's
    /// [`ServiceConfig::meta`] cadence governs future checkpoints while
    /// the copy-set width is adopted from the tenant's genesis record.
    ///
    /// The caller supplies `previous` — the tenant id the archive had in
    /// the crashed process (namespaces are positional) — and gets back
    /// the id it holds **now**, plus the reopened archive's degraded-read
    /// report length for observability.
    ///
    /// # Errors
    ///
    /// [`RecoveryError`] from the underlying [`Archive::open_with_meta`].
    ///
    /// # Panics
    ///
    /// Panics if the scheme is not fresh or the roster is full.
    pub fn open_tenant(
        &mut self,
        scheme: Arc<dyn RedundancyScheme>,
        previous: TenantId,
    ) -> Result<TenantId, RecoveryError> {
        assert!(self.tenants.len() < u16::MAX as usize, "tenant roster full");
        assert_eq!(
            self.tenants.len(),
            previous.0 as usize,
            "tenant namespaces are positional: reopen tenants in their original order"
        );
        let view = Arc::new(TenantStore::new(Arc::clone(&self.backend), previous));
        let ar = Archive::open_with_meta(scheme, view, self.config.meta.clone())?;
        let id = TenantId(self.tenants.len() as u16);
        self.tenants.push(Some(ar));
        Ok(id)
    }

    /// Number of tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// All tenant ids, in slot order.
    pub fn tenant_ids(&self) -> impl Iterator<Item = TenantId> + '_ {
        (0..self.tenants.len()).map(|i| TenantId(i as u16))
    }

    /// The shared backend all tenants write through.
    pub fn backend(&self) -> &SharedBackend {
        &self.backend
    }

    /// A tenant's archive (idle access, e.g. for verification between
    /// runs).
    ///
    /// # Panics
    ///
    /// Panics on an unknown tenant.
    pub fn archive(&self, tenant: TenantId) -> &Archive<TenantStore> {
        self.tenants[tenant.0 as usize]
            .as_ref()
            .expect("tenant archives are home between runs")
    }

    /// Mutable idle access to a tenant's archive — the serial-replay path
    /// ([`crate::Workload::replay`]) drives archives directly through
    /// this.
    ///
    /// # Panics
    ///
    /// Panics on an unknown tenant.
    pub fn archive_mut(&mut self, tenant: TenantId) -> &mut Archive<TenantStore> {
        self.tenants[tenant.0 as usize]
            .as_mut()
            .expect("tenant archives are home between runs")
    }

    /// Verifies every tenant end to end; returns the tenants with failing
    /// files and which files failed.
    pub fn verify_all(&self) -> Vec<(TenantId, Vec<String>)> {
        self.tenant_ids()
            .filter_map(|t| {
                let bad = self.archive(t).verify_all();
                (!bad.is_empty()).then_some((t, bad))
            })
            .collect()
    }

    /// Raises the worker pool, lends the driver closure a
    /// [`ServiceClient`], and joins the pool when the closure returns —
    /// every submitted operation completes before `run` does. Returns the
    /// closure's result and the run's [`ServiceReport`].
    ///
    /// In in-line mode (the `serial-service` feature, or
    /// [`ServiceConfig::serial`]) no threads are raised: operations
    /// execute on the submitting thread in submission order.
    pub fn run<R>(&mut self, f: impl FnOnce(&ServiceClient<'_>) -> R) -> (R, ServiceReport) {
        let start = Instant::now();
        let saturated = AtomicU64::new(0);
        if self.is_inline() {
            let route: Vec<(usize, usize)> = (0..self.tenants.len()).map(|i| (0, i)).collect();
            let archives: Vec<Slot> = self
                .tenants
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| (i, slot.take().expect("archives are home")))
                .collect();
            let state = Mutex::new(InlineState {
                archives,
                stats: ShardStats::new(),
            });
            let client = ServiceClient {
                mode: Mode::Inline { state: &state },
                route: &route,
                saturated: &saturated,
            };
            let r = f(&client);
            // The vendored parking_lot has no `into_inner`; swap the
            // contents out under the (uncontended) lock instead.
            let InlineState { archives, stats } = std::mem::replace(
                &mut *state.lock(),
                InlineState {
                    archives: Vec::new(),
                    stats: ShardStats::new(),
                },
            );
            for (i, ar) in archives {
                self.tenants[i] = Some(ar);
            }
            let report = ServiceReport {
                wall: start.elapsed(),
                latency: stats.latency.clone(),
                shard_completed: vec![stats.total_completed()],
                queue_highwater: vec![0],
                saturated: saturated.load(Ordering::Relaxed),
            };
            return (r, report);
        }

        let shards = self.shard_count();
        let mut route = vec![(0usize, 0usize); self.tenants.len()];
        let mut parts: Vec<Vec<Slot>> = (0..shards).map(|_| Vec::new()).collect();
        for (i, slot) in self.tenants.iter_mut().enumerate() {
            let shard = i % shards;
            route[i] = (shard, parts[shard].len());
            parts[shard].push((i, slot.take().expect("archives are home")));
        }
        let queues: Vec<ShardQueue> = (0..shards)
            .map(|_| ShardQueue::new(self.config.queue_depth))
            .collect();

        let (r, joined) = std::thread::scope(|scope| {
            let mut senders = Vec::with_capacity(shards);
            let mut handles = Vec::with_capacity(shards);
            for (shard, mut part) in parts.into_iter().enumerate() {
                let (tx, rx) = mpsc::sync_channel::<Request>(self.config.queue_depth);
                senders.push(tx);
                let queue = &queues[shard];
                handles.push(scope.spawn(move || {
                    let mut stats = ShardStats::new();
                    while let Ok(req) = rx.recv() {
                        queue.dequeued();
                        execute(&mut part, req, &mut stats);
                    }
                    (part, stats)
                }));
            }
            let client = ServiceClient {
                mode: Mode::Pool {
                    senders,
                    queues: &queues,
                },
                route: &route,
                saturated: &saturated,
            };
            let r = f(&client);
            // Dropping the client drops the senders; workers drain their
            // queues and exit, so joining here means every accepted
            // operation has completed.
            drop(client);
            let joined: Vec<(Vec<Slot>, ShardStats)> = handles
                .into_iter()
                .map(|h| h.join().expect("service worker panicked"))
                .collect();
            (r, joined)
        });

        let mut latency = ShardStats::new().latency;
        let mut shard_completed = Vec::with_capacity(shards);
        for (part, stats) in joined {
            for (i, ar) in part {
                self.tenants[i] = Some(ar);
            }
            for (merged, shard_hist) in latency.iter_mut().zip(&stats.latency) {
                merged.merge(shard_hist);
            }
            shard_completed.push(stats.total_completed());
        }
        let report = ServiceReport {
            wall: start.elapsed(),
            latency,
            shard_completed,
            queue_highwater: queues
                .iter()
                .map(|q| q.highwater.load(Ordering::Relaxed).max(0) as usize)
                .collect(),
            saturated: saturated.load(Ordering::Relaxed),
        };
        (r, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_core::Code;
    use ae_lattice::Config;
    use ae_store::MemStore;

    fn ae_scheme() -> Arc<dyn RedundancyScheme> {
        Arc::new(Code::new(Config::new(3, 2, 5).unwrap(), 64))
    }

    fn service(shards: usize, tenants: usize) -> ArchiveService {
        let backend: SharedBackend = Arc::new(MemStore::new());
        let mut svc = ArchiveService::new(backend, ServiceConfig::with_shards(shards));
        for _ in 0..tenants {
            svc.add_tenant(ae_scheme(), 64);
        }
        svc
    }

    #[test]
    fn concurrent_tenants_round_trip_on_one_backend() {
        let mut svc = service(3, 7);
        let payload =
            |t: u16, i: usize| vec![(t as u8).wrapping_mul(31).wrapping_add(i as u8); 200];
        let (_, report) = svc.run(|client| {
            let mut tickets = Vec::new();
            for t in 0..7u16 {
                for i in 0..4 {
                    tickets.push(
                        client
                            .put(TenantId(t), &format!("f{i}"), &payload(t, i))
                            .unwrap(),
                    );
                }
            }
            for ticket in tickets {
                ticket.wait().unwrap();
            }
        });
        assert_eq!(report.completed(), 28);
        // One stats row per shard (a single row under serial-service).
        assert_eq!(report.shard_completed.len(), svc.shard_count());
        assert!(report.latency(OpKind::Put).count() == 28);
        // Every tenant's files read back through idle access too.
        for t in 0..7u16 {
            for i in 0..4 {
                assert_eq!(
                    svc.archive(TenantId(t)).get(&format!("f{i}")).unwrap(),
                    payload(t, i)
                );
            }
        }
        assert!(svc.verify_all().is_empty());
    }

    #[test]
    fn typed_archive_errors_come_back_through_tickets() {
        let mut svc = service(2, 2);
        svc.run(|client| {
            client.put(TenantId(0), "x", b"1").unwrap().wait().unwrap();
            let dup = client.put(TenantId(0), "x", b"2").unwrap().wait();
            assert!(matches!(
                dup,
                Err(ServiceError::Archive(ArchiveError::DuplicateName(_)))
            ));
            let missing = client.get(TenantId(1), "nope").unwrap().wait();
            assert!(matches!(
                missing,
                Err(ServiceError::Archive(ArchiveError::UnknownFile(_)))
            ));
        });
    }

    #[test]
    fn unknown_tenants_are_rejected_at_submission() {
        let mut svc = service(2, 1);
        svc.run(|client| {
            assert_eq!(
                client.get(TenantId(9), "f").unwrap_err(),
                ServiceError::UnknownTenant(TenantId(9))
            );
        });
    }

    #[test]
    fn seal_and_scrub_flow_through_the_service() {
        use ae_baselines::ReedSolomon;
        let backend: SharedBackend = Arc::new(MemStore::new());
        let mut svc = ArchiveService::new(backend, ServiceConfig::with_shards(2));
        let rs = svc.add_tenant(Arc::new(ReedSolomon::new(4, 2).unwrap()), 64);
        svc.run(|client| {
            // 300 bytes = 5 blocks of 64: one full RS(4,2) stripe plus a
            // buffered partial that only seal flushes.
            client.put(rs, "f", &[7u8; 300]).unwrap().wait().unwrap();
            let flushed = client.seal(rs).unwrap().wait().unwrap();
            assert!(!flushed.is_empty(), "partial stripe flushed");
            assert_eq!(client.scrub(rs).unwrap().wait().unwrap(), 0);
            let late = client.put(rs, "late", b"no").unwrap().wait();
            assert!(matches!(
                late,
                Err(ServiceError::Archive(ArchiveError::Sealed(_)))
            ));
        });
        assert!(svc.archive(rs).is_sealed());
    }

    #[test]
    fn inline_mode_serves_identically_on_the_submitting_thread() {
        let backend: SharedBackend = Arc::new(MemStore::new());
        let mut svc = ArchiveService::new(backend, ServiceConfig::serial());
        assert!(svc.is_inline());
        assert_eq!(svc.shard_count(), 1);
        let t = svc.add_tenant(ae_scheme(), 64);
        let (bytes, report) = svc.run(|client| {
            client.put(t, "f", b"inline").unwrap().wait().unwrap();
            client.get(t, "f").unwrap().wait().unwrap()
        });
        assert_eq!(bytes, b"inline");
        assert_eq!(report.completed(), 2);
        assert_eq!(report.queue_highwater, vec![0]);
    }

    #[test]
    fn runs_can_repeat_and_archives_come_home() {
        let mut svc = service(4, 5);
        svc.run(|client| {
            for t in 0..5u16 {
                client
                    .put(TenantId(t), "a", &[t as u8; 100])
                    .unwrap()
                    .wait()
                    .unwrap();
            }
        });
        let (_, second) = svc.run(|client| {
            for t in 0..5u16 {
                assert_eq!(
                    client.get(TenantId(t), "a").unwrap().wait().unwrap(),
                    vec![t as u8; 100]
                );
            }
        });
        assert_eq!(second.completed(), 5);
        assert_eq!(svc.tenant_count(), 5);
    }

    #[test]
    fn a_new_service_process_reopens_its_tenants_from_the_backend() {
        let backend: SharedBackend = Arc::new(MemStore::new());
        let mut config = ServiceConfig::with_shards(2);
        config.meta.checkpoint_every = Some(3);
        let payload = |t: u16, i: usize| vec![t as u8 ^ i as u8; 150];
        {
            let mut svc = ArchiveService::new(Arc::clone(&backend), config.clone());
            for _ in 0..3 {
                svc.add_tenant(ae_scheme(), 64);
            }
            svc.run(|client| {
                for t in 0..3u16 {
                    for i in 0..6 {
                        client
                            .put(TenantId(t), &format!("f{i}"), &payload(t, i))
                            .unwrap()
                            .wait()
                            .unwrap();
                    }
                }
            });
            // The service process "crashes" here: nothing is flushed
            // beyond what every put already journaled.
        }
        let mut svc = ArchiveService::new(backend, config);
        for t in 0..3u16 {
            let id = svc.open_tenant(ae_scheme(), TenantId(t)).unwrap();
            assert_eq!(id, TenantId(t));
            // Checkpoints fired under the cadence of 3, so reopen replayed
            // a bounded suffix, not the whole history.
            let ar = svc.archive(id);
            assert!(ar.checkpoint_seq().is_some(), "tenant {t} checkpointed");
            assert!(ar.replayed_records() < ar.meta_len());
        }
        svc.run(|client| {
            for t in 0..3u16 {
                for i in 0..6 {
                    assert_eq!(
                        client
                            .get(TenantId(t), &format!("f{i}"))
                            .unwrap()
                            .wait()
                            .unwrap(),
                        payload(t, i)
                    );
                }
            }
        });
        assert!(svc.verify_all().is_empty());
    }

    #[test]
    fn per_tenant_meta_policy_overrides_the_service_default() {
        let backend: SharedBackend = Arc::new(MemStore::new());
        let mut svc = ArchiveService::new(backend, ServiceConfig::default());
        let default = svc.add_tenant(ae_scheme(), 64);
        let custom = svc.add_tenant_with_meta(
            ae_scheme(),
            64,
            MetaConfig {
                copies: 2,
                checkpoint_every: Some(1),
                ..MetaConfig::default()
            },
        );
        assert_eq!(svc.archive(default).meta_config().copies, 3);
        assert_eq!(svc.archive(custom).meta_config().copies, 2);
        svc.run(|client| {
            client.put(custom, "f", b"eager").unwrap().wait().unwrap();
        });
        assert!(
            svc.archive(custom).checkpoint_seq().is_some(),
            "cadence of 1 checkpoints on the first put"
        );
        assert_eq!(svc.archive(default).checkpoint_seq(), None);
    }

    #[test]
    fn reopening_out_of_order_is_refused() {
        let backend: SharedBackend = Arc::new(MemStore::new());
        {
            let mut svc = ArchiveService::new(Arc::clone(&backend), ServiceConfig::default());
            svc.add_tenant(ae_scheme(), 64);
            svc.add_tenant(ae_scheme(), 64);
        }
        let mut svc = ArchiveService::new(backend, ServiceConfig::default());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = svc.open_tenant(ae_scheme(), TenantId(1));
        }));
        assert!(err.is_err(), "skipping tenant 0 must panic, typed");
    }

    #[test]
    fn error_display_names_the_problem() {
        let e = ServiceError::Saturated {
            shard: 2,
            capacity: 8,
        };
        assert!(e.to_string().contains("shard 2"));
        assert!(ServiceError::UnknownTenant(TenantId(3))
            .to_string()
            .contains("t3"));
        assert!(ServiceError::Shutdown.to_string().contains("shut down"));
    }
}
