//! Seeded randomness for the workload engine: SplitMix64 plus a Zipf
//! sampler built on it.
//!
//! The engine follows the workspace's no-`StdRng` convention (cf. the
//! crash-recovery soak): SplitMix64 is tiny, fast, splittable by
//! construction — and above all *pinned*, so a `(seed, config)` pair names
//! one exact operation sequence forever, independent of any external RNG
//! crate's evolution.

/// SplitMix64: the workspace's seeded stream of choice.
///
/// Every call advances the state by the golden-ratio increment and mixes
/// it; two generators with the same seed produce the same stream.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator starting from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `0..bound` (`bound` of 0 is treated as 1).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An independent generator split off this one's stream — used to give
    /// each concern (tenant choice, file choice, payload bytes) its own
    /// stream so adding draws to one never perturbs the others.
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64(self.next_u64())
    }
}

/// A Zipf(θ) sampler over ranks `0..n`: rank `r` is drawn with weight
/// `1 / (r + 1)^θ`, so rank 0 is the most popular. θ = 0 degenerates to
/// uniform; θ around 1 matches the skew of real tenant and key
/// popularity distributions.
///
/// The CDF is precomputed once and sampled by binary search, so draws are
/// O(log n) with no floating-point accumulation at sample time —
/// a given build's sampler is fully determined by `(n, theta)` and the
/// generator stream.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "Zipf skew must be a finite non-negative number"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 0..n {
            total += 1.0 / ((r + 1) as f64).powf(theta);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has no ranks (never true — `new` rejects 0).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n`.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.unit_f64();
        // First rank whose CDF covers u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_split_streams_diverge() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let first: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let second: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(first, second);
        let mut c = b.split();
        assert_ne!(c.next_u64(), b.next_u64(), "split stream is independent");
    }

    #[test]
    fn unit_f64_stays_in_range() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn zipf_skews_towards_low_ranks() {
        let zipf = Zipf::new(100, 1.1);
        let mut rng = SplitMix64::new(11);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 beats rank 10");
        assert!(counts[0] > counts[99] * 10, "heavy head");
        // Every draw is a valid rank.
        assert_eq!(counts.iter().map(|&c| c as usize).sum::<usize>(), 20_000);
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = SplitMix64::new(5);
        let mut counts = vec![0u32; 4];
        for _ in 0..40_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_zero_ranks() {
        Zipf::new(0, 1.0);
    }
}
