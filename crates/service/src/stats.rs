//! Latency and saturation accounting for the serving layer.
//!
//! Workers record each operation's submit-to-complete latency into a
//! log-scaled [`LatencyHistogram`] (64 power-of-two decades × 4
//! sub-buckets — ~19% worst-case relative error on a percentile, constant
//! memory, lock-free to merge); [`ServiceReport`] aggregates the per-shard
//! histograms, completion counts, queue-depth highwaters and saturation
//! rejections for one [`crate::ArchiveService::run`]. The bucket engine
//! itself is [`ae_api::LogHistogram`] — shared with the sweep harness's
//! repair-cost distributions — and this module only adds the
//! nanosecond/`Duration` framing.

use ae_api::LogHistogram;
use std::fmt;
use std::time::Duration;

/// Operation kinds the service admits, as a dense index for stats tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// [`crate::ServiceClient::put`]
    Put,
    /// [`crate::ServiceClient::get`]
    Get,
    /// [`crate::ServiceClient::scrub`]
    Scrub,
    /// [`crate::ServiceClient::seal`]
    Seal,
}

impl OpKind {
    /// All kinds, in dense-index order.
    pub const ALL: [OpKind; 4] = [OpKind::Put, OpKind::Get, OpKind::Scrub, OpKind::Seal];

    /// Dense index into per-kind tables.
    pub fn index(self) -> usize {
        match self {
            OpKind::Put => 0,
            OpKind::Get => 1,
            OpKind::Scrub => 2,
            OpKind::Seal => 3,
        }
    }

    /// Lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Put => "put",
            OpKind::Get => "get",
            OpKind::Scrub => "scrub",
            OpKind::Seal => "seal",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A log-scaled latency histogram over nanoseconds: the shared
/// [`LogHistogram`] bucket engine with `Duration` framing.
///
/// Recording is O(1); percentile extraction returns the lower bound of the
/// bucket holding the requested rank, so reported percentiles are
/// conservative (never above the true value by more than one bucket
/// width).
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    inner: LogHistogram,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            inner: LogHistogram::new(),
        }
    }

    fn ns(latency: Duration) -> u64 {
        latency.as_nanos().min(u64::MAX as u128) as u64
    }

    /// Records one latency.
    pub fn record(&mut self, latency: Duration) {
        self.inner.record(Self::ns(latency));
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.inner.merge(&other.inner);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Mean latency, `None` when empty.
    pub fn mean(&self) -> Option<Duration> {
        if self.inner.count() == 0 {
            return None;
        }
        Some(Duration::from_nanos(
            (self.inner.sum() / self.inner.count() as u128) as u64,
        ))
    }

    /// Largest recorded latency.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.inner.max())
    }

    /// Number of recorded samples at or below `limit` (bucket-granular:
    /// the bucket containing `limit` counts in full). The service bench
    /// computes SLO-bounded goodput from this.
    pub fn count_at_most(&self, limit: Duration) -> u64 {
        self.inner.count_at_most(Self::ns(limit))
    }

    /// The `q`-quantile (`0.0..=1.0`), `None` when empty. `0.5` is p50,
    /// `0.99` is p99.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        self.inner.quantile(q).map(Duration::from_nanos)
    }
}

/// Per-shard worker accounting, collected when the pool joins.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Operations this shard completed, by kind.
    pub completed: [u64; 4],
    /// Latency histograms by kind (submit to completion).
    pub latency: [LatencyHistogram; 4],
}

impl ShardStats {
    /// Empty per-shard stats.
    pub fn new() -> Self {
        ShardStats {
            completed: [0; 4],
            latency: [
                LatencyHistogram::new(),
                LatencyHistogram::new(),
                LatencyHistogram::new(),
                LatencyHistogram::new(),
            ],
        }
    }

    /// Records one completed operation.
    pub fn record(&mut self, kind: OpKind, latency: Duration) {
        self.completed[kind.index()] += 1;
        self.latency[kind.index()].record(latency);
    }

    /// Total operations completed across kinds.
    pub fn total_completed(&self) -> u64 {
        self.completed.iter().sum()
    }
}

/// What one [`crate::ArchiveService::run`] measured: merged latency
/// histograms, throughput inputs, per-shard queue pressure.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Wall-clock time the driver closure held the service.
    pub wall: Duration,
    /// Per-kind latency histograms merged across shards.
    pub latency: [LatencyHistogram; 4],
    /// Operations completed per shard.
    pub shard_completed: Vec<u64>,
    /// Highest submission-queue depth each shard reached.
    pub queue_highwater: Vec<usize>,
    /// Submissions rejected with [`crate::ServiceError::Saturated`].
    pub saturated: u64,
}

impl ServiceReport {
    /// Latency histogram for one op kind.
    pub fn latency(&self, kind: OpKind) -> &LatencyHistogram {
        &self.latency[kind.index()]
    }

    /// Total operations completed across all shards.
    pub fn completed(&self) -> u64 {
        self.shard_completed.iter().sum()
    }

    /// Aggregate throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.completed() as f64 / secs
    }

    /// One-line human summary (completed ops, throughput, worst queue).
    pub fn summary(&self) -> String {
        format!(
            "{} ops in {:.1?} ({:.0} op/s), queue highwater {:?}, {} saturated",
            self.completed(),
            self.wall,
            self.ops_per_sec(),
            self.queue_highwater,
            self.saturated
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_are_ordered_and_conservative() {
        let mut h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p95 && p95 <= p99, "{p50:?} {p95:?} {p99:?}");
        assert!(p99 <= h.max());
        // Conservative: the p50 bucket floor sits within one bucket (≤25%)
        // of the true median of 500µs.
        assert!(p50 >= Duration::from_micros(375) && p50 <= Duration::from_micros(500));
        assert!(h.mean().unwrap() > Duration::from_micros(400));
    }

    #[test]
    fn histogram_merge_equals_union() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..100u64 {
            let d = Duration::from_nanos(i * i + 1);
            if i % 2 == 0 { &mut a } else { &mut b }.record(d);
            all.record(d);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn empty_histogram_answers_none() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn tiny_latencies_use_exact_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(0));
        h.record(Duration::from_nanos(3));
        assert_eq!(h.quantile(0.01).unwrap(), Duration::from_nanos(0));
        assert_eq!(h.quantile(1.0).unwrap(), Duration::from_nanos(3));
    }

    #[test]
    fn op_kind_table_is_dense() {
        for (i, k) in OpKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        assert_eq!(OpKind::Scrub.to_string(), "scrub");
    }

    #[test]
    fn shard_stats_record_by_kind() {
        let mut s = ShardStats::new();
        s.record(OpKind::Put, Duration::from_micros(5));
        s.record(OpKind::Put, Duration::from_micros(7));
        s.record(OpKind::Get, Duration::from_micros(1));
        assert_eq!(s.completed[OpKind::Put.index()], 2);
        assert_eq!(s.total_completed(), 3);
        assert_eq!(s.latency[OpKind::Get.index()].count(), 1);
    }
}
