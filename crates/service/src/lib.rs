//! Multi-tenant archive **serving layer** with a deterministic workload
//! engine.
//!
//! The paper's §IV use cases all end in the same deployment shape: many
//! users' archives, one storage system, concurrent traffic. This crate is
//! that shape as a subsystem over the workspace's existing pieces — any
//! [`ae_api::RedundancyScheme`] per tenant, one shared
//! [`ae_api::BlockRepo`] backend under everyone.
//!
//! # Architecture
//!
//! Three layers, bottom up:
//!
//! * [`TenantStore`] — a per-tenant namespaced view of the shared backend.
//!   Every block id a tenant's archive emits (data, parities, shards,
//!   replicas **and journal records**) is tagged with the tenant number in
//!   its high 16 bits, so whole archives — crash-recovery journal included
//!   — coexist in one store without any scheme or archive code changing.
//! * [`ArchiveService`] — the serving core. Tenants are pinned to shards
//!   (`tenant % shards`, width defaulting to the
//!   [`ae_api::repair_threads`] / `AE_REPAIR_THREADS` convention); each
//!   shard is one `std::thread::scope` worker that is the single writer
//!   for its archives, fed by a bounded FIFO queue whose overflow answers
//!   a typed [`ServiceError::Saturated`] instead of blocking. A run
//!   yields a [`ServiceReport`]: per-op latency histograms (p50/p95/p99),
//!   throughput, queue-depth highwaters, saturation counts.
//! * [`Workload`] — the deterministic engine. A `(seed, config)` pair
//!   materializes one exact operation sequence — op mix per phase,
//!   open-loop arrival schedule, Zipf-skewed tenant and file popularity,
//!   payload bytes — which can be **driven** through a sharded service
//!   and **replayed** serially, and the two final states compared block
//!   for block. Tenant-affine sharding makes that comparison meaningful:
//!   each tenant's ops execute in submission order on every shard count,
//!   and tenants' id spaces are disjoint, so the final backend state is
//!   independent of cross-tenant interleaving.
//!
//! The `serial-service` cargo feature (mirroring `serial-repair`) pins
//! the whole service to one in-line worker — the reference execution the
//! parity suite compares the sharded pool against.
//!
//! ```
//! use ae_service::{ArchiveService, ServiceConfig, Workload, WorkloadConfig};
//! use ae_store::MemStore;
//! use ae_core::Code;
//! use ae_lattice::Config;
//! use std::sync::Arc;
//!
//! let mut svc = ArchiveService::new(Arc::new(MemStore::new()), ServiceConfig::default());
//! for _ in 0..4 {
//!     svc.add_tenant(Arc::new(Code::new(Config::new(3, 2, 5).unwrap(), 64)), 64);
//! }
//! let workload = Workload::generate(0xAE, WorkloadConfig::default());
//! let (outcome, report) = svc.run(|client| workload.drive(client));
//! assert!(outcome.clean());
//! assert_eq!(report.completed() as usize, workload.ops.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rng;
pub mod service;
pub mod stats;
pub mod tenant;
pub mod workload;

pub use ae_store::meta::MetaConfig;
pub use rng::{SplitMix64, Zipf};
pub use service::{ArchiveService, ServiceClient, ServiceConfig, ServiceError, Ticket};
pub use stats::{LatencyHistogram, OpKind, ServiceReport, ShardStats};
pub use tenant::{SharedBackend, TenantId, TenantStore};
pub use workload::{DriveOutcome, OpMix, Phase, ScheduledOp, Workload, WorkloadConfig, WorkloadOp};
