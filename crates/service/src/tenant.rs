//! Tenant-namespaced views over one shared backend.
//!
//! The §IV use cases are multi-tenant: many users' archives coexist in one
//! storage system. [`TenantStore`] makes that concrete without touching
//! any scheme or archive code — it is a [`BlockRepo`] view that maps every
//! lattice-local block id into a tenant-reserved slice of the shared id
//! space (the tenant number in the high 16 bits, the idiom
//! `ae_store::GeoLattice` established for the §IV.A cooperative backup),
//! covering **all** id kinds: data, entanglement parities, Reed-Solomon
//! shards, replicas and — crucially — the archive's [`BlockId::Meta`]
//! journal records, so every tenant owns a private crash-recovery journal
//! inside the same backend.
//!
//! An `Archive<TenantStore>` therefore behaves exactly like an archive
//! over a private backend while its blocks physically interleave with
//! every other tenant's in the one shared store — which is what lets the
//! service admit concurrent `put`/`get`/`scrub`/`seal` from many tenants
//! against the same backend.

use ae_api::{BlockRepo, BlockSink, BlockSource, StoreError};
use ae_blocks::{Block, BlockId, EdgeId, MetaId, NodeId, ReplicaId, ShardId};
use std::sync::Arc;

/// One tenant of an [`crate::ArchiveService`], identified by its slot
/// index (dense, assigned by [`crate::ArchiveService::add_tenant`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u16);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The backend an [`crate::ArchiveService`] shares between all tenants:
/// any interior-mutable repo of the unified `ae_api` family.
pub type SharedBackend = Arc<dyn BlockRepo + Send + Sync>;

/// High bits reserved for the tenant tag — the same split
/// `ae_store::GeoLattice` uses for user namespaces, so tenant-local ids
/// must keep their primary index below 2^48. Every roster scheme does;
/// schemes that tag high bits themselves (a `GeoLattice` with a non-zero
/// user) cannot be stacked on top of a non-zero tenant tag.
const TENANT_SHIFT: u32 = 48;

/// A [`BlockRepo`] view translating one tenant's lattice-local ids into
/// its reserved slice of the shared id space.
#[derive(Clone)]
pub struct TenantStore {
    inner: SharedBackend,
    tenant: TenantId,
    tag: u64,
}

impl TenantStore {
    /// A view of `inner` for `tenant`.
    pub fn new(inner: SharedBackend, tenant: TenantId) -> Self {
        let tag = (tenant.0 as u64) << TENANT_SHIFT;
        TenantStore { inner, tenant, tag }
    }

    /// The tenant this view belongs to.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The shared backend underneath every tenant's view.
    pub fn shared(&self) -> &SharedBackend {
        &self.inner
    }

    fn tag_index(&self, i: u64) -> u64 {
        debug_assert_eq!(
            i >> TENANT_SHIFT,
            0,
            "tenant-local id {i} overflows the 48-bit local space"
        );
        i | self.tag
    }

    /// Maps a tenant-local id to its key in the shared backend. Public so
    /// drills and parity harnesses can address a tenant's physical blocks
    /// (e.g. to fault-inject them) from outside the archive.
    pub fn global(&self, id: BlockId) -> BlockId {
        match id {
            BlockId::Data(NodeId(i)) => BlockId::Data(NodeId(self.tag_index(i))),
            BlockId::Parity(EdgeId { class, left }) => {
                BlockId::Parity(EdgeId::new(class, NodeId(self.tag_index(left.0))))
            }
            BlockId::Shard(ShardId { stripe, index }) => BlockId::Shard(ShardId {
                stripe: self.tag_index(stripe),
                index,
            }),
            BlockId::Replica(ReplicaId { node, copy }) => BlockId::Replica(ReplicaId {
                node: NodeId(self.tag_index(node.0)),
                copy,
            }),
            BlockId::Meta(MetaId(seq)) => BlockId::Meta(MetaId(self.tag_index(seq))),
        }
    }
}

impl std::fmt::Debug for TenantStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantStore")
            .field("tenant", &self.tenant)
            .finish_non_exhaustive()
    }
}

impl BlockSource for TenantStore {
    fn fetch(&self, id: BlockId) -> Option<Block> {
        self.inner.fetch(self.global(id))
    }

    fn has(&self, id: BlockId) -> bool {
        self.inner.has(self.global(id))
    }

    fn read(&self, id: BlockId) -> Result<Block, StoreError> {
        // Map the error back into the tenant-local id space: callers
        // reason about their own universe.
        self.inner.read(self.global(id)).map_err(|e| match e {
            StoreError::NotFound(_) => StoreError::NotFound(id),
            StoreError::Corrupted(_) => StoreError::Corrupted(id),
            StoreError::TimedOut(_) => StoreError::TimedOut(id),
        })
    }
}

impl BlockSink for TenantStore {
    fn store(&self, id: BlockId, block: Block) {
        self.inner.store(self.global(id), block);
    }

    fn remove(&self, id: BlockId) -> bool {
        self.inner.remove(self.global(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_blocks::StrandClass;
    use ae_store::MemStore;

    fn view(t: u16) -> (Arc<MemStore>, TenantStore) {
        let mem = Arc::new(MemStore::new());
        let shared: SharedBackend = Arc::clone(&mem) as SharedBackend;
        (mem, TenantStore::new(shared, TenantId(t)))
    }

    #[test]
    fn every_id_kind_is_namespaced_and_disjoint_between_tenants() {
        let mem = Arc::new(MemStore::new());
        let shared: SharedBackend = Arc::clone(&mem) as SharedBackend;
        let a = TenantStore::new(Arc::clone(&shared), TenantId(1));
        let b = TenantStore::new(shared, TenantId(2));
        let ids = [
            BlockId::Data(NodeId(7)),
            BlockId::Parity(EdgeId::new(StrandClass::RightHanded, NodeId(7))),
            BlockId::Shard(ShardId {
                stripe: 3,
                index: 1,
            }),
            BlockId::Replica(ReplicaId {
                node: NodeId(7),
                copy: 2,
            }),
            BlockId::Meta(MetaId(0)),
        ];
        for (k, id) in ids.iter().enumerate() {
            a.store(*id, Block::from_vec(vec![k as u8; 4]));
        }
        // Tenant b sees none of tenant a's blocks under the same local id.
        for id in &ids {
            assert!(a.has(*id), "{id}");
            assert!(!b.has(*id), "{id} leaked across tenants");
        }
        // The shared backend holds them under tagged keys, all distinct.
        assert_eq!(mem.len(), ids.len());
        for id in &ids {
            assert_ne!(a.global(*id), b.global(*id));
            assert_ne!(a.global(*id), *id, "tenant 1 ids are tagged");
        }
    }

    #[test]
    fn tenant_zero_is_the_untagged_namespace() {
        let (mem, t0) = view(0);
        let id = BlockId::Data(NodeId(5));
        assert_eq!(t0.global(id), id);
        t0.store(id, Block::from_vec(vec![1]));
        assert!(mem.contains(id));
    }

    #[test]
    fn read_errors_name_the_local_id() {
        let (_mem, t) = view(3);
        let id = BlockId::Meta(MetaId(4));
        assert_eq!(t.read(id), Err(StoreError::NotFound(id)));
        assert_eq!(t.fetch(id), None);
    }

    #[test]
    fn remove_round_trips() {
        let (mem, t) = view(9);
        let id = BlockId::Data(NodeId(1));
        t.store(id, Block::from_vec(vec![7; 2]));
        assert_eq!(t.read(id).unwrap().as_slice(), &[7, 7]);
        assert!(t.remove(id));
        assert!(!t.has(id));
        assert!(mem.is_empty());
    }
}
