//! The sweep grid: axes, validation, and the two canonical presets.

use crate::failure::FailureSpec;
use ae_sim::Scheme;
use std::fmt;

/// One sweep grid: every scheme × every failure model × every seed,
/// simulated over the same deployment shape.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Data blocks per deployment (the paper uses 1M; sweeps scale down).
    pub data_blocks: u64,
    /// Failure-domain locations blocks are placed on.
    pub locations: u32,
    /// Seed for the random placement map, shared by every cell so all
    /// schemes see the same location assignment.
    pub placement_seed: u64,
    /// Scheme roster axis.
    pub schemes: Vec<Scheme>,
    /// Failure-model axis.
    pub failures: Vec<FailureSpec>,
    /// Scenario-seed axis: each `(scheme, failure)` pair runs once per
    /// seed.
    pub seeds: Vec<u64>,
}

/// Why a [`SweepConfig`] was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// A grid axis is empty — the grid would have zero cells.
    EmptyAxis {
        /// Which axis: `"schemes"`, `"failures"` or `"seeds"`.
        axis: &'static str,
    },
    /// `data_blocks` is zero.
    ZeroDataBlocks,
    /// `locations` is zero.
    ZeroLocations,
    /// A churn model caps repair bandwidth at zero blocks per round — no
    /// round could ever make progress.
    ZeroBandwidthCap {
        /// Label of the offending failure spec.
        failure: String,
    },
    /// A multi-event model has zero events (churn epochs, upgrade waves).
    ZeroEvents {
        /// Label of the offending failure spec.
        failure: String,
    },
    /// A failure fraction is outside `[0, 1]`.
    InvalidFraction {
        /// Label of the offending failure spec.
        failure: String,
        /// The rejected fraction.
        fraction: f64,
    },
    /// A correlated model's placement groups or upgrade waves don't fit
    /// the location count (need `1..=locations`).
    GroupsOutOfRange {
        /// Label of the offending failure spec.
        failure: String,
        /// The rejected group/wave count.
        groups: u32,
        /// The configured location count.
        locations: u32,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::EmptyAxis { axis } => write!(f, "sweep axis `{axis}` is empty"),
            SweepError::ZeroDataBlocks => write!(f, "sweep needs at least one data block"),
            SweepError::ZeroLocations => write!(f, "sweep needs at least one location"),
            SweepError::ZeroBandwidthCap { failure } => {
                write!(f, "{failure}: bandwidth cap must be positive")
            }
            SweepError::ZeroEvents { failure } => {
                write!(f, "{failure}: needs at least one event")
            }
            SweepError::InvalidFraction { failure, fraction } => {
                write!(f, "{failure}: fraction {fraction} outside [0, 1]")
            }
            SweepError::GroupsOutOfRange {
                failure,
                groups,
                locations,
            } => write!(
                f,
                "{failure}: {groups} groups don't fit {locations} locations"
            ),
        }
    }
}

impl std::error::Error for SweepError {}

impl SweepConfig {
    /// Checks the grid is runnable: non-empty axes, a non-degenerate
    /// deployment, and every failure spec well-formed for `locations`.
    pub fn validate(&self) -> Result<(), SweepError> {
        if self.data_blocks == 0 {
            return Err(SweepError::ZeroDataBlocks);
        }
        if self.locations == 0 {
            return Err(SweepError::ZeroLocations);
        }
        if self.schemes.is_empty() {
            return Err(SweepError::EmptyAxis { axis: "schemes" });
        }
        if self.failures.is_empty() {
            return Err(SweepError::EmptyAxis { axis: "failures" });
        }
        if self.seeds.is_empty() {
            return Err(SweepError::EmptyAxis { axis: "seeds" });
        }
        for spec in &self.failures {
            spec.validate(self.locations)?;
        }
        Ok(())
    }

    /// Cells in the grid (`schemes × failures × seeds`).
    pub fn cell_count(&self) -> usize {
        self.schemes.len() * self.failures.len() * self.seeds.len()
    }

    /// The CI smoke grid: the full 13-scheme roster × five failure models
    /// × one pinned seed over a small deployment — seconds to run, and
    /// byte-compared against the checked-in golden CSV on every push.
    pub fn smoke() -> SweepConfig {
        SweepConfig {
            // Divisible by every roster stripe width (lcm of k ∈ {10, 8,
            // 5, 4} is 40).
            data_blocks: 4_000,
            locations: 60,
            placement_seed: 42,
            schemes: Scheme::extended_lineup(),
            failures: vec![
                FailureSpec::Iid { fraction: 0.15 },
                FailureSpec::CorrelatedGroups {
                    groups: 12,
                    fraction: 0.25,
                },
                FailureSpec::RollingUpgrade { waves: 6 },
                FailureSpec::BitRot { fraction: 0.02 },
                FailureSpec::ChurnCapped {
                    epochs: 3,
                    fraction: 0.05,
                    bandwidth_cap: 400,
                },
            ],
            seeds: vec![42],
        }
    }

    /// The full frontier grid: the 13-scheme roster × every failure model
    /// at multiple intensities × two seeds over a larger deployment.
    /// Minutes in release mode; produces the numbers quoted in the
    /// ROADMAP's frontier section.
    pub fn full() -> SweepConfig {
        SweepConfig {
            data_blocks: 120_000,
            locations: 100,
            placement_seed: 42,
            schemes: Scheme::extended_lineup(),
            failures: vec![
                FailureSpec::Iid { fraction: 0.10 },
                FailureSpec::Iid { fraction: 0.20 },
                FailureSpec::Iid { fraction: 0.30 },
                FailureSpec::CorrelatedGroups {
                    groups: 10,
                    fraction: 0.20,
                },
                FailureSpec::CorrelatedGroups {
                    groups: 10,
                    fraction: 0.30,
                },
                FailureSpec::RollingUpgrade { waves: 10 },
                FailureSpec::BitRot { fraction: 0.01 },
                FailureSpec::BitRot { fraction: 0.05 },
                FailureSpec::ChurnCapped {
                    epochs: 4,
                    fraction: 0.05,
                    bandwidth_cap: 2_000,
                },
            ],
            seeds: vec![42, 4242],
        }
    }
}

/// A tiny two-scheme grid for unit tests (not a preset users should run).
#[cfg(test)]
pub(crate) fn tiny() -> SweepConfig {
    SweepConfig {
        data_blocks: 400,
        locations: 20,
        placement_seed: 1,
        schemes: vec![
            Scheme::Ae(ae_lattice::Config::new(3, 2, 5).unwrap()),
            Scheme::Replication { n: 3 },
        ],
        failures: vec![
            FailureSpec::Iid { fraction: 0.2 },
            FailureSpec::ChurnCapped {
                epochs: 2,
                fraction: 0.1,
                bandwidth_cap: 50,
            },
        ],
        seeds: vec![7],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        SweepConfig::smoke().validate().unwrap();
        SweepConfig::full().validate().unwrap();
        tiny().validate().unwrap();
        assert_eq!(SweepConfig::smoke().cell_count(), 13 * 5);
    }

    #[test]
    fn empty_axes_rejected_with_the_axis_name() {
        let mut cfg = tiny();
        cfg.schemes.clear();
        assert_eq!(
            cfg.validate(),
            Err(SweepError::EmptyAxis { axis: "schemes" })
        );
        let mut cfg = tiny();
        cfg.failures.clear();
        assert_eq!(
            cfg.validate(),
            Err(SweepError::EmptyAxis { axis: "failures" })
        );
        let mut cfg = tiny();
        cfg.seeds.clear();
        assert_eq!(cfg.validate(), Err(SweepError::EmptyAxis { axis: "seeds" }));
    }

    #[test]
    fn degenerate_deployments_rejected() {
        let mut cfg = tiny();
        cfg.data_blocks = 0;
        assert_eq!(cfg.validate(), Err(SweepError::ZeroDataBlocks));
        let mut cfg = tiny();
        cfg.locations = 0;
        assert_eq!(cfg.validate(), Err(SweepError::ZeroLocations));
    }

    #[test]
    fn bad_failure_specs_rejected_typed() {
        let mut cfg = tiny();
        cfg.failures.push(FailureSpec::ChurnCapped {
            epochs: 2,
            fraction: 0.1,
            bandwidth_cap: 0,
        });
        assert!(matches!(
            cfg.validate(),
            Err(SweepError::ZeroBandwidthCap { .. })
        ));
        let mut cfg = tiny();
        cfg.failures.push(FailureSpec::Iid { fraction: 1.5 });
        assert_eq!(
            cfg.validate(),
            Err(SweepError::InvalidFraction {
                failure: "iid(1.50)".into(),
                fraction: 1.5
            })
        );
        let mut cfg = tiny();
        cfg.failures.push(FailureSpec::CorrelatedGroups {
            groups: 999,
            fraction: 0.5,
        });
        assert!(matches!(
            cfg.validate(),
            Err(SweepError::GroupsOutOfRange { groups: 999, .. })
        ));
        let mut cfg = tiny();
        cfg.failures.push(FailureSpec::RollingUpgrade { waves: 0 });
        assert!(matches!(cfg.validate(), Err(SweepError::ZeroEvents { .. })));
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("upgrade"), "{err}");
    }
}
