//! Grid expansion: every cell simulated, every row serialized.

use crate::config::{SweepConfig, SweepError};
use crate::failure::FailureSpec;
use ae_api::LogHistogram;
use ae_sim::{Scheme, SchemePlane, SimPlacement};
use std::fmt::Write as _;

/// One grid cell's outcome: a `(scheme, failure model, seed)` triple
/// simulated over the configured deployment. Serializes to one CSV row.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Roster label ([`Scheme::name`]), e.g. `RS(10,4)`.
    pub scheme: String,
    /// Failure-model label ([`FailureSpec::label`]), e.g. `iid(0.15)`.
    pub failure: String,
    /// Scenario seed this cell ran under.
    pub seed: u64,
    /// Data blocks in the deployment.
    pub data_blocks: u64,
    /// Failure-domain locations.
    pub locations: u32,
    /// The scheme's additional storage as a percent of the data (Table IV).
    pub storage_overhead_pct: f64,
    /// Data blocks the scenario failed.
    pub failed_data: u64,
    /// Redundancy blocks the scenario failed.
    pub failed_redundancy: u64,
    /// Blocks repaired across all rounds (data + redundancy).
    pub repaired: u64,
    /// Data blocks still missing at scenario end (the paper's Fig 11
    /// loss metric).
    pub lost_data: u64,
    /// Redundancy blocks still missing at scenario end.
    pub lost_redundancy: u64,
    /// Total irrecoverable blocks: `lost_data + lost_redundancy`.
    pub irrecoverable: u64,
    /// Blocks read by all repairs (the scheme's traffic accounting).
    pub blocks_read: u64,
    /// Blocks written by all repairs (one per repaired block).
    pub blocks_written: u64,
    /// Repair rounds across all scenario events.
    pub rounds: u64,
    /// Median per-repaired-block read cost (log-bucket floor).
    pub read_cost_p50: u64,
    /// 99th-percentile per-repaired-block read cost (log-bucket floor).
    pub read_cost_p99: u64,
}

/// All cells of one sweep, in `schemes × failures × seeds` order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// The config that produced this result.
    pub config: SweepConfig,
    /// One entry per grid cell.
    pub cells: Vec<CellResult>,
}

/// The CSV header line (no trailing newline).
pub const CSV_HEADER: &str = "scheme,failure,seed,data_blocks,locations,\
storage_overhead_pct,failed_data,failed_redundancy,repaired,lost_data,\
lost_redundancy,irrecoverable,blocks_read,blocks_written,rounds,\
read_cost_p50,read_cost_p99";

impl SweepResult {
    /// Serializes every cell to CSV: [`CSV_HEADER`], then one row per
    /// cell. `scheme` and `failure` are double-quoted (their labels
    /// contain commas); all other columns are integers except the
    /// one-decimal `storage_overhead_pct`. Byte-stable: the same
    /// `(seed, config)` produces the same string on every run, thread
    /// count and platform.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(128 * (self.cells.len() + 1));
        out.push_str(CSV_HEADER);
        out.push('\n');
        for c in &self.cells {
            writeln!(
                out,
                "\"{}\",\"{}\",{},{},{},{:.1},{},{},{},{},{},{},{},{},{},{},{}",
                c.scheme,
                c.failure,
                c.seed,
                c.data_blocks,
                c.locations,
                c.storage_overhead_pct,
                c.failed_data,
                c.failed_redundancy,
                c.repaired,
                c.lost_data,
                c.lost_redundancy,
                c.irrecoverable,
                c.blocks_read,
                c.blocks_written,
                c.rounds,
                c.read_cost_p50,
                c.read_cost_p99,
            )
            .expect("write to String");
        }
        out
    }
}

/// Expands the grid: one [`SchemePlane`] simulation per
/// `(scheme, failure, seed)` cell, in deterministic axis order.
pub fn run_sweep(config: &SweepConfig) -> Result<SweepResult, SweepError> {
    config.validate()?;
    let mut cells = Vec::with_capacity(config.cell_count());
    for scheme in &config.schemes {
        for failure in &config.failures {
            for &seed in &config.seeds {
                cells.push(run_cell(config, *scheme, failure, seed));
            }
        }
    }
    Ok(SweepResult {
        config: config.clone(),
        cells,
    })
}

/// Simulates one cell: fresh plane, scenario, tallies.
fn run_cell(config: &SweepConfig, scheme: Scheme, failure: &FailureSpec, seed: u64) -> CellResult {
    let mut plane = SchemePlane::new(
        scheme.build(0),
        config.data_blocks,
        config.locations,
        SimPlacement::Random {
            seed: config.placement_seed,
        },
    );
    let tally = failure.execute(&mut plane, seed);
    let (lost_data, lost_redundancy) = plane.missing_counts();
    // Per-repaired-block read cost, weighted by how many blocks each
    // round repaired: p50 is the median repair's cost, p99 the expensive
    // tail (multi-read decodes, cascaded rounds).
    let mut read_cost = LogHistogram::new();
    let mut blocks_read = 0;
    let mut blocks_written = 0;
    for round in &tally.rounds {
        blocks_read += round.reads;
        let written = round.writes();
        blocks_written += written;
        if let Some(cost) = round.reads.checked_div(written) {
            read_cost.record_n(cost, written);
        }
    }
    CellResult {
        scheme: scheme.name(),
        failure: failure.label(),
        seed,
        data_blocks: config.data_blocks,
        locations: config.locations,
        storage_overhead_pct: scheme.additional_storage_pct(),
        failed_data: tally.failed_data,
        failed_redundancy: tally.failed_redundancy,
        repaired: blocks_written,
        lost_data,
        lost_redundancy,
        irrecoverable: lost_data + lost_redundancy,
        blocks_read,
        blocks_written,
        rounds: tally.rounds.len() as u64,
        read_cost_p50: read_cost.quantile(0.5).unwrap_or(0),
        read_cost_p99: read_cost.quantile(0.99).unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::tiny;

    #[test]
    fn grid_order_and_shape() {
        let cfg = tiny();
        let result = run_sweep(&cfg).unwrap();
        assert_eq!(result.cells.len(), cfg.cell_count());
        // schemes × failures × seeds, schemes outermost.
        assert_eq!(result.cells[0].scheme, cfg.schemes[0].name());
        assert_eq!(result.cells[0].failure, cfg.failures[0].label());
        assert_eq!(result.cells[1].failure, cfg.failures[1].label());
        assert_eq!(
            result.cells[cfg.failures.len()].scheme,
            cfg.schemes[1].name()
        );
    }

    #[test]
    fn csv_is_quoted_and_rectangular() {
        let csv = run_sweep(&tiny()).unwrap().to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(header, CSV_HEADER);
        let columns = header.split(',').count();
        for line in lines {
            assert!(line.starts_with('"'), "{line}");
            // Quoted labels hide their commas from a naive split; strip
            // the two quoted fields first.
            let bare = line.rsplit('"').next().unwrap();
            assert_eq!(bare.split(',').count() - 1 + 2, columns, "{line}");
        }
    }

    #[test]
    fn identical_runs_produce_identical_bytes() {
        let cfg = tiny();
        let a = run_sweep(&cfg).unwrap();
        let b = run_sweep(&cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_csv(), b.to_csv());
    }

    #[test]
    fn conservation_holds_per_cell() {
        for cell in &run_sweep(&tiny()).unwrap().cells {
            assert_eq!(
                cell.failed_data + cell.failed_redundancy,
                cell.repaired + cell.lost_data + cell.lost_redundancy,
                "{} under {}",
                cell.scheme,
                cell.failure
            );
            assert_eq!(cell.irrecoverable, cell.lost_data + cell.lost_redundancy);
            assert_eq!(cell.repaired, cell.blocks_written);
            assert!(cell.read_cost_p99 >= cell.read_cost_p50);
        }
    }

    #[test]
    fn invalid_grids_refused_before_any_simulation() {
        let mut cfg = tiny();
        cfg.seeds.clear();
        assert_eq!(
            run_sweep(&cfg),
            Err(SweepError::EmptyAxis { axis: "seeds" })
        );
    }
}
