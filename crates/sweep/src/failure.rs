//! The failure-model axis: what breaks, in what pattern, under which
//! operational limits.
//!
//! Every model runs against the scheme-agnostic [`SchemePlane`] through
//! the same three hooks — location-mask failure injection, per-block bit
//! rot, and (bandwidth-capped, round-bounded) repair — so a model is a
//! *scenario*: a deterministic schedule of injections and repair windows.
//! All randomness derives from the cell's scenario seed (see the crate
//! docs' seeding contract).

use crate::config::SweepError;
use ae_api::mix64;
use ae_sim::scheme_plane::upgrade_wave;
use ae_sim::{FullRepairOutcome, RoundStats, SchemePlane};
use std::fmt;

/// One failure model: a deterministic scenario of failure injections and
/// repair windows driven by a scenario seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureSpec {
    /// The paper's §V.C model: `fraction` of the locations fail at once,
    /// i.i.d. uniform, then repair runs to fixpoint.
    Iid {
        /// Fraction of locations failed.
        fraction: f64,
    },
    /// Correlated rack/region knockout: the locations form `groups`
    /// contiguous placement groups and `fraction` of the *groups* fail
    /// whole, then repair runs to fixpoint.
    CorrelatedGroups {
        /// Contiguous placement groups the locations partition into.
        groups: u32,
        /// Fraction of groups knocked out together.
        fraction: f64,
    },
    /// Rolling-upgrade wave: the fleet is reimaged one contiguous wave of
    /// locations at a time (destructive — blocks on a reimaged location
    /// are lost), with repair run to fixpoint between waves. Operator
    /// driven: wave order is fixed, the scenario seed is unused.
    RollingUpgrade {
        /// Contiguous waves the fleet is split into.
        waves: u32,
    },
    /// Silent bit rot: each stored block independently rots with
    /// probability `fraction` (detected by scrubbing, so a rotten block
    /// is a lost block), then repair runs to fixpoint.
    BitRot {
        /// Per-block rot probability.
        fraction: f64,
    },
    /// Churn under a repair-bandwidth cap: `epochs` successive disasters
    /// each failing `fraction` of the locations, with only **one** repair
    /// round of at most `bandwidth_cap` blocks between epochs, then
    /// capped rounds drain to fixpoint. Epoch `e` keys its disaster with
    /// `mix64(e, seed)`.
    ChurnCapped {
        /// Failure epochs before the final drain.
        epochs: u32,
        /// Fraction of locations failed per epoch.
        fraction: f64,
        /// Most blocks repairable per round (cluster repair bandwidth).
        bandwidth_cap: u64,
    },
}

impl FailureSpec {
    /// Stable CSV label, e.g. `iid(0.15)`, `groups(12,0.25)`,
    /// `upgrade(4)`, `bitrot(0.02)`, `churn(3,0.05,cap400)`. Contains
    /// commas — CSV writers must quote it.
    pub fn label(&self) -> String {
        match *self {
            FailureSpec::Iid { fraction } => format!("iid({fraction:.2})"),
            FailureSpec::CorrelatedGroups { groups, fraction } => {
                format!("groups({groups},{fraction:.2})")
            }
            FailureSpec::RollingUpgrade { waves } => format!("upgrade({waves})"),
            FailureSpec::BitRot { fraction } => format!("bitrot({fraction:.2})"),
            FailureSpec::ChurnCapped {
                epochs,
                fraction,
                bandwidth_cap,
            } => format!("churn({epochs},{fraction:.2},cap{bandwidth_cap})"),
        }
    }

    /// Validates the spec against a deployment of `locations` failure
    /// domains.
    pub fn validate(&self, locations: u32) -> Result<(), SweepError> {
        let fraction_ok = |fraction: f64| {
            if (0.0..=1.0).contains(&fraction) {
                Ok(())
            } else {
                Err(SweepError::InvalidFraction {
                    failure: self.label(),
                    fraction,
                })
            }
        };
        match *self {
            FailureSpec::Iid { fraction } | FailureSpec::BitRot { fraction } => {
                fraction_ok(fraction)
            }
            FailureSpec::CorrelatedGroups { groups, fraction } => {
                fraction_ok(fraction)?;
                if groups == 0 || groups > locations {
                    return Err(SweepError::GroupsOutOfRange {
                        failure: self.label(),
                        groups,
                        locations,
                    });
                }
                Ok(())
            }
            FailureSpec::RollingUpgrade { waves } => {
                if waves == 0 {
                    return Err(SweepError::ZeroEvents {
                        failure: self.label(),
                    });
                }
                if waves > locations {
                    return Err(SweepError::GroupsOutOfRange {
                        failure: self.label(),
                        groups: waves,
                        locations,
                    });
                }
                Ok(())
            }
            FailureSpec::ChurnCapped {
                epochs,
                fraction,
                bandwidth_cap,
            } => {
                fraction_ok(fraction)?;
                if epochs == 0 {
                    return Err(SweepError::ZeroEvents {
                        failure: self.label(),
                    });
                }
                if bandwidth_cap == 0 {
                    return Err(SweepError::ZeroBandwidthCap {
                        failure: self.label(),
                    });
                }
                Ok(())
            }
        }
    }

    /// Runs the scenario on a freshly healed plane, returning the raw
    /// tallies (failed counts per kind, every repair round). The caller
    /// reads the irrecoverable remainder off the plane afterwards.
    pub(crate) fn execute(&self, plane: &mut SchemePlane, seed: u64) -> Tally {
        let mut tally = Tally::default();
        match *self {
            FailureSpec::Iid { fraction } => {
                tally.fail(plane.inject_disaster(fraction, seed));
                tally.extend(plane.repair_full());
            }
            FailureSpec::CorrelatedGroups { groups, fraction } => {
                tally.fail(plane.inject_group_disaster(groups, fraction, seed));
                tally.extend(plane.repair_full());
            }
            FailureSpec::RollingUpgrade { waves } => {
                for wave in 0..waves {
                    let mask = upgrade_wave(plane.locations(), waves, wave);
                    tally.fail(plane.fail_locations(&mask));
                    tally.extend(plane.repair_full());
                }
            }
            FailureSpec::BitRot { fraction } => {
                tally.fail(plane.inject_bit_rot(fraction, seed));
                tally.extend(plane.repair_full());
            }
            FailureSpec::ChurnCapped {
                epochs,
                fraction,
                bandwidth_cap,
            } => {
                for epoch in 0..epochs {
                    tally.fail(plane.inject_disaster(fraction, mix64(u64::from(epoch), seed)));
                    tally.extend(plane.repair_rounds(Some(bandwidth_cap), Some(1)));
                }
                // Quiet period: capped rounds drain to fixpoint.
                tally.extend(plane.repair_rounds(Some(bandwidth_cap), None));
            }
        }
        tally
    }
}

impl fmt::Display for FailureSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Raw per-cell tallies a scenario accumulates: failed blocks by kind and
/// every repair round that ran.
#[derive(Debug, Clone, Default)]
pub(crate) struct Tally {
    pub failed_data: u64,
    pub failed_redundancy: u64,
    pub rounds: Vec<RoundStats>,
}

impl Tally {
    fn fail(&mut self, (data, redundancy): (u64, u64)) {
        self.failed_data += data;
        self.failed_redundancy += redundancy;
    }

    fn extend(&mut self, outcome: FullRepairOutcome) {
        self.rounds.extend(outcome.rounds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_sim::{Scheme, SimPlacement};

    fn plane() -> SchemePlane {
        SchemePlane::new(
            Scheme::Replication { n: 3 }.build(0),
            1_000,
            20,
            SimPlacement::Random { seed: 1 },
        )
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FailureSpec::Iid { fraction: 0.15 }.label(), "iid(0.15)");
        assert_eq!(
            FailureSpec::CorrelatedGroups {
                groups: 12,
                fraction: 0.25
            }
            .label(),
            "groups(12,0.25)"
        );
        assert_eq!(
            FailureSpec::RollingUpgrade { waves: 4 }.label(),
            "upgrade(4)"
        );
        assert_eq!(
            FailureSpec::BitRot { fraction: 0.02 }.label(),
            "bitrot(0.02)"
        );
        assert_eq!(
            FailureSpec::ChurnCapped {
                epochs: 3,
                fraction: 0.05,
                bandwidth_cap: 400
            }
            .to_string(),
            "churn(3,0.05,cap400)"
        );
    }

    #[test]
    fn every_model_closes_its_books() {
        // failed = repaired + still missing, for every model on a plane
        // strong enough to usually repair everything.
        for spec in [
            FailureSpec::Iid { fraction: 0.2 },
            FailureSpec::CorrelatedGroups {
                groups: 10,
                fraction: 0.2,
            },
            FailureSpec::RollingUpgrade { waves: 5 },
            FailureSpec::BitRot { fraction: 0.05 },
            FailureSpec::ChurnCapped {
                epochs: 3,
                fraction: 0.1,
                bandwidth_cap: 100,
            },
        ] {
            let mut p = plane();
            let tally = spec.execute(&mut p, 7);
            let (lost_data, lost_redundancy) = p.missing_counts();
            let repaired: u64 = tally.rounds.iter().map(|r| r.writes()).sum();
            assert_eq!(
                tally.failed_data + tally.failed_redundancy,
                repaired + lost_data + lost_redundancy,
                "{spec}"
            );
            assert!(tally.failed_data > 0, "{spec} failed nothing");
        }
    }

    #[test]
    fn churn_respects_the_bandwidth_cap() {
        let spec = FailureSpec::ChurnCapped {
            epochs: 3,
            fraction: 0.1,
            bandwidth_cap: 100,
        };
        let mut p = plane();
        let tally = spec.execute(&mut p, 7);
        assert!(tally.rounds.iter().all(|r| r.writes() <= 100));
        assert!(tally.rounds.len() > 3, "drain takes extra rounds");
    }

    #[test]
    fn upgrade_is_seed_independent() {
        let run = |seed| {
            let mut p = plane();
            let t = FailureSpec::RollingUpgrade { waves: 4 }.execute(&mut p, seed);
            (t.failed_data, t.failed_redundancy, t.rounds)
        };
        assert_eq!(run(1), run(99));
    }
}
