//! Human-readable summary: per-scheme frontier lines over the whole grid.
//!
//! The *frontier* view answers the paper's central trade-off question —
//! how much durability does each point of storage overhead buy — by
//! collapsing every cell of a scheme into its worst case across failure
//! models and seeds: worst data-loss share, repair read amplification,
//! deepest round count. Schemes keep roster order, so the report reads as
//! Table IV extended with the sweep's failure models.

use crate::run::{CellResult, SweepResult};
use std::fmt::Write as _;

/// One scheme's row on the storage/durability frontier: its cells
/// collapsed to worst-case durability and aggregate repair cost.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeFrontier {
    /// Roster label.
    pub scheme: String,
    /// Additional storage as a percent of the data.
    pub storage_overhead_pct: f64,
    /// Worst data-loss share across all cells, in percent of data blocks.
    pub worst_loss_pct: f64,
    /// Label of the failure model that produced the worst loss.
    pub worst_failure: String,
    /// Total blocks repaired across all cells.
    pub repaired: u64,
    /// Reads per repaired block, aggregated over all cells.
    pub reads_per_repair: f64,
    /// Deepest round count any single cell needed.
    pub max_rounds: u64,
}

impl SchemeFrontier {
    fn from_cells(cells: &[&CellResult]) -> SchemeFrontier {
        let first = cells.first().expect("at least one cell per scheme");
        let worst = cells
            .iter()
            .max_by(|a, b| {
                (a.lost_data, &a.failure, a.seed).cmp(&(b.lost_data, &b.failure, b.seed))
            })
            .expect("at least one cell per scheme");
        let repaired: u64 = cells.iter().map(|c| c.repaired).sum();
        let read: u64 = cells.iter().map(|c| c.blocks_read).sum();
        SchemeFrontier {
            scheme: first.scheme.clone(),
            storage_overhead_pct: first.storage_overhead_pct,
            worst_loss_pct: worst.lost_data as f64 / worst.data_blocks as f64 * 100.0,
            worst_failure: worst.failure.clone(),
            repaired,
            reads_per_repair: if repaired == 0 {
                0.0
            } else {
                read as f64 / repaired as f64
            },
            max_rounds: cells.iter().map(|c| c.rounds).max().unwrap_or(0),
        }
    }
}

/// Collapses a sweep into per-scheme frontier rows, in roster order.
pub fn scheme_frontiers(result: &SweepResult) -> Vec<SchemeFrontier> {
    result
        .config
        .schemes
        .iter()
        .map(|scheme| {
            let name = scheme.name();
            let cells: Vec<&CellResult> =
                result.cells.iter().filter(|c| c.scheme == name).collect();
            SchemeFrontier::from_cells(&cells)
        })
        .collect()
}

/// The human-readable sweep report: grid shape, per-failure-model scheme
/// tables, then one frontier line per scheme. Deterministic text — CI
/// uploads it next to the CSV.
pub fn frontier_report(result: &SweepResult) -> String {
    let cfg = &result.config;
    let mut out = String::new();
    writeln!(
        out,
        "reliability-frontier sweep: {} schemes x {} failure models x {} seeds \
         ({} cells, {} data blocks, {} locations, placement seed {})",
        cfg.schemes.len(),
        cfg.failures.len(),
        cfg.seeds.len(),
        result.cells.len(),
        cfg.data_blocks,
        cfg.locations,
        cfg.placement_seed,
    )
    .expect("write to String");
    for failure in &cfg.failures {
        let label = failure.label();
        writeln!(out, "\n== {label} ==").expect("write to String");
        for cell in result.cells.iter().filter(|c| c.failure == label) {
            writeln!(
                out,
                "  {:<18} seed {:>6}  failed {:>7}  repaired {:>7}  lost data {:>6} \
                 ({:.3}%)  rounds {:>3}  reads/repair p50 {} p99 {}",
                cell.scheme,
                cell.seed,
                cell.failed_data + cell.failed_redundancy,
                cell.repaired,
                cell.lost_data,
                cell.lost_data as f64 / cell.data_blocks as f64 * 100.0,
                cell.rounds,
                cell.read_cost_p50,
                cell.read_cost_p99,
            )
            .expect("write to String");
        }
    }
    writeln!(out, "\n== frontier (storage vs worst-case durability) ==").expect("write to String");
    for f in scheme_frontiers(result) {
        writeln!(
            out,
            "  {:<18} overhead {:>6.1}%  worst loss {:>7.3}% ({})  \
             reads/repair {:>5.2}  max rounds {:>3}",
            f.scheme,
            f.storage_overhead_pct,
            f.worst_loss_pct,
            f.worst_failure,
            f.reads_per_repair,
            f.max_rounds,
        )
        .expect("write to String");
    }
    out
}

/// The machine-readable summary in the workspace's `BENCH_*.json`
/// JSON-lines convention: one object per scheme frontier row.
pub fn bench_json(result: &SweepResult) -> String {
    let mut out = String::new();
    for f in scheme_frontiers(result) {
        writeln!(
            out,
            "{{\"bench\":\"sweep/frontier/{}\",\"overhead_pct\":{:.1},\
             \"worst_loss_pct\":{:.3},\"worst_failure\":\"{}\",\
             \"repaired\":{},\"reads_per_repair\":{:.3},\"max_rounds\":{}}}",
            f.scheme,
            f.storage_overhead_pct,
            f.worst_loss_pct,
            f.worst_failure,
            f.repaired,
            f.reads_per_repair,
            f.max_rounds,
        )
        .expect("write to String");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::tiny;
    use crate::run::run_sweep;

    #[test]
    fn frontier_covers_every_scheme_once_in_roster_order() {
        let result = run_sweep(&tiny()).unwrap();
        let rows = scheme_frontiers(&result);
        assert_eq!(rows.len(), result.config.schemes.len());
        for (row, scheme) in rows.iter().zip(&result.config.schemes) {
            assert_eq!(row.scheme, scheme.name());
            assert_eq!(row.storage_overhead_pct, scheme.additional_storage_pct());
            assert!(row.repaired > 0);
            assert!(row.reads_per_repair >= 1.0);
        }
    }

    #[test]
    fn report_mentions_every_cell_and_model() {
        let result = run_sweep(&tiny()).unwrap();
        let report = frontier_report(&result);
        for failure in &result.config.failures {
            assert!(report.contains(&format!("== {} ==", failure.label())));
        }
        assert!(report.contains("frontier (storage vs worst-case durability)"));
        // Deterministic text.
        assert_eq!(report, frontier_report(&run_sweep(&tiny()).unwrap()));
    }

    #[test]
    fn bench_json_is_one_object_per_scheme() {
        let result = run_sweep(&tiny()).unwrap();
        let json = bench_json(&result);
        assert_eq!(json.lines().count(), result.config.schemes.len());
        for line in json.lines() {
            assert!(line.starts_with("{\"bench\":\"sweep/frontier/"), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
    }
}
