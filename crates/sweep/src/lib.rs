//! Reliability-frontier sweep harness: the scheme roster × failure-model
//! grid behind the paper's §V.C evaluation, as one seeded, config-driven
//! runner.
//!
//! A [`SweepConfig`] names a grid — every [`Scheme`] in the roster crossed
//! with every [`FailureSpec`] and every scenario seed — and
//! [`run_sweep`] expands it into per-cell [`ae_sim::SchemePlane`]
//! simulations, emitting one [`CellResult`] per cell. The
//! CSV serialization ([`SweepResult::to_csv`]) is the CI contract: the
//! `sweeps` job replays a pinned smoke grid and diffs the bytes against a
//! checked-in golden file, on both the parallel and `serial-repair`
//! planners.
//!
//! # CSV schema
//!
//! One header line, then one row per cell in `schemes × failures × seeds`
//! order. `scheme` and `failure` are double-quoted (their labels contain
//! commas — `"RS(10,4)"`, `"iid(0.15)"`); every other column is bare.
//!
//! | column | meaning |
//! |---|---|
//! | `scheme` | roster label ([`Scheme::name`]) |
//! | `failure` | failure-model label ([`FailureSpec::label`]) |
//! | `seed` | scenario seed for this cell |
//! | `data_blocks` | data blocks in the deployment |
//! | `locations` | failure-domain locations |
//! | `storage_overhead_pct` | the scheme's additional storage (Table IV "AS") |
//! | `failed_data`, `failed_redundancy` | blocks the scenario failed, by kind |
//! | `repaired` | blocks repaired across all rounds |
//! | `lost_data`, `lost_redundancy` | blocks still missing at scenario end |
//! | `irrecoverable` | `lost_data + lost_redundancy` |
//! | `blocks_read`, `blocks_written` | total repair traffic |
//! | `rounds` | repair rounds across all scenario events |
//! | `read_cost_p50`, `read_cost_p99` | per-repaired-block read cost quantiles |
//!
//! Every column is integer except `storage_overhead_pct`, which is a
//! scheme constant formatted to one decimal — there is no accumulated
//! floating point anywhere, so equal runs produce equal bytes.
//!
//! # Seeding contract
//!
//! A `(seed, config)` pair names one exact outcome:
//!
//! * Placement uses [`ae_sim::SimPlacement::Random`] keyed by the
//!   config's `placement_seed`, shared by every cell so all schemes see
//!   the same location map.
//! * Each cell's scenario is driven by its `seed` alone: i.i.d. and churn
//!   disasters key the location shuffle with it, correlated-group
//!   knockouts and bit rot derive their draws from
//!   [`ae_api::mix64`]`(·, seed)`, churn epochs use `mix64(epoch, seed)`.
//!   Rolling upgrades are operator-driven (wave order is fixed) and
//!   ignore the scenario seed by design.
//! * Repair planning fans out over [`ae_api::repair_threads`] scoped
//!   threads, but chunk-order merging keeps the planned sets — and every
//!   number derived from them — bit-identical to the `serial-repair`
//!   reference planner, so the CSV is byte-stable across thread counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod failure;
pub mod report;
pub mod run;

pub use ae_sim::Scheme;
pub use config::{SweepConfig, SweepError};
pub use failure::FailureSpec;
pub use report::{bench_json, frontier_report, scheme_frontiers, SchemeFrontier};
pub use run::{run_sweep, CellResult, SweepResult, CSV_HEADER};
