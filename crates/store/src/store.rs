//! The thread-safe in-memory block store.
//!
//! Earlier revisions defined a store-side `BlockStore` trait here, bridged
//! to the repair-facing traits by a `StoreRepo` adapter. Both are gone:
//! every backend now implements the **one** unified family —
//! [`ae_api::BlockSource`] / [`ae_api::BlockSink`] /
//! [`ae_api::BlockRepo`] — directly, so encoders, repair engines and
//! archives write through plain `&Store` / `Arc<Store>` handles with no
//! adapter in between. [`StoreError`] (the shared failure surface) now
//! lives in `ae_api` and is re-exported here.

pub use ae_api::StoreError;
use ae_api::{BlockMap, BlockSink, BlockSource};
use ae_blocks::{Block, BlockId};

/// A thread-safe in-memory block store that verifies checksums on read.
///
/// A thin wrapper over the one canonical in-memory backend
/// ([`ae_api::BlockMap`]) adding integrity verification to every read —
/// [`crate::DistributedStore`] shards over many of these,
/// [`crate::TieredStore`] stacks a fast one over a shared remote tier.
#[derive(Debug, Default)]
pub struct MemStore {
    blocks: BlockMap,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a block, replacing any previous contents.
    pub fn put(&self, id: BlockId, block: Block) {
        self.blocks.insert(id, block);
    }

    /// Fetches a block, verifying its integrity.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if absent; [`StoreError::Corrupted`] if the
    /// stored checksum no longer matches.
    pub fn get(&self, id: BlockId) -> Result<Block, StoreError> {
        let block = self.blocks.get(&id).ok_or(StoreError::NotFound(id))?;
        block.verify().map_err(|_| StoreError::Corrupted(id))?;
        Ok(block)
    }

    /// Removes a block, returning whether it was present.
    pub fn remove(&self, id: BlockId) -> bool {
        self.blocks.remove(&id).is_some()
    }

    /// Whether the block is present (without reading it).
    pub fn contains(&self, id: BlockId) -> bool {
        self.blocks.contains_key(&id)
    }

    /// Number of blocks held.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// All ids currently present (snapshot).
    pub fn ids(&self) -> Vec<BlockId> {
        self.blocks.ids()
    }
}

impl BlockSource for MemStore {
    fn fetch(&self, id: BlockId) -> Option<Block> {
        self.get(id).ok()
    }

    fn has(&self, id: BlockId) -> bool {
        self.contains(id)
    }

    fn read(&self, id: BlockId) -> Result<Block, StoreError> {
        self.get(id)
    }
}

impl BlockSink for MemStore {
    fn store(&self, id: BlockId, block: Block) {
        self.put(id, block);
    }

    fn remove(&self, id: BlockId) -> bool {
        MemStore::remove(self, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_api::BlockRepo;
    use ae_blocks::NodeId;

    fn id(i: u64) -> BlockId {
        BlockId::Data(NodeId(i))
    }

    #[test]
    fn put_get_remove() {
        let s = MemStore::new();
        assert!(s.is_empty());
        s.put(id(1), Block::from_vec(vec![1, 2, 3]));
        assert_eq!(s.len(), 1);
        assert!(s.contains(id(1)));
        assert_eq!(s.get(id(1)).unwrap().as_slice(), &[1, 2, 3]);
        assert!(s.remove(id(1)));
        assert!(!s.remove(id(1)));
        assert_eq!(s.get(id(1)), Err(StoreError::NotFound(id(1))));
    }

    #[test]
    fn overwrite_replaces() {
        let s = MemStore::new();
        s.put(id(2), Block::from_vec(vec![1]));
        s.put(id(2), Block::from_vec(vec![9]));
        assert_eq!(s.get(id(2)).unwrap().as_slice(), &[9]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn ids_snapshot() {
        let s = MemStore::new();
        s.put(id(1), Block::zero(4));
        s.put(id(2), Block::zero(4));
        let mut ids = s.ids();
        ids.sort();
        assert_eq!(ids, vec![id(1), id(2)]);
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let s = Arc::new(MemStore::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for k in 0..100u64 {
                        s.put(id(t * 1000 + k), Block::from_vec(vec![t as u8; 16]));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 800);
    }

    #[test]
    fn unified_family_without_adapter() {
        // The store IS a BlockRepo: no StoreRepo wrapper anywhere.
        let s = MemStore::new();
        let repo: &dyn BlockRepo = &s;
        repo.store(id(4), Block::from_vec(vec![4]));
        assert!(repo.has(id(4)));
        assert_eq!(repo.read(id(4)).unwrap().as_slice(), &[4]);
        assert_eq!(repo.read(id(5)), Err(StoreError::NotFound(id(5))));
        assert!(BlockSink::remove(repo, id(4)));
        assert!(!repo.has(id(4)));
    }

    #[test]
    fn error_display() {
        assert!(StoreError::NotFound(id(7))
            .to_string()
            .contains("not found"));
        assert!(StoreError::Corrupted(id(7))
            .to_string()
            .contains("integrity"));
    }
}
