//! Block stores: where block contents live.

use ae_api::{BlockSink, BlockSource};
use ae_blocks::{Block, BlockId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;

/// Errors from store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The requested block is not in the store (or its location is down).
    NotFound(BlockId),
    /// The stored block failed checksum verification — corruption or
    /// tampering detected at read time.
    Corrupted(BlockId),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound(id) => write!(f, "block {id} not found"),
            StoreError::Corrupted(id) => write!(f, "block {id} failed integrity verification"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Anything that stores blocks by id.
///
/// Implementations must be safe for concurrent use; the geo-backup broker
/// and repair workers share stores across threads.
pub trait BlockStore: Send + Sync {
    /// Stores a block, replacing any previous contents.
    fn put(&self, id: BlockId, block: Block);

    /// Fetches a block, verifying its integrity.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if absent; [`StoreError::Corrupted`] if the
    /// stored checksum no longer matches.
    fn get(&self, id: BlockId) -> Result<Block, StoreError>;

    /// Removes a block, returning whether it was present.
    fn remove(&self, id: BlockId) -> bool;

    /// Whether the block is present (without reading it).
    fn contains(&self, id: BlockId) -> bool;

    /// Number of blocks held.
    fn len(&self) -> usize;

    /// Whether the store holds nothing.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A thread-safe in-memory block store.
#[derive(Debug, Default)]
pub struct MemStore {
    blocks: RwLock<HashMap<BlockId, Block>>,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// All ids currently present (snapshot).
    pub fn ids(&self) -> Vec<BlockId> {
        self.blocks.read().keys().copied().collect()
    }
}

/// Adapter presenting any shared [`BlockStore`] as the scheme-agnostic
/// [`BlockSource`] + [`BlockSink`] pair (a [`ae_api::BlockRepo`]), so
/// encoders and repair engines can write through `&S` / `Arc<S>` handles.
///
/// Failed reads (missing or corrupted) surface as `None`: to a decoder
/// both mean "not available here".
pub struct StoreRepo<'a, S: BlockStore + ?Sized>(pub &'a S);

impl<S: BlockStore + ?Sized> BlockSource for StoreRepo<'_, S> {
    fn fetch(&self, id: BlockId) -> Option<Block> {
        self.0.get(id).ok()
    }

    fn has(&self, id: BlockId) -> bool {
        self.0.contains(id)
    }
}

impl<S: BlockStore + ?Sized> BlockSink for StoreRepo<'_, S> {
    fn store(&mut self, id: BlockId, block: Block) {
        self.0.put(id, block);
    }
}

impl BlockStore for MemStore {
    fn put(&self, id: BlockId, block: Block) {
        self.blocks.write().insert(id, block);
    }

    fn get(&self, id: BlockId) -> Result<Block, StoreError> {
        let guard = self.blocks.read();
        let block = guard.get(&id).ok_or(StoreError::NotFound(id))?;
        block.verify().map_err(|_| StoreError::Corrupted(id))?;
        Ok(block.clone())
    }

    fn remove(&self, id: BlockId) -> bool {
        self.blocks.write().remove(&id).is_some()
    }

    fn contains(&self, id: BlockId) -> bool {
        self.blocks.read().contains_key(&id)
    }

    fn len(&self) -> usize {
        self.blocks.read().len()
    }
}

impl BlockSource for MemStore {
    fn fetch(&self, id: BlockId) -> Option<Block> {
        self.get(id).ok()
    }

    fn has(&self, id: BlockId) -> bool {
        self.contains(id)
    }
}

impl BlockSink for MemStore {
    fn store(&mut self, id: BlockId, block: Block) {
        self.put(id, block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_blocks::NodeId;

    fn id(i: u64) -> BlockId {
        BlockId::Data(NodeId(i))
    }

    #[test]
    fn put_get_remove() {
        let s = MemStore::new();
        assert!(s.is_empty());
        s.put(id(1), Block::from_vec(vec![1, 2, 3]));
        assert_eq!(s.len(), 1);
        assert!(s.contains(id(1)));
        assert_eq!(s.get(id(1)).unwrap().as_slice(), &[1, 2, 3]);
        assert!(s.remove(id(1)));
        assert!(!s.remove(id(1)));
        assert_eq!(s.get(id(1)), Err(StoreError::NotFound(id(1))));
    }

    #[test]
    fn overwrite_replaces() {
        let s = MemStore::new();
        s.put(id(2), Block::from_vec(vec![1]));
        s.put(id(2), Block::from_vec(vec![9]));
        assert_eq!(s.get(id(2)).unwrap().as_slice(), &[9]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn ids_snapshot() {
        let s = MemStore::new();
        s.put(id(1), Block::zero(4));
        s.put(id(2), Block::zero(4));
        let mut ids = s.ids();
        ids.sort();
        assert_eq!(ids, vec![id(1), id(2)]);
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let s = Arc::new(MemStore::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for k in 0..100u64 {
                        s.put(id(t * 1000 + k), Block::from_vec(vec![t as u8; 16]));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 800);
    }

    #[test]
    fn error_display() {
        assert!(StoreError::NotFound(id(7))
            .to_string()
            .contains("not found"));
        assert!(StoreError::Corrupted(id(7))
            .to_string()
            .contains("integrity"));
    }
}
