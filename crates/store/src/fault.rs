//! A fault-injecting backend wrapper for disaster drills.
//!
//! [`FaultyStore`] wraps any backend of the unified [`ae_api`] family and
//! blackholes a chosen set of block ids: fetches of a failed block answer
//! `None` (the block's hardware is gone) while the wrapped backend's other
//! contents stay reachable. Repair flows heal naturally — a write to a
//! failed id models replaced hardware, clearing the fault and storing the
//! regenerated block — so archive disaster scenarios
//! (put → fail → degraded get → scrub) run in tests and examples against
//! **every** roster scheme, over any inner backend, with no scheme- or
//! backend-specific plumbing.

use ae_api::{BlockRepo, BlockSink, BlockSource, StoreError};
use ae_blocks::{Block, BlockId};
use parking_lot::RwLock;
use std::collections::HashSet;
use std::sync::Arc;

/// A backend wrapper that makes selected blocks unavailable.
#[derive(Debug)]
pub struct FaultyStore<S: BlockRepo + Send + ?Sized> {
    down: RwLock<HashSet<BlockId>>,
    inner: Arc<S>,
}

impl<S: BlockRepo + Send + ?Sized> FaultyStore<S> {
    /// Wraps `inner` with no faults injected.
    pub fn new(inner: Arc<S>) -> Self {
        FaultyStore {
            down: RwLock::new(HashSet::new()),
            inner,
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &Arc<S> {
        &self.inner
    }

    /// Makes `id` unavailable until it is restored or rewritten.
    pub fn fail(&self, id: BlockId) {
        self.down.write().insert(id);
    }

    /// Fails every id in the iterator.
    pub fn fail_all(&self, ids: impl IntoIterator<Item = BlockId>) {
        let mut down = self.down.write();
        down.extend(ids);
    }

    /// Clears the fault on `id` (the hardware came back with its contents
    /// intact). Returns whether a fault was present.
    pub fn restore(&self, id: BlockId) -> bool {
        self.down.write().remove(&id)
    }

    /// Clears every injected fault.
    pub fn restore_all(&self) {
        self.down.write().clear();
    }

    /// Number of currently failed ids.
    pub fn failed_len(&self) -> usize {
        self.down.read().len()
    }

    fn is_down(&self, id: BlockId) -> bool {
        self.down.read().contains(&id)
    }
}

impl<S: BlockRepo + Send + ?Sized> BlockSource for FaultyStore<S> {
    fn fetch(&self, id: BlockId) -> Option<Block> {
        if self.is_down(id) {
            return None;
        }
        self.inner.fetch(id)
    }

    fn has(&self, id: BlockId) -> bool {
        !self.is_down(id) && self.inner.has(id)
    }

    fn read(&self, id: BlockId) -> Result<Block, StoreError> {
        if self.is_down(id) {
            return Err(StoreError::NotFound(id));
        }
        self.inner.read(id)
    }
}

impl<S: BlockRepo + Send + ?Sized> BlockSink for FaultyStore<S> {
    /// A write models replaced hardware: the fault clears and the block is
    /// stored, so repair flows (scrub, re-encode) heal injected failures.
    fn store(&self, id: BlockId, block: Block) {
        self.down.write().remove(&id);
        self.inner.store(id, block);
    }

    fn remove(&self, id: BlockId) -> bool {
        self.down.write().remove(&id);
        self.inner.remove(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use ae_blocks::NodeId;

    fn id(i: u64) -> BlockId {
        BlockId::Data(NodeId(i))
    }

    #[test]
    fn failed_blocks_vanish_until_restored() {
        let faulty = FaultyStore::new(Arc::new(MemStore::new()));
        faulty.store(id(1), Block::from_vec(vec![1]));
        faulty.fail(id(1));
        assert!(!faulty.has(id(1)));
        assert_eq!(faulty.fetch(id(1)), None);
        assert_eq!(faulty.read(id(1)), Err(StoreError::NotFound(id(1))));
        // The contents were never lost in the wrapped store.
        assert!(faulty.inner().contains(id(1)));
        assert!(faulty.restore(id(1)));
        assert_eq!(faulty.fetch(id(1)).unwrap().as_slice(), &[1]);
    }

    #[test]
    fn writes_heal_faults() {
        let faulty = FaultyStore::new(Arc::new(MemStore::new()));
        faulty.fail_all([id(1), id(2)]);
        assert_eq!(faulty.failed_len(), 2);
        faulty.store(id(1), Block::from_vec(vec![9]));
        assert_eq!(faulty.failed_len(), 1);
        assert!(faulty.has(id(1)), "rewrite models replaced hardware");
        faulty.restore_all();
        assert_eq!(faulty.failed_len(), 0);
    }

    #[test]
    fn remove_clears_the_fault_too() {
        let faulty = FaultyStore::new(Arc::new(MemStore::new()));
        faulty.store(id(3), Block::zero(2));
        faulty.fail(id(3));
        assert!(BlockSink::remove(&faulty, id(3)));
        assert_eq!(faulty.failed_len(), 0);
        assert!(!faulty.inner().contains(id(3)));
    }
}
